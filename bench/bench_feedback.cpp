// Section 5.1 (relevance feedback): "Replacing the user's query with the
// first relevant document improves performance by an average of 33% and
// replacing it with the average of the first three relevant documents
// improves performance by an average of 67%."

#include <iostream>

#include "bench_common.hpp"
#include "eval/metrics.hpp"
#include "lsi/lsi_index.hpp"
#include "synth/corpus.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("feedback");
  bench::banner("Section 5.1 (relevance feedback)",
                "Query replaced by the 1st relevant doc / mean of first 3 "
                "relevant docs.");

  // Impoverished initial queries over noisy topics, as in interactive
  // retrieval (the paper: initial queries are "usually quite impoverished").
  std::vector<double> base_scores, fb1_scores, fb3_scores;
  for (std::uint64_t s = 0; s < 4; ++s) {
    synth::CorpusSpec spec;
    spec.topics = 8;
    spec.concepts_per_topic = 10;
    spec.shared_concepts = 30;
    spec.general_prob = 0.5;
    spec.own_topic_prob = 0.6;
    spec.docs_per_topic = 25;
    spec.queries_per_topic = 6;
    spec.query_len = 2;
    spec.query_offform_prob = 0.8;
    spec.polysemy_prob = 0.15;
    spec.seed = 700 + s;
    auto corpus = synth::generate_corpus(spec);

    core::IndexOptions opts;
    opts.k = 40;
    auto index = core::LsiIndex::try_build(corpus.docs, opts).value();

    for (const auto& q : corpus.queries) {
      auto initial = index.query(q.text);
      std::vector<la::index_t> ranked0;
      for (const auto& r : initial) ranked0.push_back(r.doc);

      // First three relevant documents in the initial ranking.
      std::vector<la::index_t> rel;
      for (const auto& r : initial) {
        if (q.relevant.count(r.doc)) rel.push_back(r.doc);
        if (rel.size() == 3) break;
      }
      if (rel.empty()) continue;

      // Residual evaluation: looked-at relevant docs no longer count.
      eval::DocSet residual = q.relevant;
      for (auto d : rel) residual.erase(d);
      if (residual.empty()) continue;

      auto residual_ap = [&](const std::vector<core::QueryResult>& results,
                             std::size_t n_seen) {
        std::vector<la::index_t> ranked;
        for (const auto& r : results) {
          bool seen = false;
          for (std::size_t i = 0; i < n_seen; ++i) seen |= (rel[i] == r.doc);
          if (!seen) ranked.push_back(r.doc);
        }
        return eval::average_precision(ranked, residual);
      };

      // Baseline on the residual set for comparability.
      {
        std::vector<la::index_t> ranked;
        for (const auto& r : initial) {
          bool seen = false;
          for (auto d : rel) seen |= (d == r.doc);
          if (!seen) ranked.push_back(r.doc);
        }
        base_scores.push_back(eval::average_precision(ranked, residual));
      }

      // Feedback 1: query := first relevant document.
      auto q1 = index.project(corpus.docs[rel[0]].body);
      fb1_scores.push_back(residual_ap(index.query_projected(q1), rel.size()));

      // Feedback 3: query := mean projection of the first three relevant
      // documents (or as many as found).
      la::Vector q3(index.space().k(), 0.0);
      for (auto d : rel) {
        auto p = index.project(corpus.docs[d].body);
        for (std::size_t i = 0; i < q3.size(); ++i) q3[i] += p[i];
      }
      for (double& v : q3) v /= static_cast<double>(rel.size());
      fb3_scores.push_back(residual_ap(index.query_projected(q3), rel.size()));
    }
  }

  const double base = eval::mean(base_scores);
  const double fb1 = eval::mean(fb1_scores);
  const double fb3 = eval::mean(fb3_scores);

  util::TextTable table({"method", "mean AP", "improvement"});
  table.add_row({"initial query", util::fmt(base, 3), "-"});
  table.add_row({"replace with 1st relevant doc", util::fmt(fb1, 3),
                 util::fmt_pct(base > 0 ? fb1 / base - 1.0 : 0.0)});
  table.add_row({"mean of first 3 relevant docs", util::fmt(fb3, 3),
                 util::fmt_pct(base > 0 ? fb3 / base - 1.0 : 0.0)});
  table.print(std::cout, "Residual-collection average precision:");

  std::cout << "\npaper: +33% (1 doc), +67% (3 docs)\n"
            << "Shape to verify: both feedback variants improve on the "
               "initial query, and\nthree documents beat one.\n";
  return 0;
}
