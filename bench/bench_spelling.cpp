// Section 5.4 (spelling correction, after Kukich): rows are character
// n-grams, columns are correctly spelled words; a (possibly misspelled)
// input is projected from its n-grams and the nearest lexicon word in LSI
// space is the suggested correction.

#include <iostream>

#include "bench_common.hpp"
#include "synth/noise.hpp"
#include "synth/spelling.hpp"
#include "util/rng.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("spelling");
  bench::banner("Section 5.4 (spelling correction)",
                "n-gram x word LSI space; corrupted words corrected to the "
                "nearest lexicon word.");

  // A lexicon in the flavor of the paper's own vocabulary.
  const std::vector<std::string> lexicon = {
      "abnormalities", "analysis",   "behavior",   "blood",     "close",
      "computation",   "culture",    "database",   "depressed", "discharge",
      "disease",       "document",   "factor",     "fast",      "filtering",
      "generation",    "indexing",   "information","lanczos",   "latent",
      "matrix",        "oestrogen",  "orthogonal", "patients",  "pressure",
      "precision",     "query",      "rats",       "recall",    "retrieval",
      "semantic",      "singular",   "sparse",     "study",     "updating",
      "vector",        "weighting",  "workstation"};

  util::TextTable sample({"input (corrupted)", "suggestion", "cosine",
                          "expected"});
  int correct_at_1 = 0, correct_at_3 = 0, trials = 0;
  util::Rng rng(99);
  synth::NoiseSpec noise;
  noise.word_error_rate = 1.0;  // corrupt every probe word once

  for (int k : {24}) {
    auto model = synth::build_spelling_model(lexicon, k);
    for (int round = 0; round < 5; ++round) {
      for (const auto& word : lexicon) {
        const std::string corrupted =
            synth::corrupt_text(word, noise, rng);
        if (corrupted == word) continue;
        auto suggestions = synth::suggest_corrections(model, corrupted, 3);
        if (suggestions.empty()) continue;
        ++trials;
        if (suggestions[0].word == word) ++correct_at_1;
        for (const auto& s : suggestions) {
          if (s.word == word) {
            ++correct_at_3;
            break;
          }
        }
        if (trials <= 10) {
          sample.add_row({corrupted, suggestions[0].word,
                          util::fmt(suggestions[0].cosine, 3), word});
        }
      }
    }
  }
  sample.print(std::cout, "Sample corrections (k = 24):");

  std::cout << "\naccuracy@1: "
            << util::fmt_pct(trials ? double(correct_at_1) / trials : 0)
            << "   accuracy@3: "
            << util::fmt_pct(trials ? double(correct_at_3) / trials : 0)
            << "   (" << trials << " corrupted probes)\n"
            << "Shape to verify: single-edit corruptions resolve to the "
               "intended word in the\nlarge majority of cases — the "
               "mechanism Kukich exploited.\n";
  return 0;
}
