// Google-benchmark microbenchmarks of the numerical kernels behind the
// Section 4.2 cost model I*cost(G^T G x) + trp*cost(G x): sparse matvecs,
// dense rotations (the (2k^2-k)(m+n) term), and the full Lanczos driver.
// A custom main additionally runs one instrumented Lanczos solve under an
// observability sink and emits BENCH_lanczos_perf.json with per-stage spans
// and the cost model's prediction next to the solver's measured flops.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "la/kernels.hpp"
#include "la/lanczos.hpp"
#include "lsi/flops.hpp"
#include "lsi/semantic_space.hpp"
#include "lsi/update.hpp"
#include "synth/sparse_random.hpp"

namespace {

using namespace lsi;

void BM_SparseMatVec(benchmark::State& state) {
  const auto m = static_cast<la::index_t>(state.range(0));
  const auto n = m / 2;
  auto a = synth::random_sparse_matrix(m, n, 0.005, 1);
  la::Vector x(n, 1.0), y(m, 0.0);
  for (auto _ : state) {
    a.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_SparseMatVec)->Arg(2000)->Arg(8000)->Arg(32000);

void BM_SparseMatVecTranspose(benchmark::State& state) {
  const auto m = static_cast<la::index_t>(state.range(0));
  const auto n = m / 2;
  auto a = synth::random_sparse_matrix(m, n, 0.005, 2);
  la::Vector x(m, 1.0), y(n, 0.0);
  for (auto _ : state) {
    a.apply_transpose(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_SparseMatVecTranspose)->Arg(2000)->Arg(8000)->Arg(32000);

void BM_LanczosSvd(benchmark::State& state) {
  const auto n = static_cast<la::index_t>(state.range(0));
  auto a = synth::random_sparse_matrix(2 * n, n, 0.01, 3);
  la::LanczosOptions opts;
  opts.k = static_cast<la::index_t>(state.range(1));
  for (auto _ : state) {
    auto svd = la::lanczos_svd(a, opts);
    benchmark::DoNotOptimize(svd.s.data());
  }
  // The reorthogonalization inner loops route through the dispatched
  // kernels; record which set this run measured.
  state.SetLabel(std::string("kernel=") + la::kern::active().name);
}
BENCHMARK(BM_LanczosSvd)
    ->Args({500, 10})
    ->Args({1000, 10})
    ->Args({1000, 25})
    ->Args({2000, 25});

void BM_DenseRotation(benchmark::State& state) {
  // The U_k U_F product of Equation (13): m x k times k x k.
  const auto m = static_cast<la::index_t>(state.range(0));
  const la::index_t k = 100;
  la::DenseMatrix u(m, k), f(k, k);
  for (la::index_t j = 0; j < k; ++j) {
    for (la::index_t i = 0; i < m; ++i) u(i, j) = 1.0 / double(i + j + 1);
    for (la::index_t i = 0; i < k; ++i) f(i, j) = 1.0 / double(i + j + 2);
  }
  for (auto _ : state) {
    auto rotated = la::multiply(u, f);
    benchmark::DoNotOptimize(rotated.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(m) * k * k);
}
BENCHMARK(BM_DenseRotation)->Arg(2000)->Arg(8000);

void BM_UpdateDocuments(benchmark::State& state) {
  const auto n = static_cast<la::index_t>(state.range(0));
  auto a = synth::random_sparse_matrix(2 * n, n, 0.01, 4);
  auto base = core::try_build_semantic_space(a, 30).value();
  auto d = synth::random_sparse_matrix(2 * n, 8, 0.01, 5);
  for (auto _ : state) {
    auto space = base;
    core::update_documents(space, d);
    benchmark::DoNotOptimize(space.sigma.data());
  }
  state.SetLabel(std::string("kernel=") + la::kern::active().name);
}
BENCHMARK(BM_UpdateDocuments)->Arg(500)->Arg(1000);

/// One instrumented solve per registered kernel at reproduction scale:
/// spans and counters land in the session's sink, and each kernel's
/// LanczosStats::flops lands next to the Section 4.2 model prediction (the
/// reorthogonalization dot/axpy route through the dispatched kernels, so
/// the solve is re-run under every registered Ops table).
void emit_instrumented_run() {
  const bool quick = bench::quick_mode();
  const la::index_t n = quick ? 400 : 2000;
  const la::index_t m = 2 * n;
  const la::index_t k = quick ? 10 : 50;
  auto a = synth::random_sparse_matrix(m, n, 0.01, 7);

  std::vector<std::string> kernels{"portable"};
  if (la::kern::cpu_has_avx2() && la::kern::avx2() != nullptr) {
    kernels.push_back("avx2");
  }

  bench::StatsSession stats("lanczos_perf");
  stats.param("m", static_cast<double>(m));
  stats.param("n", static_cast<double>(n));
  stats.param("k", static_cast<double>(k));
  stats.param("nnz", static_cast<double>(a.nnz()));
  stats.param("quick", quick ? 1.0 : 0.0);
  stats.param("kernels", static_cast<double>(kernels.size()));

  for (const auto& name : kernels) {
    la::kern::force(name);
    la::LanczosOptions opts;
    opts.k = k;
    la::LanczosStats lstats;
    auto svd = la::lanczos_svd(a, opts, &lstats);
    benchmark::DoNotOptimize(svd.s.data());

    // Convergence counters are per-kernel: the reassociating reductions may
    // legally walk a slightly different convergence path.
    stats.param("steps[" + name + "]", static_cast<double>(lstats.steps));
    stats.param("matvecs[" + name + "]",
                static_cast<double>(lstats.matvecs +
                                    lstats.matvecs_transpose));
    stats.param("converged[" + name + "]",
                static_cast<double>(lstats.converged));
    stats.param("max_residual[" + name + "]", lstats.max_residual);

    core::FlopModelParams fp;
    fp.m = m;
    fp.n = n;
    fp.nnz_a = a.nnz();
    fp.iterations = lstats.steps;
    fp.triplets = k;
    stats.flop_row("lanczos.svd[" + name + "]", core::flops_recompute(fp),
                   lstats.flops);
  }
  la::kern::force("auto");
}

}  // namespace

int main(int argc, char** argv) {
  // In quick mode (CI smoke), trim the registered benchmarks to the
  // smallest shapes unless the caller already passed a filter.
  std::vector<char*> args(argv, argv + argc);
  std::string quick_filter = "--benchmark_filter=/(400|500|2000)(/10)?$";
  bool has_filter = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_filter", 0) == 0) {
      has_filter = true;
    }
  }
  if (bench::quick_mode() && !has_filter) {
    args.push_back(quick_filter.data());
  }
  int fake_argc = static_cast<int>(args.size());
  benchmark::Initialize(&fake_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(fake_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_instrumented_run();
  return 0;
}
