// Google-benchmark microbenchmarks of the numerical kernels behind the
// Section 4.2 cost model I*cost(G^T G x) + trp*cost(G x): sparse matvecs,
// dense rotations (the (2k^2-k)(m+n) term), and the full Lanczos driver.

#include <benchmark/benchmark.h>

#include "la/lanczos.hpp"
#include "lsi/semantic_space.hpp"
#include "lsi/update.hpp"
#include "synth/sparse_random.hpp"

namespace {

using namespace lsi;

void BM_SparseMatVec(benchmark::State& state) {
  const auto m = static_cast<la::index_t>(state.range(0));
  const auto n = m / 2;
  auto a = synth::random_sparse_matrix(m, n, 0.005, 1);
  la::Vector x(n, 1.0), y(m, 0.0);
  for (auto _ : state) {
    a.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_SparseMatVec)->Arg(2000)->Arg(8000)->Arg(32000);

void BM_SparseMatVecTranspose(benchmark::State& state) {
  const auto m = static_cast<la::index_t>(state.range(0));
  const auto n = m / 2;
  auto a = synth::random_sparse_matrix(m, n, 0.005, 2);
  la::Vector x(m, 1.0), y(n, 0.0);
  for (auto _ : state) {
    a.apply_transpose(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_SparseMatVecTranspose)->Arg(2000)->Arg(8000)->Arg(32000);

void BM_LanczosSvd(benchmark::State& state) {
  const auto n = static_cast<la::index_t>(state.range(0));
  auto a = synth::random_sparse_matrix(2 * n, n, 0.01, 3);
  la::LanczosOptions opts;
  opts.k = static_cast<la::index_t>(state.range(1));
  for (auto _ : state) {
    auto svd = la::lanczos_svd(a, opts);
    benchmark::DoNotOptimize(svd.s.data());
  }
}
BENCHMARK(BM_LanczosSvd)
    ->Args({500, 10})
    ->Args({1000, 10})
    ->Args({1000, 25})
    ->Args({2000, 25});

void BM_DenseRotation(benchmark::State& state) {
  // The U_k U_F product of Equation (13): m x k times k x k.
  const auto m = static_cast<la::index_t>(state.range(0));
  const la::index_t k = 100;
  la::DenseMatrix u(m, k), f(k, k);
  for (la::index_t j = 0; j < k; ++j) {
    for (la::index_t i = 0; i < m; ++i) u(i, j) = 1.0 / double(i + j + 1);
    for (la::index_t i = 0; i < k; ++i) f(i, j) = 1.0 / double(i + j + 2);
  }
  for (auto _ : state) {
    auto rotated = la::multiply(u, f);
    benchmark::DoNotOptimize(rotated.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(m) * k * k);
}
BENCHMARK(BM_DenseRotation)->Arg(2000)->Arg(8000);

void BM_UpdateDocuments(benchmark::State& state) {
  const auto n = static_cast<la::index_t>(state.range(0));
  auto a = synth::random_sparse_matrix(2 * n, n, 0.01, 4);
  auto base = core::build_semantic_space(a, 30);
  auto d = synth::random_sparse_matrix(2 * n, 8, 0.01, 5);
  for (auto _ : state) {
    auto space = base;
    core::update_documents(space, d);
    benchmark::DoNotOptimize(space.sigma.data());
  }
}
BENCHMARK(BM_UpdateDocuments)->Arg(500)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
