// Open-loop load bench for the LSI query daemon (docs/SERVING.md).
//
// Modes:
//   (default)      start an in-process daemon over a synthetic corpus and
//                  sweep target qps levels with an open-loop generator:
//                  request i is *scheduled* at start + i/qps and its latency
//                  is measured from that scheduled instant, so queueing
//                  delay when the server falls behind is charged to the
//                  server (no coordinated omission). Emits per-level
//                  p50/p99/p999 and the error budget to BENCH_serving.json.
//                  Full mode enforces the acceptance gate: the 10k q/s
//                  level must sustain >= 10k with p99 <= 5 ms and zero
//                  non-2xx answers. Quick mode (LSI_BENCH_QUICK) shrinks
//                  the sweep to smoke scale and skips the gate.
//   --smoke        scripted functional drive — ingest, search, session
//                  paging, stats, drain — failing on any non-2xx answer.
//                  With --port it drives an EXTERNAL daemon (the CI
//                  serve-smoke job runs `lsi_cli serve` under ASan and
//                  points this mode at it); without, an in-process one.
//   --expect-429   (with --smoke) additionally bulk-POSTs /ingest until the
//                  shard queues overflow and REQUIRES the scripted 429.
//   --kill-replica (with --smoke) scripted failover against a replicated
//                  daemon (lsi_cli serve --replicas >= 2, or the in-process
//                  daemon which then runs R = 3): eject one replica, require
//                  /healthz "degraded", require searches and acked ingest to
//                  keep answering, readmit, require /healthz "ok" again
//                  (docs/REPLICATION.md).
//   --shutdown     (with --smoke) finish by POSTing /shutdown and verifying
//                  the daemon drains.
//
// Flags: --port N, --connections C, --seconds S, --qps "a,b,c".

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "lsi/lsi.hpp"
#include "serve/server.hpp"
#include "synth/corpus.hpp"

namespace {

using namespace lsi;
using clock_type = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Minimal blocking client (one fd, keep-alive, Content-Length or chunked)
// ---------------------------------------------------------------------------

struct Response {
  int status = 0;
  std::string body;
  bool closed = false;
};

class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ok_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool ok() const { return ok_; }

  Response request(const std::string& method, const std::string& target,
                   const std::string& body = {}) {
    std::string wire = method + " " + target + " HTTP/1.1\r\nHost: l\r\n";
    if (!body.empty()) {
      wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    }
    wire += "\r\n";
    wire += body;
    std::size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n =
          ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return {.status = 0, .body = {}, .closed = true};
      sent += static_cast<std::size_t>(n);
    }
    return read_response();
  }

  Response read_response() {
    Response resp;
    std::size_t head_end;
    while ((head_end = buf_.find("\r\n\r\n")) == std::string::npos) {
      if (!fill()) {
        resp.closed = true;
        return resp;
      }
    }
    const std::string head = buf_.substr(0, head_end);
    buf_.erase(0, head_end + 4);
    resp.status = std::atoi(head.c_str() + head.find(' ') + 1);
    if (head.find("Transfer-Encoding: chunked") != std::string::npos) {
      for (;;) {
        std::size_t eol;
        while ((eol = buf_.find("\r\n")) == std::string::npos) {
          if (!fill()) return resp;
        }
        const std::size_t n = std::strtoul(buf_.c_str(), nullptr, 16);
        buf_.erase(0, eol + 2);
        while (buf_.size() < n + 2) {
          if (!fill()) return resp;
        }
        if (n == 0) break;
        resp.body.append(buf_, 0, n);
        buf_.erase(0, n + 2);
      }
    } else {
      std::size_t want = 0;
      const std::size_t cl = head.find("Content-Length: ");
      if (cl != std::string::npos) {
        want = std::strtoul(head.c_str() + cl + 16, nullptr, 10);
      }
      while (buf_.size() < want) {
        if (!fill()) return resp;
      }
      resp.body.assign(buf_, 0, want);
      buf_.erase(0, want);
    }
    resp.closed = head.find("Connection: close") != std::string::npos;
    return resp;
  }

 private:
  bool fill() {
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    buf_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }
  int fd_ = -1;
  bool ok_ = false;
  std::string buf_;
};

std::string encode(const std::string& text) {
  std::string out;
  for (char c : text) out += (c == ' ') ? '+' : c;
  return out;
}

std::string find_string(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t pos = body.find(needle);
  if (pos == std::string::npos) return {};
  const std::size_t begin = pos + needle.size();
  return body.substr(begin, body.find('"', begin) - begin);
}

// ---------------------------------------------------------------------------
// Open-loop sweep
// ---------------------------------------------------------------------------

struct SweepResult {
  double target_qps = 0;
  double achieved_qps = 0;
  double p50_ms = 0, p99_ms = 0, p999_ms = 0;
  std::size_t sent = 0;
  std::size_t errors = 0;  ///< non-2xx answers (no 429s occur: reads only)
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

SweepResult run_level(std::uint16_t port, const std::vector<std::string>& targets,
                      double qps, double seconds, std::size_t connections) {
  const std::size_t total =
      static_cast<std::size_t>(qps * seconds);
  std::vector<std::vector<double>> latencies(connections);
  std::vector<std::size_t> errors(connections, 0);
  std::atomic<bool> abort{false};

  const auto start = clock_type::now() + std::chrono::milliseconds(50);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < connections; ++t) {
    threads.emplace_back([&, t] {
      Client client(static_cast<std::uint16_t>(port));
      if (!client.ok()) {
        abort.store(true);
        return;
      }
      latencies[t].reserve(total / connections + 1);
      // Thread t owns requests t, t+C, t+2C, ... of the global schedule.
      for (std::size_t i = t; i < total && !abort.load(); i += connections) {
        const auto scheduled =
            start + std::chrono::duration_cast<clock_type::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(i) / qps));
        std::this_thread::sleep_until(scheduled);
        const Response resp =
            client.request("GET", targets[i % targets.size()]);
        const auto done = clock_type::now();
        if (resp.status < 200 || resp.status >= 300) {
          ++errors[t];
          if (resp.closed) {
            abort.store(true);
            return;
          }
          continue;
        }
        latencies[t].push_back(
            std::chrono::duration<double, std::milli>(done - scheduled)
                .count());
      }
    });
  }
  for (auto& th : threads) th.join();
  const double elapsed =
      std::chrono::duration<double>(clock_type::now() - start).count();

  SweepResult result;
  result.target_qps = qps;
  result.sent = total;
  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  for (std::size_t e : errors) result.errors += e;
  std::sort(all.begin(), all.end());
  result.achieved_qps =
      elapsed > 0 ? static_cast<double>(all.size()) / elapsed : 0;
  result.p50_ms = percentile(all, 0.50);
  result.p99_ms = percentile(all, 0.99);
  result.p999_ms = percentile(all, 0.999);
  return result;
}

// ---------------------------------------------------------------------------
// Smoke mode
// ---------------------------------------------------------------------------

int fail(const char* step, const Response& resp) {
  std::cerr << "SMOKE FAIL at " << step << ": status=" << resp.status
            << " body=" << resp.body << "\n";
  return 1;
}

int run_smoke(std::uint16_t port, const std::string& query, bool expect_429,
              bool kill_replica, bool do_shutdown) {
  Client client(port);
  if (!client.ok()) {
    std::cerr << "SMOKE FAIL: cannot connect to 127.0.0.1:" << port << "\n";
    return 1;
  }
  Response resp = client.request("GET", "/healthz");
  if (resp.status != 200) return fail("healthz", resp);

  resp = client.request("POST", "/session");
  if (resp.status != 201) return fail("session create", resp);
  const std::string token = find_string(resp.body, "session");

  // Ingest a handful of documents with read-your-writes. One document per
  // POST with wait=1: each flush empties the shard queues, so this leg
  // stays deterministic even against a daemon started with a tiny --queue
  // (the scripted-429 configuration).
  for (int i = 0; i < 8; ++i) {
    resp = client.request("POST", "/ingest?session=" + token + "&wait=1",
                          "smoke" + std::to_string(i) + "\t" + query +
                              " padding words\n");
    if (resp.status != 202) return fail("ingest", resp);
  }

  // Search + page three times through the session cursor.
  resp = client.request(
      "GET", "/search?session=" + token + "&q=" + encode(query) + "&top=3");
  if (resp.status != 200) return fail("search", resp);
  for (int page = 0; page < 2; ++page) {
    resp = client.request("GET", "/search?session=" + token + "&top=3");
    if (resp.status != 200) return fail("paging", resp);
  }

  resp = client.request("GET", "/search?q=" + encode(query) + "&labels=1");
  if (resp.status != 200) return fail("labels search", resp);

  resp = client.request("GET", "/stats");
  if (resp.status != 200) return fail("stats", resp);

  if (expect_429) {
    // The scripted 429: one bulk POST large enough that the routed shard's
    // bounded queue must refuse mid-body (the daemon is started with a tiny
    // --queue for this leg). Anything but 429 fails the smoke.
    std::string bulk;
    for (int i = 0; i < 400; ++i) {
      bulk += "bulk" + std::to_string(i) + "\t" + query + " flood\n";
    }
    resp = client.request("POST", "/ingest", bulk);
    if (resp.status != 429) return fail("scripted 429", resp);
    std::cout << "smoke: scripted 429 delivered (" << resp.body << ")\n";
  }

  if (kill_replica) {
    // Scripted failover: eject one replica of shard 0 and require the
    // daemon to keep serving — degraded but answering. Quorum must hold
    // (R = 3 keeps 2 of 3, the default majority), so acked ingest works
    // through the ejection; readmit replays the missed tail and /healthz
    // returns to "ok".
    resp = client.request("POST", "/replica/eject?shard=0&replica=1");
    if (resp.status != 200) return fail("replica eject", resp);
    resp = client.request("GET", "/healthz");
    if (resp.status != 200 || find_string(resp.body, "status") != "degraded") {
      return fail("degraded healthz", resp);
    }
    resp = client.request("GET", "/search?q=" + encode(query) + "&top=3");
    if (resp.status != 200) return fail("degraded search", resp);
    resp = client.request("POST", "/ingest?wait=1",
                          "failover\t" + query + " during ejection\n");
    if (resp.status != 202) return fail("degraded ingest", resp);
    resp = client.request("POST", "/replica/readmit?shard=0&replica=1");
    if (resp.status != 200) return fail("replica readmit", resp);
    resp = client.request("GET", "/healthz");
    if (resp.status != 200 || find_string(resp.body, "status") != "ok") {
      return fail("recovered healthz", resp);
    }
    std::cout << "smoke: replica kill survived — degraded /healthz, live "
                 "search + acked ingest, clean readmit\n";
  }

  resp = client.request("DELETE", "/session?session=" + token);
  if (resp.status != 200) return fail("session delete", resp);

  if (do_shutdown) {
    resp = client.request("POST", "/shutdown");
    if (resp.status != 200) return fail("shutdown", resp);
    if (!resp.closed) {
      std::cerr << "SMOKE FAIL: shutdown answer did not close\n";
      return 1;
    }
  }
  std::cout << "smoke: all scripted exchanges answered as expected\n";
  return 0;
}

// ---------------------------------------------------------------------------

struct Daemon {
  synth::SyntheticCorpus corpus;
  std::unique_ptr<core::ShardedIndex> index;
  std::unique_ptr<serve::HttpServer> server;
};

Daemon start_daemon(bool quick, std::size_t queue_capacity = 256,
                    std::size_t replicas = 1) {
  Daemon d;
  synth::CorpusSpec spec;
  spec.topics = quick ? 3 : 6;
  spec.concepts_per_topic = 6;
  spec.docs_per_topic = quick ? 20 : 60;
  spec.queries_per_topic = 4;
  spec.seed = 20260808;
  d.corpus = synth::generate_corpus(spec);

  core::ShardingOptions sopts;
  sopts.num_shards = 2;
  sopts.index.k = 16;
  sopts.replicas = replicas;
  sopts.concurrent.queue_capacity = queue_capacity;
  auto built = core::ShardedIndex::try_build(d.corpus.docs, sopts);
  if (!built.ok()) {
    std::cerr << "index build failed: " << built.status().to_string() << "\n";
    std::exit(1);
  }
  d.index = std::make_unique<core::ShardedIndex>(std::move(*built));
  serve::ServerOptions opts;
  opts.max_connections = 256;
  d.server = std::make_unique<serve::HttpServer>(*d.index, opts);
  if (Status s = d.server->start(); !s.ok()) {
    std::cerr << "server start failed: " << s.to_string() << "\n";
    std::exit(1);
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false, expect_429 = false, kill_replica = false,
       do_shutdown = false;
  std::uint16_t port = 0;
  std::size_t connections = 8;
  double seconds = 2.0;
  std::vector<double> qps_levels;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    else if (arg == "--expect-429") expect_429 = true;
    else if (arg == "--kill-replica") kill_replica = true;
    else if (arg == "--shutdown") do_shutdown = true;
    else if (arg == "--port" && i + 1 < argc)
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    else if (arg == "--connections" && i + 1 < argc)
      connections = static_cast<std::size_t>(std::atoi(argv[++i]));
    else if (arg == "--seconds" && i + 1 < argc)
      seconds = std::atof(argv[++i]);
    else if (arg == "--qps" && i + 1 < argc) {
      const char* p = argv[++i];
      while (*p) {
        qps_levels.push_back(std::strtod(p, const_cast<char**>(&p)));
        if (*p == ',') ++p;
      }
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }

  const bool quick = lsi::bench::quick_mode();

  if (smoke) {
    // External daemon (--port) or a private in-process one.
    if (port != 0) {
      return run_smoke(port, "information retrieval access", expect_429,
                       kill_replica, do_shutdown);
    }
    // A scripted 429 needs shard queues tiny enough for one bulk POST to
    // overflow them deterministically; a scripted replica kill needs
    // replicas to kill.
    Daemon d = start_daemon(/*quick=*/true, expect_429 ? 2 : 256,
                            kill_replica ? 3 : 1);
    const int rc = run_smoke(d.server->port(), d.corpus.queries.front().text,
                             expect_429, kill_replica, do_shutdown);
    d.server->drain();  // no-op when the scripted /shutdown already drained
    d.index->shutdown();
    return rc;
  }

  lsi::bench::banner("the serving-layer load test",
                     "Open-loop qps sweep against the HTTP query daemon");
  lsi::bench::StatsSession stats("serving", /*install=*/false);

  Daemon d = start_daemon(quick);
  if (qps_levels.empty()) {
    qps_levels = quick ? std::vector<double>{500.0}
                       : std::vector<double>{2000.0, 5000.0, 11000.0, 14000.0};
  }
  if (quick) seconds = std::min(seconds, 0.5);

  // The query mix: every synthetic query, sessionless, top-5.
  std::vector<std::string> targets;
  for (const auto& q : d.corpus.queries) {
    targets.push_back("/search?q=" + encode(q.text) + "&top=5");
  }

  // Unrecorded warm-up: fault in code paths, spin up the scatter pool, and
  // let the allocator reach steady state before anything is measured.
  (void)run_level(d.server->port(), targets, quick ? 200.0 : 2000.0,
                  quick ? 0.1 : 0.5, connections);

  std::printf("%10s %12s %9s %9s %9s %8s %7s\n", "target", "achieved",
              "p50(ms)", "p99(ms)", "p999(ms)", "sent", "errors");
  // The acceptance gate (full mode): SOME level must sustain >= 10k q/s
  // with p99 <= 5 ms, and the whole sweep must answer with a zero error
  // budget (no dropped / non-2xx requests — reads never draw 429s).
  bool sustained_10k = false;
  bool zero_errors = true;
  for (double qps : qps_levels) {
    const SweepResult r =
        run_level(d.server->port(), targets, qps, seconds, connections);
    std::printf("%10.0f %12.1f %9.3f %9.3f %9.3f %8zu %7zu\n", r.target_qps,
                r.achieved_qps, r.p50_ms, r.p99_ms, r.p999_ms, r.sent,
                r.errors);
    const std::string prefix = "qps" + std::to_string(static_cast<int>(qps));
    stats.param(prefix + "_achieved", r.achieved_qps);
    stats.param(prefix + "_p50_ms", r.p50_ms);
    stats.param(prefix + "_p99_ms", r.p99_ms);
    stats.param(prefix + "_p999_ms", r.p999_ms);
    stats.param(prefix + "_errors", static_cast<double>(r.errors));
    if (r.achieved_qps >= 10000.0 && r.p99_ms <= 5.0 && r.errors == 0) {
      sustained_10k = true;
    }
    if (r.errors != 0) zero_errors = false;
  }
  const bool gate_pass = sustained_10k && zero_errors;
  stats.param("gate_pass", gate_pass ? 1.0 : 0.0);
  stats.param("connections", static_cast<double>(connections));
  stats.param("seconds_per_level", seconds);

  const serve::HttpServer::Stats ss = d.server->stats();
  std::printf("\nserver ledger: %llu requests, %llu 2xx, %llu 4xx, %llu 5xx\n",
              static_cast<unsigned long long>(ss.requests),
              static_cast<unsigned long long>(ss.responses_2xx),
              static_cast<unsigned long long>(ss.responses_4xx),
              static_cast<unsigned long long>(ss.responses_5xx));
  d.server->drain();
  d.index->shutdown();

  if (!quick && !gate_pass) {
    std::cerr << "\nGATE FAIL: 10k q/s @ p99<=5ms with zero errors not met\n";
    return 1;
  }
  std::cout << (quick ? "\nquick mode: sweep complete (gate skipped)\n"
                      : "\nGATE PASS\n");
  return 0;
}
