// Section 5.1, the underlying evaluation protocol: full precision-recall
// curves for LSI vs. the SMART keyword vector model, with paired
// significance tests on the per-query average precision — "LSI performs
// best relative to standard vector methods ... at high levels of recall".

#include <iostream>

#include "baseline/vector_model.hpp"
#include "bench_common.hpp"
#include "eval/metrics.hpp"
#include "eval/significance.hpp"
#include "lsi/lsi_index.hpp"
#include "synth/corpus.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("pr_curves");
  bench::banner("Section 5.1 (precision-recall curves)",
                "11-point interpolated PR curves, LSI vs SMART, with a "
                "paired randomization\ntest on per-query average "
                "precision.");

  synth::CorpusSpec spec;
  spec.topics = 8;
  spec.concepts_per_topic = 10;
  spec.shared_concepts = 20;
  spec.docs_per_topic = 25;
  spec.mean_doc_len = 30;
  spec.general_prob = 0.4;
  spec.own_topic_prob = 0.7;
  spec.query_len = 4;
  spec.polysemy_prob = 0.1;
  spec.queries_per_topic = 8;
  spec.query_offform_prob = 0.6;
  spec.seed = 2500;
  auto corpus = synth::generate_corpus(spec);

  core::IndexOptions opts;
  opts.scheme = weighting::kLogEntropy;
  opts.k = 50;
  auto index = core::LsiIndex::try_build(corpus.docs, opts).value();
  baseline::VectorSpaceModel vsm(index.weighted_matrix());

  std::vector<std::vector<double>> lsi_curves, smart_curves;
  std::vector<double> lsi_ap, smart_ap;
  for (const auto& q : corpus.queries) {
    std::vector<la::index_t> lsi_ranked, smart_ranked;
    for (const auto& r : index.query(q.text)) lsi_ranked.push_back(r.doc);
    for (const auto& r : vsm.rank(index.weighted_term_vector(q.text))) {
      smart_ranked.push_back(r.doc);
    }
    lsi_curves.push_back(eval::precision_recall_curve(lsi_ranked, q.relevant));
    smart_curves.push_back(
        eval::precision_recall_curve(smart_ranked, q.relevant));
    lsi_ap.push_back(eval::average_precision(lsi_ranked, q.relevant));
    smart_ap.push_back(eval::average_precision(smart_ranked, q.relevant));
  }
  const auto lsi_curve = eval::mean_curve(lsi_curves);
  const auto smart_curve = eval::mean_curve(smart_curves);

  util::TextTable table({"recall", "SMART precision", "LSI precision",
                         "LSI advantage"});
  for (int level = 0; level <= 10; ++level) {
    const double s = smart_curve[level];
    const double l = lsi_curve[level];
    table.add_row({util::fmt(level / 10.0, 1), util::fmt(s, 3),
                   util::fmt(l, 3),
                   util::fmt_pct(s > 0 ? l / s - 1.0 : 0.0)});
  }
  table.print(std::cout,
              "Mean 11-point interpolated precision over " +
                  std::to_string(corpus.queries.size()) + " queries:");

  const auto cmp = eval::compare_systems(lsi_ap, smart_ap);
  std::cout << "\nmean AP: LSI " << util::fmt(cmp.mean_a, 3) << "  SMART "
            << util::fmt(cmp.mean_b, 3) << "  (difference "
            << util::fmt(cmp.mean_difference, 3) << ")\n"
            << "per-query wins: LSI " << cmp.wins_a << " / SMART "
            << cmp.wins_b << " / ties " << cmp.ties << "\n"
            << "paired randomization p = "
            << util::fmt(cmp.randomization_p, 4)
            << ", sign test p = " << util::fmt(cmp.sign_test_p, 4) << "\n\n"
            << "Shape to verify: LSI's advantage widens toward the "
               "high-recall end of the\ncurve (the paper's claim), and the "
               "AP difference is statistically solid.\n";
  return 0;
}
