// Figure 8: recomputing the SVD of the reconstructed 18 x 16 term-document
// matrix (topics M1..M16). The new topics redefine the latent structure —
// in particular {M13, M14, M15} now forms a well-defined cluster.

#include <iostream>

#include "bench_common.hpp"
#include "util/ascii_plot.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("fig8_recompute");
  bench::banner("Figure 8",
                "Recomputed SVD of the 18 x 16 matrix (M15, M16 added).");

  const auto full =
      data::table3_counts().with_appended_cols(data::update_document_columns());
  auto space = core::try_build_semantic_space(full, 2).value();
  core::align_signs_to(space, data::figure5_u2());

  util::AsciiScatter plot(100, 32);
  for (la::index_t i = 0; i < 18; ++i) {
    const auto c = space.term_coords(i);
    plot.add(c[0], c[1], data::table3_terms()[i]);
  }
  for (la::index_t j = 0; j < 16; ++j) {
    const auto c = space.doc_coords(j);
    plot.add(c[0], c[1], bench::med_label(j));
  }
  std::cout << plot.render() << '\n';

  std::cout << "singular values: (" << util::fmt(space.sigma[0]) << ", "
            << util::fmt(space.sigma[1]) << ")\n\n";

  const double m13_m15 = core::document_similarity(space, 12, 14);
  const double m14_m15 = core::document_similarity(space, 13, 14);
  std::cout << "rats cluster: cos(M13, M15) = " << util::fmt(m13_m15, 3)
            << "   cos(M14, M15) = " << util::fmt(m14_m15, 3) << "\n"
            << "paper's claim: recomputing forms the {M13, M14, M15} "
               "cluster -> "
            << ((m13_m15 > 0.9 && m14_m15 > 0.9) ? "confirmed"
                                                 : "NOT confirmed")
            << "\n";
  return 0;
}
