// Table 4: documents returned for the query "age blood abnormalities" at
// cosine >= 0.40 with k = 2, 4 and 8 factors, printed beside the paper's
// published lists.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("table4_factors");
  bench::banner("Table 4",
                "Returned documents (cosine >= .40) for k = 2, 4, 8 "
                "factors.");

  for (int k : {2, 4, 8}) {
    auto space = bench::paper_space(k);
    core::QueryOptions opts;
    opts.min_cosine = 0.40;
    auto ranked = core::retrieve(space, bench::paper_query(), opts);
    const auto& paper = data::table4_ranking(k);

    util::TextTable table({"rank", "ours", "cos", "paper", "cos"});
    const std::size_t rows = std::max(ranked.size(), paper.size());
    for (std::size_t i = 0; i < rows; ++i) {
      std::vector<std::string> row = {std::to_string(i + 1)};
      if (i < ranked.size()) {
        row.push_back(bench::med_label(ranked[i].doc));
        row.push_back(util::fmt(ranked[i].cosine, 2));
      } else {
        row.push_back("-");
        row.push_back("");
      }
      if (i < paper.size()) {
        row.push_back(paper[i].label);
        row.push_back(util::fmt(paper[i].cosine, 2));
      } else {
        row.push_back("-");
        row.push_back("");
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout, "k = " + std::to_string(k) + ":");
    std::cout << "returned: " << ranked.size() << " docs (paper: "
              << paper.size() << ")\n\n";
  }

  std::cout << "Shape checks the paper makes with this table:\n"
               "  * the returned set shrinks as k grows (A_k reconstructs A "
               "more exactly);\n"
               "  * cosine values for the same document vary substantially "
               "with k, so the\n    cosine is a rank-ordering device, not "
               "an absolute relevance measure;\n"
               "  * {M8, M12, M10} survive at k = 8.\n";
  return 0;
}
