// Replicated serving: read throughput vs replicas-per-shard, and failover
// cost under a mid-run replica kill (docs/REPLICATION.md).
//
// The same collection is built twice — 2 shards x 1 replica and 2 shards x
// 3 replicas, each replica with a single-threaded private read executor
// (ReplicaOptions::query_threads = 1) — and hammered by the same read-heavy
// client mix (8 threads of batched scatter-gather queries over a trickle of
// fold-ins). With R = 1 every client contends on the two per-shard
// executors; with R = 3 the round-robin reader policy spreads pinned views
// across six, so throughput must scale with healthy replica count: the full
// -mode gate requires >= 1.6x q/s from R = 1 to R = 3.
//
// Replication adds serving capacity, not per-query efficiency, so the
// scaling gate is meaningful only where the capacity can land: it runs
// when the host has at least as many cores as R = 3 read executors (6).
// On smaller hosts the ratio is still measured and reported, and a bound
// replaces the gate: extra replicas may cost coordination overhead but
// must never collapse read throughput (R = 3 >= 0.5x R = 1). The failover
// gate below is unconditional everywhere.
//
// The failover phase runs on the quiesced R = 3 index: expected rankings
// are precomputed once, then clients stream queries while one replica of
// every shard is ejected mid-run and later readmitted. Killing a replica
// may cost throughput, never correctness — every ranking produced before,
// during and after the fault must be byte-identical to the expected one
// (doc order and cosine bits), and no query may fail. Any mismatch fails
// the bench in both quick and full mode.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "lsi/lsi.hpp"
#include "obs/trace.hpp"
#include "synth/corpus.hpp"
#include "util/timer.hpp"

namespace {

using namespace lsi;

// Same serving-cost regime as bench_sharded_retrieval: n >> m, no synonymy,
// dominant-form queries — per-query time is dominated by the per-shard
// score pass the replica executors parallelize.
synth::SyntheticCorpus bench_corpus(bool quick) {
  synth::CorpusSpec spec;
  spec.topics = quick ? 16 : 72;
  spec.concepts_per_topic = 3;
  spec.forms_per_concept = 1;
  spec.shared_concepts = 10;
  spec.docs_per_topic = quick ? 8 : 10;  // 128 docs quick, 720 full
  spec.mean_doc_len = 50.0;
  spec.general_prob = 0.15;
  spec.polysemy_prob = 0.0;
  spec.queries_per_topic = quick ? 2 : 1;
  spec.query_len = 3;
  spec.query_offform_prob = 0.0;
  spec.seed = 20817;
  return synth::generate_corpus(spec);
}

core::ShardedIndex build_index(const text::Collection& docs,
                               std::size_t replicas, bool quick) {
  core::ShardingOptions sopts;
  sopts.num_shards = 2;
  sopts.index.k = quick ? 16 : 48;
  sopts.replicas = replicas;
  sopts.query_threads = 1;  // one private read executor per replica
  sopts.concurrent.queue_capacity = 256;
  auto built = core::ShardedIndex::try_build(docs, sopts);
  if (!built.ok()) {
    std::cerr << "build (R=" << replicas
              << ") failed: " << built.status().to_string() << "\n";
    std::exit(1);
  }
  return std::move(*built);
}

struct PhaseResult {
  double qps = 0.0;
  std::uint64_t queries = 0;
};

/// The read-heavy mix: `threads` clients each running `iters` batched
/// scatter passes (fresh pinned view per pass, so the reader policy picks a
/// replica every time), over a trickle of `ingest` fold-ins from one writer.
PhaseResult run_phase(core::ShardedIndex& index,
                      const std::vector<std::vector<std::string>>& batches,
                      std::size_t threads, std::size_t iters,
                      const text::Collection& ingest) {
  core::SearchOptions qopts;
  qopts.z = 10;
  std::atomic<std::uint64_t> queries{0};
  std::atomic<bool> stop_writer{false};

  util::WallTimer timer;
  std::thread writer([&] {
    for (const auto& doc : ingest) {
      if (stop_writer.load(std::memory_order_relaxed)) break;
      if (!index.add(doc).ok()) break;
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      for (std::size_t i = 0; i < iters; ++i) {
        const auto& block = batches[(t + i) % batches.size()];
        const core::ShardedSnapshot snap = index.snapshot();
        const auto ranked = snap.rank_batch(block, qopts);
        if (ranked.size() != block.size()) {
          std::cerr << "short batch result\n";
          std::exit(1);
        }
        queries.fetch_add(block.size(), std::memory_order_relaxed);
      }
    });
  }
  for (auto& c : clients) c.join();
  const double wall = timer.seconds();
  stop_writer.store(true, std::memory_order_relaxed);
  writer.join();
  index.flush();

  PhaseResult out;
  out.queries = queries.load();
  out.qps = static_cast<double>(out.queries) / wall;
  return out;
}

bool bit_identical(const std::vector<core::ScoredDoc>& a,
                   const std::vector<core::ScoredDoc>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].doc != b[i].doc || a[i].cosine != b[i].cosine) return false;
  }
  return true;
}

}  // namespace

int main() {
  bench::banner("replicated shard serving with failover",
                "Read q/s at R=1 vs R=3 (per-replica executors), and "
                "byte-stability of rankings across a mid-run replica kill");

  const bool quick = bench::quick_mode();
  bench::StatsSession stats("replicated_serving", /*install=*/false);

  const auto corpus = bench_corpus(quick);
  // Head builds the index; the tail is the concurrent fold-in trickle.
  const std::size_t head = corpus.docs.size() - (quick ? 16 : 64);
  const text::Collection base_docs(corpus.docs.begin(),
                                   corpus.docs.begin() + head);
  const text::Collection tail_docs(corpus.docs.begin() + head,
                                   corpus.docs.end());

  std::vector<std::string> texts;
  for (const auto& q : corpus.queries) texts.push_back(q.text);
  const std::size_t kBatch = 4;
  std::vector<std::vector<std::string>> batches;
  for (std::size_t lo = 0; lo < texts.size(); lo += kBatch) {
    batches.emplace_back(texts.begin() + lo,
                         texts.begin() + std::min(texts.size(), lo + kBatch));
  }

  const std::size_t kClients = quick ? 4 : 8;
  const std::size_t kIters = quick ? 24 : 120;
  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  // R = 3 runs six single-threaded read executors; the scaling gate needs
  // at least that many cores to have capacity worth measuring.
  const bool scaling_gated = cores >= 6;
  stats.param("cores", static_cast<double>(cores));
  stats.param("scaling_gated", scaling_gated ? 1.0 : 0.0);
  stats.param("n_docs", static_cast<double>(base_docs.size()));
  stats.param("ingest_docs", static_cast<double>(tail_docs.size()));
  stats.param("clients", static_cast<double>(kClients));
  stats.param("iters_per_client", static_cast<double>(kIters));
  stats.param("quick", quick ? 1.0 : 0.0);

  util::TextTable table(
      {"replicas", "read execs", "queries", "q/s", "speedup"});

  // --- Phase A/B: R = 1 vs R = 3 under the identical read-heavy mix -------
  double qps_r1 = 0.0, qps_r3 = 0.0;
  core::ShardedIndex index_r3 = build_index(base_docs, 3, quick);
  {
    core::ShardedIndex index_r1 = build_index(base_docs, 1, quick);
    const PhaseResult a = run_phase(index_r1, batches, kClients, kIters,
                                    tail_docs);
    qps_r1 = a.qps;
    table.add_row({"1", "2", util::fmt_int(static_cast<long long>(a.queries)),
                   util::fmt(a.qps, 0), "1.00"});
    index_r1.shutdown();
  }
  const PhaseResult b =
      run_phase(index_r3, batches, kClients, kIters, tail_docs);
  qps_r3 = b.qps;
  const double speedup = qps_r1 > 0.0 ? qps_r3 / qps_r1 : 0.0;
  table.add_row({"3", "6", util::fmt_int(static_cast<long long>(b.queries)),
                 util::fmt(b.qps, 0), util::fmt(speedup, 2)});
  table.print(std::cout,
              "Read-heavy mix (" + std::to_string(kClients) + " clients, " +
                  std::to_string(tail_docs.size()) +
                  " trickled fold-ins) on 2 shards");
  stats.param("qps_r1", qps_r1);
  stats.param("qps_r3", qps_r3);
  stats.param("speedup_r3_vs_r1", speedup);

  // --- Phase C: kill one replica per shard mid-run -------------------------
  // Quiesced index: every replica of a shard answers byte-identically, so a
  // single precomputed expectation covers every possible pinned view.
  core::SearchOptions qopts;
  qopts.z = 10;
  std::vector<std::vector<core::ScoredDoc>> expected;
  {
    const core::ShardedSnapshot snap = index_r3.snapshot();
    auto ranked = snap.rank_batch(texts, qopts);
    expected = std::move(ranked);
  }

  const std::size_t kFailoverIters = quick ? 48 : 240;
  std::atomic<std::uint64_t> done{0};
  std::atomic<std::uint64_t> mismatches{0};
  util::WallTimer timer;
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (std::size_t i = 0; i < kFailoverIters; ++i) {
        const std::size_t q = (t * kFailoverIters + i) % texts.size();
        const core::ShardedSnapshot snap = index_r3.snapshot();
        const auto ranked = snap.rank_batch({texts[q]}, qopts);
        if (ranked.size() != 1 || !bit_identical(ranked[0], expected[q])) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  const std::uint64_t total =
      static_cast<std::uint64_t>(kClients) * kFailoverIters;
  auto wait_done = [&](std::uint64_t n) {
    while (done.load(std::memory_order_relaxed) < n) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  };
  // One third in: kill one replica of every shard. Two thirds in: readmit
  // (replays an empty tail — the index is quiesced — and rejoins).
  wait_done(total / 3);
  {
    obs::ScopedSink scoped(&stats.sink());  // capture replica.* counters
    for (std::size_t s = 0; s < index_r3.num_shards(); ++s) {
      const Status st = index_r3.eject_replica(s, 1);
      if (!st.ok()) {
        std::cerr << "eject failed: " << st.to_string() << "\n";
        return 1;
      }
    }
  }
  wait_done(2 * total / 3);
  {
    obs::ScopedSink scoped(&stats.sink());
    for (std::size_t s = 0; s < index_r3.num_shards(); ++s) {
      const Status st = index_r3.readmit_replica(s, 1);
      if (!st.ok()) {
        std::cerr << "readmit failed: " << st.to_string() << "\n";
        return 1;
      }
    }
  }
  for (auto& c : clients) c.join();
  const double failover_wall = timer.seconds();
  const double failover_qps = static_cast<double>(total) / failover_wall;

  std::cout << "\nFailover phase: " << total << " queries across "
            << "eject + readmit of one replica per shard, "
            << util::fmt(failover_qps, 0) << " q/s, "
            << mismatches.load() << " ranking mismatches\n";
  stats.param("failover_queries", static_cast<double>(total));
  stats.param("failover_qps", failover_qps);
  stats.param("failover_mismatches",
              static_cast<double>(mismatches.load()));
  index_r3.shutdown();

  // --- Gates ---------------------------------------------------------------
  bool failed = false;
  if (mismatches.load() != 0) {
    std::cerr << "\nFAIL: " << mismatches.load()
              << " rankings diverged from the precomputed expectation "
                 "across the replica kill (must be byte-identical)\n";
    failed = true;
  }
  if (!quick && scaling_gated && speedup < 1.6) {
    std::cerr << "\nFAIL: expected >= 1.6x q/s from R=1 to R=3 on the "
                 "read-heavy mix, got "
              << util::fmt(speedup, 2) << "x\n";
    failed = true;
  }
  if (!quick && !scaling_gated && speedup < 0.5) {
    std::cerr << "\nFAIL: R=3 collapsed read throughput to "
              << util::fmt(speedup, 2)
              << "x of R=1 (replication overhead bound is 0.5x)\n";
    failed = true;
  }
  if (failed) return 1;
  if (!quick) {
    if (scaling_gated) {
      std::cout << "\nGates: R=3 q/s = " << util::fmt(speedup, 2)
                << "x R=1 (>= 1.6x required); failover mismatches = 0.\n";
    } else {
      std::cout << "\nGates: scaling gate skipped (" << cores
                << " core(s) < 6 read executors); R=3 q/s = "
                << util::fmt(speedup, 2)
                << "x R=1 (>= 0.5x overhead bound); failover mismatches = "
                   "0.\n";
    }
  }
  return 0;
}
