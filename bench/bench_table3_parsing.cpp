// Table 3: the 18 x 14 term-document matrix built by the parser from the
// raw Table 2 topic texts, compared cell by cell against the printed table.

#include <iostream>

#include "bench_common.hpp"
#include "text/parser.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("table3_parsing");
  bench::banner("Table 3",
                "Term-document matrix parsed from the Table 2 topic texts "
                "(stop words removed,\ndf >= 2, plural folding) vs. the "
                "printed 18 x 14 matrix.");

  text::ParserOptions opts;
  opts.min_document_frequency = 2;
  opts.fold_plurals = true;
  const auto tdm = text::build_term_document_matrix(data::med_topics(), opts);
  const auto& printed = data::table3_counts();

  std::vector<std::string> header = {"Terms"};
  for (int j = 1; j <= 14; ++j) header.push_back(bench::med_label(j - 1));
  util::TextTable table(header);
  int diffs = 0;
  for (la::index_t i = 0; i < tdm.vocabulary.size(); ++i) {
    std::vector<std::string> row = {tdm.vocabulary.term(i)};
    for (la::index_t j = 0; j < 14; ++j) {
      const int parsed = static_cast<int>(tdm.counts.at(i, j));
      const int paper = static_cast<int>(printed.at(i, j));
      if (parsed == paper) {
        row.push_back(std::to_string(parsed));
      } else {
        row.push_back(std::to_string(parsed) + "*");
        ++diffs;
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout, "Parsed term-document matrix ('*' = differs from "
                         "the printed Table 3):");

  std::cout << "\nterms parsed: " << tdm.vocabulary.size()
            << " (paper: 18)\n"
            << "cells differing from the printed table: " << diffs << "\n\n"
            << "The two starred cells are the paper's own typo: the topic "
               "text puts 'respect'\nin M9 ('study of christmas disease "
               "with respect to generation and culture')\nwhile the printed "
               "Table 3 marks M8. The parser follows the text.\n";
  return diffs == 2 ? 0 : 1;
}
