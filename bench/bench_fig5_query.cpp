// Figure 5: the printed U_2, Sigma_2 and derived coordinates of the query
// "age blood abnormalities", vs. our computed values.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("fig5_query");
  bench::banner("Figure 5",
                "Derived coordinates for the query 'age blood "
                "abnormalities' (k = 2).");

  auto space = bench::paper_space(2);
  const auto& paper_u2 = data::figure5_u2();
  const auto& terms = data::table3_terms();

  util::TextTable table({"term", "U2[,1] ours", "U2[,1] paper",
                         "U2[,2] ours", "U2[,2] paper", "max|diff|"});
  double max_diff = 0.0;
  for (la::index_t i = 0; i < 18; ++i) {
    const double d0 = std::fabs(space.u(i, 0) - paper_u2(i, 0));
    const double d1 = std::fabs(space.u(i, 1) - paper_u2(i, 1));
    max_diff = std::max({max_diff, d0, d1});
    table.add_row({terms[i], util::fmt(space.u(i, 0)),
                   util::fmt(paper_u2(i, 0)), util::fmt(space.u(i, 1)),
                   util::fmt(paper_u2(i, 1)), util::fmt(std::max(d0, d1))});
  }
  table.print(std::cout, "Term vectors U_2:");

  std::cout << "\nsingular values: ours (" << util::fmt(space.sigma[0])
            << ", " << util::fmt(space.sigma[1]) << ")   paper ("
            << util::fmt(data::figure5_sigma()[0]) << ", "
            << util::fmt(data::figure5_sigma()[1]) << ")\n";

  const auto q_hat = core::project_query(space, bench::paper_query());
  std::cout << "query q^T U_2 S_2^-1: ours (" << util::fmt(q_hat[0]) << ", "
            << util::fmt(q_hat[1]) << ")   paper ("
            << util::fmt(data::figure5_query_coords()[0]) << ", "
            << util::fmt(data::figure5_query_coords()[1]) << ")\n"
            << "max |U_2 - paper|: " << util::fmt(max_diff) << "\n\n"
            << "Shape check: identical sign pattern and cluster structure; "
               "the small residual\n(<= ~0.05 per entry) traces to the "
               "paper's own Table 3 / example drift documented\nin "
               "EXPERIMENTS.md.\n";
  return max_diff < 0.1 ? 0 : 1;
}
