// Section 5.4 (modeling human memory): the TOEFL-style synonym test. Paper:
// LSI term-term similarity scored 64% vs. 33% for word-overlap methods
// (25% = chance on 4 alternatives; average human test-taker: 64%).

#include <iostream>

#include "bench_common.hpp"
#include "lsi/lsi_index.hpp"
#include "synth/corpus.hpp"
#include "synth/synonym_test.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("synonym_toefl");
  bench::banner("Section 5.4 (TOEFL synonym test)",
                "LSI term-term similarity vs. word-overlap on generated "
                "synonym items.");

  synth::CorpusSpec spec;
  spec.topics = 12;
  spec.concepts_per_topic = 10;
  spec.shared_concepts = 30;
  spec.forms_per_concept = 3;
  spec.docs_per_topic = 30;
  spec.mean_doc_len = 40;
  spec.form_zipf = 1.1;  // rarer forms still need enough occurrences
  spec.polysemy_prob = 0.05;
  // Authors use one form per concept within a document, so synonyms almost
  // never co-occur in a document — overlap methods are left guessing.
  spec.consistent_forms_per_doc = true;
  spec.seed = 1100;
  auto corpus = synth::generate_corpus(spec);
  auto items = synth::make_synonym_test(corpus, 80, 7);

  core::IndexOptions opts;
  opts.scheme = weighting::kLogEntropy;
  opts.k = 60;
  auto index = core::LsiIndex::try_build(corpus.docs, opts).value();
  const auto& vocab = index.vocabulary();

  // Word-overlap baseline: candidates scored by the number of documents in
  // which they co-occur with the stem.
  const auto& counts = index.raw_counts();
  auto cooccur = [&](la::index_t a, la::index_t b) {
    int shared = 0;
    for (la::index_t j = 0; j < counts.cols(); ++j) {
      if (counts.at(a, j) > 0 && counts.at(b, j) > 0) ++shared;
    }
    return shared;
  };

  int answered = 0, lsi_correct = 0, overlap_correct = 0;
  for (const auto& item : items) {
    const auto stem = vocab.find(item.stem);
    if (!stem) continue;
    bool all_present = true;
    std::vector<la::index_t> choice_ids;
    for (const auto& c : item.choices) {
      const auto id = vocab.find(c);
      all_present = all_present && id.has_value();
      if (id) choice_ids.push_back(*id);
    }
    if (!all_present) continue;
    ++answered;

    // LSI pick: max term-term cosine.
    std::size_t lsi_pick = 0;
    double best_cos = -2.0;
    for (std::size_t i = 0; i < choice_ids.size(); ++i) {
      const double cos =
          core::term_similarity(index.space(), *stem, choice_ids[i]);
      if (cos > best_cos) {
        best_cos = cos;
        lsi_pick = i;
      }
    }
    lsi_correct += (lsi_pick == item.correct);

    // Word-overlap pick: max document co-occurrence (ties -> first).
    std::size_t ov_pick = 0;
    int best_shared = -1;
    for (std::size_t i = 0; i < choice_ids.size(); ++i) {
      const int shared = cooccur(*stem, choice_ids[i]);
      if (shared > best_shared) {
        best_shared = shared;
        ov_pick = i;
      }
    }
    overlap_correct += (ov_pick == item.correct);
  }

  util::TextTable table({"method", "correct", "of", "accuracy"});
  table.add_row({"LSI (k = 60 term cosine)", std::to_string(lsi_correct),
                 std::to_string(answered),
                 util::fmt_pct(answered ? double(lsi_correct) / answered : 0)});
  table.add_row({"word overlap (doc co-occurrence)",
                 std::to_string(overlap_correct), std::to_string(answered),
                 util::fmt_pct(
                     answered ? double(overlap_correct) / answered : 0)});
  table.add_row({"chance", "-", "-", "25.0%"});
  table.print(std::cout, "Synonym test results:");

  std::cout << "\npaper: LSI 64%, word-overlap 33%, chance 25%, average "
               "human test-taker 64%.\nShape to verify: LSI well above "
               "word-overlap; both above chance. (Synonyms by\nconstruction "
               "rarely co-occur in a document — they are alternative "
               "voicings of one\nconcept — which is exactly why overlap "
               "methods fail and dimension reduction works.)\n";
  return 0;
}
