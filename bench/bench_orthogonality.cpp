// Section 4.3: loss of orthogonality under folding-in, and its correlation
// with retrieval degradation — the experiment the paper poses as future
// work ("monitoring the loss of orthogonality associated with folding-in
// and correlating it to the number of relevant documents returned").

#include <iostream>

#include "bench_common.hpp"
#include "eval/metrics.hpp"
#include "lsi/folding.hpp"
#include "lsi/lsi_index.hpp"
#include "lsi/update.hpp"
#include "synth/corpus.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("orthogonality");
  bench::banner("Section 4.3",
                "Orthogonality loss ||V^T V - I||_2 vs. number of folded-in "
                "documents,\ncorrelated with retrieval quality (the paper's "
                "proposed future experiment).");

  synth::CorpusSpec spec;
  spec.topics = 6;
  spec.concepts_per_topic = 10;
  spec.docs_per_topic = 40;
  spec.own_topic_prob = 0.6;
  spec.general_prob = 0.4;
  spec.polysemy_prob = 0.1;
  spec.queries_per_topic = 4;
  spec.query_len = 3;
  spec.query_offform_prob = 0.6;
  spec.seed = 314;
  auto corpus = synth::generate_corpus(spec);

  // Interleaved split: train on every other document (all topics present),
  // stream the rest in batches.
  text::Collection train;
  std::vector<std::size_t> stream_ids;
  for (std::size_t d = 0; d < corpus.docs.size(); ++d) {
    if (d % 2 == 0) {
      train.push_back(corpus.docs[d]);
    } else {
      stream_ids.push_back(d);
    }
  }

  core::IndexOptions opts;
  opts.k = 25;
  auto folded = core::LsiIndex::try_build(train, opts).value();
  auto updated = core::LsiIndex::try_build(train, opts).value();

  // index position -> original corpus id (grows as documents stream in).
  std::vector<std::size_t> position_to_id;
  for (std::size_t d = 0; d < corpus.docs.size(); ++d) {
    if (d % 2 == 0) position_to_id.push_back(d);
  }

  auto mean_ap = [&](const core::LsiIndex& index) {
    std::vector<double> scores;
    for (const auto& q : corpus.queries) {
      std::vector<la::index_t> ranked;
      eval::DocSet present_relevant;
      for (const auto& r : index.query(q.text)) {
        const std::size_t id = position_to_id[r.doc];
        ranked.push_back(id);
        if (q.relevant.count(id)) present_relevant.insert(id);
      }
      if (present_relevant.empty()) continue;
      scores.push_back(eval::average_precision(ranked, present_relevant));
    }
    return eval::mean(scores);
  };

  // The measure the paper proposes: relevant documents returned *within a
  // cosine threshold*. Folding-in distorts absolute cosines (through the
  // non-orthogonal axes) even where rank order survives.
  const double tau = 0.60;
  auto recall_at_tau = [&](const core::LsiIndex& index) {
    std::vector<double> scores;
    core::QueryOptions qopts;
    qopts.min_cosine = tau;
    for (const auto& q : corpus.queries) {
      std::size_t hits = 0, relevant_present = 0;
      for (std::size_t pos = 0; pos < position_to_id.size(); ++pos) {
        relevant_present += q.relevant.count(position_to_id[pos]);
      }
      for (const auto& r : index.query(q.text, qopts)) {
        hits += q.relevant.count(position_to_id[r.doc]);
      }
      if (relevant_present > 0) {
        scores.push_back(static_cast<double>(hits) / relevant_present);
      }
    }
    return eval::mean(scores);
  };

  util::TextTable table({"docs folded", "loss fold ||V'V-I||", "AP fold",
                         "R@cos.6 fold", "loss update", "AP update",
                         "R@cos.6 upd"});
  table.add_row({"0",
                 util::fmt(core::orthogonality_loss(folded.space().v), 6),
                 util::fmt(mean_ap(folded), 3),
                 util::fmt(recall_at_tau(folded), 3),
                 util::fmt(core::orthogonality_loss(updated.space().v), 6),
                 util::fmt(mean_ap(updated), 3),
                 util::fmt(recall_at_tau(updated), 3)});

  const std::size_t batch = 24;
  std::size_t added = 0;
  for (std::size_t start = 0; start < stream_ids.size(); start += batch) {
    const std::size_t end = std::min(start + batch, stream_ids.size());
    text::Collection chunk;
    for (std::size_t i = start; i < end; ++i) {
      chunk.push_back(corpus.docs[stream_ids[i]]);
      position_to_id.push_back(stream_ids[i]);
    }
    folded.add_documents(chunk, core::AddMethod::kFoldIn);
    updated.add_documents(chunk, core::AddMethod::kSvdUpdate);
    added += chunk.size();
    table.add_row({std::to_string(added),
                   util::fmt(core::orthogonality_loss(folded.space().v), 6),
                   util::fmt(mean_ap(folded), 3),
                   util::fmt(recall_at_tau(folded), 3),
                   util::fmt(core::orthogonality_loss(updated.space().v), 6),
                   util::fmt(mean_ap(updated), 3),
                   util::fmt(recall_at_tau(updated), 3)});
  }
  table.print(std::cout, "Streaming half the collection into the index:");

  std::cout << "\nShape to verify: folding-in's orthogonality loss grows "
               "monotonically with the\nnumber of folded documents while "
               "SVD-updating stays at machine precision.\n\nMeasured "
               "finding for the paper's open question (does the distortion "
               "hurt\nretrieval?): for a *stationary* document stream both "
               "methods place new\ndocuments through the same span(U_k) "
               "projection, so AP and threshold recall\ncoincide even as "
               "||V^T V - I|| grows — consistent with the paper's remark "
               "that\nthe difference 'is likely to depend on the number of "
               "new documents and terms\nrelative to the number in the "
               "original SVD'. The regime where they do diverge\n(small k, "
               "new term associations) is exactly the Table 5 example: see\n"
               "bench_fig7_folding vs bench_fig9_svdupdate.\n";
  return 0;
}
