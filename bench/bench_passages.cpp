// Section 5.4: "smaller, more topically coherent units of text (e.g.,
// paragraphs, sections) could be represented as well". Ablation: index
// whole documents vs their passages (best-passage aggregation) on a corpus
// of long, mixed-topic documents.

#include <iostream>

#include "bench_common.hpp"
#include "eval/metrics.hpp"
#include "lsi/lsi_index.hpp"
#include "synth/corpus.hpp"
#include "text/passages.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("passages");
  bench::banner("Section 5.4 (passage-level indexing)",
                "Whole-document vs passage indexing on long mixed-topic "
                "documents.");

  // Build long documents by concatenating 3 topical sections from
  // *different* topics; a document is relevant to a query if any section
  // is on the query's topic.
  synth::CorpusSpec spec;
  spec.topics = 8;
  spec.concepts_per_topic = 10;
  spec.shared_concepts = 20;
  spec.docs_per_topic = 36;  // sections, combined 3 per document below
  spec.mean_doc_len = 35;
  spec.own_topic_prob = 0.85;
  spec.queries_per_topic = 4;
  spec.query_len = 4;
  spec.query_offform_prob = 0.5;
  spec.seed = 2700;
  auto sections = synth::generate_corpus(spec);

  text::Collection long_docs;
  std::vector<std::vector<std::size_t>> doc_topics;  // topics per document
  for (std::size_t s = 0; s + 2 < sections.docs.size(); s += 3) {
    // Stride so the three sections come from different topics.
    const std::size_t a = s;
    const std::size_t b = (s + spec.docs_per_topic) % sections.docs.size();
    const std::size_t c =
        (s + 2 * spec.docs_per_topic) % sections.docs.size();
    long_docs.push_back({"L" + std::to_string(long_docs.size()),
                         sections.docs[a].body + "\n\n" +
                             sections.docs[b].body + "\n\n" +
                             sections.docs[c].body});
    doc_topics.push_back({sections.doc_topics[a], sections.doc_topics[b],
                          sections.doc_topics[c]});
  }

  core::IndexOptions opts;
  opts.scheme = weighting::kLogEntropy;
  opts.k = 40;
  auto whole_index = core::LsiIndex::try_build(long_docs, opts).value();

  auto pc = text::split_into_passages(long_docs);
  auto passage_index = core::LsiIndex::try_build(pc.passages, opts).value();

  std::vector<double> whole_ap, passage_ap;
  for (const auto& q : sections.queries) {
    eval::DocSet relevant;
    for (std::size_t d = 0; d < long_docs.size(); ++d) {
      for (std::size_t t : doc_topics[d]) {
        if (t == q.topic) relevant.insert(d);
      }
    }
    if (relevant.empty()) continue;

    std::vector<la::index_t> whole_ranked;
    for (const auto& r : whole_index.query(q.text)) {
      whole_ranked.push_back(r.doc);
    }
    whole_ap.push_back(
        eval::three_point_average_precision(whole_ranked, relevant));

    std::vector<std::pair<std::size_t, double>> passage_scores;
    for (const auto& r : passage_index.query(q.text)) {
      passage_scores.push_back({r.doc, r.cosine});
    }
    std::vector<la::index_t> agg_ranked;
    for (const auto& ps : text::aggregate_to_parents(pc, passage_scores)) {
      agg_ranked.push_back(ps.document);
    }
    passage_ap.push_back(
        eval::three_point_average_precision(agg_ranked, relevant));
  }

  const double whole = eval::mean(whole_ap);
  const double passage = eval::mean(passage_ap);
  util::TextTable table({"indexing unit", "units indexed", "mean AP"});
  table.add_row({"whole documents", std::to_string(long_docs.size()),
                 util::fmt(whole, 3)});
  table.add_row({"passages (best-passage aggregation)",
                 std::to_string(pc.passages.size()), util::fmt(passage, 3)});
  table.print(std::cout,
              std::to_string(long_docs.size()) +
                  " three-topic documents, " +
                  std::to_string(sections.queries.size()) + " queries:");

  std::cout << "\npassage vs whole-document: "
            << util::fmt_pct(whole > 0 ? passage / whole - 1.0 : 0.0)
            << "\nShape to verify: passage indexing wins on mixed-topic "
               "documents because a\ndocument's relevant section is no "
               "longer averaged away — the paper's point\nabout topically "
               "coherent units.\n";
  return 0;
}
