// Serving under concurrent ingestion (the Section 5.6 "real-time updating"
// scenario as a systems measurement): reader threads run queries against
// atomically-published snapshots while writer threads stream documents into
// a ConcurrentIndexer that folds, periodically consolidates via SVD-update,
// and republishes. Reports query throughput and tail latency alongside the
// writer-side ingest/consolidate/publish span histograms, and proves that
// queries complete *during* active consolidation (readers never block on
// the writer).
//
// Emits BENCH_concurrent_serving.json ("lsi.stats.v1"): the serving.query
// span carries the p50/p95/p99 query latency, concurrent.* spans the writer
// stages, and the params section the throughput/overlap numbers.

#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "lsi/concurrent.hpp"
#include "synth/corpus.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace lsi;

constexpr std::size_t kReaders = 4;
constexpr std::size_t kWriters = 2;

}  // namespace

int main() {
  bench::banner("serve-while-updating (Section 5.6)",
                "Query throughput and tail latency while writer threads "
                "fold in documents and consolidate via SVD-update");

  const bool quick = bench::quick_mode();
  bench::StatsSession stats("concurrent_serving", /*install=*/true);

  synth::CorpusSpec spec;
  spec.topics = 6;
  spec.concepts_per_topic = 8;
  spec.docs_per_topic = quick ? 30 : 120;
  spec.queries_per_topic = 4;
  spec.seed = 7;
  const auto corpus = synth::generate_corpus(spec);
  const std::size_t train = corpus.docs.size() / 3;
  const std::size_t stream = corpus.docs.size() - train;

  core::IndexOptions iopts;
  iopts.k = quick ? 32 : 48;
  text::Collection head(corpus.docs.begin(), corpus.docs.begin() + train);
  core::ConcurrentOptions copts;
  copts.queue_capacity = 32;
  // Manual consolidation policy: a maintenance thread consolidates on a
  // timer, so the SVD-update chews a sizable pending batch each time (long
  // enough a window that reader overlap is observable even on one CPU).
  copts.consolidate_every = 0;
  copts.max_batch = 8;
  core::ConcurrentIndexer indexer(
      core::LsiIndex::try_build(head, iopts).value(), copts);

  std::cout << "corpus: " << corpus.docs.size() << " docs (" << train
            << " base + " << stream << " streamed), k = " << iopts.k << ", "
            << kWriters << " writers, " << kReaders << " readers\n\n";

  // --- phase 1: serve while ingesting ------------------------------------
  std::atomic<bool> ingest_done{false};
  std::atomic<std::size_t> queries_total{0};
  std::atomic<std::size_t> queries_ok{0};
  std::atomic<std::size_t> during_consolidation{0};

  util::WallTimer wall;
  std::vector<std::thread> writers;
  const std::size_t per_writer = stream / kWriters;
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const std::size_t begin = train + w * per_writer;
      const std::size_t end =
          (w + 1 == kWriters) ? corpus.docs.size() : begin + per_writer;
      for (std::size_t d = begin; d < end; ++d) {
        if (!indexer.add(corpus.docs[d]).ok()) return;
      }
    });
  }

  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::size_t q = r;
      // Keep serving until ingestion finishes, then a short tail so late
      // consolidations are also measured under load.
      while (!ingest_done.load(std::memory_order_acquire)) {
        const bool overlapped_start = indexer.consolidating();
        auto snap = indexer.snapshot();
        std::vector<core::QueryResult> hits;
        {
          LSI_OBS_SPAN(span, "serving.query");
          hits = snap->query(corpus.queries[q % corpus.queries.size()].text);
        }
        queries_total.fetch_add(1, std::memory_order_relaxed);
        if (!hits.empty()) queries_ok.fetch_add(1, std::memory_order_relaxed);
        if (overlapped_start && indexer.consolidating()) {
          // This query ran start-to-finish inside a consolidation window:
          // direct evidence reads do not block on the SVD-update.
          during_consolidation.fetch_add(1, std::memory_order_relaxed);
        }
        q += kReaders;
      }
    });
  }

  std::thread maintenance([&] {
    while (!ingest_done.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      if (!indexer.consolidate().ok()) return;
    }
  });

  for (auto& t : writers) t.join();
  indexer.flush();
  ingest_done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  maintenance.join();
  const double serve_seconds = wall.seconds();

  // --- phase 2: guarantee the overlap was observed ------------------------
  // Timeslicing may or may not have landed a query inside a consolidation
  // window above; force the overlap deterministically: run consolidations in
  // a background thread while the main thread queries until one completes
  // with the flag up at both ends.
  std::size_t forced_rounds = 0;
  while (during_consolidation.load() == 0 && forced_rounds < 16) {
    ++forced_rounds;
    // Re-dirty the decomposition with a large pending batch: the SVD-update
    // then takes several scheduler quanta, so even on a single CPU a reader
    // timeslice lands inside the consolidation window (the writer is
    // preempted mid-update with the flag up).
    for (std::size_t d = 0; d < 256; ++d) {
      text::Document doc = corpus.docs[d % corpus.docs.size()];
      doc.label += "#r" + std::to_string(forced_rounds) + "-" +
                   std::to_string(d);
      if (!indexer.add(std::move(doc)).ok()) break;
    }
    std::atomic<bool> round_done{false};
    std::thread consolidator([&] {
      (void)indexer.consolidate();
      round_done.store(true, std::memory_order_release);
    });
    auto snap = indexer.snapshot();
    while (!round_done.load(std::memory_order_acquire)) {
      const bool overlapped_start = indexer.consolidating();
      std::vector<core::QueryResult> hits;
      {
        LSI_OBS_SPAN(span, "serving.query");
        hits = snap->query(corpus.queries[0].text);
      }
      queries_total.fetch_add(1, std::memory_order_relaxed);
      if (!hits.empty()) queries_ok.fetch_add(1, std::memory_order_relaxed);
      if (overlapped_start && indexer.consolidating()) {
        during_consolidation.fetch_add(1, std::memory_order_relaxed);
      }
    }
    consolidator.join();
  }

  const double qps = static_cast<double>(queries_total.load()) / serve_seconds;
  const double ingest_rate = static_cast<double>(stream) / serve_seconds;

  // Pull the query-latency percentiles out of the serving.query span.
  double p50 = 0.0, p99 = 0.0;
  for (const auto& span : stats.sink().spans()) {
    if (span.name == "serving.query") {
      p50 = span.latency.quantile(0.50);
      p99 = span.latency.quantile(0.99);
    }
  }

  util::TextTable table({"metric", "value"});
  table.add_row({"serve window (s)", util::fmt(serve_seconds, 3)});
  table.add_row({"queries served", util::fmt_int(static_cast<long long>(
                                       queries_total.load()))});
  table.add_row({"queries/sec", util::fmt(qps, 0)});
  table.add_row({"query p50 (ms)", util::fmt(p50 * 1e3, 3)});
  table.add_row({"query p99 (ms)", util::fmt(p99 * 1e3, 3)});
  table.add_row({"docs ingested/sec", util::fmt(ingest_rate, 1)});
  table.add_row({"snapshots published", util::fmt_int(static_cast<long long>(
                                            indexer.publishes()))});
  table.add_row({"consolidations", util::fmt_int(static_cast<long long>(
                                       indexer.consolidations()))});
  table.add_row({"queries during consolidation",
                 util::fmt_int(static_cast<long long>(
                     during_consolidation.load()))});
  table.print(std::cout, "Concurrent serving (" + std::to_string(kWriters) +
                             " writers + " + std::to_string(kReaders) +
                             " readers)");

  stats.param("writers", static_cast<double>(kWriters));
  stats.param("readers", static_cast<double>(kReaders));
  stats.param("k", static_cast<double>(iopts.k));
  stats.param("docs_base", static_cast<double>(train));
  stats.param("docs_ingested", static_cast<double>(indexer.ingested()));
  stats.param("publishes", static_cast<double>(indexer.publishes()));
  stats.param("consolidations", static_cast<double>(indexer.consolidations()));
  stats.param("queries_total", static_cast<double>(queries_total.load()));
  stats.param("queries_ok", static_cast<double>(queries_ok.load()));
  stats.param("qps", qps);
  stats.param("query_p50_s", p50);
  stats.param("query_p99_s", p99);
  stats.param("ingest_docs_per_s", ingest_rate);
  stats.param("queries_during_consolidation",
              static_cast<double>(during_consolidation.load()));
  stats.param("quick", quick ? 1.0 : 0.0);

  if (queries_ok.load() == 0) {
    std::cerr << "\nFAIL: no query returned results\n";
    return 1;
  }
  if (during_consolidation.load() == 0) {
    std::cerr << "\nFAIL: no query overlapped an active consolidation — "
                 "readers appear to block on the writer\n";
    return 1;
  }
  std::cout << "\n" << during_consolidation.load()
            << " queries completed inside active consolidation windows: "
               "reads never block on the SVD-update.\n";
  return 0;
}
