// The paper's unexploited idea (Section 5.1): "moving the query away from
// documents which the user has indicated are irrelevant". Rocchio ablation:
// no feedback vs positive-only vs positive+negative, on impoverished
// queries over noisy topics.

#include <iostream>

#include "bench_common.hpp"
#include "eval/metrics.hpp"
#include "eval/significance.hpp"
#include "lsi/feedback.hpp"
#include "lsi/lsi_index.hpp"
#include "synth/corpus.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("negative_feedback");
  bench::banner("Section 5.1 (negative relevance feedback, extension)",
                "Rocchio with gamma > 0: does pushing away from judged-"
                "irrelevant documents\nhelp beyond positive feedback? (The "
                "paper flags this as untried in LSI.)");

  std::vector<double> none_ap, pos_ap, posneg_ap;
  for (std::uint64_t s = 0; s < 4; ++s) {
    synth::CorpusSpec spec;
    spec.topics = 8;
    spec.concepts_per_topic = 10;
    spec.shared_concepts = 30;
    spec.general_prob = 0.5;
    spec.own_topic_prob = 0.6;
    spec.docs_per_topic = 25;
    spec.queries_per_topic = 6;
    spec.query_len = 2;
    spec.query_offform_prob = 0.8;
    spec.polysemy_prob = 0.15;
    spec.seed = 2600 + s;
    auto corpus = synth::generate_corpus(spec);

    core::IndexOptions opts;
    opts.k = 40;
    auto index = core::LsiIndex::try_build(corpus.docs, opts).value();
    const auto& space = index.space();

    for (const auto& q : corpus.queries) {
      const la::Vector q0 = index.project(q.text);
      auto initial = core::rank_documents(space, q0);

      // The user judges the top 5: relevant go to R+, irrelevant to R-.
      std::vector<core::index_t> rel, irr;
      for (std::size_t i = 0; i < 5 && i < initial.size(); ++i) {
        if (q.relevant.count(initial[i].doc)) {
          rel.push_back(initial[i].doc);
        } else {
          irr.push_back(initial[i].doc);
        }
      }
      // Residual evaluation over unjudged documents.
      eval::DocSet residual = q.relevant;
      for (auto d : rel) residual.erase(d);
      if (residual.empty()) continue;
      auto residual_ap = [&](const la::Vector& query) {
        std::vector<la::index_t> ranked;
        for (const auto& sd : core::rank_documents(space, query)) {
          bool judged = false;
          for (std::size_t i = 0; i < 5 && i < initial.size(); ++i) {
            judged = judged || initial[i].doc == sd.doc;
          }
          if (!judged) ranked.push_back(sd.doc);
        }
        return eval::average_precision(ranked, residual);
      };

      none_ap.push_back(residual_ap(q0));
      pos_ap.push_back(residual_ap(core::rocchio_feedback(
          space, q0, rel, {}, {1.0, 0.75, 0.0})));
      posneg_ap.push_back(residual_ap(core::rocchio_feedback(
          space, q0, rel, irr, {1.0, 0.75, 0.25})));
    }
  }

  const double base = eval::mean(none_ap);
  util::TextTable table({"feedback", "mean AP", "vs none"});
  table.add_row({"none", util::fmt(base, 3), "-"});
  table.add_row({"positive only (beta=.75)", util::fmt(eval::mean(pos_ap), 3),
                 util::fmt_pct(base > 0 ? eval::mean(pos_ap) / base - 1 : 0)});
  table.add_row({"positive + negative (gamma=.25)",
                 util::fmt(eval::mean(posneg_ap), 3),
                 util::fmt_pct(base > 0 ? eval::mean(posneg_ap) / base - 1
                                        : 0)});
  table.print(std::cout, "Residual-collection AP over " +
                             std::to_string(none_ap.size()) + " queries:");

  const auto cmp = eval::compare_systems(posneg_ap, pos_ap);
  std::cout << "\nnegative vs positive-only: mean diff "
            << util::fmt(cmp.mean_difference, 4) << ", randomization p = "
            << util::fmt(cmp.randomization_p, 4) << " (wins +/-: "
            << cmp.wins_a << "/" << cmp.wins_b << ")\n"
            << "Shape to verify: positive feedback gives the big jump (the "
               "paper's +33%);\nnegative information adds a smaller, "
               "mostly-nonnegative refinement — evidence\nfor the paper's "
               "conjecture that it is worth exploiting.\n";
  return 0;
}
