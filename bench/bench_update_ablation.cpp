// Ablation: the four ways to absorb new documents — folding-in (Eq. 7), the
// paper's projection SVD-update (Section 4.2), the exact residual-carrying
// update (extension), and recomputing — compared on reconstruction
// fidelity, orthogonality and wall time as the batch grows.

#include <iostream>

#include "bench_common.hpp"
#include "lsi/folding.hpp"
#include "lsi/update.hpp"
#include "synth/sparse_random.hpp"
#include "util/timer.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("update_ablation");
  bench::banner("Update-method ablation (extension)",
                "fold-in vs projection SVD-update vs exact update vs "
                "recompute:\nreconstruction error against the true bordered "
                "matrix, and cost.");

  const la::index_t m = 1200, n = 700, k = 40;
  auto a = synth::random_sparse_matrix(m, n, 0.02, 99);
  auto base = core::try_build_semantic_space(a, k).value();

  util::TextTable table({"p (new docs)", "method", "||B - B_k||_F",
                         "||V^T V - I||_2", "time (ms)"});
  for (la::index_t p : {4u, 32u, 128u}) {
    auto d = synth::random_sparse_matrix(m, p, 0.02, 100 + p);
    auto bordered = a.with_appended_cols(d).to_dense();
    auto err = [&](const core::SemanticSpace& s) {
      auto diff = bordered;
      diff.add_scaled(s.reconstruct(), -1.0);
      return diff.frobenius_norm();
    };

    {
      auto s = base;
      util::WallTimer t;
      core::fold_in_documents(s, d);
      const double ms = t.millis();
      table.add_row({std::to_string(p), "fold-in", util::fmt(err(s), 3),
                     util::fmt(core::orthogonality_loss(s.v), 6),
                     util::fmt(ms, 1)});
    }
    {
      auto s = base;
      util::WallTimer t;
      core::update_documents(s, d);
      const double ms = t.millis();
      table.add_row({std::to_string(p), "SVD-update (projection)",
                     util::fmt(err(s), 3),
                     util::fmt(core::orthogonality_loss(s.v), 6),
                     util::fmt(ms, 1)});
    }
    {
      auto s = base;
      util::WallTimer t;
      core::update_documents_exact(s, d);
      const double ms = t.millis();
      table.add_row({std::to_string(p), "SVD-update (exact)",
                     util::fmt(err(s), 3),
                     util::fmt(core::orthogonality_loss(s.v), 6),
                     util::fmt(ms, 1)});
    }
    {
      util::WallTimer t;
      auto s = core::try_build_semantic_space(a.with_appended_cols(d), k).value();
      const double ms = t.millis();
      table.add_row({std::to_string(p), "recompute", util::fmt(err(s), 3),
                     util::fmt(core::orthogonality_loss(s.v), 6),
                     util::fmt(ms, 1)});
    }
  }
  table.print(std::cout, "m=1200 terms, n=700 docs, k=40, density 2%:");

  std::cout << "\nShape to verify: error fold-in >= projection >= exact >= "
               "recompute; cost in\nthe opposite order; only fold-in "
               "corrupts orthogonality. The exact update\ncloses most of "
               "the fidelity gap to recomputing at a fraction of its "
               "cost.\n";
  return 0;
}
