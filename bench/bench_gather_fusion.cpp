// The metasearch gather (docs/GATHER.md): does the cross-shard
// term-statistics exchange plus a score-comparability merge policy close the
// overlap@10 gap the naive raw-cosine gather leaves at high shard counts —
// and does the richer gather stage stay cheap?
//
// One synthetic collection is built monolithically (the ranking ground
// truth) and sharded, and the sharded read path is compared four ways:
//
//   pre-fusion     exchange OFF, raw-cosine merge — today's default gather,
//                  the baseline bench_sharded_retrieval also records;
//   exchange+raw   shards agree on Equation-5 global weights, merge still
//                  compares raw cosines across latent spaces;
//   exchange+znorm per-shard z-score normalization on top of agreeing
//                  weights — removes per-shard scale and offset;
//   exchange+rrf   reciprocal-rank fusion — ignores scores entirely.
//
// The corpus is deliberately hostile to per-shard statistics: a steep-Zipf
// general vocabulary plus document-level pet-word burstiness makes the
// entropy weights genuinely data-dependent, synonym groups with
// consistent-form authors and off-form queries make latent structure do the
// ranking work, and cross-topic leakage blurs topic boundaries. Shards are
// SIZE-SKEWED subcollections (sized_subcollections below) — the paper's
// TREC regime of visibly unequal partitions — so under a fixed per-shard
// factor budget the small shards run nearly full-rank while the large ones
// genuinely compress: each shard's independently-estimated latent space
// gives its candidate list a per-query offset and scale of its own. The
// raw-cosine gather compares those incomparable scales directly; the
// z-score policy standardizes each shard's list against the ScoreMoments of
// its FULL scored sweep (the background distribution the shard actually
// measured), which is exactly the correction this regime needs.
//
// Full-mode gates (ISSUE 10 acceptance):
//   * with the exchange on, the better of z-norm / RRF reaches overlap@10
//     >= 0.95 vs the monolithic index at 8 shards (raw-cosine baseline
//     floors at >= 0.8 at 4 shards, bench_sharded_retrieval);
//   * that winning policy's fused q/s stays >= 0.9x the raw-cosine q/s on
//     the same build (gather overhead <= 10% of scatter q/s);
//   * the default policy stays bit-identical to the pre-gather merge at
//     N = 1 (checked in both modes; any divergence fails the bench).

#include <algorithm>
#include <cstddef>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "lsi/lsi.hpp"
#include "synth/corpus.hpp"
#include "util/hash.hpp"
#include "util/timer.hpp"

namespace {

using namespace lsi;

synth::SyntheticCorpus bench_corpus(bool quick) {
  synth::CorpusSpec spec;
  spec.topics = quick ? 20 : 76;
  spec.concepts_per_topic = 8;
  spec.forms_per_concept = 2;        // synonymy: latent structure must work
  spec.consistent_forms_per_doc = true;
  spec.shared_concepts = 24;
  // Topic depth matches the top-10 cut: the set overlap@10 measures is the
  // full relevant set, not an arbitrary fine-ordering boundary inside a
  // larger one — per-shard SVDs retain the topical structure, and the
  // remaining monolithic-vs-sharded gap is the CROSS-SHARD
  // score-comparability error the fusion policies target.
  spec.docs_per_topic = 10;          // 200 docs quick, 760 full
  spec.mean_doc_len = 80.0;
  spec.general_prob = 0.3;
  spec.general_zipf = 1.5;           // a few extremely frequent words
  spec.pet_word_prob = 0.1;          // per-document burstiness
  spec.own_topic_prob = 0.85;        // cross-topic vocabulary leakage
  spec.polysemy_prob = 0.0;
  spec.queries_per_topic = quick ? 2 : 1;
  spec.query_len = 5;
  spec.query_offform_prob = 0.2;     // queries voice non-dominant forms
  spec.seed = 20260808;
  return synth::generate_corpus(spec);
}

// Heterogeneous shards, the paper's actual TREC regime: subcollections of
// visibly different sizes, not equal slices. Shard s's target size tapers
// ~2.8x from the largest to the smallest; every topic's documents spread
// across shards proportionally (lowest fill-fraction first), so each shard
// keeps a slice of every topic's structure. With a fixed per-shard factor
// budget the SMALL shards run nearly full-rank (little latent smoothing,
// wide cosine spread) while the LARGE shards genuinely compress (tight,
// smoothed cosines) — honest per-shard scale divergence that a raw-cosine
// merge mis-orders and the score-comparable policies must undo.
//
// The assignment is realized through the stable hash-label router: each
// document's label gets a deterministic suffix chosen so fnv1a64(label) % N
// lands it on its planned shard (the router hashes labels, so the bench can
// plan the partition while exercising the production routing path).
text::Collection sized_subcollections(const text::Collection& docs,
                                      std::size_t num_shards) {
  std::vector<double> target(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    target[s] = 1.0 + 3.0 * static_cast<double>(num_shards - 1 - s) /
                          static_cast<double>(num_shards - 1);
  }
  std::vector<std::size_t> assigned(num_shards, 0);
  text::Collection out;
  out.reserve(docs.size());
  for (const auto& doc : docs) {
    std::size_t best = 0;
    double best_fill = static_cast<double>(assigned[0]) / target[0];
    for (std::size_t s = 1; s < num_shards; ++s) {
      const double fill = static_cast<double>(assigned[s]) / target[s];
      if (fill < best_fill) {
        best = s;
        best_fill = fill;
      }
    }
    ++assigned[best];
    // Numeric suffixes vary the hash's low bits; a single repeated character
    // would not (FNV-1a's low bits cycle under one fixed appended byte).
    std::string label = doc.label;
    for (std::size_t salt = 0; util::fnv1a64(label) % num_shards != best;
         ++salt) {
      label = doc.label + "~" + std::to_string(salt);
    }
    out.push_back({std::move(label), doc.body});
  }
  return out;
}

bool bit_identical(const std::vector<core::ScoredDoc>& a,
                   const std::vector<core::ScoredDoc>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].doc != b[i].doc || a[i].cosine != b[i].cosine) return false;
  }
  return true;
}

double mean_overlap10(const std::vector<std::vector<core::ScoredDoc>>& ranked,
                      const std::vector<std::set<core::index_t>>& truth,
                      std::size_t top_z) {
  double sum = 0.0;
  for (std::size_t b = 0; b < ranked.size(); ++b) {
    std::size_t hits = 0;
    for (const auto& sd : ranked[b]) hits += truth[b].count(sd.doc);
    sum += static_cast<double>(hits) / static_cast<double>(top_z);
  }
  return sum / static_cast<double>(ranked.size());
}

}  // namespace

int main() {
  bench::banner("cross-shard score comparability (Equation 5 at scale)",
                "Metasearch gather: term-statistics exchange + merge policies "
                "vs the naive raw-cosine gather, overlap@10 and q/s");

  const bool quick = bench::quick_mode();
  bench::StatsSession stats("gather_fusion", /*install=*/false);

  const auto corpus = bench_corpus(quick);
  core::IndexOptions iopts;
  iopts.k = quick ? 32 : 64;  // full per-shard budget (quality regime)

  const std::size_t num_shards = quick ? 4 : 8;
  const std::size_t top_z = 10;
  const std::size_t kBatch = 16;
  const std::size_t total_queries = quick ? 64 : 256;
  const int kReps = quick ? 1 : 3;

  const text::Collection docs = sized_subcollections(corpus.docs, num_shards);

  std::vector<std::string> texts;
  for (const auto& q : corpus.queries) texts.push_back(q.text);

  stats.param("n_docs", static_cast<double>(corpus.docs.size()));
  stats.param("k", static_cast<double>(iopts.k));
  stats.param("n_shards", static_cast<double>(num_shards));
  stats.param("distinct_queries", static_cast<double>(texts.size()));
  stats.param("quick", quick ? 1.0 : 0.0);

  core::SearchOptions qopts;
  qopts.z = top_z;

  std::vector<std::vector<std::string>> batches;
  for (std::size_t lo = 0; lo < total_queries; lo += kBatch) {
    std::vector<std::string> block;
    for (std::size_t q = lo; q < std::min(total_queries, lo + kBatch); ++q) {
      block.push_back(texts[q % texts.size()]);
    }
    batches.push_back(std::move(block));
  }

  // --- monolithic ground truth ---------------------------------------------
  util::WallTimer timer;
  auto mono_built = core::LsiIndex::try_build(docs, iopts);
  if (!mono_built.ok()) {
    std::cerr << "monolithic build failed: " << mono_built.status().to_string()
              << "\n";
    return 1;
  }
  const auto& mono = *mono_built;
  std::cout << "collection: " << corpus.docs.size() << " docs, "
            << mono.space().num_terms() << " terms, k = " << iopts.k << ", "
            << num_shards << " shards (monolithic build "
            << util::fmt(timer.seconds(), 2) << " s)\n\n";

  std::vector<std::set<core::index_t>> mono_sets;
  for (const auto& t : texts) {
    std::set<core::index_t> s;
    for (const auto& hit : mono.query(t, qopts.query_options(), nullptr)) {
      s.insert(hit.doc);
    }
    mono_sets.push_back(std::move(s));
  }

  // --- N = 1 default-policy bit parity (both modes) ------------------------
  {
    core::ShardingOptions one;
    one.num_shards = 1;
    one.index = iopts;
    one.split_k_budget = false;
    auto built = core::ShardedIndex::try_build(docs, one);
    if (!built.ok()) {
      std::cerr << "1-shard build failed: " << built.status().to_string()
                << "\n";
      return 1;
    }
    std::vector<la::Vector> ref_vectors;
    for (const auto& t : batches.front()) {
      ref_vectors.push_back(mono.weighted_term_vector(t));
    }
    const auto want = core::BatchedRetriever(mono.space())
                          .rank(core::QueryBatch::from_term_vectors(
                                    mono.space(), ref_vectors),
                                qopts);
    const auto got = built->snapshot().rank_batch(batches.front(), qopts);
    for (std::size_t b = 0; b < want.size(); ++b) {
      if (!bit_identical(got[b], want[b])) {
        std::cerr << "FAIL: N = 1 default-policy ranking for query " << b
                  << " is not bit-identical to BatchedRetriever\n";
        return 1;
      }
    }
    std::cout << "N = 1 default policy is bit-identical to the monolithic "
                 "batched engine (doc order and cosine bits).\n\n";
  }

  // --- sharded builds: exchange off (baseline) and on ----------------------
  core::ShardingOptions sopts;
  sopts.num_shards = num_shards;
  sopts.routing = core::RoutingPolicy::kHashLabel;  // planned partition above
  sopts.index = iopts;
  sopts.split_k_budget = false;  // quality regime: full per-shard budget

  timer.reset();
  auto baseline_built = core::ShardedIndex::try_build(docs, sopts);
  if (!baseline_built.ok()) {
    std::cerr << "baseline build failed: "
              << baseline_built.status().to_string() << "\n";
    return 1;
  }
  const double baseline_build_s = timer.seconds();

  core::ShardingOptions xopts = sopts;
  xopts.share_term_stats = true;
  timer.reset();
  auto exchange_built = core::ShardedIndex::try_build(docs, xopts);
  if (!exchange_built.ok()) {
    std::cerr << "exchange build failed: "
              << exchange_built.status().to_string() << "\n";
    return 1;
  }
  const double exchange_build_s = timer.seconds();
  stats.param("baseline_build_s", baseline_build_s);
  stats.param("exchange_build_s", exchange_build_s);

  const auto baseline_snap = baseline_built->snapshot();
  const auto exchange_snap = exchange_built->snapshot();

  // --- overlap@10 per configuration ----------------------------------------
  struct Config {
    const char* name;
    const core::ShardedSnapshot* snap;
    gather::MergePolicy policy;
  };
  const std::vector<Config> configs = {
      {"pre-fusion (raw, no exchange)", &baseline_snap,
       gather::MergePolicy::kRawCosine},
      {"exchange + raw cosine", &exchange_snap,
       gather::MergePolicy::kRawCosine},
      {"exchange + z-score", &exchange_snap, gather::MergePolicy::kZScore},
      {"exchange + rrf", &exchange_snap, gather::MergePolicy::kRRF},
  };
  const std::vector<std::string> keys = {"prefusion", "exchange_raw",
                                         "exchange_zscore", "exchange_rrf"};

  util::TextTable table({"configuration", "overlap@10", "q/s (b=16)"});
  std::vector<double> overlaps, qps_per_config;
  for (std::size_t c = 0; c < configs.size(); ++c) {
    core::SearchOptions copts = qopts;
    copts.merge = configs[c].policy;
    const auto ranked = configs[c].snap->rank_batch(texts, copts);
    const double overlap = mean_overlap10(ranked, mono_sets, top_z);

    double stream_s = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      timer.reset();
      for (const auto& block : batches) {
        const auto r = configs[c].snap->rank_batch(block, copts);
        if (r.size() != block.size()) {
          std::cerr << "short batch result\n";
          return 1;
        }
      }
      const double s = timer.seconds();
      if (rep == 0 || s < stream_s) stream_s = s;
    }
    const double qps = static_cast<double>(total_queries) / stream_s;

    overlaps.push_back(overlap);
    qps_per_config.push_back(qps);
    table.add_row({configs[c].name, util::fmt(overlap, 3),
                   util::fmt(qps, 0)});
    stats.param("overlap10_" + keys[c], overlap);
    stats.param("qps_" + keys[c], qps);
  }

  std::string caption = "Gather configurations at ";
  caption += std::to_string(num_shards);
  caption += " shards (";
  caption += std::to_string(corpus.docs.size());
  caption += " docs, k = ";
  caption += std::to_string(iopts.k);
  caption += " per shard, top-10)";
  table.print(std::cout, caption);

  // --- the rich gather stages (collapse + facets), instrumented ------------
  // Outside every timed region; populates the gather.* spans/counters of
  // BENCH_gather_fusion.json and sanity-checks the full pipeline end to end.
  {
    obs::ScopedSink scoped(&stats.sink());
    core::SearchOptions gopts = qopts;
    gopts.merge = gather::MergePolicy::kZScore;
    gopts.collapse_cosine = 0.92;
    gopts.facets = 8;
    core::QueryStats qs;
    const auto gathered =
        exchange_snap.gather_batch(batches.front(), gopts, &qs);
    if (gathered.size() != batches.front().size()) {
      std::cerr << "gather_batch returned a short batch\n";
      return 1;
    }
    std::size_t collapsed = 0, facet_terms = 0;
    for (const auto& g : gathered) {
      for (const auto& h : g.hits) collapsed += h.duplicates.size();
      facet_terms += g.facets.size();
    }
    stats.param("instrumented_collapsed_hits",
                static_cast<double>(collapsed));
    stats.param("instrumented_facet_terms",
                static_cast<double>(facet_terms));
    std::cout << "\nrich gather pass: " << collapsed
              << " near-duplicates collapsed, "
              << facet_terms << " facet terms over "
              << gathered.size() << " queries.\n";
  }

  // --- gates ----------------------------------------------------------------
  const double best_fused = std::max(overlaps[2], overlaps[3]);
  const std::size_t best_idx = overlaps[2] >= overlaps[3] ? 2 : 3;
  const double qps_ratio = qps_per_config[best_idx] / qps_per_config[1];
  stats.param("best_fused_overlap10", best_fused);
  stats.param("fused_qps_ratio", qps_ratio);

  std::cout << "\npre-fusion overlap@10 " << util::fmt(overlaps[0], 3)
            << " -> best fused " << util::fmt(best_fused, 3) << " ("
            << keys[best_idx] << "); fused q/s = "
            << util::fmt(qps_ratio, 2) << "x raw on the same build.\n";

  if (!quick) {
    bool failed = false;
    if (best_fused < 0.95) {
      std::cerr << "\nFAIL: expected overlap@10 >= 0.95 at " << num_shards
                << " shards with exchange + z-norm/RRF, got "
                << util::fmt(best_fused, 3) << "\n";
      failed = true;
    }
    if (qps_ratio < 0.9) {
      std::cerr << "\nFAIL: expected fused q/s >= 0.9x raw-cosine q/s "
                   "(gather overhead <= 10%), got "
                << util::fmt(qps_ratio, 2) << "x\n";
      failed = true;
    }
    if (failed) return 1;
    std::cout << "\nGates: best fused overlap@10 = " << util::fmt(best_fused, 3)
              << " (>= 0.95 required); fused q/s = " << util::fmt(qps_ratio, 2)
              << "x raw (>= 0.9x required).\n";
  }
  return 0;
}
