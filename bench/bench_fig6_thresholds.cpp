// Figure 6 + Section 3.2: documents returned for the query "age blood
// abnormalities" within cosine thresholds .85 / .75, and the comparison with
// lexical matching (which returns the wrong set and misses M9 entirely).

#include <iostream>

#include "baseline/lexical.hpp"
#include "bench_common.hpp"
#include "util/ascii_plot.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("fig6_thresholds");
  bench::banner("Figure 6 / Section 3.2",
                "Query 'age blood abnormalities' at cosine thresholds, "
                "vs. lexical matching.");

  auto space = bench::paper_space(2);
  const auto q = bench::paper_query();
  const auto q_hat = core::project_query(space, q);

  // Plot: documents at V_2 S_2, query at its Equation-6 coordinates.
  util::AsciiScatter plot(100, 32);
  for (la::index_t j = 0; j < 14; ++j) {
    const auto c = space.doc_coords(j);
    plot.add(c[0], c[1], bench::med_label(j));
  }
  plot.add(q_hat[0], q_hat[1], "QUERY");
  std::cout << plot.render() << '\n';

  auto ranked = core::retrieve(space, q);
  util::TextTable table({"rank", "doc", "cosine"});
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    table.add_row({std::to_string(i + 1), bench::med_label(ranked[i].doc),
                   util::fmt(ranked[i].cosine, 2)});
  }
  table.print(std::cout, "LSI ranking (k = 2):");

  std::cout << "\nLSI top-3 set:        {";
  for (std::size_t i = 0; i < 3 && i < ranked.size(); ++i) {
    std::cout << (i ? ", " : "") << bench::med_label(ranked[i].doc);
  }
  std::cout << "}   (paper at cosine .85: {M8, M9, M12})\n";
  std::cout << "LSI top-5 set adds:   {";
  for (std::size_t i = 3; i < 5 && i < ranked.size(); ++i) {
    std::cout << (i > 3 ? ", " : "") << bench::med_label(ranked[i].doc);
  }
  std::cout << "}   (paper at cosine .75 adds: {M7, M11}; its own Table 4 "
               "also has M10 >= .75)\n";

  auto lex = baseline::lexical_match(data::table3_counts(), q);
  std::cout << "\nlexical matching:     {";
  for (std::size_t i = 0; i < lex.size(); ++i) {
    std::cout << (i ? ", " : "") << bench::med_label(lex[i].doc);
  }
  std::cout << "}   (paper: {M1, M8, M10, M11, M12})\n"
            << "\nM9 ('christmas disease' = haemophilia in children, the "
               "most relevant topic)\nis retrieved by LSI and invisible to "
               "lexical matching — the paper's headline example.\n";
  return 0;
}
