// Kernel x precision roofline of the Equation-6 scoring sweep — the gate
// behind docs/KERNELS.md. The batched cosine sweep
//     scores(j, b) += w(i, b) * V(j, i)
// is the serving hot path; this bench re-runs it under every registered
// SIMD kernel set (portable, avx2 when the CPU has it) and both document
// stores (fp64 V panels, bf16-compressed panels with fp32 accumulation),
// then reports queries/sec and measured GFLOP/s next to the lsi/flops
// batch-score model for each cell of the sweep.
//
// Full mode (the CI gate on AVX2 hardware):
//   * the dispatched hot path — avx2 kernels over the bf16 store — must
//     reach >= 2x the portable-kernel fp64 baseline's q/s (same corpus,
//     same batches, same thread pool), and
//   * bf16 rankings must overlap fp64 rankings at overlap@10 >= 0.99.
// The same-precision avx2-vs-portable ratios are emitted as params but not
// individually gated: the portable kernels are auto-vectorized by the
// compiler, so on hosts (VMs in particular) where 256-bit execution has no
// throughput advantage over 128-bit they legitimately tie avx2 on the
// elementwise fp64 sweep; the gated pair compares the paths an operator
// actually chooses between. Quick mode (LSI_BENCH_QUICK=1) shrinks the
// corpus and skips both hard gates (smoke + stats emission only, like the
// other CI quick benches).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "la/kernels.hpp"
#include "lsi/batched_retrieval.hpp"
#include "lsi/flops.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace lsi;

/// V rows = unit(topic center + noise * gauss); sigma descending. Same
/// direct-at-the-reduced-layer synthesis as bench_ann_pruning: kernel
/// throughput depends only on the document-coordinate geometry, not on how
/// an SVD produced it.
std::shared_ptr<core::SemanticSpace> clustered_space(core::index_t n,
                                                     core::index_t k,
                                                     core::index_t topics,
                                                     double noise,
                                                     util::Rng& rng) {
  std::vector<std::vector<double>> centers(topics, std::vector<double>(k));
  for (auto& c : centers) {
    double norm = 0.0;
    for (auto& x : c) {
      x = rng.normal();
      norm += x * x;
    }
    norm = std::sqrt(norm);
    for (auto& x : c) x /= norm;
  }
  auto space = std::make_shared<core::SemanticSpace>();
  space->u = la::DenseMatrix(k, k);  // unused by pre-projected queries
  space->v = la::DenseMatrix(n, k);
  space->sigma.resize(k);
  for (core::index_t i = 0; i < k; ++i) {
    space->sigma[i] = 50.0 * std::pow(static_cast<double>(i + 1), -0.7);
  }
  for (core::index_t d = 0; d < n; ++d) {
    const auto& c = centers[d % topics];
    double norm = 0.0;
    for (core::index_t i = 0; i < k; ++i) {
      const double x = c[i] + noise * rng.normal();
      space->v(d, i) = x;
      norm += x * x;
    }
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (core::index_t i = 0; i < k; ++i) space->v(d, i) /= norm;
    }
  }
  space->prewarm_doc_norms();
  return space;
}

std::vector<la::Vector> projected_queries(const core::SemanticSpace& space,
                                          std::size_t count, double noise,
                                          util::Rng& rng) {
  const core::index_t k = space.k();
  const core::index_t n = space.num_docs();
  std::vector<la::Vector> queries;
  queries.reserve(count);
  for (std::size_t q = 0; q < count; ++q) {
    const core::index_t anchor = rng.uniform_index(n);
    la::Vector v(k);
    for (core::index_t i = 0; i < k; ++i) {
      v[i] = space.v(anchor, i) + noise * rng.normal();
    }
    queries.push_back(std::move(v));
  }
  return queries;
}

/// Mean |top10_a intersect top10_b| / 10 across queries.
double overlap_at_10(const std::vector<std::vector<core::ScoredDoc>>& a,
                     const std::vector<std::vector<core::ScoredDoc>>& b) {
  double hit = 0.0, want = 0.0;
  for (std::size_t q = 0; q < a.size(); ++q) {
    std::set<core::index_t> t;
    for (const auto& d : a[q]) t.insert(d.doc);
    for (const auto& d : b[q]) hit += t.count(d.doc);
    want += static_cast<double>(t.size());
  }
  return want > 0.0 ? hit / want : 1.0;
}

struct Cell {
  std::string kernel;
  std::string precision;
  double qps = 0.0;
  double gflops = 0.0;
  std::uint64_t model_flops = 0;
  std::uint64_t measured_flops = 0;
};

}  // namespace

int main() {
  bench::banner("Equation-6 kernel roofline",
                "Queries/sec and GFLOP/s of the batched cosine sweep across "
                "SIMD kernels (portable/avx2) and document-store precisions "
                "(fp64/bf16)");

  const bool quick = bench::quick_mode();
  bench::StatsSession stats("kernel_roofline", /*install=*/false);

  // Full-mode corpus: paper-representative scale (tens of thousands of
  // documents at the canonical k = 100), sized so the bf16 store stays
  // cache-resident while the fp64 panels do not — the regime the compressed
  // store is designed for.
  const core::index_t n = quick ? 20'000 : 50'000;
  const core::index_t k = 100;
  const core::index_t topics = quick ? 64 : 256;
  const std::size_t total_queries = quick ? 64 : 256;
  const std::size_t kBatch = 32;
  const double min_measure_s = quick ? 0.05 : 0.5;

  util::Rng rng(20260808);
  auto space64 = clustered_space(n, k, topics, 0.15, rng);
  auto space16 = std::make_shared<core::SemanticSpace>(*space64);
  space16->set_compress_docs(true);
  space16->prewarm_doc_norms();  // builds the bf16 store + its norm caches
  const auto queries = projected_queries(*space64, total_queries, 0.05, rng);

  const std::size_t threads = util::ThreadPool::global().thread_count();
  std::cout << "corpus: " << n << " documents, k = " << k << ", "
            << total_queries << " queries in batches of " << kBatch << ", "
            << threads << " worker threads\n\n";

  stats.param("n_docs", static_cast<double>(n));
  stats.param("k", static_cast<double>(k));
  stats.param("queries", static_cast<double>(total_queries));
  stats.param("batch", static_cast<double>(kBatch));
  stats.param("threads", static_cast<double>(threads));
  stats.param("quick", quick ? 1.0 : 0.0);

  std::vector<std::string> kernels{"portable"};
  if (la::kern::cpu_has_avx2() && la::kern::avx2() != nullptr) {
    kernels.push_back("avx2");
  }
  stats.param("kernels", static_cast<double>(kernels.size()));

  struct Store {
    const char* precision;
    std::shared_ptr<core::SemanticSpace> space;
  };
  const std::vector<Store> stores{{"fp64", space64}, {"bf16", space16}};

  // One model prediction covers every cell: the flop model counts the
  // mathematics of the sweep, which no kernel or store changes.
  core::FlopModelParams fp;
  fp.n = n;
  fp.k = k;
  std::uint64_t model_per_pass = 0;
  std::vector<std::vector<la::Vector>> blocks;
  for (std::size_t lo = 0; lo < total_queries; lo += kBatch) {
    blocks.emplace_back(
        queries.begin() + lo,
        queries.begin() + std::min(total_queries, lo + kBatch));
    fp.b = blocks.back().size();
    model_per_pass += core::flops_batch_score(fp);
  }

  std::vector<Cell> cells;
  for (const auto& store : stores) {
    const core::BatchedRetriever retriever(*store.space);
    std::vector<core::QueryBatch> batches;
    for (const auto& block : blocks) {
      batches.push_back(core::QueryBatch::from_projected(*store.space, block));
    }
    for (const auto& name : kernels) {
      if (!la::kern::force(name)) {
        std::cerr << "FAIL: cannot force kernel '" << name << "'\n";
        return 1;
      }
      // Warm-up pass: faults the panels in and fills any lazy caches
      // outside the timed region.
      for (const auto& batch : batches) {
        (void)retriever.scores(batch, core::SimilarityMode::kColumnSpace);
      }
      // Best of two timed trials: single-core VM hosts jitter by 10-20%,
      // and the best trial is the least-perturbed estimate of the kernel's
      // actual throughput.
      Cell cell;
      cell.kernel = name;
      cell.precision = store.precision;
      for (int trial = 0; trial < 2; ++trial) {
        core::QueryStats qs;
        std::size_t passes = 0;
        util::WallTimer timer;
        double elapsed = 0.0;
        do {
          for (const auto& batch : batches) {
            (void)retriever.scores(batch, core::SimilarityMode::kColumnSpace,
                                   &qs);
          }
          ++passes;
          elapsed = timer.seconds();
        } while (elapsed < min_measure_s);
        const double qps = static_cast<double>(passes) *
                           static_cast<double>(total_queries) / elapsed;
        if (qps > cell.qps) {
          cell.qps = qps;
          cell.measured_flops = qs.flops;
          cell.model_flops = model_per_pass * passes;
          cell.gflops = static_cast<double>(qs.flops) / elapsed / 1e9;
        }
      }
      cells.push_back(cell);

      const std::string suffix =
          "[" + cell.kernel + "][" + cell.precision + "]";
      stats.param("qps" + suffix, cell.qps);
      stats.param("gflops" + suffix, cell.gflops);
      stats.flop_row("eq6.score" + suffix, cell.model_flops,
                     cell.measured_flops);
    }
  }
  la::kern::force("auto");

  util::TextTable table({"kernel", "store", "q/s", "GFLOP/s", "vs portable"});
  auto find_cell = [&](const std::string& kernel,
                       const std::string& precision) -> const Cell* {
    for (const auto& c : cells) {
      if (c.kernel == kernel && c.precision == precision) return &c;
    }
    return nullptr;
  };
  for (const auto& c : cells) {
    const Cell* base = find_cell("portable", c.precision);
    const double ratio = (base != nullptr && base->qps > 0.0)
                             ? c.qps / base->qps
                             : 1.0;
    table.add_row({c.kernel, c.precision, util::fmt(c.qps, 1),
                   util::fmt(c.gflops, 2), util::fmt(ratio, 2)});
  }
  table.print(std::cout, "Equation-6 sweep, " + std::to_string(n) +
                             " documents, k = " + std::to_string(k));

  // --- rank parity gate: bf16 vs fp64 at top 10 ---------------------------
  core::SearchOptions ropts;
  ropts.search = core::SearchMode::kExact;
  ropts.z = 10;
  std::vector<std::vector<core::ScoredDoc>> ranked64, ranked16;
  {
    const core::BatchedRetriever r64(*space64);
    const core::BatchedRetriever r16(*space16);
    for (const auto& block : blocks) {
      auto b64 = core::QueryBatch::from_projected(*space64, block);
      auto b16 = core::QueryBatch::from_projected(*space16, block);
      for (auto& r : r64.rank(b64, ropts)) ranked64.push_back(std::move(r));
      for (auto& r : r16.rank(b16, ropts)) ranked16.push_back(std::move(r));
    }
  }
  const double overlap = overlap_at_10(ranked64, ranked16);
  stats.param("overlap_at_10_bf16", overlap);
  std::cout << "\nbf16 vs fp64 overlap@10: " << util::fmt(overlap, 4) << "\n";

  // --- full-mode gates ----------------------------------------------------
  const Cell* port64 = find_cell("portable", "fp64");
  const Cell* avx64 = find_cell("avx2", "fp64");
  const Cell* port16 = find_cell("portable", "bf16");
  const Cell* avx16 = find_cell("avx2", "bf16");
  if (avx64 != nullptr && port64 != nullptr && port64->qps > 0.0) {
    stats.param("speedup_avx2_fp64", avx64->qps / port64->qps);
  }
  if (avx16 != nullptr && port16 != nullptr && port16->qps > 0.0) {
    stats.param("speedup_avx2_bf16", avx16->qps / port16->qps);
  }
  // The gated pair: the full dispatched hot path (avx2 + bf16 store)
  // against the portable fp64 baseline every machine can run.
  const double speedup = (avx16 != nullptr && port64 != nullptr &&
                          port64->qps > 0.0)
                             ? avx16->qps / port64->qps
                             : 0.0;
  if (avx16 != nullptr) stats.param("speedup_hot_path", speedup);

  bool ok = true;
  if (!quick) {
    if (overlap < 0.99) {
      std::cerr << "\nFAIL: bf16 overlap@10 " << util::fmt(overlap, 4)
                << " < 0.99\n";
      ok = false;
    }
    if (avx16 == nullptr) {
      // The speedup gate is only meaningful on AVX2 hardware; elsewhere the
      // bench still validates parity and emits the portable roofline.
      std::cout << "\nnote: no avx2 kernel on this machine; "
                   "speedup gate skipped\n";
    } else if (speedup < 2.0) {
      std::cerr << "\nFAIL: the avx2+bf16 hot path is only "
                << util::fmt(speedup, 2)
                << "x the portable fp64 baseline (< 2.0x)\n";
      ok = false;
    }
  }
  stats.param("gate_met", ok ? 1.0 : 0.0);
  if (!ok) return 1;
  if (!quick) {
    std::cout << "\nPASS: "
              << (avx16 != nullptr
                      ? util::fmt(speedup, 2) +
                            "x portable fp64 q/s (avx2 + bf16), "
                      : std::string())
              << "overlap@10 " << util::fmt(overlap, 4) << " >= 0.99\n";
  }
  return 0;
}
