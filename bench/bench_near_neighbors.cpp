// Section 5.6 (third open problem): "efficiently comparing queries to
// documents (i.e., finding near neighbors in high-dimension spaces)".
// Cluster-pruned search vs exhaustive scan: recall of the true top-10 and
// the fraction of documents actually scored, over a probe sweep.

#include <iostream>
#include <set>

#include "bench_common.hpp"
#include "lsi/neighbors.hpp"
#include "synth/sparse_random.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("near_neighbors");
  bench::banner("Section 5.6 (near-neighbor search)",
                "Cluster-pruned cosine search vs exhaustive scan in "
                "k-space.");

  const la::index_t m = 5000, n = 4000, k = 60;
  auto a = synth::random_sparse_matrix(m, n, 0.004, 2024);
  auto space = core::try_build_semantic_space(a, k).value();

  core::NeighborIndexOptions nopts;
  nopts.clusters = 64;
  core::DocNeighborIndex index(space, nopts);

  // 40 random 3-term queries.
  util::Rng rng(5);
  std::vector<la::Vector> queries;
  for (int qn = 0; qn < 40; ++qn) {
    la::Vector raw(m, 0.0);
    for (int t = 0; t < 3; ++t) raw[rng.uniform_index(m)] = 1.0;
    la::Vector q = core::project_query(space, raw);
    for (la::index_t i = 0; i < k; ++i) q[i] *= space.sigma[i];
    queries.push_back(std::move(q));
  }

  // Ground truth (exhaustive = all clusters).
  std::vector<std::set<la::index_t>> truth;
  util::WallTimer exhaustive_timer;
  for (const auto& q : queries) {
    std::set<la::index_t> top;
    for (const auto& sd : index.query(q, 10, nopts.clusters)) {
      top.insert(sd.doc);
    }
    truth.push_back(std::move(top));
  }
  const double exhaustive_ms = exhaustive_timer.millis() / queries.size();

  util::TextTable table({"probes", "recall@10", "docs scored (mean)",
                         "% of collection", "ms/query", "speedup"});
  for (std::size_t probes : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    double recall = 0.0;
    double scored = 0.0;
    util::WallTimer timer;
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      core::NeighborQueryStats stats;
      auto result = index.query(queries[qi], 10, probes, &stats);
      std::size_t hits = 0;
      for (const auto& sd : result) hits += truth[qi].count(sd.doc);
      recall += static_cast<double>(hits) / 10.0;
      scored += static_cast<double>(stats.documents_scored);
    }
    const double ms = timer.millis() / queries.size();
    recall /= queries.size();
    scored /= queries.size();
    table.add_row({std::to_string(probes), util::fmt(recall, 3),
                   util::fmt(scored, 0),
                   util::fmt_pct(scored / static_cast<double>(n)),
                   util::fmt(ms, 3),
                   util::fmt(exhaustive_ms / ms, 1) + "x"});
  }
  table.print(std::cout,
              "4000 documents, k = 60, 64 clusters, top-10 queries:");

  std::cout << "\nShape to verify: a handful of probes recovers most of the "
               "true top-10 while\nscoring a small fraction of the "
               "collection — the speedup the paper's open\nproblem asks "
               "for.\n";
  return 0;
}
