// Batched vs single-query retrieval throughput on a MED-scale collection
// (Section 4.4's serving scenario: a stream of queries against a fixed
// semantic space). The single-query loop pays per-query projection,
// allocation, and V_k traffic; the batched engine projects the whole block
// with one blocked GEMM and sweeps each V_k panel once for all queries.
//
// The space is drawn randomly at MED dimensions (m = 5831 terms, n = 1033
// documents, k = 100 factors): retrieval throughput depends only on the
// shapes, not on the spectrum, so no SVD is needed to measure it. Every
// batched run is checked for exact agreement with the single-query rankings
// before its timing is reported.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "lsi/batched_retrieval.hpp"
#include "lsi/flops.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace lsi;

core::SemanticSpace med_scale_space(core::index_t m, core::index_t n,
                                    core::index_t k, util::Rng& rng) {
  core::SemanticSpace space;
  space.u = la::DenseMatrix(m, k);
  space.v = la::DenseMatrix(n, k);
  space.sigma.resize(k);
  for (core::index_t j = 0; j < k; ++j) {
    for (auto& x : space.u.col(j)) x = rng.normal();
    for (auto& x : space.v.col(j)) x = rng.normal();
    space.sigma[j] = 50.0 * std::pow(static_cast<double>(j + 1), -0.7);
  }
  return space;
}

/// Sparse MED-style queries densified to weighted m-vectors.
std::vector<la::Vector> make_queries(core::index_t m, std::size_t count,
                                     util::Rng& rng) {
  std::vector<la::Vector> queries(count, la::Vector(m, 0.0));
  for (auto& q : queries) {
    for (int t = 0; t < 8; ++t) {
      q[rng.uniform_index(m)] = 1.0 + static_cast<double>(rng.uniform_index(3));
    }
  }
  return queries;
}

bool same_ranking(const std::vector<core::ScoredDoc>& a,
                  const std::vector<core::ScoredDoc>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].doc != b[i].doc || a[i].cosine != b[i].cosine) return false;
  }
  return true;
}

}  // namespace

int main() {
  bench::banner("the batched retrieval engine",
                "Queries/sec: single-query loop vs batched multi-query "
                "scoring (MED-scale synthetic collection)");

  // The timed loops below must stay sink-free (the acceptance bar is < 1%
  // throughput change with the sink off), so the session does not install
  // its sink; an instrumented pass at the end populates the spans.
  const bool quick = bench::quick_mode();
  bench::StatsSession stats("batched_retrieval", /*install=*/false);

  const core::index_t m = 5831, n = 1033, k = 100;
  const std::size_t total_queries = quick ? 64 : 512;
  util::Rng rng(42);
  const core::SemanticSpace space = med_scale_space(m, n, k, rng);
  const std::vector<la::Vector> queries = make_queries(m, total_queries, rng);
  stats.param("m", static_cast<double>(m));
  stats.param("n", static_cast<double>(n));
  stats.param("k", static_cast<double>(k));
  stats.param("queries", static_cast<double>(total_queries));
  stats.param("quick", quick ? 1.0 : 0.0);

  core::SearchOptions opts;
  opts.z = 10;

  // Reference rankings (also warms the doc-norm cache for both paths).
  std::vector<std::vector<core::ScoredDoc>> reference(total_queries);
  for (std::size_t q = 0; q < total_queries; ++q) {
    reference[q] = core::retrieve(space, queries[q], opts.query_options());
  }

  const core::BatchedRetriever retriever(space);
  util::TextTable table({"batch", "single q/s", "batched q/s", "speedup",
                         "model Mflop/query"});
  double speedup_at_32 = 0.0;

  // Shared machines drift: measure the single-query loop and the batched
  // engine back-to-back inside each row and keep the best of a few reps of
  // each, so a load spike cannot skew the ratio in either direction.
  const int kReps = quick ? 1 : 3;
  util::WallTimer timer;

  std::vector<std::size_t> batch_sizes = {1, 8, 32, 128, 512};
  if (quick) batch_sizes = {1, 8, 32};
  for (const std::size_t batch_size : batch_sizes) {
    double single_sec = 0.0, batched_sec = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      timer.reset();
      for (std::size_t q = 0; q < total_queries; ++q) {
        const auto ranked = core::retrieve(space, queries[q], opts.query_options());
        if (!same_ranking(ranked, reference[q])) {
          std::cerr << "single-query run diverged from itself?!\n";
          return 1;
        }
      }
      const double s = timer.seconds();
      if (rep == 0 || s < single_sec) single_sec = s;

      timer.reset();
      std::size_t checked = 0;
      for (std::size_t lo = 0; lo < total_queries; lo += batch_size) {
        const std::size_t hi = std::min(total_queries, lo + batch_size);
        const std::vector<la::Vector> block(queries.begin() + lo,
                                            queries.begin() + hi);
        const auto batch = core::QueryBatch::from_term_vectors(space, block);
        const auto ranked = retriever.rank(batch, opts);
        for (std::size_t b = 0; b < ranked.size(); ++b, ++checked) {
          if (!same_ranking(ranked[b], reference[lo + b])) {
            std::cerr << "parity failure: batch " << batch_size << " query "
                      << (lo + b) << " differs from single-query ranking\n";
            return 1;
          }
        }
      }
      const double bsec = timer.seconds();
      if (rep == 0 || bsec < batched_sec) batched_sec = bsec;
    }
    const double single_qps = static_cast<double>(total_queries) / single_sec;
    const double batched_qps = static_cast<double>(total_queries) / batched_sec;
    const double speedup = batched_qps / single_qps;
    if (batch_size == 32) speedup_at_32 = speedup;

    core::FlopModelParams fp;
    fp.m = m;
    fp.n = n;
    fp.k = k;
    fp.b = batch_size;
    const double mflop_per_query =
        static_cast<double>(core::flops_batch_project(fp) +
                            core::flops_batch_score(fp)) /
        static_cast<double>(batch_size) / 1e6;

    table.add_row({util::fmt_int(static_cast<long long>(batch_size)),
                   util::fmt(single_qps, 0), util::fmt(batched_qps, 0),
                   util::fmt(speedup, 2), util::fmt(mflop_per_query, 2)});
    const std::string suffix = "_b" + std::to_string(batch_size);
    stats.param("qps_single" + suffix, single_qps);
    stats.param("qps_batched" + suffix, batched_qps);
    stats.param("speedup" + suffix, speedup);
  }

  std::string caption = "Batched retrieval throughput (m = 5831, n = 1033, "
                        "k = 100, top-10, ";
  caption += std::to_string(total_queries);
  caption += " queries)";
  table.print(std::cout, caption);
  std::cout << "\nAll batched rankings are identical to the single-query "
               "loop's (exact doc order and scores).\n";

  // One instrumented pass (sink installed, outside every timed region)
  // populates the project/score/select spans and the predicted-vs-measured
  // flops rows of BENCH_batched_retrieval.json.
  {
    obs::ScopedSink scoped(&stats.sink());
    const std::size_t bsz = std::min<std::size_t>(32, total_queries);
    const std::vector<la::Vector> block(queries.begin(),
                                        queries.begin() + bsz);
    core::QueryStats qs;
    const auto batch = core::QueryBatch::from_term_vectors(space, block, &qs);
    const auto ranked = retriever.rank(batch, opts, &qs);
    if (ranked.size() != bsz) return 1;
    core::FlopModelParams fp;
    fp.m = m;
    fp.n = n;
    fp.k = k;
    fp.b = bsz;
    stats.flop_row("retrieval.batch32",
                   core::flops_batch_project(fp) + core::flops_batch_score(fp),
                   qs.flops);
    stats.param("instrumented_project_s", qs.project_seconds);
    stats.param("instrumented_score_s", qs.score_seconds);
    stats.param("instrumented_select_s", qs.select_seconds);
  }

  if (speedup_at_32 < 2.0) {
    std::cerr << "\nFAIL: expected >= 2x speedup at batch 32, got "
              << speedup_at_32 << "x\n";
    return 1;
  }
  return 0;
}
