// Section 5.4 (cross-language retrieval): train on dual-language documents,
// fold in monolingual documents, and query across languages. Paper
// (Landauer & Littman): the multilingual space was as effective as first
// translating queries — and more effective than single-language spaces.

#include <iostream>

#include "bench_common.hpp"
#include "eval/metrics.hpp"
#include "lsi/lsi_index.hpp"
#include "synth/bilingual.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("crosslang");
  bench::banner("Section 5.4 (cross-language retrieval)",
                "Dual-language training; queries in language A retrieving "
                "documents in language B.");

  synth::BilingualSpec spec;
  spec.topics = 8;
  spec.concepts_per_topic = 10;
  spec.docs_per_topic = 24;
  spec.own_topic_prob = 0.6;  // mixed-topic documents keep the task honest
  spec.queries_per_topic = 4;
  spec.query_len = 3;
  spec.seed = 1001;
  auto corpus = synth::generate_bilingual_corpus(spec);

  // Multilingual space: trained on concatenated dual-language documents.
  core::IndexOptions opts;
  opts.scheme = weighting::kLogEntropy;
  opts.k = 40;
  auto dual_index = core::LsiIndex::try_build(corpus.dual, opts).value();

  // Monolingual reference space (language B only) for the "translated
  // query" comparison: queries in B against B documents.
  auto mono_b_index = core::LsiIndex::try_build(corpus.mono_b, opts).value();

  // Cross-language: language-A query against the dual space, where each
  // document is ranked by its dual (train) representation. Relevance is
  // topic-based, so this measures whether A-queries find B-content topics.
  auto mean_ap = [&](const std::vector<synth::BilingualQuery>& queries,
                     core::LsiIndex& index) {
    std::vector<double> scores;
    for (const auto& q : queries) {
      std::vector<la::index_t> ranked;
      for (const auto& r : index.query(q.text)) ranked.push_back(r.doc);
      scores.push_back(
          eval::three_point_average_precision(ranked, q.relevant));
    }
    return eval::mean(scores);
  };

  const double a_on_dual = mean_ap(corpus.queries_a, dual_index);
  const double b_on_dual = mean_ap(corpus.queries_b, dual_index);
  const double b_on_mono = mean_ap(corpus.queries_b, mono_b_index);

  // Fold-in check: fold the monolingual B documents into the dual space and
  // retrieve them with A queries (the Landauer-Littman deployment mode).
  auto folded = core::LsiIndex::try_build(corpus.dual, opts).value();
  folded.add_documents(corpus.mono_b, core::AddMethod::kFoldIn);
  std::vector<double> cross_scores;
  const std::size_t offset = corpus.dual.size();
  for (const auto& q : corpus.queries_a) {
    std::vector<la::index_t> ranked;
    for (const auto& r : folded.query(q.text)) {
      if (r.doc >= offset) ranked.push_back(r.doc - offset);  // B copies
    }
    cross_scores.push_back(
        eval::three_point_average_precision(ranked, q.relevant));
  }
  const double a_on_folded_b = eval::mean(cross_scores);

  util::TextTable table({"configuration", "mean AP"});
  table.add_row({"A queries -> dual space", util::fmt(a_on_dual, 3)});
  table.add_row({"B queries -> dual space", util::fmt(b_on_dual, 3)});
  table.add_row({"B queries -> B-only space ('translated query' reference)",
                 util::fmt(b_on_mono, 3)});
  table.add_row({"A queries -> folded-in monolingual B docs (cross-language)",
                 util::fmt(a_on_folded_b, 3)});
  table.print(std::cout, "Cross-language retrieval (k = 40):");

  std::cout << "\nShape to verify: cross-language retrieval (last row) "
               "approaches the\nwithin-language reference — no query "
               "translation involved, per the paper.\n";
  return 0;
}
