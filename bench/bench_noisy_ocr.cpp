// Section 5.4 (noisy input): retrieval from corrupted documents. Paper
// (Nielsen et al.): with 8.8% word-level recognition errors, LSI retrieval
// was "not disrupted (compared with the same uncorrupted texts)".

#include <iostream>

#include "bench_common.hpp"
#include "eval/metrics.hpp"
#include "lsi/lsi_index.hpp"
#include "synth/corpus.hpp"
#include "synth/noise.hpp"
#include "util/rng.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("noisy_ocr");
  bench::banner("Section 5.4 (noisy/OCR input)",
                "Retrieval quality vs. word-level corruption of the "
                "indexed documents.");

  synth::CorpusSpec spec;
  spec.topics = 8;
  spec.concepts_per_topic = 10;
  spec.shared_concepts = 20;
  spec.docs_per_topic = 25;
  spec.mean_doc_len = 45;
  spec.own_topic_prob = 0.6;
  spec.polysemy_prob = 0.1;
  spec.queries_per_topic = 4;
  spec.query_len = 3;
  spec.query_offform_prob = 0.3;
  spec.seed = 1200;
  auto corpus = synth::generate_corpus(spec);

  util::TextTable table({"word error rate", "measured rate", "LSI AP",
                         "vs clean"});
  double clean_ap = 0.0;
  for (double rate : {0.0, 0.044, 0.088, 0.30, 0.60, 0.90}) {
    util::Rng rng(55);
    synth::NoiseSpec noise;
    noise.word_error_rate = rate;
    text::Collection corrupted = corpus.docs;
    double measured = 0.0;
    for (auto& d : corrupted) {
      const std::string original = d.body;
      d.body = synth::corrupt_text(original, noise, rng);
      measured += synth::word_error_fraction(original, d.body);
    }
    measured /= static_cast<double>(corrupted.size());

    core::IndexOptions opts;
    opts.scheme = weighting::kLogEntropy;
    opts.k = 40;
    auto index = core::LsiIndex::try_build(corrupted, opts).value();
    std::vector<double> scores;
    for (const auto& q : corpus.queries) {
      std::vector<la::index_t> ranked;
      for (const auto& r : index.query(q.text)) ranked.push_back(r.doc);
      scores.push_back(
          eval::three_point_average_precision(ranked, q.relevant));
    }
    const double ap = eval::mean(scores);
    if (rate == 0.0) clean_ap = ap;
    table.add_row({util::fmt_pct(rate), util::fmt_pct(measured),
                   util::fmt(ap, 3),
                   util::fmt_pct(clean_ap > 0 ? ap / clean_ap - 1.0 : 0.0)});
  }
  table.print(std::cout,
              "Documents corrupted before indexing (queries clean, k = 40):");

  std::cout << "\npaper: at 8.8% word errors, retrieval was not disrupted.\n"
               "Shape to verify: negligible loss at ~9%, graceful "
               "degradation beyond it\n(correctly-spelled context words "
               "keep corrupted documents well-placed in k-space).\n";
  return 0;
}
