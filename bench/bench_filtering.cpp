// Section 5.3 (information filtering): standing interest profiles matched
// against a stream of new documents. Paper: Foltz found 12%-23% advantages
// for LSI over keyword matching on Netnews; profiles built from known
// relevant documents (relevance-feedback style) work best.

#include <algorithm>
#include <iostream>

#include "baseline/vector_model.hpp"
#include "bench_common.hpp"
#include "eval/metrics.hpp"
#include "lsi/folding.hpp"
#include "lsi/lsi_index.hpp"
#include "synth/corpus.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("filtering");
  bench::banner("Section 5.3 (information filtering)",
                "Standing profiles vs. a stream of new documents: LSI vs. "
                "keyword matching,\nprofiles from query words vs. from "
                "known relevant documents.");

  synth::CorpusSpec spec;
  spec.topics = 8;
  spec.concepts_per_topic = 10;
  spec.shared_concepts = 25;
  spec.docs_per_topic = 40;
  spec.mean_doc_len = 30;
  spec.general_prob = 0.4;
  spec.own_topic_prob = 0.6;
  spec.query_len = 4;
  spec.polysemy_prob = 0.1;
  spec.queries_per_topic = 3;
  spec.query_offform_prob = 0.9;
  spec.seed = 900;
  auto corpus = synth::generate_corpus(spec);

  // Historical sample: 60% of each topic's documents; the remaining 40% are
  // the incoming stream to filter.
  text::Collection train;
  std::vector<std::size_t> stream;  // doc ids of the stream
  for (std::size_t d = 0; d < corpus.docs.size(); ++d) {
    if (d % 5 < 3) {
      train.push_back(corpus.docs[d]);
    } else {
      stream.push_back(d);
    }
  }

  core::IndexOptions opts;
  opts.scheme = weighting::kLogEntropy;
  opts.k = 40;
  auto index = core::LsiIndex::try_build(train, opts).value();
  baseline::VectorSpaceModel vsm(index.weighted_matrix());

  // For each standing interest: rank the stream documents by similarity to
  // the profile; evaluate AP against the stream's relevant docs.
  std::vector<double> lsi_query_ap, lsi_doc_ap, kw_ap;
  for (const auto& q : corpus.queries) {
    eval::DocSet stream_relevant;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      if (corpus.doc_topics[stream[i]] == q.topic) stream_relevant.insert(i);
    }

    // LSI profile from the query words.
    const la::Vector profile_q = index.project(q.text);
    // LSI profile from known relevant *training* documents (first 3 of the
    // topic in the training set).
    la::Vector profile_d(index.space().k(), 0.0);
    int used = 0;
    for (std::size_t t = 0; t < train.size() && used < 3; ++t) {
      // Training labels map back to original ids via label text.
      // train was taken in order, so recover topic from the corpus by label.
      for (std::size_t d = 0; d < corpus.docs.size(); ++d) {
        if (corpus.docs[d].label == train[t].label) {
          if (corpus.doc_topics[d] == q.topic) {
            auto p = index.project(train[t].body);
            for (std::size_t i = 0; i < profile_d.size(); ++i) {
              profile_d[i] += p[i];
            }
            ++used;
          }
          break;
        }
      }
    }
    if (used > 0) {
      for (double& v : profile_d) v /= used;
    }

    // Rank stream docs: project each incoming doc (fold-in semantics) and
    // cosine against the profile; keyword baseline uses full-term cosine.
    std::vector<std::pair<double, std::size_t>> lsi_q, lsi_d, kw;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const auto& doc = corpus.docs[stream[i]];
      const la::Vector d_hat = index.project(doc.body);
      lsi_q.push_back({-la::cosine(profile_q, d_hat), i});
      lsi_d.push_back({-la::cosine(profile_d, d_hat), i});
      const la::Vector wq = index.weighted_term_vector(q.text);
      const la::Vector wd = index.weighted_term_vector(doc.body);
      kw.push_back({-la::cosine(wq, wd), i});
    }
    auto ap_of = [&](std::vector<std::pair<double, std::size_t>>& scored) {
      std::stable_sort(scored.begin(), scored.end());
      std::vector<la::index_t> ranked;
      for (const auto& [neg, i] : scored) ranked.push_back(i);
      return eval::three_point_average_precision(ranked, stream_relevant);
    };
    lsi_query_ap.push_back(ap_of(lsi_q));
    lsi_doc_ap.push_back(ap_of(lsi_d));
    kw_ap.push_back(ap_of(kw));
  }

  const double kw = eval::mean(kw_ap);
  const double lq = eval::mean(lsi_query_ap);
  const double ld = eval::mean(lsi_doc_ap);
  util::TextTable table({"filtering method", "mean AP", "vs keyword"});
  table.add_row({"keyword match (word profile)", util::fmt(kw, 3), "-"});
  table.add_row({"LSI (word profile)", util::fmt(lq, 3),
                 util::fmt_pct(kw > 0 ? lq / kw - 1.0 : 0.0)});
  table.add_row({"LSI (profile from 3 relevant docs)", util::fmt(ld, 3),
                 util::fmt_pct(kw > 0 ? ld / kw - 1.0 : 0.0)});
  table.print(std::cout, "Filtering a stream of unseen documents:");

  std::cout << "\npaper: LSI 12-23% over keyword matching (Foltz); document-"
               "derived profiles\n(relevance-feedback style) are the most "
               "effective (Dumais & Foltz).\n";
  return 0;
}
