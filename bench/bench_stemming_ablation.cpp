// Stemming ablation (Section 5.4): the paper runs LSI *without* stemming
// and argues it is unnecessary — "if words with the same stem are used in
// similar documents they will have similar vectors in the truncated SVD".
// We measure what Porter stemming buys the keyword vector model vs what it
// buys LSI, on corpora whose synonym groups are morphological variants.

#include <iostream>

#include "baseline/vector_model.hpp"
#include "bench_common.hpp"
#include "eval/metrics.hpp"
#include "lsi/lsi_index.hpp"
#include "synth/corpus.hpp"

namespace {

using namespace lsi;

struct Result {
  double keyword = 0.0;
  double lsi = 0.0;
};

Result evaluate(const synth::SyntheticCorpus& corpus, bool stem) {
  core::IndexOptions opts;
  opts.parser.stem = stem;
  opts.scheme = weighting::kLogEntropy;
  opts.k = 40;
  auto index = core::LsiIndex::try_build(corpus.docs, opts).value();
  baseline::VectorSpaceModel vsm(index.weighted_matrix());

  std::vector<double> kw, li;
  for (const auto& q : corpus.queries) {
    std::vector<la::index_t> kranked, lranked;
    for (const auto& r : vsm.rank(index.weighted_term_vector(q.text))) {
      kranked.push_back(r.doc);
    }
    for (const auto& r : index.query(q.text)) lranked.push_back(r.doc);
    kw.push_back(eval::three_point_average_precision(kranked, q.relevant));
    li.push_back(eval::three_point_average_precision(lranked, q.relevant));
  }
  return {eval::mean(kw), eval::mean(li)};
}

}  // namespace

int main() {
  bench::StatsSession session("stemming_ablation");
  bench::banner("Stemming ablation (Section 5.4)",
                "Porter stemming on/off for the keyword vector model and "
                "for LSI, on corpora\nwhose synonyms are morphological "
                "variants ('zbecos' ~ 'zbecosed' ~ ...).");

  double kw_gain_total = 0.0, lsi_gain_total = 0.0;
  util::TextTable table({"collection", "keyword", "keyword+stem", "gain",
                         "LSI", "LSI+stem", "gain"});
  for (std::uint64_t s = 0; s < 4; ++s) {
    synth::CorpusSpec spec;
    spec.topics = 8;
    spec.concepts_per_topic = 10;
    spec.shared_concepts = 20;
    spec.forms_per_concept = 4;       // root, -s, -ed, -ing
    spec.morphological_forms = true;  // stemmable synonym groups
    spec.consistent_forms_per_doc = true;
    spec.docs_per_topic = 25;
    spec.mean_doc_len = 30;
    spec.own_topic_prob = 0.7;
    spec.general_prob = 0.4;
    spec.queries_per_topic = 5;
    spec.query_len = 4;
    spec.query_offform_prob = 0.7;  // queries favour inflected variants
    spec.seed = 2300 + s;
    auto corpus = synth::generate_corpus(spec);

    const Result plain = evaluate(corpus, /*stem=*/false);
    const Result stemmed = evaluate(corpus, /*stem=*/true);
    const double kw_gain =
        plain.keyword > 0 ? stemmed.keyword / plain.keyword - 1.0 : 0.0;
    const double lsi_gain =
        plain.lsi > 0 ? stemmed.lsi / plain.lsi - 1.0 : 0.0;
    kw_gain_total += kw_gain;
    lsi_gain_total += lsi_gain;
    std::string collection = "C";
    collection += std::to_string(s + 1);
    table.add_row({std::move(collection), util::fmt(plain.keyword, 3),
                   util::fmt(stemmed.keyword, 3), util::fmt_pct(kw_gain),
                   util::fmt(plain.lsi, 3), util::fmt(stemmed.lsi, 3),
                   util::fmt_pct(lsi_gain)});
  }
  table.print(std::cout, "3-pt average precision (k = 40):");

  std::cout << "\nmean stemming gain: keyword " << util::fmt_pct(
                   kw_gain_total / 4)
            << "   LSI " << util::fmt_pct(lsi_gain_total / 4) << "\n"
            << "Shape to verify: stemming substantially helps literal "
               "matching but adds much\nless on top of LSI — the truncated "
               "SVD already places morphological variants\nnear each other "
               "(the paper's doctor/doctors observation), which is why the "
               "paper\nruns without a stemmer.\n";
  return 0;
}
