// Section 5.7: "Hull and Yang & Chute have used LSI/SVD as the first step
// in conjunction with statistical classification ... Using the LSI-derived
// dimensions effectively reduces the number of predictor variables for
// classification." Nearest-centroid classification on k LSI dimensions vs
// the full weighted term space, over a k sweep.

#include <iostream>

#include "bench_common.hpp"
#include "lsi/classify.hpp"
#include "lsi/lsi_index.hpp"
#include "synth/corpus.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("classification");
  bench::banner("Section 5.7 (LSI + classification)",
                "Nearest-centroid topic classification: k LSI dimensions "
                "vs the full term space.");

  synth::CorpusSpec spec;
  spec.topics = 8;
  spec.concepts_per_topic = 10;
  spec.docs_per_topic = 40;
  spec.own_topic_prob = 0.65;
  spec.general_prob = 0.45;
  spec.polysemy_prob = 0.1;
  spec.consistent_forms_per_doc = true;
  spec.seed = 5150;
  auto corpus = synth::generate_corpus(spec);

  // Full-term-space reference (log x entropy weighted counts).
  core::IndexOptions ref_opts;
  ref_opts.k = 2;
  auto ref_index = core::LsiIndex::try_build(corpus.docs, ref_opts).value();
  const auto dense = ref_index.weighted_matrix().to_dense();

  std::vector<std::size_t> train_y, test_y;
  std::vector<la::Vector> full_train, full_test;
  for (std::size_t d = 0; d < corpus.docs.size(); ++d) {
    la::Vector full(dense.col(d).begin(), dense.col(d).end());
    if (d % 2 == 0) {
      full_train.push_back(std::move(full));
      train_y.push_back(corpus.doc_topics[d]);
    } else {
      full_test.push_back(std::move(full));
      test_y.push_back(corpus.doc_topics[d]);
    }
  }
  core::CentroidClassifier full_clf(full_train, train_y, spec.topics);
  const double full_acc =
      core::classification_accuracy(full_clf, full_test, test_y);

  util::TextTable table({"features", "dimensions", "test accuracy"});
  table.add_row({"full weighted term space",
                 std::to_string(ref_index.vocabulary().size()),
                 util::fmt_pct(full_acc)});

  for (core::index_t k : {2u, 4u, 8u, 16u, 32u, 64u}) {
    core::IndexOptions opts;
    opts.k = k;
    auto index = core::LsiIndex::try_build(corpus.docs, opts).value();
    std::vector<la::Vector> lsi_train, lsi_test;
    for (std::size_t d = 0; d < corpus.docs.size(); ++d) {
      if (d % 2 == 0) {
        lsi_train.push_back(index.space().doc_coords(d));
      } else {
        lsi_test.push_back(index.space().doc_coords(d));
      }
    }
    core::CentroidClassifier clf(lsi_train, train_y, spec.topics);
    table.add_row({"LSI dimensions", std::to_string(index.space().k()),
                   util::fmt_pct(core::classification_accuracy(
                       clf, lsi_test, test_y))});
  }
  table.print(std::cout,
              std::to_string(spec.topics) + "-way topic classification, " +
                  std::to_string(train_y.size()) + " train / " +
                  std::to_string(test_y.size()) + " test documents:");

  std::cout << "\nShape to verify: a few dozen LSI dimensions match (or "
               "beat, thanks to the\nnoise removal) the full term space "
               "with orders of magnitude fewer predictor\nvariables — the "
               "Section 5.7 observation.\n";
  return 0;
}
