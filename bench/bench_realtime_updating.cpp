// Section 5.6 (second open problem): "perform SVD-updating in real-time
// for databases that change frequently". Compares ingestion policies on a
// document stream: pure folding, SVD-update per batch (consolidation), and
// SVD-update per document — per-arrival latency vs final basis quality.

#include <iostream>

#include "bench_common.hpp"
#include "lsi/incremental.hpp"
#include "synth/corpus.hpp"
#include "util/timer.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("realtime_updating");
  bench::banner("Section 5.6 (real-time updating)",
                "Ingestion policies on a live stream: immediate fold-in "
                "with periodic\nSVD-update consolidation bounds both "
                "latency and distortion.");

  synth::CorpusSpec spec;
  spec.topics = 6;
  spec.concepts_per_topic = 10;
  spec.docs_per_topic = 60;
  spec.own_topic_prob = 0.7;
  spec.seed = 4711;
  auto corpus = synth::generate_corpus(spec);

  // Interleaved train/stream split.
  text::Collection train;
  std::vector<std::size_t> stream_ids;
  for (std::size_t d = 0; d < corpus.docs.size(); ++d) {
    if (d % 2 == 0) {
      train.push_back(corpus.docs[d]);
    } else {
      stream_ids.push_back(d);
    }
  }
  core::IndexOptions iopts;
  iopts.k = 30;

  struct Policy {
    const char* name;
    std::size_t consolidate_every;
    bool exact;
  };
  const Policy policies[] = {
      {"fold only (never consolidate)", 0, false},
      {"consolidate every 16 docs", 16, false},
      {"consolidate every 64 docs", 64, false},
      {"exact update every 16 docs", 16, true},
      {"SVD-update every doc", 1, false},
  };

  util::TextTable table({"policy", "mean ms/doc", "max ms/doc",
                         "consolidations", "final ||V^T V - I||_2"});
  for (const auto& policy : policies) {
    core::IncrementalOptions opts;
    opts.consolidate_every = policy.consolidate_every;
    opts.exact_update = policy.exact;
    core::IncrementalIndexer indexer(core::LsiIndex::try_build(train, iopts).value(),
                                     opts);
    double total_ms = 0.0, max_ms = 0.0;
    for (std::size_t id : stream_ids) {
      util::WallTimer t;
      indexer.add(corpus.docs[id]);
      const double ms = t.millis();
      total_ms += ms;
      max_ms = std::max(max_ms, ms);
    }
    table.add_row(
        {policy.name, util::fmt(total_ms / stream_ids.size(), 3),
         util::fmt(max_ms, 2), std::to_string(indexer.consolidations()),
         util::fmt(core::orthogonality_loss(indexer.index().space().v), 6)});
  }
  table.print(std::cout,
              "Streaming " + std::to_string(stream_ids.size()) +
                  " documents into a k = 30 index of " +
                  std::to_string(train.size()) + " documents:");

  std::cout << "\nShape to verify: pure folding is fastest but its basis "
               "distortion grows\nunboundedly; per-document SVD-updating "
               "keeps the basis exact at much higher\nper-arrival cost; "
               "periodic consolidation gets fold-in's mean latency with\n"
               "bounded distortion — the practical answer to the paper's "
               "open problem.\n";
  return 0;
}
