// Figure 7: folding the Table 5 topics (M15, M16) into the existing k = 2
// space. Existing coordinates stay frozen; the new topics are placed at the
// weighted sums of their term vectors (Equation 7).

#include <iostream>

#include "bench_common.hpp"
#include "lsi/folding.hpp"
#include "util/ascii_plot.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("fig7_folding");
  bench::banner("Figure 7",
                "Two-dimensional plot after folding-in topics M15 and M16.");

  auto before = bench::paper_space(2);
  auto space = bench::paper_space(2);
  core::fold_in_documents(space, data::update_document_columns());

  util::AsciiScatter plot(100, 32);
  for (la::index_t i = 0; i < 18; ++i) {
    const auto c = space.term_coords(i);
    plot.add(c[0], c[1], data::table3_terms()[i]);
  }
  for (la::index_t j = 0; j < 16; ++j) {
    const auto c = space.doc_coords(j);
    plot.add(c[0], c[1], bench::med_label(j));
  }
  std::cout << plot.render() << '\n';

  util::TextTable table({"doc", "x", "y"});
  for (la::index_t j = 14; j < 16; ++j) {
    const auto c = space.doc_coords(j);
    table.add_row({bench::med_label(j), util::fmt(c[0]), util::fmt(c[1])});
  }
  table.print(std::cout, "Folded-in coordinates:");

  double frozen = 0.0;
  for (la::index_t j = 0; j < 14; ++j) {
    for (la::index_t i = 0; i < 2; ++i) {
      frozen = std::max(frozen,
                        std::abs(space.v(j, i) - before.v(j, i)));
    }
  }
  std::cout << "\nmax movement of the 14 original documents: "
            << util::fmt(frozen, 6)
            << "  (folding-in freezes existing structure)\n"
            << "orthogonality loss ||V^T V - I||_2 after folding: "
            << util::fmt(core::orthogonality_loss(space.v), 6) << "\n\n"
            << "Paper's observation (Section 3.4): the folded-in M15 fails "
               "to join the\n{M13, M14} rats cluster because the old term "
               "associations cannot move.\n";
  const double m13_m14 = core::document_similarity(space, 12, 13);
  const double m15_m13 = core::document_similarity(space, 14, 12);
  std::cout << "cos(M13, M14) = " << util::fmt(m13_m14, 3)
            << "   cos(M15, M13) = " << util::fmt(m15_m13, 3)
            << "  -> cluster NOT formed: "
            << (m15_m13 < m13_m14 ? "confirmed" : "NOT confirmed") << "\n";
  return 0;
}
