// Section 5.1: LSI vs. the standard SMART keyword vector method across
// several test collections. Paper: "the average precision using LSI ranged
// from comparable to 30% better", with the largest advantage when queries
// and relevant documents share few words and at high recall.

#include <iostream>

#include "baseline/vector_model.hpp"
#include "bench_common.hpp"
#include "eval/metrics.hpp"
#include "lsi/lsi_index.hpp"
#include "synth/corpus.hpp"

namespace {

using namespace lsi;

struct CollectionResult {
  double lsi_ap = 0.0;
  double smart_ap = 0.0;
  double lsi_p_high_recall = 0.0;    // interpolated precision at recall .75
  double smart_p_high_recall = 0.0;
};

CollectionResult run_collection(const synth::SyntheticCorpus& corpus,
                                core::index_t k) {
  core::IndexOptions opts;
  opts.scheme = weighting::kLogEntropy;
  opts.k = k;
  auto index = core::LsiIndex::try_build(corpus.docs, opts).value();
  baseline::VectorSpaceModel vsm(index.weighted_matrix());

  CollectionResult out;
  std::vector<double> l_ap, s_ap, l_hr, s_hr;
  for (const auto& q : corpus.queries) {
    std::vector<la::index_t> lsi_ranked, smart_ranked;
    for (const auto& r : index.query(q.text)) lsi_ranked.push_back(r.doc);
    for (const auto& r : vsm.rank(index.weighted_term_vector(q.text))) {
      smart_ranked.push_back(r.doc);
    }
    l_ap.push_back(
        eval::three_point_average_precision(lsi_ranked, q.relevant));
    s_ap.push_back(
        eval::three_point_average_precision(smart_ranked, q.relevant));
    l_hr.push_back(eval::interpolated_precision(lsi_ranked, q.relevant, 0.75));
    s_hr.push_back(
        eval::interpolated_precision(smart_ranked, q.relevant, 0.75));
  }
  out.lsi_ap = eval::mean(l_ap);
  out.smart_ap = eval::mean(s_ap);
  out.lsi_p_high_recall = eval::mean(l_hr);
  out.smart_p_high_recall = eval::mean(s_hr);
  return out;
}

}  // namespace

int main() {
  bench::StatsSession session("retrieval_vs_smart");
  bench::banner("Section 5.1 (retrieval)",
                "LSI vs. SMART keyword vector method over 5 synthetic "
                "collections\n(3-pt average precision; paper: comparable to "
                "30% better, best at high recall).");

  // Five collections of varying synonymy stress (the knob controlling how
  // many words queries share with relevant documents).
  struct Spec {
    const char* name;
    double offform;
    std::uint64_t seed;
  };
  const Spec specs[] = {
      {"C1 (low synonymy)", 0.10, 101},  {"C2", 0.30, 102},
      {"C3 (medium)", 0.50, 103},        {"C4", 0.70, 104},
      {"C5 (high synonymy)", 0.90, 105},
  };
  // Topic mixing (own_topic_prob < 1) keeps the task honest: documents of
  // different topics share vocabulary, so neither method saturates.

  util::TextTable table({"collection", "SMART AP", "LSI AP", "LSI advantage",
                         "SMART P@R.75", "LSI P@R.75"});
  double total_adv = 0.0;
  for (const auto& s : specs) {
    synth::CorpusSpec spec;
    spec.topics = 8;
    spec.concepts_per_topic = 10;
    spec.shared_concepts = 20;
    spec.docs_per_topic = 25;
    spec.queries_per_topic = 5;
    spec.mean_doc_len = 30;
    spec.general_prob = 0.4;
    spec.own_topic_prob = 0.75;
    spec.query_len = 4;
    spec.polysemy_prob = 0.1;
    spec.query_offform_prob = s.offform;
    spec.seed = s.seed;
    auto result = run_collection(synth::generate_corpus(spec), 50);
    const double adv = result.smart_ap > 0
                           ? (result.lsi_ap / result.smart_ap - 1.0)
                           : 0.0;
    total_adv += adv;
    table.add_row({s.name, util::fmt(result.smart_ap, 3),
                   util::fmt(result.lsi_ap, 3), util::fmt_pct(adv),
                   util::fmt(result.smart_p_high_recall, 3),
                   util::fmt(result.lsi_p_high_recall, 3)});
  }
  table.print(std::cout, "Per-collection results (k = 50):");
  std::cout << "\nmean LSI advantage: " << util::fmt_pct(total_adv / 5)
            << "   (paper: 0%..30% across its 5 collections)\n"
            << "Shape to verify: advantage grows with synonymy stress and "
               "is largest in the\nhigh-recall precision column.\n";
  return 0;
}
