// Sharded scatter-gather serving vs the monolithic batched engine (the
// Section 6 TREC decomposition as a serving architecture; docs/SHARDING.md).
//
// One synthetic collection is built four ways — 1, 2, 4 and 8 shards — and
// compared on build time, batched throughput, single-query tail latency and
// retrieval agreement with the monolithic index:
//
//   * cost rows (split_k_budget = true): the factor budget is split across
//     shards so the total k equals the monolithic budget. This is the
//     "equal total k-budget" contract: shard s scores n/N documents against
//     ~k/N factors, so scatter-gather buys both less arithmetic per query
//     AND parallelism across shards. The >= 1.5x q/s gate at 4 shards runs
//     against these builds.
//   * quality rows (split_k_budget = false): every shard keeps the full
//     factor budget, the configuration the TREC decomposition actually used
//     (each subcollection got its own adequately-sized SVD). overlap@10
//     against the monolithic top-10 document set is measured here — under a
//     split budget a shard's space cannot express what the monolithic one
//     can, which would conflate budget starvation with the decomposition's
//     own rank-blending cost. The >= 0.8 overlap gate runs at 4 shards.
//
// With 1 shard the sharded path must be bit-identical to BatchedRetriever
// over the monolithic index (exact doc order and cosine bits) — checked in
// both quick and full mode; any divergence fails the bench.

#include <algorithm>
#include <cstddef>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "lsi/lsi.hpp"
#include "synth/corpus.hpp"
#include "util/timer.hpp"

namespace {

using namespace lsi;

// Topic size ~ top_z, shared general vocabulary, dominant-form queries: the
// regime (same as the sharded parity tests) where every shard's
// independently-estimated space recovers the same topical structure, so
// overlap@10 measures the decomposition's fidelity rather than fine-grained
// cross-shard score calibration, which sharding deliberately gives up.
// The vocabulary is kept small relative to the document count (one surface
// form per concept, few concepts per topic): per-query cost is projection
// (m·k, which sharding cannot shrink — every shard sees the shared
// vocabulary) plus scoring (n·k, which the split budget divides by N), so
// n >> m is the regime where the equal-budget arithmetic savings are
// measurable even without scatter parallelism (single-core runners).
synth::SyntheticCorpus bench_corpus(bool quick) {
  synth::CorpusSpec spec;
  spec.topics = quick ? 16 : 90;
  spec.concepts_per_topic = 3;
  spec.forms_per_concept = 1;  // no synonymy: this bench measures serving cost
  spec.shared_concepts = 10;
  spec.docs_per_topic = quick ? 8 : 10;  // 128 docs quick, 900 full
  spec.mean_doc_len = 50.0;
  spec.general_prob = 0.15;
  spec.polysemy_prob = 0.0;
  spec.queries_per_topic = quick ? 2 : 1;
  spec.query_len = 3;
  spec.query_offform_prob = 0.0;
  spec.seed = 9381;
  return synth::generate_corpus(spec);
}

double p99_of(std::vector<double> samples_ms) {
  std::sort(samples_ms.begin(), samples_ms.end());
  const std::size_t idx = (samples_ms.size() * 99) / 100;
  return samples_ms[std::min(idx, samples_ms.size() - 1)];
}

bool bit_identical(const std::vector<core::ScoredDoc>& a,
                   const std::vector<core::ScoredDoc>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].doc != b[i].doc || a[i].cosine != b[i].cosine) return false;
  }
  return true;
}

}  // namespace

int main() {
  bench::banner("the Section 6 subcollection decomposition",
                "Sharded scatter-gather serving: build time, q/s, p99 and "
                "overlap@10 at 1/2/4/8 shards vs the monolithic index");

  // Timed regions stay sink-free (install = false); one instrumented
  // scatter-gather pass at the end populates the sharding.* spans/counters
  // of BENCH_sharded_retrieval.json.
  const bool quick = bench::quick_mode();
  bench::StatsSession stats("sharded_retrieval", /*install=*/false);

  const auto corpus = bench_corpus(quick);
  core::IndexOptions iopts;
  iopts.k = quick ? 24 : 96;  // the TOTAL factor budget for the cost rows

  std::vector<std::string> texts;
  for (const auto& q : corpus.queries) texts.push_back(q.text);
  const std::size_t total_queries = quick ? 64 : 320;  // stream length
  const std::size_t kBatch = 16;
  const std::size_t kLatencyProbes = quick ? 40 : 200;
  const int kReps = quick ? 1 : 3;
  const std::size_t top_z = 10;

  stats.param("n_docs", static_cast<double>(corpus.docs.size()));
  stats.param("k_total", static_cast<double>(iopts.k));
  stats.param("distinct_queries", static_cast<double>(texts.size()));
  stats.param("stream_queries", static_cast<double>(total_queries));
  stats.param("quick", quick ? 1.0 : 0.0);

  core::SearchOptions qopts;
  qopts.z = top_z;

  // Pre-assembled query batches: every shard count pays identical stream
  // preparation cost, so the timed loops measure only scatter-gather.
  std::vector<std::vector<std::string>> batches;
  for (std::size_t lo = 0; lo < total_queries; lo += kBatch) {
    std::vector<std::string> block;
    for (std::size_t q = lo; q < std::min(total_queries, lo + kBatch); ++q) {
      block.push_back(texts[q % texts.size()]);
    }
    batches.push_back(std::move(block));
  }

  // --- monolithic reference -----------------------------------------------
  util::WallTimer timer;
  auto mono_built = core::LsiIndex::try_build(corpus.docs, iopts);
  if (!mono_built.ok()) {
    std::cerr << "monolithic build failed: " << mono_built.status().to_string()
              << "\n";
    return 1;
  }
  const double mono_build_s = timer.seconds();
  const auto& mono = *mono_built;
  stats.param("mono_build_s", mono_build_s);
  std::cout << "collection: " << corpus.docs.size() << " docs, "
            << mono.space().num_terms() << " terms, k = " << iopts.k
            << " (monolithic build " << util::fmt(mono_build_s, 2) << " s)\n\n";

  // Monolithic top-10 document sets, the overlap@10 reference.
  std::vector<std::set<core::index_t>> mono_sets;
  for (const auto& t : texts) {
    std::set<core::index_t> s;
    for (const auto& hit : mono.query(t, qopts.query_options(), nullptr)) {
      s.insert(hit.doc);
    }
    mono_sets.push_back(std::move(s));
  }

  // Monolithic batched rankings over the first batch — the N = 1 bit-parity
  // reference (Equation 6 projection + batched scoring, exact bits).
  std::vector<la::Vector> ref_vectors;
  for (const auto& t : batches.front()) {
    ref_vectors.push_back(mono.weighted_term_vector(t));
  }
  const auto ref_rankings =
      core::BatchedRetriever(mono.space())
          .rank(core::QueryBatch::from_term_vectors(mono.space(), ref_vectors),
                qopts);

  // N = 8 runs in BOTH modes: its overlap row is the pre-fusion baseline the
  // gather-fusion bench (bench_gather_fusion) measures its win against.
  const std::vector<std::size_t> shard_counts = {1, 2, 4, 8};

  util::TextTable table({"shards", "shard k", "build s", "q/s (b=16)",
                         "speedup", "p99 ms", "overlap@10"});
  double qps_at_1 = 0.0, qps_at_4 = 0.0, overlap_at_4 = 0.0;
  double overlap_at_8 = 0.0;
  core::ShardedSnapshot instrumented_snap({});
  bool have_instrumented = false;

  for (const std::size_t shards : shard_counts) {
    // Cost build: equal total k-budget, the configuration the throughput
    // gate compares under.
    core::ShardingOptions eq;
    eq.num_shards = shards;
    eq.index = iopts;  // split_k_budget defaults to true
    timer.reset();
    auto eq_built = core::ShardedIndex::try_build(corpus.docs, eq);
    if (!eq_built.ok()) {
      std::cerr << shards << " shards: build failed: "
                << eq_built.status().to_string() << "\n";
      return 1;
    }
    const double build_s = timer.seconds();
    const auto snap = eq_built->snapshot();

    if (shards == 1) {
      // Bit-parity: with one shard the scatter is one BatchedRetriever pass
      // and the gather a truncation, so cosines must match to the bit.
      const auto got = snap.rank_batch(batches.front(), qopts);
      if (got.size() != ref_rankings.size()) {
        std::cerr << "FAIL: 1-shard batch size diverged\n";
        return 1;
      }
      for (std::size_t b = 0; b < got.size(); ++b) {
        if (!bit_identical(got[b], ref_rankings[b])) {
          std::cerr << "FAIL: 1-shard ranking for query " << b
                    << " is not bit-identical to BatchedRetriever\n";
          return 1;
        }
      }
      std::cout << "1-shard rankings are bit-identical to the monolithic "
                   "batched engine (doc order and cosine bits).\n\n";
    }

    // Throughput: the whole stream in batches of 16, best of kReps sweeps.
    double stream_s = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      timer.reset();
      for (const auto& block : batches) {
        const auto ranked = snap.rank_batch(block, qopts);
        if (ranked.size() != block.size()) {
          std::cerr << "short batch result\n";
          return 1;
        }
      }
      const double s = timer.seconds();
      if (rep == 0 || s < stream_s) stream_s = s;
    }
    const double qps = static_cast<double>(total_queries) / stream_s;

    // Tail latency: single-query scatter-gather probes.
    std::vector<double> lat_ms;
    lat_ms.reserve(kLatencyProbes);
    for (std::size_t i = 0; i < kLatencyProbes; ++i) {
      const auto& t = texts[i % texts.size()];
      timer.reset();
      const auto ranked = snap.retrieve(t, qopts);
      lat_ms.push_back(timer.millis());
      if (ranked.empty()) {
        std::cerr << "empty ranking in latency probe\n";
        return 1;
      }
    }
    const double p99 = p99_of(std::move(lat_ms));

    // Quality build: full per-shard budget (the TREC configuration), the
    // regime the overlap@10 gate runs under. With N = 1 it is the
    // monolithic index again, so overlap is exactly 1.
    core::ShardingOptions fb = eq;
    fb.split_k_budget = false;
    auto fb_built = core::ShardedIndex::try_build(corpus.docs, fb);
    if (!fb_built.ok()) {
      std::cerr << shards << " shards (full budget): build failed: "
                << fb_built.status().to_string() << "\n";
      return 1;
    }
    const auto fb_ranked = fb_built->snapshot().rank_batch(texts, qopts);
    double overlap_sum = 0.0;
    for (std::size_t b = 0; b < texts.size(); ++b) {
      std::size_t hits = 0;
      for (const auto& sd : fb_ranked[b]) hits += mono_sets[b].count(sd.doc);
      overlap_sum += static_cast<double>(hits) / static_cast<double>(top_z);
    }
    const double overlap = overlap_sum / static_cast<double>(texts.size());

    if (shards == 1) qps_at_1 = qps;
    if (shards == 4) {
      qps_at_4 = qps;
      overlap_at_4 = overlap;
      instrumented_snap = snap;
      have_instrumented = true;
    }
    if (shards == 8) overlap_at_8 = overlap;
    const double speedup = qps_at_1 > 0.0 ? qps / qps_at_1 : 0.0;

    table.add_row({util::fmt_int(static_cast<long long>(shards)),
                   util::fmt_int(static_cast<long long>(eq.shard_k(0))),
                   util::fmt(build_s, 2), util::fmt(qps, 0),
                   util::fmt(speedup, 2), util::fmt(p99, 3),
                   util::fmt(overlap, 3)});
    std::string suffix = "_s";
    suffix += std::to_string(shards);
    stats.param("build_s" + suffix, build_s);
    stats.param("qps" + suffix, qps);
    stats.param("speedup" + suffix, speedup);
    stats.param("p99_ms" + suffix, p99);
    stats.param("overlap10" + suffix, overlap);
  }

  // The raw-cosine gather's overlap@10 at 8 shards, under its own name: the
  // PRE-FUSION baseline bench_gather_fusion's exchange + fusion gates are
  // measured against (docs/GATHER.md).
  stats.param("pre_fusion_overlap10_n8", overlap_at_8);

  std::string caption = "Sharded scatter-gather vs monolithic (";
  caption += std::to_string(corpus.docs.size());
  caption += " docs, total k = ";
  caption += std::to_string(iopts.k);
  caption += ", top-10, ";
  caption += std::to_string(total_queries);
  caption += " queries; overlap rows use the full per-shard budget)";
  table.print(std::cout, caption);

  // One instrumented scatter-gather pass (sink installed, outside every
  // timed region) populates the sharding.scatter / sharding.gather spans and
  // the sharding.* counters of the stats document.
  if (have_instrumented) {
    obs::ScopedSink scoped(&stats.sink());
    core::QueryStats qs;
    const auto ranked = instrumented_snap.rank_batch(batches.front(), qopts, &qs);
    if (ranked.size() != batches.front().size()) return 1;
    stats.param("instrumented_project_s", qs.project_seconds);
    stats.param("instrumented_score_s", qs.score_seconds);
    stats.param("instrumented_select_s", qs.select_seconds);
  }

  if (!quick) {
    bool failed = false;
    const double speedup4 = qps_at_4 / qps_at_1;
    if (speedup4 < 1.5) {
      std::cerr << "\nFAIL: expected >= 1.5x q/s at 4 shards vs 1 shard at "
                   "equal total k-budget, got "
                << util::fmt(speedup4, 2) << "x\n";
      failed = true;
    }
    if (overlap_at_4 < 0.8) {
      std::cerr << "\nFAIL: expected overlap@10 >= 0.8 at 4 shards vs the "
                   "monolithic index, got "
                << util::fmt(overlap_at_4, 3) << "\n";
      failed = true;
    }
    if (failed) return 1;
    std::cout << "\nGates: q/s at 4 shards = " << util::fmt(speedup4, 2)
              << "x 1-shard (>= 1.5x required); overlap@10 at 4 shards = "
              << util::fmt(overlap_at_4, 3) << " (>= 0.8 required).\n";
  }
  return 0;
}
