// Section 5.3 (TREC) / 5.6: computing the truncated SVD of large sparse
// term-document matrices. The paper's data point: a 70,000 x 90,000 sample
// with 0.001-0.002% nonzeros, A_200 via single-vector Lanczos, ~18 h on a
// SPARCstation 10. This bench reproduces the *scaling shape* on matrices
// our test machine handles in seconds: time grows with nnz, dimensions and
// k, and the Section 4.2 cost skeleton I*cost(G^T G x) + trp*cost(G x)
// predicts the ordering.

#include <iostream>

#include "bench_common.hpp"
#include "la/lanczos.hpp"
#include "synth/sparse_random.hpp"
#include "util/timer.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("trec_scale");
  bench::banner("Section 5.3/5.6 (TREC-scale computation)",
                "Lanczos truncated-SVD wall time vs. matrix size, density "
                "and k.");

  struct Case {
    la::index_t m, n;
    double density;
    la::index_t k;
  };
  const Case cases[] = {
      {2000, 1000, 0.005, 25},  {4000, 2000, 0.005, 25},
      {8000, 4000, 0.005, 25},  {16000, 8000, 0.005, 25},
      {8000, 4000, 0.0025, 25}, {8000, 4000, 0.01, 25},
      {8000, 4000, 0.005, 12},  {8000, 4000, 0.005, 50},
  };

  util::TextTable table({"m", "n", "nnz", "k", "steps I", "matvecs",
                         "time (s)", "s per (I*nnz) x 1e9"});
  for (const auto& c : cases) {
    auto a = synth::random_sparse_matrix(c.m, c.n, c.density, 4242);
    la::LanczosOptions opts;
    opts.k = c.k;
    la::LanczosStats stats;
    util::WallTimer timer;
    auto svd = la::lanczos_svd(a, opts, &stats);
    const double secs = timer.seconds();
    const double per_work =
        secs / (static_cast<double>(stats.steps) *
                static_cast<double>(a.nnz())) * 1e9;
    table.add_row({std::to_string(c.m), std::to_string(c.n),
                   std::to_string(a.nnz()), std::to_string(c.k),
                   std::to_string(stats.steps),
                   std::to_string(stats.matvecs + stats.matvecs_transpose),
                   util::fmt(secs, 3), util::fmt(per_work, 2)});
    if (svd.s.size() >= 2 && svd.s[1] > svd.s[0]) {
      std::cerr << "unsorted singular values!\n";
      return 1;
    }
  }
  table.print(std::cout, "Lanczos scaling (full reorthogonalization):");

  std::cout << "\nShape to verify against the paper's Section 4.2 cost "
               "model: time scales\nroughly with I * (nnz + reorth), "
               "doubling m,n (at fixed density, i.e. 4x nnz)\nroughly "
               "quadruples time; halving/doubling density moves time "
               "proportionally;\nlarger k needs more steps. The paper's "
               "70k x 90k / k=200 run is this same\ncomputation scaled up "
               "~3 orders of magnitude (18 h on 1995 hardware).\n";
  return 0;
}
