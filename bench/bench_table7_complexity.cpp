// Table 7: computational complexity of the updating methods — the flop
// model evaluated over a sweep of added documents/terms, plus measured wall
// times of our implementations, confirming the paper's two claims:
//   * folding-in costs far less than SVD-updating when d << n;
//   * SVD-updating's expense is dominated by the (2k^2 - k)(m + n) dense
//     rotations, yet it stays far cheaper than recomputing for large sparse
//     matrices.

#include <iostream>

#include "bench_common.hpp"
#include "lsi/flops.hpp"
#include "lsi/folding.hpp"
#include "lsi/update.hpp"
#include "synth/sparse_random.hpp"
#include "util/timer.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("table7_complexity");
  bench::banner("Table 7",
                "Computational complexity of updating methods: flop model + "
                "measured times.");

  // Model sweep at TREC-ish shape (scaled): m = 20000 terms, n = 10000
  // docs, k = 100, Lanczos I = 1.5 k, trp = k.
  {
    core::FlopModelParams x;
    x.m = 20000;
    x.n = 10000;
    x.k = 100;
    x.iterations = 150;
    x.triplets = 100;
    const std::uint64_t nnz_per_doc = 60;
    x.nnz_a = (x.n) * nnz_per_doc;

    util::TextTable table({"p (new docs)", "fold-in docs (Mflop)",
                           "SVD-update docs (Mflop)",
                           "recompute (Mflop)", "fold/update ratio"});
    for (std::uint64_t p : {1u, 10u, 100u, 1000u, 10000u}) {
      x.p = p;
      x.nnz_d = p * nnz_per_doc;
      core::FlopModelParams xr = x;
      xr.nnz_a = (x.n + p) * nnz_per_doc;
      const double fold = static_cast<double>(core::flops_fold_documents(x)) / 1e6;
      const double update =
          static_cast<double>(core::flops_update_documents(x)) / 1e6;
      const double recompute =
          static_cast<double>(core::flops_recompute(xr)) / 1e6;
      table.add_row({std::to_string(p), util::fmt(fold, 1),
                     util::fmt(update, 1), util::fmt(recompute, 1),
                     util::fmt(fold / update, 4)});
    }
    table.print(std::cout,
                "Flop model, documents phase (m=20000, n=10000, k=100, "
                "I=150, trp=100):");
    std::cout << '\n';
  }

  {
    core::FlopModelParams x;
    x.m = 20000;
    x.n = 10000;
    x.k = 100;
    x.iterations = 150;
    x.triplets = 100;
    util::TextTable table({"q (new terms)", "fold-in terms (Mflop)",
                           "SVD-update terms (Mflop)"});
    for (std::uint64_t q : {1u, 10u, 100u, 1000u}) {
      x.q = q;
      x.nnz_t = q * 30;
      table.add_row(
          {std::to_string(q),
           util::fmt(static_cast<double>(core::flops_fold_terms(x)) / 1e6, 1),
           util::fmt(static_cast<double>(core::flops_update_terms(x)) / 1e6,
                     1)});
    }
    table.print(std::cout, "Flop model, terms phase:");
    std::cout << '\n';
  }

  // Measured wall times on a real mid-size problem.
  {
    const la::index_t m = 3000, n = 1500, k = 50;
    auto a = synth::random_sparse_matrix(m, n, 0.01, 17);
    auto base = core::try_build_semantic_space(a, k).value();

    util::TextTable table({"p (new docs)", "fold-in (ms)",
                           "SVD-update (ms)", "recompute (ms)"});
    for (la::index_t p : {1u, 8u, 64u, 256u}) {
      auto d = synth::random_sparse_matrix(m, p, 0.01, 18 + p);

      auto folded = base;
      util::WallTimer t1;
      core::fold_in_documents(folded, d);
      const double fold_ms = t1.millis();

      auto updated = base;
      util::WallTimer t2;
      core::update_documents(updated, d);
      const double update_ms = t2.millis();

      util::WallTimer t3;
      auto recomputed = core::try_build_semantic_space(a.with_appended_cols(d), k).value();
      const double recompute_ms = t3.millis();

      table.add_row({std::to_string(p), util::fmt(fold_ms, 1),
                     util::fmt(update_ms, 1), util::fmt(recompute_ms, 1)});
    }
    table.print(std::cout,
                "Measured wall time (m=3000, n=1500, k=50, density 1%):");
  }

  std::cout << "\nShape to verify against the paper: fold-in << SVD-update "
               "<< recompute for small p;\nSVD-update cost is nearly flat "
               "in p (dense rotations dominate).\n\nNote on the flop model "
               "vs the measured times: Table 7's recompute row (like\nthe "
               "paper's) counts only the matvec work I*4nnz + trp*2nnz; it "
               "omits the\nLanczos reorthogonalization, whose O(I^2 (m+n)) "
               "flops dominate recomputation\nin practice. That is why the "
               "measured recompute column is far slower than its\nmodeled "
               "flops suggest, and why updating wins in wall time even "
               "where the raw\nmodel says otherwise.\n";
  return 0;
}
