// Section 5.1 (term weighting): performance of local x global weighting
// schemes. Paper: "a log transformation of the local cell entries combined
// with a global entropy weight for terms is the most effective ... averaged
// over five test collections, log x entropy weighting was 40% more
// effective than raw term weighting."

#include <iostream>

#include "bench_common.hpp"
#include "eval/metrics.hpp"
#include "lsi/lsi_index.hpp"
#include "synth/corpus.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("weighting");
  bench::banner("Section 5.1 (term weighting)",
                "Average precision of 4 local x 5 global weighting schemes "
                "over 5 collections.");

  // Collections with frequency dispersion so weighting has signal to use:
  // longer docs, more shared vocabulary.
  std::vector<synth::SyntheticCorpus> collections;
  for (std::uint64_t s = 0; s < 5; ++s) {
    // Dominated by general vocabulary (80% of tokens) with Zipf-heavy
    // frequencies: raw term frequency drowns the topical signal in exactly
    // the way entropy/log weighting is designed to fix.
    synth::CorpusSpec spec;
    spec.topics = 10;
    spec.concepts_per_topic = 8;
    spec.shared_concepts = 50;
    spec.general_prob = 0.8;
    spec.general_zipf = 1.3;
    spec.own_topic_prob = 0.5;
    spec.mean_doc_len = 60;
    spec.docs_per_topic = 20;
    spec.queries_per_topic = 4;
    spec.query_len = 3;
    spec.query_offform_prob = 0.5;
    spec.polysemy_prob = 0.1;
    spec.seed = 600 + s;
    collections.push_back(synth::generate_corpus(spec));
  }

  auto evaluate_scheme = [&](const weighting::Scheme& scheme) {
    std::vector<double> per_collection;
    for (const auto& corpus : collections) {
      core::IndexOptions opts;
      opts.scheme = scheme;
      opts.k = 24;
      auto index = core::LsiIndex::try_build(corpus.docs, opts).value();
      std::vector<double> scores;
      for (const auto& q : corpus.queries) {
        std::vector<la::index_t> ranked;
        for (const auto& r : index.query(q.text)) ranked.push_back(r.doc);
        scores.push_back(
            eval::three_point_average_precision(ranked, q.relevant));
      }
      per_collection.push_back(eval::mean(scores));
    }
    return eval::mean(per_collection);
  };

  const double raw_ap = evaluate_scheme(weighting::kRaw);
  util::TextTable table({"scheme (local x global)", "mean AP",
                         "vs raw tf"});
  double best_ap = 0.0;
  std::string best_name;
  for (const auto& scheme : weighting::all_schemes()) {
    const double ap = evaluate_scheme(scheme);
    if (ap > best_ap) {
      best_ap = ap;
      best_name = weighting::name(scheme);
    }
    table.add_row({weighting::name(scheme), util::fmt(ap, 3),
                   util::fmt_pct(raw_ap > 0 ? ap / raw_ap - 1.0 : 0.0)});
  }
  table.print(std::cout, "Mean 3-pt average precision over 5 collections "
                         "(k = 24):");

  const double logent_ap = evaluate_scheme(weighting::kLogEntropy);
  std::cout << "\nbest scheme: " << best_name << " (AP "
            << util::fmt(best_ap, 3) << ")\n"
            << "log x entropy vs raw: "
            << util::fmt_pct(raw_ap > 0 ? logent_ap / raw_ap - 1.0 : 0.0)
            << "   (paper: ~+40%)\n"
            << "Shape to verify: log x entropy at or near the top; raw tf "
               "near the bottom.\n";
  return 0;
}
