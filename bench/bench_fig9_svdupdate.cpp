// Figure 9: SVD-updating the k = 2 space with topics M15 and M16. The
// clustering must resemble Figure 8 (recomputing) rather than Figure 7
// (folding-in): the rats cluster forms and M16 moves toward the centroid of
// depressed/patients/pressure/fast.

#include <iostream>

#include "bench_common.hpp"
#include "lsi/folding.hpp"
#include "lsi/update.hpp"
#include "util/ascii_plot.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("fig9_svdupdate");
  bench::banner("Figure 9",
                "SVD-updating with topics M15 and M16 (documents phase, "
                "B = (A_k | D)).");

  auto updated = bench::paper_space(2);
  core::update_documents(updated, data::update_document_columns());
  core::align_signs_to(updated, data::figure5_u2());

  util::AsciiScatter plot(100, 32);
  for (la::index_t i = 0; i < 18; ++i) {
    const auto c = updated.term_coords(i);
    plot.add(c[0], c[1], data::table3_terms()[i]);
  }
  for (la::index_t j = 0; j < 16; ++j) {
    const auto c = updated.doc_coords(j);
    plot.add(c[0], c[1], bench::med_label(j));
  }
  std::cout << plot.render() << '\n';

  // Compare all three update strategies on reconstruction fidelity and the
  // cluster the paper highlights.
  auto folded = bench::paper_space(2);
  core::fold_in_documents(folded, data::update_document_columns());
  const auto full = data::table3_counts().with_appended_cols(
      data::update_document_columns());
  auto recomputed = core::try_build_semantic_space(full, 2).value();

  auto frob_err = [&](const core::SemanticSpace& s) {
    auto diff = full.to_dense();
    diff.add_scaled(s.reconstruct(), -1.0);
    return diff.frobenius_norm();
  };
  auto rats = [&](const core::SemanticSpace& s) {
    return std::min(core::document_similarity(s, 12, 14),
                    core::document_similarity(s, 13, 14));
  };

  util::TextTable table(
      {"method", "||A~ - reconstruction||_F", "min cos in {M13,M14,M15}",
       "||V^T V - I||_2"});
  table.add_row({"folding-in", util::fmt(frob_err(folded), 4),
                 util::fmt(rats(folded), 3),
                 util::fmt(core::orthogonality_loss(folded.v), 6)});
  table.add_row({"SVD-updating", util::fmt(frob_err(updated), 4),
                 util::fmt(rats(updated), 3),
                 util::fmt(core::orthogonality_loss(updated.v), 6)});
  table.add_row({"recompute", util::fmt(frob_err(recomputed), 4),
                 util::fmt(rats(recomputed), 3),
                 util::fmt(core::orthogonality_loss(recomputed.v), 6)});
  table.print(std::cout, "Folding-in vs SVD-updating vs recompute:");

  std::cout << "\npaper's claims: SVD-updating clusters like recomputing "
               "(Figures 8 vs 9 similar),\nfolding-in does not (Figure 7); "
               "SVD-updating preserves orthogonality, folding-in\ncorrupts "
               "it (Section 4.3).\n";
  return 0;
}
