// Solver comparison (SVDPACK had several Lanczos/subspace methods; Berry's
// survey [2] covers the trade-offs): our GKL Lanczos vs block subspace
// iteration vs dense Jacobi, on agreement and wall time.

#include <cmath>
#include <iostream>
#include <tuple>

#include "bench_common.hpp"
#include "la/jacobi_svd.hpp"
#include "la/lanczos.hpp"
#include "la/subspace.hpp"
#include "synth/sparse_random.hpp"
#include "util/timer.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("svd_solvers");
  bench::banner("SVD solver comparison (substrate ablation)",
                "GKL Lanczos (full reorthogonalization) vs block subspace "
                "iteration vs dense\none-sided Jacobi.");

  util::TextTable table({"m x n", "k", "solver", "time (ms)",
                         "max sigma dev vs Jacobi", "work"});
  for (auto [m, n, k] : {std::tuple{400, 250, 10}, std::tuple{1200, 700, 25},
                         std::tuple{2400, 1500, 25}}) {
    auto a = synth::random_sparse_matrix(m, n, 0.02, 31337);
    const std::string shape =
        std::to_string(m) + " x " + std::to_string(n);

    util::WallTimer tj;
    auto jac = la::jacobi_svd(a.to_dense());
    const double jac_ms = tj.millis();
    table.add_row({shape, std::to_string(k), "dense Jacobi",
                   util::fmt(jac_ms, 1), "0 (reference)",
                   "full spectrum"});

    la::LanczosOptions lopts;
    lopts.k = k;
    la::LanczosStats lstats;
    util::WallTimer tl;
    auto lz = la::lanczos_svd(a, lopts, &lstats);
    const double lz_ms = tl.millis();
    double lz_dev = 0.0;
    for (la::index_t i = 0; i < static_cast<la::index_t>(k); ++i) {
      lz_dev = std::max(lz_dev, std::fabs(lz.s[i] - jac.s[i]) / jac.s[0]);
    }
    table.add_row({shape, std::to_string(k), "GKL Lanczos",
                   util::fmt(lz_ms, 1), util::fmt(lz_dev, 10),
                   std::to_string(lstats.steps) + " steps"});

    la::SubspaceOptions sopts;
    sopts.k = k;
    la::SubspaceStats sstats;
    util::WallTimer ts;
    auto ss = la::subspace_svd(a, sopts, &sstats);
    const double ss_ms = ts.millis();
    double ss_dev = 0.0;
    for (la::index_t i = 0; i < static_cast<la::index_t>(k); ++i) {
      ss_dev = std::max(ss_dev, std::fabs(ss.s[i] - jac.s[i]) / jac.s[0]);
    }
    table.add_row({shape, std::to_string(k), "subspace iteration",
                   util::fmt(ss_ms, 1), util::fmt(ss_dev, 10),
                   std::to_string(sstats.iterations) + " block iters"});
  }
  table.print(std::cout, "Random sparse matrices, density 2%:");

  std::cout << "\nShape to verify: both iterative solvers agree with the "
               "dense reference to\n~1e-9 relative; Lanczos converges in "
               "far fewer operator applications; dense\nJacobi is "
               "uncompetitive beyond toy sizes (hence the paper computes "
               "truncated\nSVDs with Lanczos-type methods).\n";
  return 0;
}
