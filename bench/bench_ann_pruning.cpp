// Cluster-pruned vs exact retrieval at corpus scale (ROADMAP item 3: the
// exact Equation-6 sweep is O(n*k) per query, which caps corpus size; the
// AnnIndex makes candidate generation sub-linear at a measured recall).
//
// The space is synthesized directly at the reduced layer — V rows drawn
// around topic centers on the unit sphere, sigma descending — because
// pruning quality and throughput depend only on the document-coordinate
// geometry, not on how an SVD produced it (no 1M-document decomposition
// needed). Queries enter pre-projected (QueryBatch::from_projected), near a
// topic center each, so every ranked list has real structure to find.
//
// Full mode (the CI gate): n = 1,000,000 documents at k = 32. The bench
// measures the exact sweep, then the pruned path across a sweep of nprobe
// values, and PASSES only if some operating point reaches >= 10x the exact
// throughput at recall@10 >= 0.95. Quick mode (LSI_BENCH_QUICK=1) shrinks
// to 20k documents and skips the hard gate (smoke + stats emission only).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <set>
#include <vector>

#include "bench_common.hpp"
#include "lsi/ann.hpp"
#include "lsi/batched_retrieval.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace lsi;

/// V rows = unit(topic center + noise * gauss); centers are unit vectors.
std::shared_ptr<core::SemanticSpace> clustered_space(core::index_t n,
                                                     core::index_t k,
                                                     core::index_t topics,
                                                     double noise,
                                                     util::Rng& rng) {
  std::vector<std::vector<double>> centers(topics, std::vector<double>(k));
  for (auto& c : centers) {
    double norm = 0.0;
    for (auto& x : c) {
      x = rng.normal();
      norm += x * x;
    }
    norm = std::sqrt(norm);
    for (auto& x : c) x /= norm;
  }

  auto space = std::make_shared<core::SemanticSpace>();
  space->u = la::DenseMatrix(k, k);  // unused by pre-projected queries
  space->v = la::DenseMatrix(n, k);
  space->sigma.resize(k);
  for (core::index_t i = 0; i < k; ++i) {
    space->sigma[i] = 50.0 * std::pow(static_cast<double>(i + 1), -0.7);
  }
  for (core::index_t d = 0; d < n; ++d) {
    const auto& c = centers[d % topics];
    double norm = 0.0;
    for (core::index_t i = 0; i < k; ++i) {
      const double x = c[i] + noise * rng.normal();
      space->v(d, i) = x;
      norm += x * x;
    }
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (core::index_t i = 0; i < k; ++i) space->v(d, i) /= norm;
    }
  }
  space->prewarm_doc_norms();
  return space;
}

/// Pre-projected queries, each near a random document's topic center.
std::vector<la::Vector> projected_queries(const core::SemanticSpace& space,
                                          std::size_t count, double noise,
                                          util::Rng& rng) {
  const core::index_t k = space.k();
  const core::index_t n = space.num_docs();
  std::vector<la::Vector> queries;
  queries.reserve(count);
  for (std::size_t q = 0; q < count; ++q) {
    const core::index_t anchor = rng.uniform_index(n);
    la::Vector v(k);
    for (core::index_t i = 0; i < k; ++i) {
      v[i] = space.v(anchor, i) + noise * rng.normal();
    }
    queries.push_back(std::move(v));
  }
  return queries;
}

double recall_at_10(const std::vector<std::vector<core::ScoredDoc>>& truth,
                    const std::vector<std::vector<core::ScoredDoc>>& got) {
  double hit = 0.0, want = 0.0;
  for (std::size_t q = 0; q < truth.size(); ++q) {
    std::set<core::index_t> t;
    for (const auto& d : truth[q]) t.insert(d.doc);
    for (const auto& d : got[q]) hit += t.count(d.doc);
    want += static_cast<double>(t.size());
  }
  return want > 0.0 ? hit / want : 1.0;
}

}  // namespace

int main() {
  bench::banner("cluster-pruned candidate generation",
                "Queries/sec and recall@10: exact Equation-6 sweep vs the "
                "AnnIndex pruned path (synthetic clustered corpus)");

  const bool quick = bench::quick_mode();
  bench::StatsSession stats("ann_pruning", /*install=*/false);

  const core::index_t n = quick ? 20'000 : 1'000'000;
  const core::index_t k = 32;
  const core::index_t topics = quick ? 64 : 1000;
  const std::size_t total_queries = quick ? 64 : 256;
  const std::size_t kBatch = 16;

  util::Rng rng(4242);
  util::WallTimer timer;
  auto space = clustered_space(n, k, topics, 0.15, rng);
  const double synth_s = timer.seconds();
  const auto queries = projected_queries(*space, total_queries, 0.05, rng);
  std::cout << "corpus: " << n << " documents, k = " << k << ", " << topics
            << " topics (synthesized in " << util::fmt(synth_s, 1) << " s)\n";

  core::AnnOptions aopts;
  aopts.exact_cutoff = 0;
  timer.reset();
  const auto ann = core::AnnIndex::build(*space, aopts, 1);
  const double build_s = timer.seconds();
  if (ann == nullptr) {
    std::cerr << "FAIL: AnnIndex::build returned no structure\n";
    return 1;
  }
  std::cout << "ann: " << ann->num_centroids() << " centroids, built in "
            << util::fmt(build_s, 1) << " s\n\n";

  stats.param("n_docs", static_cast<double>(n));
  stats.param("k", static_cast<double>(k));
  stats.param("queries", static_cast<double>(total_queries));
  stats.param("centroids", static_cast<double>(ann->num_centroids()));
  stats.param("ann_build_s", build_s);
  stats.param("quick", quick ? 1.0 : 0.0);

  const core::BatchedRetriever retriever(space, ann);
  std::vector<core::QueryBatch> batches;
  for (std::size_t lo = 0; lo < total_queries; lo += kBatch) {
    const std::vector<la::Vector> block(
        queries.begin() + lo,
        queries.begin() + std::min(total_queries, lo + kBatch));
    batches.push_back(core::QueryBatch::from_projected(*space, block));
  }

  // --- exact reference (and its throughput) -------------------------------
  core::SearchOptions eopts;
  eopts.search = core::SearchMode::kExact;
  eopts.z = 10;
  std::vector<std::vector<core::ScoredDoc>> exact;
  timer.reset();
  for (const auto& batch : batches) {
    auto ranked = retriever.rank(batch, eopts);
    for (auto& r : ranked) exact.push_back(std::move(r));
  }
  const double exact_s = timer.seconds();
  const double exact_qps = static_cast<double>(total_queries) / exact_s;
  stats.param("qps_exact", exact_qps);
  std::cout << "exact sweep: " << util::fmt(exact_qps, 1) << " q/s\n\n";

  // --- pruned sweep over nprobe -------------------------------------------
  std::vector<std::size_t> probes = quick
                                        ? std::vector<std::size_t>{2, 4, 8, 16}
                                        : std::vector<std::size_t>{4, 8, 16,
                                                                   32, 64};
  util::TextTable table(
      {"nprobe", "q/s", "speedup", "recall@10", "docs/query"});
  bool gate_met = false;
  double best_gated_speedup = 0.0;
  for (const std::size_t nprobe : probes) {
    core::SearchOptions popts;
    popts.search = core::SearchMode::kPruned;
    popts.nprobe = nprobe;
    popts.z = 10;

    core::QueryStats qs;
    std::vector<std::vector<core::ScoredDoc>> pruned;
    timer.reset();
    for (const auto& batch : batches) {
      auto ranked = retriever.rank(batch, popts, &qs);
      for (auto& r : ranked) pruned.push_back(std::move(r));
    }
    const double pruned_s = timer.seconds();
    const double pruned_qps = static_cast<double>(total_queries) / pruned_s;
    const double speedup = pruned_qps / exact_qps;
    const double recall = recall_at_10(exact, pruned);
    const double docs_per_query =
        static_cast<double>(qs.ann_docs_scanned) /
        static_cast<double>(total_queries);

    table.add_row({util::fmt_int(static_cast<long long>(nprobe)),
                   util::fmt(pruned_qps, 1), util::fmt(speedup, 1),
                   util::fmt(recall, 3), util::fmt(docs_per_query, 0)});
    const std::string suffix = "_p" + std::to_string(nprobe);
    stats.param("qps" + suffix, pruned_qps);
    stats.param("speedup" + suffix, speedup);
    stats.param("recall_at_10" + suffix, recall);

    if (recall >= 0.95 && speedup >= 10.0) {
      gate_met = true;
      best_gated_speedup = std::max(best_gated_speedup, speedup);
    }
  }
  table.print(std::cout, "Pruned path vs exact (" +
                             std::to_string(total_queries) + " queries, "
                             "batch " + std::to_string(kBatch) + ", top-10)");
  stats.param("gate_met", gate_met ? 1.0 : 0.0);

  if (!quick && !gate_met) {
    std::cerr << "\nFAIL: no nprobe reached >= 10x exact throughput at "
                 "recall@10 >= 0.95\n";
    return 1;
  }
  if (gate_met) {
    std::cout << "\nPASS: " << util::fmt(best_gated_speedup, 1)
              << "x exact throughput at recall@10 >= 0.95\n";
  }
  return 0;
}
