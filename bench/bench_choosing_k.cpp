// Section 5.2 (choosing the number of factors): performance vs. k rises
// sharply after 10-20 dimensions, peaks, then "begins to diminish slowly"
// toward word-based performance as A_k approaches A exactly.

#include <iostream>

#include "baseline/vector_model.hpp"
#include "bench_common.hpp"
#include "eval/metrics.hpp"
#include "lsi/lsi_index.hpp"
#include "synth/corpus.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("choosing_k");
  bench::banner("Section 5.2",
                "Retrieval performance vs. number of factors k (the "
                "paper's rise/peak/slow-decline curve).");

  synth::CorpusSpec spec;
  spec.topics = 10;
  spec.concepts_per_topic = 12;
  spec.shared_concepts = 30;
  spec.docs_per_topic = 25;
  spec.mean_doc_len = 30;
  spec.general_prob = 0.4;
  spec.own_topic_prob = 0.65;
  spec.query_len = 4;
  spec.polysemy_prob = 0.1;
  spec.queries_per_topic = 5;
  spec.query_offform_prob = 0.7;
  spec.seed = 800;
  auto corpus = synth::generate_corpus(spec);

  // Word-based reference (SMART vector model).
  core::IndexOptions ref_opts;
  ref_opts.scheme = weighting::kLogEntropy;
  ref_opts.k = 2;  // irrelevant for the baseline; reuse the weighting
  auto ref_index = core::LsiIndex::try_build(corpus.docs, ref_opts).value();
  baseline::VectorSpaceModel vsm(ref_index.weighted_matrix());
  std::vector<double> smart_scores;
  for (const auto& q : corpus.queries) {
    std::vector<la::index_t> ranked;
    for (const auto& r : vsm.rank(ref_index.weighted_term_vector(q.text))) {
      ranked.push_back(r.doc);
    }
    smart_scores.push_back(
        eval::three_point_average_precision(ranked, q.relevant));
  }
  const double smart_ap = eval::mean(smart_scores);

  util::TextTable table({"k", "LSI AP", "vs word-based"});
  double peak_ap = 0.0;
  core::index_t peak_k = 0;
  for (core::index_t k : {2u, 5u, 10u, 20u, 40u, 60u, 80u, 120u, 160u, 200u}) {
    core::IndexOptions opts;
    opts.scheme = weighting::kLogEntropy;
    opts.k = k;
    auto index = core::LsiIndex::try_build(corpus.docs, opts).value();
    std::vector<double> scores;
    for (const auto& q : corpus.queries) {
      std::vector<la::index_t> ranked;
      for (const auto& r : index.query(q.text)) ranked.push_back(r.doc);
      scores.push_back(
          eval::three_point_average_precision(ranked, q.relevant));
    }
    const double ap = eval::mean(scores);
    if (ap > peak_ap) {
      peak_ap = ap;
      peak_k = index.space().k();
    }
    table.add_row({std::to_string(index.space().k()), util::fmt(ap, 3),
                   util::fmt_pct(smart_ap > 0 ? ap / smart_ap - 1.0 : 0.0)});
  }
  table.print(std::cout, "Average precision vs. k:");

  std::cout << "\nword-based (SMART) AP: " << util::fmt(smart_ap, 3)
            << "\npeak: AP " << util::fmt(peak_ap, 3) << " at k = " << peak_k
            << "\nShape to verify: low k underfits, performance peaks at an "
               "intermediate k,\nthen drifts back toward the word-based "
               "level as k approaches full rank\n(with k = n, A_k "
               "reconstructs A exactly).\n";
  return 0;
}
