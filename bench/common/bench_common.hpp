#pragma once
// Shared helpers for the reproduction benches: paper-example spaces, labeled
// rankings, and uniform report headers so every binary's output reads the
// same way.

#include <iostream>
#include <string>
#include <vector>

#include "data/med_topics.hpp"
#include "lsi/retrieval.hpp"
#include "lsi/semantic_space.hpp"
#include "util/table.hpp"

namespace lsi::bench {

/// Prints the standard banner identifying which paper artifact follows.
inline void banner(const std::string& artifact, const std::string& what) {
  std::cout << "==================================================================\n"
            << "Reproduction of " << artifact << " — Berry, Dumais & Letsche,\n"
            << "\"Computational Methods for Intelligent Information Access\" (SC '95)\n"
            << what << "\n"
            << "==================================================================\n\n";
}

/// The paper's k-factor space over the verbatim Table 3 matrix, oriented to
/// the printed Figure 5 signs.
inline core::SemanticSpace paper_space(core::index_t k) {
  auto space = core::build_semantic_space(data::table3_counts(), k);
  core::align_signs_to(space, data::figure5_u2());
  return space;
}

/// The Section 3.1 query ("age blood abnormalities") as a term vector.
inline la::Vector paper_query() {
  la::Vector q(18, 0.0);
  q[0] = 1.0;  // abnormalities
  q[1] = 1.0;  // age
  q[3] = 1.0;  // blood
  return q;
}

/// "M<j+1>" labels for the medical-topic documents.
inline std::string med_label(core::index_t doc) {
  return "M" + std::to_string(doc + 1);
}

}  // namespace lsi::bench
