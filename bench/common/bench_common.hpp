#pragma once
// Shared helpers for the reproduction benches: paper-example spaces, labeled
// rankings, uniform report headers, quick-mode detection, and the
// machine-readable BENCH_<name>.json stats emission CI archives.

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "data/med_topics.hpp"
#include "lsi/retrieval.hpp"
#include "lsi/semantic_space.hpp"
#include "obs/export.hpp"
#include "util/table.hpp"

namespace lsi::bench {

/// True when LSI_BENCH_QUICK is set (and not "0") in the environment:
/// benches shrink problem sizes and repetitions to smoke-test scale. CI
/// runs the bench-stats job this way.
inline bool quick_mode() {
  const char* q = std::getenv("LSI_BENCH_QUICK");
  return q != nullptr && *q != '\0' && std::string_view(q) != "0";
}

/// One observability session per bench binary: owns a Sink, optionally
/// installs it as the process-active sink for the session's lifetime (so
/// every instrumented pipeline stage the bench touches aggregates into it),
/// and on destruction writes the "lsi.stats.v1" document to
/// BENCH_<name>.json in $LSI_BENCH_OUT_DIR (default: the working
/// directory). Timing-sensitive benches pass install=false and scope the
/// sink themselves so their measured regions stay sink-free.
class StatsSession {
 public:
  explicit StatsSession(std::string name, bool install = true)
      : name_(std::move(name)), installed_(install) {
    if (install) previous_ = obs::Sink::set_active(&sink_);
  }
  ~StatsSession() {
    if (installed_) obs::Sink::set_active(previous_);
    emit();
  }
  StatsSession(const StatsSession&) = delete;
  StatsSession& operator=(const StatsSession&) = delete;

  obs::Sink& sink() noexcept { return sink_; }

  /// Free-form numeric result (throughput, shapes, scores) for the params
  /// section of the document.
  void param(const std::string& key, double value) {
    params_.emplace_back(key, value);
  }

  /// One predicted-vs-measured flops row.
  void flop_row(std::string row, std::uint64_t predicted,
                std::uint64_t measured) {
    flops_.push_back({std::move(row), predicted, measured});
  }

  /// Writes BENCH_<name>.json (idempotent; also called by the destructor).
  void emit() {
    if (emitted_) return;
    emitted_ = true;
    obs::StatsDoc doc = obs::StatsDoc::from_sink(name_, sink_);
    doc.params = params_;
    doc.flops = flops_;
    std::string dir = ".";
    if (const char* d = std::getenv("LSI_BENCH_OUT_DIR");
        d != nullptr && *d != '\0') {
      dir = d;
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);  // best-effort
      if (ec) {
        std::cerr << "stats: cannot create " << dir << ": " << ec.message()
                  << "\n";
      }
    }
    // Appends rather than chained operator+ (GCC 12's -Wrestrict misfires
    // on the latter's temporaries).
    std::string path = dir;
    path += "/BENCH_";
    path += name_;
    path += ".json";
    std::ofstream os(path);
    if (os) {
      obs::write_json(os, doc);
    } else {
      std::cerr << "stats: cannot write " << path << "\n";
    }
  }

 private:
  std::string name_;
  bool installed_ = false;
  bool emitted_ = false;
  obs::Sink sink_;
  obs::Sink* previous_ = nullptr;
  std::vector<std::pair<std::string, double>> params_;
  std::vector<obs::FlopComparison> flops_;
};

/// Prints the standard banner identifying which paper artifact follows.
inline void banner(const std::string& artifact, const std::string& what) {
  std::cout << "==================================================================\n"
            << "Reproduction of " << artifact << " — Berry, Dumais & Letsche,\n"
            << "\"Computational Methods for Intelligent Information Access\" (SC '95)\n"
            << what << "\n"
            << "==================================================================\n\n";
}

/// The paper's k-factor space over the verbatim Table 3 matrix, oriented to
/// the printed Figure 5 signs.
inline core::SemanticSpace paper_space(core::index_t k) {
  auto space = core::try_build_semantic_space(data::table3_counts(), k).value();
  core::align_signs_to(space, data::figure5_u2());
  return space;
}

/// The Section 3.1 query ("age blood abnormalities") as a term vector.
inline la::Vector paper_query() {
  la::Vector q(18, 0.0);
  q[0] = 1.0;  // abnormalities
  q[1] = 1.0;  // age
  q[3] = 1.0;  // blood
  return q;
}

/// "M<j+1>" labels for the medical-topic documents.
inline std::string med_label(core::index_t doc) {
  std::string label = "M";
  label += std::to_string(doc + 1);
  return label;
}

}  // namespace lsi::bench
