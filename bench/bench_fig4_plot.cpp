// Figure 4: two-dimensional plot of the 18 terms and 14 documents of the
// example term-document matrix (k = 2 coordinates).

#include <iostream>

#include "bench_common.hpp"
#include "util/ascii_plot.hpp"

int main() {
  using namespace lsi;
  bench::StatsSession session("fig4_plot");
  bench::banner("Figure 4",
                "Two-dimensional plot of terms and documents for the 18 x "
                "14 example.");

  auto space = bench::paper_space(2);
  const auto& terms = data::table3_terms();

  util::TextTable coords({"object", "x = col1 * s1", "y = col2 * s2"});
  util::AsciiScatter plot(100, 34);
  for (la::index_t i = 0; i < 18; ++i) {
    const auto c = space.term_coords(i);
    coords.add_row({terms[i], util::fmt(c[0]), util::fmt(c[1])});
    plot.add(c[0], c[1], terms[i]);
  }
  for (la::index_t j = 0; j < 14; ++j) {
    const auto c = space.doc_coords(j);
    coords.add_row({bench::med_label(j), util::fmt(c[0]), util::fmt(c[1])});
    plot.add(c[0], c[1], bench::med_label(j));
  }
  coords.print(std::cout, "Coordinates (singular-value scaled):");
  std::cout << '\n' << plot.render() << '\n';

  std::cout << "Paper's description to verify: hormone/behaviour topics "
               "(M1..M6, terms depressed,\ndischarge, oestrogen, behavior) "
               "cluster above the x-axis; blood-disease/fasting\ntopics "
               "(M10..M14, terms fast, rats, pressure) cluster below.\n\n";

  bool ok = true;
  for (la::index_t j : {2, 3, 4}) ok = ok && space.doc_coords(j)[1] > 0.0;
  for (la::index_t j : {11, 12, 13}) ok = ok && space.doc_coords(j)[1] < 0.0;
  std::cout << "cluster check: " << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
