// CI gate over the machine-readable stats the benches and lsi_cli emit:
// validates each argument as an "lsi.stats.v1" document and exits nonzero
// naming the first malformed file. Keeps the JSON contract honest without
// pulling a JSON library into the build.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/schema.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: stats_check <stats.json>...\n";
    return 2;
  }
  int bad = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream is(argv[i]);
    if (!is) {
      std::cerr << argv[i] << ": cannot open\n";
      ++bad;
      continue;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string text = buf.str();
    const auto status = lsi::obs::validate_stats_json(text);
    if (!status.ok()) {
      std::cerr << argv[i] << ": " << status.message() << "\n";
      ++bad;
    } else {
      std::cout << argv[i] << ": ok\n";
    }
  }
  return bad == 0 ? 0 : 1;
}
