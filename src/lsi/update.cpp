#include "lsi/update.hpp"

#include <cassert>

#include "la/jacobi_svd.hpp"
#include "la/qr.hpp"
#include "obs/trace.hpp"

namespace lsi::core {

namespace {

/// diag(sigma) as a dense k x k block.
la::DenseMatrix diag_of(const std::vector<double>& sigma) {
  la::DenseMatrix d(sigma.size(), sigma.size());
  for (index_t i = 0; i < sigma.size(); ++i) d(i, i) = sigma[i];
  return d;
}

/// [a | b] as a fresh dense matrix.
la::DenseMatrix hstack(const la::DenseMatrix& a, const la::DenseMatrix& b) {
  la::DenseMatrix out = a;
  out.append_cols(b);
  return out;
}

}  // namespace

void update_documents(SemanticSpace& space, const la::CscMatrix& d) {
  assert(d.rows() == space.num_terms());
  const index_t k = space.k();
  const index_t p = d.cols();
  const index_t n = space.num_docs();
  if (p == 0) return;
  LSI_OBS_SPAN(span, "update.documents");
  obs::count("update.documents_added", p);

  // F = (S_k | U_k^T D), a k x (k+p) dense matrix.
  la::DenseMatrix utd(k, p);
  {
    la::Vector col(d.rows());
    la::Vector proj(k);
    for (index_t j = 0; j < p; ++j) {
      std::fill(col.begin(), col.end(), 0.0);
      auto rows = d.col_rows(j);
      auto vals = d.col_values(j);
      for (std::size_t q = 0; q < rows.size(); ++q) col[rows[q]] = vals[q];
      proj = la::multiply_transpose(space.u, col);
      for (index_t i = 0; i < k; ++i) utd(i, j) = proj[i];
    }
  }
  la::DenseMatrix f = diag_of(space.sigma);
  f.append_cols(utd);

  la::SvdResult fs = la::jacobi_svd(f);  // k x (k+p): rank k
  fs.truncate(k);

  // U_B = U_k U_F ;  V_B = [[V_k, 0], [0, I_p]] V_F.
  space.u = la::multiply(space.u, fs.u);
  // V_F is (k+p) x k; split into top k rows (rotating old documents) and
  // bottom p rows (the new documents' coordinates).
  la::DenseMatrix vf_top(k, k), vf_bottom(p, k);
  for (index_t j = 0; j < k; ++j) {
    for (index_t i = 0; i < k; ++i) vf_top(i, j) = fs.v(i, j);
    for (index_t i = 0; i < p; ++i) vf_bottom(i, j) = fs.v(k + i, j);
  }
  la::DenseMatrix new_v(n + p, k);
  la::DenseMatrix rotated = la::multiply(space.v, vf_top);
  for (index_t j = 0; j < k; ++j) {
    for (index_t i = 0; i < n; ++i) new_v(i, j) = rotated(i, j);
    for (index_t i = 0; i < p; ++i) new_v(n + i, j) = vf_bottom(i, j);
  }
  space.v = std::move(new_v);
  space.sigma = std::move(fs.s);
  space.invalidate_doc_norms();
}

void update_terms(SemanticSpace& space, const la::CscMatrix& t) {
  assert(t.cols() == space.num_docs());
  const index_t k = space.k();
  const index_t q = t.rows();
  const index_t m = space.num_terms();
  if (q == 0) return;
  LSI_OBS_SPAN(span, "update.terms");
  obs::count("update.terms_added", q);

  // H = (S_k ; T V_k), a (k+q) x k dense matrix.
  la::DenseMatrix tv(q, k);
  {
    // T V_k: accumulate column-wise over T's CSC storage.
    for (index_t j = 0; j < t.cols(); ++j) {
      auto rows = t.col_rows(j);
      auto vals = t.col_values(j);
      for (std::size_t pos = 0; pos < rows.size(); ++pos) {
        const index_t row = rows[pos];
        const double val = vals[pos];
        for (index_t c = 0; c < k; ++c) tv(row, c) += val * space.v(j, c);
      }
    }
  }
  la::DenseMatrix h = diag_of(space.sigma);
  h.append_rows(tv);

  la::SvdResult hs = la::jacobi_svd(h);  // (k+q) x k: rank k
  hs.truncate(k);

  // U_C = [[U_k, 0], [0, I_q]] U_H ;  V_C = V_k V_H.
  la::DenseMatrix uh_top(k, k), uh_bottom(q, k);
  for (index_t j = 0; j < k; ++j) {
    for (index_t i = 0; i < k; ++i) uh_top(i, j) = hs.u(i, j);
    for (index_t i = 0; i < q; ++i) uh_bottom(i, j) = hs.u(k + i, j);
  }
  la::DenseMatrix new_u(m + q, k);
  la::DenseMatrix rotated = la::multiply(space.u, uh_top);
  for (index_t j = 0; j < k; ++j) {
    for (index_t i = 0; i < m; ++i) new_u(i, j) = rotated(i, j);
    for (index_t i = 0; i < q; ++i) new_u(m + i, j) = uh_bottom(i, j);
  }
  space.u = std::move(new_u);
  space.v = la::multiply(space.v, hs.v);
  space.sigma = std::move(hs.s);
  space.invalidate_doc_norms();
}

void update_weights(SemanticSpace& space, const la::DenseMatrix& y,
                    const la::DenseMatrix& z) {
  assert(y.rows() == space.num_terms());
  assert(z.rows() == space.num_docs());
  assert(y.cols() == z.cols());
  const index_t k = space.k();

  // Q = S_k + (U_k^T Y)(V_k^T Z)^T, a k x k dense matrix.
  la::DenseMatrix uty = la::multiply_at_b(space.u, y);  // k x j
  la::DenseMatrix vtz = la::multiply_at_b(space.v, z);  // k x j
  la::DenseMatrix qm = la::multiply_a_bt(uty, vtz);     // k x k
  for (index_t i = 0; i < k; ++i) qm(i, i) += space.sigma[i];

  la::SvdResult qs = la::jacobi_svd(qm);
  qs.truncate(k);

  space.u = la::multiply(space.u, qs.u);
  space.v = la::multiply(space.v, qs.v);
  space.sigma = std::move(qs.s);
  space.invalidate_doc_norms();
}

void update_documents(SemanticSpace& space, const la::DenseMatrix& d) {
  update_documents(space, la::CscMatrix::from_dense(d));
}

void update_terms(SemanticSpace& space, const la::DenseMatrix& t) {
  update_terms(space, la::CscMatrix::from_dense(t));
}

void update_documents_exact(SemanticSpace& space, const la::CscMatrix& d) {
  assert(d.rows() == space.num_terms());
  const index_t k = space.k();
  const index_t p = d.cols();
  const index_t n = space.num_docs();
  if (p == 0) return;

  // Split D into its in-subspace part U (U^T D) and residual R = D - U U^T D.
  const la::DenseMatrix dd = d.to_dense();
  const la::DenseMatrix utd = la::multiply_at_b(space.u, dd);  // k x p
  la::DenseMatrix resid = dd;
  resid.add_scaled(la::multiply(space.u, utd), -1.0);          // m x p
  const la::QrResult rq = la::qr_decompose(resid);             // Q: m x p

  // K = [[Sigma, U^T D], [0, R_r]], (k+p) x (k+p); then
  //   (A_k | D) = [U  Q] K [[V, 0], [0, I_p]]^T   exactly.
  la::DenseMatrix k_top = hstack(diag_of(space.sigma), utd);   // k x (k+p)
  la::DenseMatrix k_bottom(p, k);                              // zeros
  k_bottom.append_cols(rq.r);                                  // p x (k+p)
  la::DenseMatrix kmat = k_top;
  kmat.append_rows(k_bottom);

  la::SvdResult ks = la::jacobi_svd(kmat);
  ks.truncate(k);

  // U' = [U Q] U_K.
  la::DenseMatrix uq = hstack(space.u, rq.q);                  // m x (k+p)
  space.u = la::multiply(uq, ks.u);
  // V' = [[V, 0], [0, I_p]] V_K.
  la::DenseMatrix new_v(n + p, k);
  for (index_t j = 0; j < k; ++j) {
    for (index_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (index_t l = 0; l < k; ++l) acc += space.v(i, l) * ks.v(l, j);
      new_v(i, j) = acc;
    }
    for (index_t i = 0; i < p; ++i) new_v(n + i, j) = ks.v(k + i, j);
  }
  space.v = std::move(new_v);
  space.sigma = std::move(ks.s);
  space.invalidate_doc_norms();
}

void update_terms_exact(SemanticSpace& space, const la::CscMatrix& t) {
  assert(t.cols() == space.num_docs());
  const index_t k = space.k();
  const index_t q = t.rows();
  const index_t m = space.num_terms();
  if (q == 0) return;

  // T = (T V) V^T + residual; QR the residual's transpose (n x q).
  const la::DenseMatrix td = t.to_dense();               // q x n
  const la::DenseMatrix tv = la::multiply(td, space.v);  // T V, q x k
  la::DenseMatrix resid_t = td.transposed();                    // n x q
  resid_t.add_scaled(la::multiply_a_bt(space.v, tv), -1.0);     // n x q
  const la::QrResult rq = la::qr_decompose(resid_t);            // Q: n x q

  // K = [[Sigma, 0], [T V, R_r^T]], (k+q) x (k+q); then
  //   (A_k ; T) = [[U, 0], [0, I_q]] K [V  Q]^T  exactly.
  la::DenseMatrix k_top = hstack(diag_of(space.sigma),
                                 la::DenseMatrix(k, q));
  la::DenseMatrix k_bottom = hstack(tv, rq.r.transposed());     // q x (k+q)
  la::DenseMatrix kmat = k_top;
  kmat.append_rows(k_bottom);

  la::SvdResult ks = la::jacobi_svd(kmat);
  ks.truncate(k);

  // U' = [[U, 0], [0, I_q]] U_K.
  la::DenseMatrix new_u(m + q, k);
  for (index_t j = 0; j < k; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double acc = 0.0;
      for (index_t l = 0; l < k; ++l) acc += space.u(i, l) * ks.u(l, j);
      new_u(i, j) = acc;
    }
    for (index_t i = 0; i < q; ++i) new_u(m + i, j) = ks.u(k + i, j);
  }
  space.u = std::move(new_u);
  // V' = [V Q] V_K.
  space.v = la::multiply(hstack(space.v, rq.q), ks.v);
  space.sigma = std::move(ks.s);
  space.invalidate_doc_norms();
}

void update_weights_exact(SemanticSpace& space, const la::DenseMatrix& y,
                          const la::DenseMatrix& z) {
  assert(y.rows() == space.num_terms());
  assert(z.rows() == space.num_docs());
  assert(y.cols() == z.cols());
  const index_t k = space.k();
  const index_t j = y.cols();
  if (j == 0) return;

  // Residual bases for Y and Z outside the retained subspaces.
  const la::DenseMatrix uty = la::multiply_at_b(space.u, y);  // k x j
  la::DenseMatrix ry = y;
  ry.add_scaled(la::multiply(space.u, uty), -1.0);
  const la::QrResult qy = la::qr_decompose(ry);               // Q: m x j

  const la::DenseMatrix vtz = la::multiply_at_b(space.v, z);  // k x j
  la::DenseMatrix rz = z;
  rz.add_scaled(la::multiply(space.v, vtz), -1.0);
  const la::QrResult qz = la::qr_decompose(rz);               // Q: n x j

  // K = [[Sigma, 0], [0, 0]] + [U^T Y; R_y] [V^T Z; R_z]^T, (k+j) square.
  la::DenseMatrix ycoef = uty;       // (k+j) x j
  ycoef.append_rows(qy.r);
  la::DenseMatrix zcoef = vtz;       // (k+j) x j
  zcoef.append_rows(qz.r);
  la::DenseMatrix kmat = la::multiply_a_bt(ycoef, zcoef);
  for (index_t i = 0; i < k; ++i) kmat(i, i) += space.sigma[i];

  la::SvdResult ks = la::jacobi_svd(kmat);
  ks.truncate(k);

  space.u = la::multiply(hstack(space.u, qy.q), ks.u);
  space.v = la::multiply(hstack(space.v, qz.q), ks.v);
  space.sigma = std::move(ks.s);
  space.invalidate_doc_norms();
}

}  // namespace lsi::core
