#include "lsi/semantic_space.hpp"

#include <algorithm>
#include <cmath>

#include "la/jacobi_svd.hpp"
#include "lsi/doc_store.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace lsi::core {

void SemanticSpace::fill_doc_norm_range(SimilarityMode mode, index_t begin,
                                        index_t end,
                                        std::vector<double>& norms) const {
  const bool scale_docs = mode != SimilarityMode::kPlainV;
  util::parallel_for_chunks(
      begin, end,
      [&](std::size_t lo, std::size_t hi) {
        // The scratch row is built exactly like the single-query scorer
        // builds its document vector, so the cached norm is bit-identical to
        // what la::cosine would have computed.
        la::Vector doc(k());
        for (std::size_t j = lo; j < hi; ++j) {
          for (index_t i = 0; i < k(); ++i) {
            doc[i] = v(j, i);
            if (scale_docs) doc[i] *= sigma[i];
          }
          norms[j] = la::norm2(doc);
        }
      },
      /*grain=*/256);
}

const std::vector<double>& SemanticSpace::doc_norms(SimilarityMode mode) const {
  auto& cache = doc_norm_cache_[static_cast<std::size_t>(mode)];
  // Row-count mismatch means documents were appended (folding) since the
  // cache was built; same-size mutation must call invalidate_doc_norms().
  if (cache.size() == num_docs()) {
    obs::count("retrieval.norm_cache.hit");
    return cache;
  }
  obs::count("retrieval.norm_cache.miss");
  LSI_OBS_SPAN(span, "retrieval.norm_cache.fill");
  std::vector<double> norms(num_docs());
  fill_doc_norm_range(mode, 0, num_docs(), norms);
  cache = std::move(norms);
  return cache;
}

void SemanticSpace::invalidate_doc_norms() noexcept {
  for (auto& cache : doc_norm_cache_) cache.clear();
  bf16_store_.reset();  // the flag survives; the store rebuilds lazily
}

void SemanticSpace::prewarm_doc_norms() const {
  for (std::size_t m = 0; m < kNumSimilarityModes; ++m) {
    (void)doc_norms(static_cast<SimilarityMode>(m));
  }
  (void)compressed_docs();  // no-op unless compression is enabled
}

void SemanticSpace::extend_doc_norms(index_t old_num_docs) const {
  for (std::size_t m = 0; m < kNumSimilarityModes; ++m) {
    auto& cache = doc_norm_cache_[m];
    if (cache.empty()) continue;  // cold stays cold, lazy fill handles it
    if (cache.size() != old_num_docs || old_num_docs > num_docs()) {
      // Cache does not correspond to the pre-append row count (or the
      // "append" shrank V): length-stale, drop it.
      cache.clear();
      continue;
    }
    obs::count("retrieval.norm_cache.extend", num_docs() - old_num_docs);
    cache.resize(num_docs());
    fill_doc_norm_range(static_cast<SimilarityMode>(m), old_num_docs,
                        num_docs(), cache);
  }
  if (bf16_store_) {
    // Same append-only contract as the norm caches: a store built at the
    // pre-append row count is extended in O(p k); anything else is
    // length-stale and rebuilds lazily on next use.
    if (bf16_store_->num_docs() == old_num_docs && old_num_docs <= num_docs()) {
      bf16_store_ = Bf16DocStore::extend(*bf16_store_, *this);
    } else if (bf16_store_->num_docs() != num_docs()) {
      bf16_store_.reset();
    }
  }
}

void SemanticSpace::set_compress_docs(bool on) {
  compress_docs_ = on;
  if (!on) bf16_store_.reset();
}

const Bf16DocStore* SemanticSpace::compressed_docs() const {
  if (!compress_docs_) return nullptr;
  // Same row-count staleness guard as doc_norms(): appended documents make
  // the store stale; same-size mutations must call invalidate_doc_norms().
  if (!bf16_store_ || bf16_store_->num_docs() != num_docs() ||
      bf16_store_->k() != k()) {
    bf16_store_ = Bf16DocStore::build(*this);
  }
  return bf16_store_.get();
}

void SemanticSpace::adopt_compressed_docs(
    std::shared_ptr<const Bf16DocStore> store) {
  compress_docs_ = true;
  bf16_store_ = std::move(store);
}

la::Vector SemanticSpace::doc_coords(index_t j) const {
  la::Vector coords = v.row(j);
  for (index_t i = 0; i < coords.size(); ++i) coords[i] *= sigma[i];
  return coords;
}

la::Vector SemanticSpace::term_coords(index_t i) const {
  la::Vector coords = u.row(i);
  for (index_t d = 0; d < coords.size(); ++d) coords[d] *= sigma[d];
  return coords;
}

la::DenseMatrix SemanticSpace::reconstruct() const {
  return la::multiply_a_bt(la::scale_cols(u, sigma), v);
}

Expected<SemanticSpace> try_build_semantic_space(const la::CscMatrix& a,
                                                 const BuildOptions& opts,
                                                 la::LanczosStats* stats) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument(
        "try_build_semantic_space: empty term-document matrix (" +
        std::to_string(a.rows()) + " x " + std::to_string(a.cols()) + ")");
  }
  if (opts.k == 0) {
    return Status::InvalidArgument(
        "try_build_semantic_space: k must be at least 1");
  }
  LSI_OBS_SPAN(span, "build.svd");
  const index_t minmn = std::min(a.rows(), a.cols());
  const index_t k = std::min(opts.k, minmn);

  la::SvdResult svd;
  if (minmn <= opts.dense_cutoff) {
    svd = la::jacobi_svd(a.to_dense());
    svd.truncate(k);
    if (stats) *stats = la::LanczosStats{};
  } else {
    la::LanczosOptions lopts = opts.lanczos;
    lopts.k = k;
    try {
      svd = la::lanczos_svd(a, lopts, stats);
    } catch (const std::exception& e) {
      return Status::Internal(e.what());
    }
  }

  SemanticSpace space;
  space.u = std::move(svd.u);
  space.sigma = std::move(svd.s);
  space.v = std::move(svd.v);
  return space;
}

Expected<SemanticSpace> try_build_semantic_space(const la::CscMatrix& a,
                                                 index_t k) {
  BuildOptions opts;
  opts.k = k;
  return try_build_semantic_space(a, opts);
}

// Deprecated shims. The pragma silences the self-referential deprecation
// warnings these definitions would otherwise emit under -Werror.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
SemanticSpace build_semantic_space(const la::CscMatrix& a,
                                   const BuildOptions& opts,
                                   la::LanczosStats* stats) {
  return try_build_semantic_space(a, opts, stats).value();
}

SemanticSpace build_semantic_space(const la::CscMatrix& a, index_t k) {
  return try_build_semantic_space(a, k).value();
}
#pragma GCC diagnostic pop

void align_signs_to(SemanticSpace& space, const la::DenseMatrix& reference) {
  const index_t cols = std::min(space.u.cols(), reference.cols());
  for (index_t j = 0; j < cols; ++j) {
    const double agreement =
        la::dot(space.u.col(j), reference.col(j));
    if (agreement < 0.0) {
      la::scale(space.u.col(j), -1.0);
      la::scale(space.v.col(j), -1.0);
    }
  }
}

double energy_captured(const std::vector<double>& sigma, index_t k) {
  double total = 0.0, head = 0.0;
  for (index_t i = 0; i < sigma.size(); ++i) {
    const double s2 = sigma[i] * sigma[i];
    total += s2;
    if (i < k) head += s2;
  }
  return total > 0.0 ? head / total : 0.0;
}

index_t suggest_k(const std::vector<double>& sigma, double energy_fraction) {
  double total = 0.0;
  for (double s : sigma) total += s * s;
  if (total <= 0.0) return 0;
  double head = 0.0;
  for (index_t k = 0; k < sigma.size(); ++k) {
    head += sigma[k] * sigma[k];
    if (head >= energy_fraction * total) return k + 1;
  }
  return sigma.size();
}

double orthogonality_loss(const la::DenseMatrix& q) {
  la::DenseMatrix gram = la::multiply_at_b(q, q);
  for (index_t i = 0; i < gram.rows(); ++i) gram(i, i) -= 1.0;
  // Spectral norm of the symmetric deviation = largest singular value.
  if (gram.rows() == 0) return 0.0;
  const la::SvdResult s = la::jacobi_svd(gram);
  return s.s.empty() ? 0.0 : s.s[0];
}

}  // namespace lsi::core
