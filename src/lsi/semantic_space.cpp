#include "lsi/semantic_space.hpp"

#include <algorithm>
#include <cmath>

#include "la/jacobi_svd.hpp"

namespace lsi::core {

la::Vector SemanticSpace::doc_coords(index_t j) const {
  la::Vector coords = v.row(j);
  for (index_t i = 0; i < coords.size(); ++i) coords[i] *= sigma[i];
  return coords;
}

la::Vector SemanticSpace::term_coords(index_t i) const {
  la::Vector coords = u.row(i);
  for (index_t d = 0; d < coords.size(); ++d) coords[d] *= sigma[d];
  return coords;
}

la::DenseMatrix SemanticSpace::reconstruct() const {
  return la::multiply_a_bt(la::scale_cols(u, sigma), v);
}

SemanticSpace build_semantic_space(const la::CscMatrix& a,
                                   const BuildOptions& opts,
                                   la::LanczosStats* stats) {
  const index_t minmn = std::min(a.rows(), a.cols());
  const index_t k = std::min(opts.k, minmn);

  la::SvdResult svd;
  if (minmn <= opts.dense_cutoff) {
    svd = la::jacobi_svd(a.to_dense());
    svd.truncate(k);
    if (stats) *stats = la::LanczosStats{};
  } else {
    la::LanczosOptions lopts = opts.lanczos;
    lopts.k = k;
    svd = la::lanczos_svd(a, lopts, stats);
  }

  SemanticSpace space;
  space.u = std::move(svd.u);
  space.sigma = std::move(svd.s);
  space.v = std::move(svd.v);
  return space;
}

SemanticSpace build_semantic_space(const la::CscMatrix& a, index_t k) {
  BuildOptions opts;
  opts.k = k;
  return build_semantic_space(a, opts);
}

void align_signs_to(SemanticSpace& space, const la::DenseMatrix& reference) {
  const index_t cols = std::min(space.u.cols(), reference.cols());
  for (index_t j = 0; j < cols; ++j) {
    const double agreement =
        la::dot(space.u.col(j), reference.col(j));
    if (agreement < 0.0) {
      la::scale(space.u.col(j), -1.0);
      la::scale(space.v.col(j), -1.0);
    }
  }
}

double energy_captured(const std::vector<double>& sigma, index_t k) {
  double total = 0.0, head = 0.0;
  for (index_t i = 0; i < sigma.size(); ++i) {
    const double s2 = sigma[i] * sigma[i];
    total += s2;
    if (i < k) head += s2;
  }
  return total > 0.0 ? head / total : 0.0;
}

index_t suggest_k(const std::vector<double>& sigma, double energy_fraction) {
  double total = 0.0;
  for (double s : sigma) total += s * s;
  if (total <= 0.0) return 0;
  double head = 0.0;
  for (index_t k = 0; k < sigma.size(); ++k) {
    head += sigma[k] * sigma[k];
    if (head >= energy_fraction * total) return k + 1;
  }
  return sigma.size();
}

double orthogonality_loss(const la::DenseMatrix& q) {
  la::DenseMatrix gram = la::multiply_at_b(q, q);
  for (index_t i = 0; i < gram.rows(); ++i) gram(i, i) -= 1.0;
  // Spectral norm of the symmetric deviation = largest singular value.
  if (gram.rows() == 0) return 0.0;
  const la::SvdResult s = la::jacobi_svd(gram);
  return s.s.empty() ? 0.0 : s.s[0];
}

}  // namespace lsi::core
