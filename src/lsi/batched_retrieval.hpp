#pragma once
// Batched multi-query retrieval — the serving hot path. At TREC scale
// (Section 4.4) retrieval cost is dominated by projecting and scoring
// *streams* of queries against a fixed semantic space, so the engine treats
// B queries as one blocked matrix problem instead of B vector problems:
//
//   1. projection: Q_hat = S_k^{-1} (U_k^T Q) for all B queries via one
//      blocked GEMM (la::multiply_at_b_blocked) — the batched Equation 6;
//   2. scoring: one sweep over V_k's column panels accumulates
//          scores(j, b) += w(i, b) * V(j, i)
//      for every document j and query b, where w folds the query- and
//      document-side sigma scalings of the SimilarityMode into the k x B
//      weight matrix, so the inner loop reads V_k's raw entries with
//      stride 1 and each V panel is reused by all B queries;
//   3. normalization divides by per-query norms (computed once per batch)
//      and per-document norms (cached on SemanticSpace per mode);
//   4. selection keeps the top z per query with a bounded heap instead of
//      sorting all n scores, after the min_cosine threshold is applied.
//
// Per-element accumulation order never depends on the batch size, the panel
// partitioning, or the thread count, so a query ranked in a batch of 512
// returns bit-identical results to the same query ranked alone.
// rank_documents in retrieval.hpp is a batch-size-1 wrapper over this class.

#include <memory>
#include <utility>
#include <vector>

#include "la/dense.hpp"
#include "lsi/ann.hpp"
#include "lsi/retrieval.hpp"
#include "lsi/search_options.hpp"

namespace lsi::core {

/// A block of B queries stored as the columns of a k x B column-major
/// matrix of Equation-6 coordinates.
class QueryBatch {
 public:
  QueryBatch() = default;

  /// Wraps already-projected k-vectors, one query per column. Every vector
  /// must have length space.k() (assert in debug; use try_from_projected for
  /// a checked Status instead).
  static QueryBatch from_projected(const SemanticSpace& space,
                                   const std::vector<la::Vector>& qhats);

  /// Checked variant: kInvalidArgument when any vector's length differs from
  /// space.k(). An empty `qhats` is valid and yields an empty batch.
  static Expected<QueryBatch> try_from_projected(
      const SemanticSpace& space, const std::vector<la::Vector>& qhats);

  /// Projects B raw (weighted) m-vectors at once: the batched Equation 6,
  /// Q_hat = S_k^{-1} (U_k^T Q), via the blocked GEMM. Runs under the
  /// "retrieval.project" span; `stats`, when non-null, accumulates the
  /// projection time and flops (see QueryStats). Every vector must have
  /// length space.num_terms() (assert in debug; use try_from_term_vectors
  /// for a checked Status instead). An empty `term_vectors` is valid and
  /// yields an empty batch that ranks to an empty result list.
  static QueryBatch from_term_vectors(
      const SemanticSpace& space,
      const std::vector<la::Vector>& term_vectors,
      QueryStats* stats = nullptr);

  /// Checked variant: kInvalidArgument when any vector's length differs from
  /// space.num_terms().
  static Expected<QueryBatch> try_from_term_vectors(
      const SemanticSpace& space,
      const std::vector<la::Vector>& term_vectors,
      QueryStats* stats = nullptr);

  index_t size() const noexcept { return qhat_.cols(); }
  index_t k() const noexcept { return qhat_.rows(); }

  /// k x B matrix of projected queries, one per column.
  const la::DenseMatrix& projected() const noexcept { return qhat_; }

 private:
  la::DenseMatrix qhat_;
};

/// Per-query background statistics of one rank() call: the first two
/// moments of every cosine the query SCORED, before the min_cosine filter
/// and top-z selection dropped any of them. For an exact sweep that is all
/// num_docs cosines; for a cluster-pruned search it is the scanned
/// candidates. The sharded gather's z-score merge policy standardizes each
/// shard's returned list against these (docs/GATHER.md) — the sweep already
/// computes every cosine, so the moments are a free by-product.
struct ScoreMoments {
  std::size_t count = 0;
  double mean = 0.0;
  double stdev = 0.0;  ///< population standard deviation
};

/// Scores and ranks a QueryBatch against one semantic space.
class BatchedRetriever {
 public:
  /// Non-owning view: `space` must outlive the retriever and stay unmutated
  /// while it is in use (the single-threaded convention).
  explicit BatchedRetriever(const SemanticSpace& space) : space_(space) {}

  /// Snapshot-pinning view: shares ownership of an immutable space (e.g.
  /// IndexSnapshot::space_ptr() from lsi/concurrent.hpp), so the entire
  /// project/score/select pass of every rank() call runs against this one
  /// space even while a writer concurrently publishes newer snapshots.
  explicit BatchedRetriever(std::shared_ptr<const SemanticSpace> space)
      : space_(*space), pinned_(std::move(space)) {}

  /// Snapshot-pinning view WITH the snapshot's cluster-pruned structure
  /// (lsi/ann.hpp): SearchOptions in kAuto/kPruned mode generate candidates
  /// from `ann`'s posting lists instead of sweeping every document. `ann`
  /// may be null (small corpus, pruning disabled) — every query then takes
  /// the exact path.
  BatchedRetriever(std::shared_ptr<const SemanticSpace> space,
                   std::shared_ptr<const AnnIndex> ann)
      : space_(*space), pinned_(std::move(space)), ann_(std::move(ann)) {}

  /// Full cosine matrix (num_docs x B, one query per column), no
  /// filtering or selection — the building block for layers that combine
  /// scores themselves (multi-point queries, fan-out merging). Runs under
  /// the "retrieval.score" span; `stats` accumulates the sweep time and
  /// flops when non-null.
  la::DenseMatrix scores(const QueryBatch& batch, SimilarityMode mode,
                         QueryStats* stats = nullptr) const;

  /// result[b] is query b's ranking: cosine descending, ties broken by
  /// ascending document index (the shared lsi/ranking.hpp order);
  /// `opts.min_cosine` is applied before top-z selection. Honors `opts.sink`
  /// for the duration of the call; selection runs under the
  /// "retrieval.select" span and `stats` accumulates the per-stage breakdown
  /// when non-null.
  ///
  /// Candidate generation follows `opts.search` (search_options.hpp): with
  /// an AnnIndex attached and the mode not kExact, each query scores the
  /// centroids, scans the resolved-nprobe nearest posting lists and re-ranks
  /// the candidates with the identical Equation-6 arithmetic — nprobe >=
  /// num_centroids is bit-identical to the exact sweep. Without a structure
  /// (or with kExact) every query takes the exact path.
  ///
  /// Edge cases return cleanly rather than invoking UB: an empty batch
  /// yields an empty result vector, and `opts.z` larger than the number of
  /// documents returns every document passing the threshold.
  ///
  /// `moments`, when non-null, is resized to the batch size and filled with
  /// each query's ScoreMoments (see above); queries that scored nothing get
  /// the zero-count default.
  std::vector<std::vector<ScoredDoc>> rank(
      const QueryBatch& batch, const SearchOptions& opts = {},
      QueryStats* stats = nullptr,
      std::vector<ScoreMoments>* moments = nullptr) const;

  /// Checked variant: kInvalidArgument when a non-empty batch was projected
  /// against a space with a different number of factors than this
  /// retriever's (the release-mode guard for the assert in scores()), the
  /// first SearchOptions::Validate() violation, or kDeadlineExceeded when
  /// `opts.deadline` already expired at entry (coarse-grained: an admitted
  /// batch runs to completion).
  Expected<std::vector<std::vector<ScoredDoc>>> try_rank(
      const QueryBatch& batch, const SearchOptions& opts = {},
      QueryStats* stats = nullptr) const;

  /// The attached cluster-pruning structure (null = exact scans only).
  const std::shared_ptr<const AnnIndex>& ann() const noexcept { return ann_; }

 private:
  std::vector<std::vector<ScoredDoc>> rank_pruned(
      const QueryBatch& batch, const SearchOptions& opts, QueryStats* stats,
      std::vector<ScoreMoments>* moments) const;

  const SemanticSpace& space_;
  /// Keeps the pinned snapshot's space alive (null for the reference ctor).
  std::shared_ptr<const SemanticSpace> pinned_;
  /// Cluster-pruned candidate generator of the pinned snapshot (may be null).
  std::shared_ptr<const AnnIndex> ann_;
};

}  // namespace lsi::core
