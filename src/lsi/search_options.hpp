#pragma once
// lsi::SearchOptions — the single request struct for the serving stack.
//
// Before this header, every layer of the read path took its own loose knob
// set: BatchedRetriever::rank took a QueryOptions, ShardedSnapshot::rank_batch
// took another, and the HTTP daemon re-derived `top`/mode from query params at
// the door. The ANN pruning knobs (nprobe, recall target, exact-force) made
// that untenable — a per-request recall/latency trade-off has to travel from
// the HTTP query string through HttpServer -> ShardedIndex -> BatchedRetriever
// unchanged. SearchOptions is that one struct, validated once (Validate(),
// mirroring IndexOptions) and threaded end-to-end. The QueryOptions-taking
// member signatures are gone; QueryOptions itself survives only as the
// exact-path knob subset the SemanticSpace scorers speak (query_options()
// below bridges down to them internally).
//
// Candidate-generation policy (docs/ANN.md):
//
//   kAuto    use the snapshot's cluster-pruned AnnIndex when one exists
//            (it is only built above AnnOptions::exact_cutoff documents),
//            exact scan otherwise — the serving default;
//   kExact   always exact: every document scored, the pre-ANN behavior;
//   kPruned  require the pruned path; silently falls back to exact scan
//            when the structure is absent (small corpus, ann disabled) —
//            the fallback is counted on the "ann.exact_fallback_queries"
//            counter so operators can see it.
//
// `nprobe` versus `recall_target`: nprobe > 0 pins the number of centroid
// posting lists scanned per query; nprobe == 0 derives it from recall_target
// via AnnIndex::resolve_nprobe (monotone in the target; a target of 1.0
// probes every centroid, which is bit-identical to the exact scan).

#include <chrono>
#include <cstddef>
#include <string>

#include "lsi/gather/fusion.hpp"
#include "lsi/retrieval.hpp"
#include "lsi/status.hpp"

namespace lsi::core {

/// Candidate-generation policy for one request.
enum class SearchMode {
  kAuto,    ///< pruned when the snapshot has an AnnIndex, exact otherwise
  kExact,   ///< force the exact scan (every document scored)
  kPruned,  ///< request the pruned path (exact fallback when absent)
};

/// Returns "auto" / "exact" / "pruned".
constexpr std::string_view search_mode_name(SearchMode mode) noexcept {
  switch (mode) {
    case SearchMode::kAuto: return "auto";
    case SearchMode::kExact: return "exact";
    case SearchMode::kPruned: return "pruned";
  }
  return "unknown";
}

/// The one request struct of the read path, threaded verbatim from the HTTP
/// query string down to the per-shard BatchedRetriever. Value-semantic and
/// cheap to copy; construct, adjust fields, Validate(), go.
struct SearchOptions {
  /// Keep only the z best documents (0 = unlimited).
  std::size_t z = 0;
  /// Inner-product convention (see retrieval.hpp).
  SimilarityMode mode = SimilarityMode::kColumnSpace;
  /// Cosine threshold applied BEFORE top-z selection; -1 keeps everything.
  double min_cosine = -1.0;

  /// Candidate-generation policy (see the header comment).
  SearchMode search = SearchMode::kAuto;
  /// Centroid posting lists scanned per query on the pruned path; 0 derives
  /// the count from `recall_target`. Clamped to the centroid count — nprobe
  /// >= num_centroids scans everything and is bit-identical to exact.
  std::size_t nprobe = 0;
  /// Recall@10-vs-exact the auto-derived nprobe aims for, in (0, 1]. 1.0
  /// maps to every centroid (exact-identical); ignored when nprobe > 0.
  double recall_target = 0.95;

  /// Per-request deadline; the default (epoch) means none. Enforcement is
  /// coarse-grained at stage boundaries (before a shard's scatter pass,
  /// before scoring) via the try_* call paths, which report
  /// kDeadlineExceeded — an in-flight sweep is never interrupted.
  std::chrono::steady_clock::time_point deadline{};

  /// Gather-side merge policy for sharded reads (docs/GATHER.md). The
  /// default concatenates raw cosines and is BIT-IDENTICAL to the pre-gather
  /// merge; kZScore / kRRF re-score per-shard lists before merging.
  gather::MergePolicy merge = gather::MergePolicy::kRawCosine;
  /// RRF damping constant (only read under MergePolicy::kRRF).
  double rrf_k = 60.0;
  /// Near-duplicate collapse threshold at the gather: fused hits whose
  /// reconstructed term profiles agree with a better-ranked hit's at cosine
  /// >= this fold into it. Outside (0, 1] (the default -1) collapses
  /// nothing. Only honored by the gather_batch read path.
  double collapse_cosine = -1.0;
  /// Number of facet terms (query refinements from the top-z semantic
  /// neighborhood) to attach to the response; 0 disables. Only honored by
  /// the gather_batch read path.
  std::size_t facets = 0;

  /// When non-null, installed as the active observability sink for the
  /// duration of the call (previous sink restored on return).
  obs::Sink* sink = nullptr;

  bool has_deadline() const noexcept {
    return deadline != std::chrono::steady_clock::time_point{};
  }
  bool deadline_expired() const noexcept {
    return has_deadline() && std::chrono::steady_clock::now() >= deadline;
  }

  /// First violation found, or OK. Validated once at the outermost layer
  /// (the HTTP daemon answers 400 with this message); inner layers assert.
  Status Validate() const {
    if (search == SearchMode::kExact && nprobe > 0) {
      return Status::InvalidArgument(
          "nprobe is meaningless with search == kExact (exact scan probes "
          "nothing); drop nprobe or use kPruned");
    }
    if (recall_target <= 0.0 || recall_target > 1.0) {
      return Status::InvalidArgument(
          "recall_target must be in (0, 1], got " +
          std::to_string(recall_target));
    }
    if (min_cosine > 1.0) {
      return Status::InvalidArgument(
          "min_cosine above 1 filters every document, got " +
          std::to_string(min_cosine));
    }
    if (rrf_k <= 0.0) {
      return Status::InvalidArgument(
          "rrf_k must be positive (rank-1 score is 1/(rrf_k + 1)), got " +
          std::to_string(rrf_k));
    }
    if (collapse_cosine > 1.0) {
      return Status::InvalidArgument(
          "collapse_cosine above 1 collapses nothing by construction; use a "
          "value in (0, 1] or leave it negative to disable");
    }
    return Status::Ok();
  }

  /// The gather-stage subset (merge policy + RRF constant).
  gather::FusionOptions fusion_options() const {
    gather::FusionOptions f;
    f.policy = merge;
    f.rrf_k = rrf_k;
    return f;
  }

  /// The exact-path subset as a legacy QueryOptions (for the low-level
  /// rank_documents/retrieve free functions, which stay on QueryOptions by
  /// design — they score a bare SemanticSpace, which never carries an ANN
  /// structure).
  QueryOptions query_options() const {
    QueryOptions q;
    q.mode = mode;
    q.min_cosine = min_cosine;
    q.top_z = z;
    q.sink = sink;
    return q;
  }

  /// Lifts a legacy QueryOptions. kAuto, not kExact: a QueryOptions caller
  /// never expressed a pruning preference, and on snapshots without an ANN
  /// structure kAuto == exact.
  static SearchOptions FromQuery(const QueryOptions& q) {
    SearchOptions s;
    s.z = q.top_z;
    s.mode = q.mode;
    s.min_cosine = q.min_cosine;
    s.sink = q.sink;
    return s;
  }
};

}  // namespace lsi::core
