#pragma once
// Serve-while-updating: a concurrent, snapshot-published index.
//
// Section 5.6 of the paper names "perform SVD-updating in real-time for
// databases that change frequently" as an open problem; IncrementalIndexer
// (incremental.hpp) answers the *algorithmic* half with fold-now /
// consolidate-later ingestion but assumes a single thread. This header adds
// the *systems* half: queries keep being served, at full speed and with
// stable results, while documents stream in.
//
// Protocol (docs/CONCURRENCY.md has the full walkthrough):
//
//   * Readers never wait on writer work. ConcurrentIndexer::snapshot()
//     hands out a std::shared_ptr<const IndexSnapshot> — an immutable
//     (SemanticSpace, labels, generation) triple — copied under a mutex
//     held only for that pointer copy, never during fold-in, SVD-update,
//     or snapshot construction. A query's entire project/score/select
//     pass runs against that one snapshot, so a reader can never observe a
//     half-consolidated basis, a V/labels length mismatch, or a norm cache
//     from a different generation. Every published space has its per-mode
//     doc-norm caches prewarmed, making cache validity a property of
//     snapshot *construction* rather than reader locking.
//
//   * Writers are serialized on one background thread (a dedicated
//     util::ThreadPool of size 1). add()/try_add() enqueue documents into a
//     bounded util::BoundedQueue; the writer drains them in arrival order,
//     folds each into its private master index (Equation 7), consolidates
//     via SVD-update when the fold-in budget is exhausted (Section 4.3),
//     and publishes a fresh snapshot with one pointer swap under the
//     snapshot mutex.
//
//   * Backpressure is explicit: add() blocks while the queue is at
//     capacity, try_add() returns kResourceExhausted instead, and both
//     return kFailedPrecondition after shutdown(). Accepted documents are
//     never dropped — shutdown drains the queue before returning.
//
// Determinism: with a single producer, the fold/consolidate sequence is
// identical to running IncrementalIndexer with the same consolidation
// budget, so the published space is bit-identical to the sequential result
// (the concurrent parity tests assert exactly this).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <string>
#include <string_view>
#include <vector>

#include "lsi/ann.hpp"
#include "lsi/incremental.hpp"
#include "lsi/lsi_index.hpp"
#include "lsi/search_options.hpp"
#include "lsi/status.hpp"
#include "util/bounded_queue.hpp"
#include "util/thread_pool.hpp"

namespace lsi::core {

struct ConcurrentOptions {
  /// Ingest queue capacity: add() blocks and try_add() refuses beyond this.
  std::size_t queue_capacity = 256;
  /// Consolidate (SVD-update) once this many folded-but-unconsolidated
  /// documents accumulate (0 = only on explicit consolidate()).
  std::size_t consolidate_every = 64;
  /// Documents folded per snapshot publish: larger batches amortize the
  /// O((m + n) k) copy-and-publish cost, smaller ones shrink the ingestion-
  /// to-visibility latency.
  std::size_t max_batch = 16;
  /// Use the exact (residual-carrying) SVD-update when consolidating.
  bool exact_update = false;
  /// Cluster-pruned candidate generation (lsi/ann.hpp): above
  /// `ann.exact_cutoff` documents every published snapshot carries an
  /// AnnIndex, rebuilt at consolidation (V rotates) and extended at
  /// fold-publishes (rows append) — the same maintenance split as the
  /// prewarmed doc-norm caches.
  AnnOptions ann;
  /// Instance tag this indexer passes to its failpoint sites
  /// (util/failpoint.hpp) — "s<shard>.r<replica>" under a ReplicaSet, so a
  /// chaos test wedges exactly one replica. Empty = matches "" filters only.
  std::string failpoint_tag;
};

/// The frozen query-side configuration every snapshot shares: vocabulary,
/// parser options and Equation-5 weighting, fixed at ConcurrentIndexer
/// construction (fold-in semantics: new documents never extend the
/// vocabulary). Immutable and therefore freely shared across threads.
class SnapshotQueryContext {
 public:
  SnapshotQueryContext(const text::Vocabulary& vocabulary,
                       const text::ParserOptions& parser,
                       const weighting::Scheme& scheme,
                       std::vector<double> global_weights);

  /// Weighted m-vector for free text, consistent with the index scheme
  /// (unknown words are dropped, exactly like LsiIndex::query).
  la::Vector weighted_term_vector(std::string_view text) const;

  const text::Vocabulary& vocabulary() const noexcept {
    return vocab_shim_.vocabulary;
  }

 private:
  text::TermDocumentMatrix vocab_shim_;  ///< only .vocabulary is populated
  text::ParserOptions parser_;
  weighting::Scheme scheme_;
  std::vector<double> global_weights_;
};

/// An immutable, atomically-published view of the index at one generation.
/// Everything reachable from a snapshot is const and stays valid for as
/// long as the shared_ptr is held — queries made through one snapshot are
/// mutually consistent and repeatable even while the writer publishes newer
/// generations.
class IndexSnapshot {
 public:
  using clock = std::chrono::steady_clock;

  /// Assembled by ConcurrentIndexer::publish (directly constructible for
  /// tests). `space` must already have its doc-norm caches prewarmed if the
  /// snapshot will be shared across threads.
  IndexSnapshot(std::shared_ptr<const SemanticSpace> space,
                std::shared_ptr<const std::vector<std::string>> labels,
                std::shared_ptr<const SnapshotQueryContext> ctx,
                std::uint64_t generation, std::size_t unconsolidated,
                clock::time_point published_at,
                std::shared_ptr<const AnnIndex> ann = nullptr)
      : space_(std::move(space)),
        labels_(std::move(labels)),
        ctx_(std::move(ctx)),
        ann_(std::move(ann)),
        generation_(generation),
        unconsolidated_(unconsolidated),
        published_at_(published_at) {}

  const SemanticSpace& space() const noexcept { return *space_; }
  /// Shared ownership of the space, for pinning a BatchedRetriever.
  const std::shared_ptr<const SemanticSpace>& space_ptr() const noexcept {
    return space_;
  }
  /// The snapshot's cluster-pruned candidate generator (lsi/ann.hpp), built
  /// at publish like the prewarmed norm caches; null below the exact-scan
  /// cutoff or when disabled — queries then take the exact path.
  const std::shared_ptr<const AnnIndex>& ann() const noexcept { return ann_; }
  const std::vector<std::string>& doc_labels() const noexcept {
    return *labels_;
  }
  const SnapshotQueryContext& context() const noexcept { return *ctx_; }

  /// Publish sequence number (1 = the base index, strictly increasing).
  std::uint64_t generation() const noexcept { return generation_; }
  /// Folded-but-unconsolidated documents at publish time (basis-distortion
  /// debt in the Section 4.3 sense).
  std::size_t unconsolidated() const noexcept { return unconsolidated_; }
  /// Seconds since this snapshot was published.
  double age_seconds() const {
    return std::chrono::duration<double>(clock::now() - published_at_)
        .count();
  }

  /// Free-text retrieval pinned to this snapshot: parse + weight via the
  /// shared context, project (Equation 6), rank — through the pruned path
  /// when opts.search admits it and the snapshot carries an AnnIndex.
  /// Labels resolve against this snapshot's label list, which is always
  /// length-consistent with V.
  std::vector<QueryResult> query(std::string_view text,
                                 const SearchOptions& opts = {},
                                 QueryStats* stats = nullptr) const;

  /// Ranks an already-weighted m-vector against this snapshot.
  std::vector<ScoredDoc> retrieve(const la::Vector& term_vector,
                                  const SearchOptions& opts = {},
                                  QueryStats* stats = nullptr) const;

 private:
  std::shared_ptr<const SemanticSpace> space_;
  std::shared_ptr<const std::vector<std::string>> labels_;
  std::shared_ptr<const SnapshotQueryContext> ctx_;
  std::shared_ptr<const AnnIndex> ann_;
  std::uint64_t generation_;
  std::size_t unconsolidated_;
  clock::time_point published_at_;
};

/// Ingest-and-serve wrapper: readers acquire snapshots, writers enqueue
/// documents; one background thread folds, consolidates and publishes.
/// Thread-safe throughout; see the header comment for the protocol and
/// docs/CONCURRENCY.md for the design discussion.
class ConcurrentIndexer {
 public:
  explicit ConcurrentIndexer(LsiIndex index,
                             const ConcurrentOptions& opts = {});
  ~ConcurrentIndexer();

  ConcurrentIndexer(const ConcurrentIndexer&) = delete;
  ConcurrentIndexer& operator=(const ConcurrentIndexer&) = delete;

  /// Enqueues one document, blocking while the ingest queue is at capacity
  /// (backpressure). Fails with kFailedPrecondition after shutdown().
  Status add(text::Document doc);

  /// Non-blocking enqueue: kResourceExhausted when the queue is full (the
  /// caller's signal to shed load or retry), kFailedPrecondition after
  /// shutdown().
  Status try_add(text::Document doc);

  /// Blocks until every document accepted so far has been folded in and a
  /// snapshot containing it has been published.
  void flush();

  /// Requests an SVD-update consolidation of any folded-but-unconsolidated
  /// documents and blocks until it (and all prior ingestion) is published.
  /// Fails with kFailedPrecondition after shutdown().
  Status consolidate();

  /// Stops accepting documents, drains everything already accepted (final
  /// snapshot published) and joins the writer. Idempotent; also run by the
  /// destructor.
  void shutdown();

  /// The current snapshot: copies one shared_ptr under snapshot_mu_ and
  /// never observes partial state. The mutex covers only that pointer copy
  /// (nanoseconds) — never fold-in, SVD-update, or publish construction —
  /// so readers never wait on writer *work*. Hold the returned pointer for
  /// the duration of a logical query (or batch) to pin all of its passes
  /// to one generation.
  ///
  /// (Why a mutex and not std::atomic<shared_ptr>: libstdc++'s _Sp_atomic
  /// unlocks its internal spinlock with a relaxed RMW, which leaves no
  /// release/acquire edge ThreadSanitizer can see — every load/store pair
  /// is reported as a race. A plain mutex gives the same few-nanosecond
  /// critical section and a provable happens-before.)
  std::shared_ptr<const IndexSnapshot> snapshot() const {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    return snapshot_;
  }

  /// Documents accepted but not yet folded into any snapshot.
  std::size_t queued() const { return queue_.size(); }
  /// Documents folded into the master index so far.
  std::uint64_t ingested() const noexcept {
    return ingested_.load(std::memory_order_relaxed);
  }
  /// Snapshots published so far (>= 1 once constructed).
  std::uint64_t publishes() const noexcept {
    return publishes_.load(std::memory_order_relaxed);
  }
  /// SVD-update consolidations performed so far.
  std::uint64_t consolidations() const noexcept {
    return consolidations_.load(std::memory_order_relaxed);
  }
  /// True while the writer is inside an SVD-update consolidation — readers
  /// keep serving from the last published snapshot the whole time (the
  /// serving bench samples this to prove queries overlap consolidation).
  bool consolidating() const noexcept {
    return consolidating_.load(std::memory_order_acquire);
  }

  const ConcurrentOptions& options() const noexcept { return opts_; }

 private:
  /// Ensures a writer drain task is queued (caller must not hold mu_).
  void schedule_writer();
  /// Writer-thread main: drains the queue in batches until no work remains.
  void writer_drain();
  /// Folds a batch in arrival order, applying the consolidation policy.
  void ingest_batch(std::vector<text::Document>& batch);
  /// SVD-update of the pending fold-ins (writer thread only).
  void consolidate_now();
  /// Copies the master state into a fresh immutable snapshot, prewarms the
  /// doc-norm caches, and atomically swaps it in (writer thread only).
  void publish();
  /// Blocks until the queue is empty and the writer is idle.
  void wait_idle();

  ConcurrentOptions opts_;
  std::shared_ptr<const SnapshotQueryContext> ctx_;
  IncrementalIndexer master_;  ///< writer-thread-only after construction
  util::BoundedQueue<text::Document> queue_;

  mutable std::mutex mu_;            ///< guards writer_active_
  std::condition_variable cv_idle_;  ///< signaled when the writer goes idle
  bool writer_active_ = false;       ///< a drain task is queued or running

  /// Writer-thread-only ANN state: the structure the next publish will ship.
  /// Rebuilt when `ann_rebuild_` is set (consolidation rotated V), extended
  /// when documents were merely appended (fold-ins), like extend_doc_norms.
  std::shared_ptr<const AnnIndex> master_ann_;
  bool ann_rebuild_ = false;

  std::atomic<bool> force_consolidate_{false};
  std::atomic<bool> consolidating_{false};
  std::atomic<std::uint64_t> ingested_{0};
  std::atomic<std::uint64_t> publishes_{0};
  std::atomic<std::uint64_t> consolidations_{0};
  mutable std::mutex snapshot_mu_;  ///< guards only the snapshot_ pointer
  std::shared_ptr<const IndexSnapshot> snapshot_;

  /// Declared last: destroyed (and joined) first, while every member the
  /// drain task touches is still alive.
  util::ThreadPool writer_{1};
};

}  // namespace lsi::core
