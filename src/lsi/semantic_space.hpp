#pragma once
// The LSI semantic space: the rank-k truncated SVD A_k = U_k S_k V_k^T of a
// (weighted) term-document matrix (the paper's Figure 1 / Table 1):
//
//   A_k : best rank-k approximation to A      m : number of terms
//   U   : term vectors  (m x k)               n : number of documents
//   S   : singular values (k)                 k : number of factors
//   V   : document vectors (n x k)            r : rank of A
//
// Terms live in the rows of U, documents in the rows of V. Everything
// downstream (queries, folding-in, SVD-updating) operates on this struct.

#include <vector>

#include "la/lanczos.hpp"
#include "la/sparse.hpp"
#include "la/svd_types.hpp"

namespace lsi::core {

using la::index_t;

struct SemanticSpace {
  la::DenseMatrix u;           ///< m x k, term vectors in rows
  std::vector<double> sigma;   ///< k singular values, descending
  la::DenseMatrix v;           ///< n x k, document vectors in rows

  index_t k() const noexcept { return sigma.size(); }
  index_t num_terms() const noexcept { return u.rows(); }
  index_t num_docs() const noexcept { return v.rows(); }

  /// Row i of U (term i's k-vector).
  la::Vector term_vector(index_t i) const { return u.row(i); }
  /// Row j of V (document j's k-vector).
  la::Vector doc_vector(index_t j) const { return v.row(j); }

  /// Row j of V scaled by the singular values — the coordinates the paper
  /// plots in Figures 4-9 and compares queries against.
  la::Vector doc_coords(index_t j) const;
  /// Row i of U scaled by the singular values.
  la::Vector term_coords(index_t i) const;

  /// Reconstructs A_k (tests and small examples only).
  la::DenseMatrix reconstruct() const;
};

struct BuildOptions {
  index_t k = 100;          ///< number of factors retained
  /// Below this min(m, n) the dense Jacobi SVD is used instead of Lanczos.
  index_t dense_cutoff = 96;
  la::LanczosOptions lanczos;  ///< k field is overridden by `k`
};

/// Computes the truncated SVD of a (weighted) term-document matrix and
/// packages it as a semantic space. k is clamped to min(m, n).
SemanticSpace build_semantic_space(const la::CscMatrix& a,
                                   const BuildOptions& opts,
                                   la::LanczosStats* stats = nullptr);

/// Convenience: build with k factors and defaults elsewhere.
SemanticSpace build_semantic_space(const la::CscMatrix& a, index_t k);

/// Flips the sign of space factors so they best match `reference` (another
/// U matrix over the same terms, e.g. the paper's printed Figure 5 U_2).
/// Sign choice is a free parameter of any SVD; aligning makes plots and
/// printed coordinates comparable.
void align_signs_to(SemanticSpace& space, const la::DenseMatrix& reference);

/// Orthogonality loss ||Q^T Q - I||_2 (spectral norm), the Section 4.3
/// measure of how much folding-in has corrupted a basis.
double orthogonality_loss(const la::DenseMatrix& q);

/// Fraction of the matrix's squared Frobenius norm captured by the first k
/// singular values of `sigma` (Theorem 2.1: ||A||_F^2 = sum sigma_i^2).
/// `sigma` must be the full (or longest available) spectrum.
double energy_captured(const std::vector<double>& sigma, index_t k);

/// Smallest k whose truncation captures at least `energy_fraction` of the
/// spectrum's squared mass — a principled starting point for the
/// Section 5.2 "choosing the number of factors" question (retrieval
/// performance should still be validated around it).
index_t suggest_k(const std::vector<double>& sigma, double energy_fraction);

}  // namespace lsi::core
