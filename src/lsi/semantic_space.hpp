#pragma once
// The LSI semantic space: the rank-k truncated SVD A_k = U_k S_k V_k^T of a
// (weighted) term-document matrix (the paper's Figure 1 / Table 1):
//
//   A_k : best rank-k approximation to A      m : number of terms
//   U   : term vectors  (m x k)               n : number of documents
//   S   : singular values (k)                 k : number of factors
//   V   : document vectors (n x k)            r : rank of A
//
// Terms live in the rows of U, documents in the rows of V. Everything
// downstream (queries, folding-in, SVD-updating) operates on this struct.

#include <array>
#include <memory>
#include <vector>

#include "la/lanczos.hpp"
#include "la/sparse.hpp"
#include "la/svd_types.hpp"
#include "lsi/status.hpp"

namespace lsi::core {

using la::index_t;

class Bf16DocStore;

/// Inner-product convention used when comparing queries to documents (see
/// retrieval.hpp for the full derivation of the three conventions). Declared
/// here because SemanticSpace caches per-document norms keyed by mode.
enum class SimilarityMode {
  kColumnSpace,  ///< cos(q_hat * S, v_j * S)
  kProjected,    ///< cos(q_hat,     v_j * S)
  kPlainV,       ///< cos(q_hat,     v_j)
};

inline constexpr std::size_t kNumSimilarityModes = 3;

struct SemanticSpace {
  la::DenseMatrix u;           ///< m x k, term vectors in rows
  std::vector<double> sigma;   ///< k singular values, descending
  la::DenseMatrix v;           ///< n x k, document vectors in rows

  index_t k() const noexcept { return sigma.size(); }
  index_t num_terms() const noexcept { return u.rows(); }
  index_t num_docs() const noexcept { return v.rows(); }

  /// Per-document 2-norms of the coordinates `mode` compares against
  /// (||v_j .* sigma|| for the sigma-scaled modes, ||v_j|| for kPlainV),
  /// computed lazily on first use and cached — the batched scorer divides by
  /// these instead of renormalizing every document for every query.
  ///
  /// Mutators in this library (folding, updating) invalidate the cache; code
  /// that writes u/sigma/v directly must call invalidate_doc_norms(). A
  /// row-count guard additionally catches appended documents. The lazy fill
  /// is not safe under concurrent first use; call once before sharing a
  /// space across threads.
  const std::vector<double>& doc_norms(SimilarityMode mode) const;

  /// Drops every cached per-mode norm vector (call after mutating v/sigma).
  void invalidate_doc_norms() noexcept;

  /// Eagerly fills the norm cache for every SimilarityMode. After this call,
  /// doc_norms() is a pure read for any mode, so the space can be shared
  /// read-only across threads (the snapshot-publish path of
  /// lsi/concurrent.hpp prewarms every published space — see
  /// docs/CONCURRENCY.md: caches are made valid *by construction*, never by
  /// locking readers).
  void prewarm_doc_norms() const;

  /// Append-only cache maintenance: after new document rows were appended
  /// to V (folding-in), extends every already-filled mode cache with the
  /// norms of rows [old_num_docs, num_docs()) instead of recomputing all n
  /// of them. The extended entries are computed exactly like the lazy fill,
  /// so the result is bit-identical to an invalidate-and-refill. Caches that
  /// were cold (or whose length does not match `old_num_docs`) are cleared.
  /// Only valid for mutations that appended rows and left the existing rows
  /// and sigma untouched; rotations must call invalidate_doc_norms().
  void extend_doc_norms(index_t old_num_docs) const;

  /// Opt-in compressed (bf16) mirror of V for the scoring sweep
  /// (lsi/doc_store.hpp, docs/KERNELS.md). The flag is sticky across copies
  /// and survives invalidation; the store itself follows the exact norm-
  /// cache protocol above: lazily (re)built on first use after a mutation,
  /// extended in O(p k) by extend_doc_norms() after appends, dropped by
  /// invalidate_doc_norms(), made valid-by-construction by
  /// prewarm_doc_norms() before a space is shared across threads.
  void set_compress_docs(bool on);
  bool compress_docs() const noexcept { return compress_docs_; }

  /// The compressed store when compression is enabled (lazily building if
  /// stale — same single-threaded-first-use caveat as doc_norms), else
  /// null. BatchedRetriever switches to the bf16 sweep iff this is non-null.
  const Bf16DocStore* compressed_docs() const;

  /// Installs an already-built store (the io load path); implies
  /// set_compress_docs(true). The store must match this space's shape.
  void adopt_compressed_docs(std::shared_ptr<const Bf16DocStore> store);

  /// Row i of U (term i's k-vector).
  la::Vector term_vector(index_t i) const { return u.row(i); }
  /// Row j of V (document j's k-vector).
  la::Vector doc_vector(index_t j) const { return v.row(j); }

  /// Row j of V scaled by the singular values — the coordinates the paper
  /// plots in Figures 4-9 and compares queries against.
  la::Vector doc_coords(index_t j) const;
  /// Row i of U scaled by the singular values.
  la::Vector term_coords(index_t i) const;

  /// Reconstructs A_k (tests and small examples only).
  la::DenseMatrix reconstruct() const;

 private:
  /// Shared fill kernel for the lazy fill / prewarm / append-extension
  /// paths: computes norms for rows [begin, end) into `norms` (pre-sized).
  void fill_doc_norm_range(SimilarityMode mode, index_t begin, index_t end,
                           std::vector<double>& norms) const;

  /// One lazily-filled norm vector per SimilarityMode; empty = not computed.
  mutable std::array<std::vector<double>, kNumSimilarityModes> doc_norm_cache_;

  /// Compressed-store request flag + lazily-built immutable store (shared
  /// with copies of this space until a mutation invalidates it).
  bool compress_docs_ = false;
  mutable std::shared_ptr<const Bf16DocStore> bf16_store_;
};

struct BuildOptions {
  index_t k = 100;          ///< number of factors retained
  /// Below this min(m, n) the dense Jacobi SVD is used instead of Lanczos.
  /// 0 forces the Lanczos path even on tiny matrices (useful to exercise the
  /// instrumented sparse solver from the CLI).
  index_t dense_cutoff = 96;
  la::LanczosOptions lanczos;  ///< k field is overridden by `k`
};

/// Canonical builder: computes the truncated SVD of a (weighted)
/// term-document matrix and packages it as a semantic space. k is clamped to
/// min(m, n) (asking for more factors than the shape admits is routine when
/// sweeping k). Fails with InvalidArgument on an empty matrix or k == 0, and
/// Internal if the solver signals non-convergence
/// (LanczosOptions::throw_if_not_converged). Runs under the "build.svd"
/// trace span; `stats` receives the Lanczos convergence counters and
/// measured flops.
Expected<SemanticSpace> try_build_semantic_space(
    const la::CscMatrix& a, const BuildOptions& opts,
    la::LanczosStats* stats = nullptr);

/// Convenience: build with k factors and defaults elsewhere.
Expected<SemanticSpace> try_build_semantic_space(const la::CscMatrix& a,
                                                 index_t k);

/// Deprecated throwing signatures (one-PR migration shims; see status.hpp).
[[deprecated("use try_build_semantic_space(a, opts).value()")]]
SemanticSpace build_semantic_space(const la::CscMatrix& a,
                                   const BuildOptions& opts,
                                   la::LanczosStats* stats = nullptr);

[[deprecated("use try_build_semantic_space(a, k).value()")]]
SemanticSpace build_semantic_space(const la::CscMatrix& a, index_t k);

/// Flips the sign of space factors so they best match `reference` (another
/// U matrix over the same terms, e.g. the paper's printed Figure 5 U_2).
/// Sign choice is a free parameter of any SVD; aligning makes plots and
/// printed coordinates comparable.
void align_signs_to(SemanticSpace& space, const la::DenseMatrix& reference);

/// Orthogonality loss ||Q^T Q - I||_2 (spectral norm), the Section 4.3
/// measure of how much folding-in has corrupted a basis.
double orthogonality_loss(const la::DenseMatrix& q);

/// Fraction of the matrix's squared Frobenius norm captured by the first k
/// singular values of `sigma` (Theorem 2.1: ||A||_F^2 = sum sigma_i^2).
/// `sigma` must be the full (or longest available) spectrum.
double energy_captured(const std::vector<double>& sigma, index_t k);

/// Smallest k whose truncation captures at least `energy_fraction` of the
/// spectrum's squared mass — a principled starting point for the
/// Section 5.2 "choosing the number of factors" question (retrieval
/// performance should still be validated around it).
index_t suggest_k(const std::vector<double>& sigma, double energy_fraction);

}  // namespace lsi::core
