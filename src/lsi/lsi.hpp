#pragma once
// Umbrella header: the stable public surface of the library, re-exported
// under the top-level `lsi::` namespace. Applications, examples and benches
// should include this one header and use the `lsi::` aliases below instead
// of reaching into the `lsi::core` / `lsi::text` / `lsi::weighting`
// internals — the nested namespaces stay free to reorganize, the aliases do
// not.
//
//   #include "lsi/lsi.hpp"
//
//   lsi::IndexOptions opts;
//   auto index = lsi::LsiIndex::try_build(docs, opts).value();
//   for (const auto& hit : index.query("graph partitioning")) ...

#include "lsi/ann.hpp"
#include "lsi/batched_retrieval.hpp"
#include "lsi/concurrent.hpp"
#include "lsi/search_options.hpp"
#include "lsi/flops.hpp"
#include "lsi/folding.hpp"
#include "lsi/incremental.hpp"
#include "lsi/io.hpp"
#include "lsi/lsi_index.hpp"
#include "lsi/ranking.hpp"
#include "lsi/retrieval.hpp"
#include "lsi/semantic_space.hpp"
#include "lsi/sharding/router.hpp"
#include "lsi/sharding/sharded_index.hpp"
#include "lsi/status.hpp"
#include "lsi/update.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "text/document.hpp"
#include "text/parser.hpp"
#include "weighting/weighting.hpp"

namespace lsi {

// Status / Expected already live at lsi:: scope (status.hpp).

// Documents and parsing.
using text::Collection;
using text::Document;
using text::ParserOptions;
using text::TermDocumentMatrix;
using text::Vocabulary;

// Equation-5 weighting.
using weighting::GlobalWeight;
using weighting::LocalWeight;
using weighting::Scheme;

// The semantic space and its builder.
using core::BuildOptions;
using core::SemanticSpace;
using core::SimilarityMode;
using core::try_build_semantic_space;

// The high-level index and retrieval types.
using core::AddMethod;
using core::BatchedRetriever;
using core::IndexOptions;
using core::LsiIndex;
using core::QueryBatch;
using core::QueryOptions;
using core::QueryResult;
using core::QueryStats;
using core::ScoredDoc;

// The unified per-request knob set and the cluster-pruned candidate
// generator it steers (lsi/search_options.hpp, lsi/ann.hpp, docs/ANN.md).
using core::AnnIndex;
using core::AnnOptions;
using core::search_mode_name;
using core::SearchMode;
using core::SearchOptions;

// Free-function retrieval over a bare SemanticSpace.
using core::project_query;
using core::project_term;
using core::rank_documents;
using core::rank_terms;
using core::retrieve;

// Incremental maintenance (Sections 2.3 and 4).
using core::fold_in_documents;
using core::fold_in_terms;
using core::IncrementalIndexer;
using core::IncrementalOptions;
using core::update_documents;
using core::update_terms;

// Concurrent serve-while-updating (Section 5.6; docs/CONCURRENCY.md).
using core::ConcurrentIndexer;
using core::ConcurrentOptions;
using core::IndexSnapshot;
using core::SnapshotQueryContext;

// The canonical ranking order (lsi/ranking.hpp).
using core::merge_rankings;
using core::ranks_before;
using core::sort_ranking;

// Sharded scatter-gather serving (docs/SHARDING.md).
using core::parse_routing_policy;
using core::routing_policy_name;
using core::RoutingPolicy;
using core::ShardedIndex;
using core::ShardedSnapshot;
using core::ShardingOptions;
using core::ShardRouter;

// Persistence.
using core::LsiDatabase;
using core::try_load_database;
using core::try_load_database_file;
using core::try_save_database;
using core::try_save_database_file;

}  // namespace lsi
