#include "lsi/folding.hpp"

#include <cassert>

#include "lsi/retrieval.hpp"
#include "obs/trace.hpp"

namespace lsi::core {

void fold_in_documents(SemanticSpace& space, const la::CscMatrix& d) {
  assert(d.rows() == space.num_terms());
  LSI_OBS_SPAN(span, "foldin.documents");
  obs::count("foldin.documents_added", d.cols());
  const index_t old_docs = space.num_docs();
  la::DenseMatrix new_rows(d.cols(), space.k());
  la::Vector dense_col(d.rows());
  for (index_t j = 0; j < d.cols(); ++j) {
    std::fill(dense_col.begin(), dense_col.end(), 0.0);
    auto rows = d.col_rows(j);
    auto vals = d.col_values(j);
    for (std::size_t p = 0; p < rows.size(); ++p) dense_col[rows[p]] = vals[p];
    const la::Vector d_hat = project_query(space, dense_col);
    for (index_t i = 0; i < space.k(); ++i) new_rows(j, i) = d_hat[i];
  }
  space.v.append_rows(new_rows);
  // Folding appends rows and leaves the existing V rows and sigma untouched,
  // so warm norm caches are extended with the p new norms instead of being
  // recomputed from scratch — O(p k) per fold instead of O(n k), which is
  // what keeps the serve-while-updating publish path (lsi/concurrent.hpp)
  // cheap. Extension is bit-identical to a full refill.
  space.extend_doc_norms(old_docs);
}

void fold_in_terms(SemanticSpace& space, const la::CscMatrix& t) {
  assert(t.cols() == space.num_docs());
  LSI_OBS_SPAN(span, "foldin.terms");
  obs::count("foldin.terms_added", t.rows());
  la::DenseMatrix new_rows(t.rows(), space.k());
  // Convert to CSR for O(nnz_q) access to each new term row; the Eq. 8
  // projection t V S^{-1} then costs O(nnz_q * k) per term instead of
  // O(n * k) for the densified row.
  const la::CsrMatrix rows = la::CsrMatrix::from_csc(t);
  for (index_t q = 0; q < t.rows(); ++q) {
    auto cols = rows.row_cols(q);
    auto vals = rows.row_values(q);
    for (index_t i = 0; i < space.k(); ++i) {
      double acc = 0.0;
      for (std::size_t p = 0; p < cols.size(); ++p) {
        acc += vals[p] * space.v(cols[p], i);
      }
      new_rows(q, i) =
          space.sigma[i] > 0.0 ? acc / space.sigma[i] : 0.0;
    }
  }
  space.u.append_rows(new_rows);
}

void fold_in_documents(SemanticSpace& space, const la::DenseMatrix& d) {
  fold_in_documents(space, la::CscMatrix::from_dense(d));
}

void fold_in_terms(SemanticSpace& space, const la::DenseMatrix& t) {
  fold_in_terms(space, la::CscMatrix::from_dense(t));
}

}  // namespace lsi::core
