#include "lsi/incremental.hpp"

#include "lsi/folding.hpp"
#include "lsi/update.hpp"

namespace lsi::core {

IncrementalIndexer::IncrementalIndexer(LsiIndex index,
                                       const IncrementalOptions& opts)
    : index_(std::move(index)), opts_(opts) {}

bool IncrementalIndexer::add(const text::Document& doc) {
  const la::Vector weighted = index_.weighted_term_vector(doc.body);
  pending_docs_.push_back(weighted);

  // Immediate availability: fold the document in now.
  la::CooBuilder one(index_.space().num_terms(), 1);
  for (index_t i = 0; i < weighted.size(); ++i) {
    if (weighted[i] != 0.0) one.add(i, 0, weighted[i]);
  }
  fold_in_documents(index_.mutable_space(), one.to_csc());
  index_.mutable_labels().push_back(doc.label);

  if (opts_.consolidate_every > 0 &&
      pending_docs_.size() >= opts_.consolidate_every) {
    consolidate();
    return true;
  }
  return false;
}

void IncrementalIndexer::consolidate() {
  if (pending_docs_.empty()) return;
  const std::size_t p = pending_docs_.size();
  SemanticSpace& space = index_.mutable_space();

  // Drop the folded rows (the last p rows of V) and redo the batch as a
  // proper SVD-update so the decomposition is orthonormal again.
  la::DenseMatrix v_trunc(space.num_docs() - p, space.k());
  for (index_t j = 0; j < space.k(); ++j) {
    for (index_t i = 0; i < v_trunc.rows(); ++i) {
      v_trunc(i, j) = space.v(i, j);
    }
  }
  space.v = std::move(v_trunc);
  space.invalidate_doc_norms();

  la::CooBuilder batch(space.num_terms(), p);
  for (std::size_t c = 0; c < p; ++c) {
    for (index_t i = 0; i < pending_docs_[c].size(); ++i) {
      if (pending_docs_[c][i] != 0.0) batch.add(i, c, pending_docs_[c][i]);
    }
  }
  const la::CscMatrix d = batch.to_csc();
  if (opts_.exact_update) {
    update_documents_exact(space, d);
  } else {
    update_documents(space, d);
  }
  pending_docs_.clear();
  ++consolidations_;
}

}  // namespace lsi::core
