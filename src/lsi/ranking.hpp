#pragma once
// The one total order every ranking in this library obeys: higher cosine
// first, ties broken by ascending document index. Extracted here so the
// single-query path (retrieval.cpp), the batched engine's bounded top-z heap
// (batched_retrieval.cpp), the cluster-probing shortcut (neighbors.cpp), and
// the sharded scatter-gather merger (sharding/) all sort by the *same*
// comparator — a query ranked against one shard, eight shards, or the
// monolithic index breaks equal-score ties identically, which is what makes
// the N = 1 sharded configuration bit-identical to BatchedRetriever and
// equal-score orderings stable across shard counts.

#include <algorithm>
#include <cstddef>
#include <vector>

namespace lsi::core {

/// True when `a` ranks strictly before `b`: cosine descending, then document
/// index ascending. Works on any pair of types exposing `.cosine` and `.doc`
/// (ScoredDoc, QueryResult, ...). A strict weak ordering with no equivalent
/// elements when document indices are distinct, so every sort using it has
/// exactly one result order.
template <typename A, typename B = A>
inline bool ranks_before(const A& a, const B& b) noexcept {
  if (a.cosine != b.cosine) return a.cosine > b.cosine;
  return a.doc < b.doc;
}

/// Sorts a ranking into the canonical order and truncates to `top_z`
/// (0 = unlimited).
template <typename Doc>
inline void sort_ranking(std::vector<Doc>& docs, std::size_t top_z = 0) {
  std::sort(docs.begin(), docs.end(), ranks_before<Doc, Doc>);
  if (top_z > 0 && docs.size() > top_z) docs.resize(top_z);
}

/// Gather-side merge: combines per-shard rankings (each already in canonical
/// order, with document indices already mapped into one global id space)
/// into a single canonical top-z ranking. With one input list the output is
/// the input truncated to z — the merge adds no reordering of its own, which
/// the sharded N = 1 bit-parity test relies on.
template <typename Doc>
inline std::vector<Doc> merge_rankings(
    const std::vector<std::vector<Doc>>& per_shard, std::size_t top_z = 0) {
  std::size_t total = 0;
  for (const auto& list : per_shard) total += list.size();
  std::vector<Doc> merged;
  merged.reserve(total);
  for (const auto& list : per_shard) {
    merged.insert(merged.end(), list.begin(), list.end());
  }
  sort_ranking(merged, top_z);
  return merged;
}

}  // namespace lsi::core
