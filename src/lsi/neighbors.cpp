#include "lsi/neighbors.hpp"

#include <algorithm>
#include <cmath>

#include "lsi/ranking.hpp"
#include "util/rng.hpp"

namespace lsi::core {

namespace {

/// Normalizes every row to unit 2-norm (zero rows stay zero).
void normalize_rows(la::DenseMatrix& m) {
  for (index_t i = 0; i < m.rows(); ++i) {
    double ss = 0.0;
    for (index_t j = 0; j < m.cols(); ++j) ss += m(i, j) * m(i, j);
    const double norm = std::sqrt(ss);
    if (norm == 0.0) continue;
    for (index_t j = 0; j < m.cols(); ++j) m(i, j) /= norm;
  }
}

double row_dot(const la::DenseMatrix& a, index_t i,
               std::span<const double> x) {
  double acc = 0.0;
  for (index_t j = 0; j < a.cols(); ++j) acc += a(i, j) * x[j];
  return acc;
}

}  // namespace

DocNeighborIndex::DocNeighborIndex(const SemanticSpace& space,
                                   const NeighborIndexOptions& opts) {
  const index_t n = space.num_docs();
  const index_t k = space.k();

  doc_coords_ = la::DenseMatrix(n, k);
  for (index_t d = 0; d < n; ++d) {
    for (index_t j = 0; j < k; ++j) {
      doc_coords_(d, j) = space.v(d, j) * space.sigma[j];
    }
  }
  normalize_rows(doc_coords_);

  index_t clusters = opts.clusters;
  if (clusters == 0) {
    clusters = std::max<index_t>(
        1, static_cast<index_t>(std::sqrt(static_cast<double>(n))));
  }
  clusters = std::min(clusters, std::max<index_t>(1, n));

  // Spherical k-means: maximize centroid cosine; centroids renormalized.
  util::Rng rng(opts.seed);
  centroids_ = la::DenseMatrix(clusters, k);
  const auto seeds = rng.sample_without_replacement(n, clusters);
  for (index_t c = 0; c < clusters; ++c) {
    for (index_t j = 0; j < k; ++j) {
      centroids_(c, j) = doc_coords_(seeds[c], j);
    }
  }

  std::vector<index_t> assignment(n, 0);
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    bool changed = false;
    for (index_t d = 0; d < n; ++d) {
      index_t best = 0;
      double best_score = -2.0;
      const la::Vector row = doc_coords_.row(d);
      for (index_t c = 0; c < clusters; ++c) {
        const double score = row_dot(centroids_, c, row);
        if (score > best_score) {
          best_score = score;
          best = c;
        }
      }
      if (assignment[d] != best) {
        assignment[d] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Recompute centroids as normalized member means; empty clusters are
    // re-seeded from the document farthest from its centroid.
    centroids_ = la::DenseMatrix(clusters, k);
    std::vector<index_t> counts(clusters, 0);
    for (index_t d = 0; d < n; ++d) {
      for (index_t j = 0; j < k; ++j) {
        centroids_(assignment[d], j) += doc_coords_(d, j);
      }
      ++counts[assignment[d]];
    }
    for (index_t c = 0; c < clusters; ++c) {
      if (counts[c] == 0) {
        const index_t victim = rng.uniform_index(n);
        for (index_t j = 0; j < k; ++j) {
          centroids_(c, j) = doc_coords_(victim, j);
        }
      }
    }
    normalize_rows(centroids_);
  }

  members_.assign(clusters, {});
  for (index_t d = 0; d < n; ++d) members_[assignment[d]].push_back(d);
}

std::vector<ScoredDoc> DocNeighborIndex::query(
    std::span<const double> query_coords, std::size_t top_z,
    std::size_t probes, NeighborQueryStats* stats) const {
  const index_t clusters = centroids_.rows();
  probes = std::clamp<std::size_t>(probes, 1, clusters);

  // Rank clusters by centroid similarity.
  std::vector<std::pair<double, index_t>> by_centroid;
  by_centroid.reserve(clusters);
  for (index_t c = 0; c < clusters; ++c) {
    by_centroid.push_back({-row_dot(centroids_, c, query_coords), c});
  }
  std::partial_sort(by_centroid.begin(), by_centroid.begin() + probes,
                    by_centroid.end());

  const double qnorm = la::norm2(query_coords);
  std::vector<ScoredDoc> out;
  NeighborQueryStats local;
  for (std::size_t p = 0; p < probes; ++p) {
    ++local.clusters_probed;
    for (index_t d : members_[by_centroid[p].second]) {
      ++local.documents_scored;
      const double cos =
          qnorm > 0.0 ? row_dot(doc_coords_, d, query_coords) / qnorm : 0.0;
      out.push_back({d, cos});
    }
  }
  std::stable_sort(out.begin(), out.end(), ranks_before<ScoredDoc>);
  if (top_z > 0 && out.size() > top_z) out.resize(top_z);
  if (stats) *stats = local;
  return out;
}

}  // namespace lsi::core
