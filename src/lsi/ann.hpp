#pragma once
// Cluster-pruned ANN candidate generation in semantic space (docs/ANN.md).
//
// Exact Equation-6 retrieval scores every document: O(n*k) per query per
// shard, which caps corpus size (ROADMAP item 3). This header adds the
// classic cluster-pruning structure, built in the *reduced* space — the
// term-document matrix-model analysis of Antonellis & Gallopoulos (PAPERS.md)
// motivates clustering rows of V_k rather than term vectors:
//
//   build   spherical k-means over the sigma-scaled, unit-normalized rows of
//           V_k (the document coordinates the cosine modes compare against):
//           k-means++ seeding, a bounded number of Lloyd iterations over a
//           deterministic training subsample, then one parallel assignment
//           pass over all n documents. Per centroid: a posting list of local
//           doc ids plus a row-major copy of those documents' raw V_k rows,
//           so the query-time scan is cache-sequential (V itself is
//           column-major; gathering scattered rows from it would stride by n).
//
//   query   score the C centroids (O(C*k)), take the `nprobe` best, scan only
//           their posting lists and re-rank survivors with the exact
//           Equation-6 cosine — the same accumulation order, the same skip of
//           zero weights, the same normalization as the exact sweep, so with
//           nprobe == num_centroids the pruned ranking is bit-identical to
//           the exact scan (asserted by tests and the serving bench).
//
// Determinism: given the same space and options, build() is bit-reproducible
// — seeding and Lloyd run on a stride-deterministic subsample with a fixed
// util::Rng seed, accumulation orders are fixed, parallel assignment writes
// disjoint slots, and every tie (centroid scores, empty-cluster reseeds)
// breaks toward the lower index. An IndexSnapshot therefore has exactly one
// possible AnnIndex, like its prewarmed norm caches.
//
// Maintenance mirrors the doc-norm caches (semantic_space.hpp): fold-ins
// append rows to V and leave existing rows untouched, so extend() assigns
// only the new rows to the existing centroids; consolidation rotates V, so
// the owner rebuilds from scratch (ConcurrentIndexer does both at publish).

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "la/dense.hpp"
#include "lsi/search_options.hpp"
#include "lsi/semantic_space.hpp"
#include "lsi/status.hpp"

namespace lsi::core {

struct AnnOptions {
  /// Master switch: false never builds a structure (exact scan everywhere).
  bool enabled = true;
  /// Centroid count C; 0 derives ceil(sqrt(n)) (clamped to [1, n]).
  index_t num_centroids = 0;
  /// Lloyd iteration bound after k-means++ seeding (small on purpose: the
  /// structure only prunes candidates, exactness comes from the re-rank).
  std::size_t max_iterations = 6;
  /// k-means trains on at most this many documents (stride-sampled
  /// deterministically); the final assignment pass always covers all n.
  index_t training_sample = 65536;
  /// Corpora below this many documents never build a structure — the exact
  /// scan is already fast and the centroid overhead would not pay for
  /// itself. The serving layers fall back to exact scan when absent.
  index_t exact_cutoff = 4096;
  /// Seed for k-means++ sampling (part of the determinism contract).
  std::uint64_t seed = 0xC105731DULL;

  /// First violation found, or OK (checked by ShardingOptions::Validate).
  Status Validate() const;
};

/// Immutable cluster-pruning structure over one SemanticSpace, owned by the
/// IndexSnapshot that published it (shared_ptr, like the space itself).
/// Thread-safe by immutability.
class AnnIndex {
 public:
  /// Builds the structure, or returns null when it should not exist:
  /// options disabled, fewer than exact_cutoff documents, or a degenerate
  /// space (no documents / no factors). Deterministic given (space, opts).
  static std::shared_ptr<const AnnIndex> build(const SemanticSpace& space,
                                               const AnnOptions& opts,
                                               std::uint64_t generation);

  /// Append-only maintenance after fold-ins: assigns rows
  /// [num_docs(), space.num_docs()) to the existing centroids and returns a
  /// new structure covering all of `space`. Existing documents keep their
  /// assignments (centroids are not re-trained — the exactness of results
  /// never depends on assignment quality, only recall does). Only valid for
  /// mutations that appended rows and left existing rows and sigma
  /// untouched; rotations (consolidation) must rebuild. The build
  /// generation is carried over: the partition itself is unchanged.
  std::shared_ptr<const AnnIndex> extend(const SemanticSpace& space) const;

  index_t num_centroids() const noexcept { return offsets_.empty() ? 0 : static_cast<index_t>(offsets_.size() - 1); }
  index_t num_docs() const noexcept { return num_docs_; }
  index_t k() const noexcept { return k_; }
  /// Publish generation at which this structure was built or last extended.
  std::uint64_t build_generation() const noexcept { return generation_; }
  const AnnOptions& options() const noexcept { return opts_; }

  /// The nprobe a request resolves to against this structure: an explicit
  /// opts.nprobe clamped to [1, C], else the recall_target mapping
  /// (docs/ANN.md) — monotone non-decreasing in the target, and exactly C at
  /// target 1.0, so "perfect recall requested" degenerates to the exact scan.
  index_t resolve_nprobe(const SearchOptions& opts) const noexcept;

  /// Top-`nprobe` centroids for a query, by descending dot product of the
  /// unit centroids with `query_coords` (the mode's query-side coordinates
  /// q', length k), ties toward the lower centroid id. The returned sets are
  /// nested as nprobe grows — the property behind monotone recall.
  void select_clusters(std::span<const double> query_coords, index_t nprobe,
                       std::vector<index_t>& out) const;

  /// Local doc ids of centroid c's posting list (ascending).
  std::span<const index_t> cluster_docs(index_t c) const {
    return {docs_.data() + offsets_[c], offsets_[c + 1] - offsets_[c]};
  }
  /// Row-major raw V_k rows of the same documents, in posting-list order
  /// (cluster_rows(c)[t * k() + i] == V(cluster_docs(c)[t], i), bit-exact
  /// copies so the pruned re-rank reproduces the exact sweep).
  std::span<const double> cluster_rows(index_t c) const {
    return {rows_.data() + offsets_[c] * k_,
            (offsets_[c + 1] - offsets_[c]) * k_};
  }

  /// True when the structure also packed bf16 rows (built/extended over a
  /// space with compression enabled).
  bool has_bf16() const noexcept { return !rows16_.empty(); }
  /// Row-major bf16 rows in posting-list order, copied verbatim from the
  /// space's Bf16DocStore — the same encoded words the exact bf16 sweep
  /// streams, so the pruned re-rank decodes identical values. Empty when
  /// has_bf16() is false.
  std::span<const std::uint16_t> cluster_rows_bf16(index_t c) const {
    return {rows16_.data() + offsets_[c] * k_,
            (offsets_[c + 1] - offsets_[c]) * k_};
  }

 private:
  AnnIndex() = default;

  /// Shared by build/extend: regroups `assign` (doc -> centroid) into the
  /// CSR posting lists + packed row copies.
  void regroup(const SemanticSpace& space, const std::vector<index_t>& assign);

  AnnOptions opts_;
  index_t k_ = 0;
  index_t num_docs_ = 0;
  std::uint64_t generation_ = 0;
  la::DenseMatrix centroids_;     ///< k x C, unit columns
  std::vector<index_t> offsets_;  ///< C + 1 CSR offsets into docs_/rows_
  std::vector<index_t> docs_;     ///< local doc ids grouped by centroid
  std::vector<double> rows_;      ///< packed raw V_k rows, posting order
  /// Packed bf16 rows (posting order), present iff the space carried a
  /// compressed store at build/extend time.
  std::vector<std::uint16_t> rows16_;
};

}  // namespace lsi::core
