#pragma once
// Persistence for LSI-encoded databases: the semantic space (U, S, V), the
// vocabulary and the document labels — "creating the LSI database of
// singular values and vectors for retrieval" in the paper's tool list.
// The format is a versioned little-endian binary stream.

#include <iosfwd>
#include <string>
#include <vector>

#include "lsi/semantic_space.hpp"
#include "text/vocabulary.hpp"
#include "weighting/weighting.hpp"

namespace lsi::core {

struct LsiDatabase {
  SemanticSpace space;
  text::Vocabulary vocabulary;
  std::vector<std::string> doc_labels;
  /// Equation-5 weighting the matrix was built with, so queries against a
  /// reloaded database weight consistently. Global weights are per-term
  /// (empty = all ones).
  weighting::Scheme scheme = weighting::kRaw;
  std::vector<double> global_weights;
};

/// Serializes to a stream. Throws std::runtime_error on write failure.
void save_database(std::ostream& os, const LsiDatabase& db);

/// Deserializes; throws std::runtime_error on malformed input or version
/// mismatch.
LsiDatabase load_database(std::istream& is);

/// File conveniences.
void save_database_file(const std::string& path, const LsiDatabase& db);
LsiDatabase load_database_file(const std::string& path);

}  // namespace lsi::core
