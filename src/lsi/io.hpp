#pragma once
// Persistence for LSI-encoded databases: the semantic space (U, S, V), the
// vocabulary and the document labels — "creating the LSI database of
// singular values and vectors for retrieval" in the paper's tool list.
// The format is a versioned little-endian binary stream.

#include <iosfwd>
#include <string>
#include <vector>

#include "lsi/semantic_space.hpp"
#include "lsi/status.hpp"
#include "text/vocabulary.hpp"
#include "weighting/weighting.hpp"

namespace lsi::core {

struct LsiDatabase {
  SemanticSpace space;
  text::Vocabulary vocabulary;
  std::vector<std::string> doc_labels;
  /// Equation-5 weighting the matrix was built with, so queries against a
  /// reloaded database weight consistently. Global weights are per-term
  /// (empty = all ones).
  weighting::Scheme scheme = weighting::kRaw;
  std::vector<double> global_weights;
};

/// Serializes to a stream. Fails with Internal on write failure. Runs under
/// the "io.save" trace span.
Status try_save_database(std::ostream& os, const LsiDatabase& db);

/// Deserializes. Fails with DataLoss on malformed/truncated input or a
/// magic-number mismatch. Runs under the "io.load" trace span.
Expected<LsiDatabase> try_load_database(std::istream& is);

/// File conveniences; additionally fail with NotFound when the path cannot
/// be opened.
Status try_save_database_file(const std::string& path, const LsiDatabase& db);
Expected<LsiDatabase> try_load_database_file(const std::string& path);

/// Deprecated throwing signatures (one-PR migration shims; see status.hpp).
[[deprecated("use try_save_database(os, db).or_throw()")]]
void save_database(std::ostream& os, const LsiDatabase& db);

[[deprecated("use try_load_database(is).value()")]]
LsiDatabase load_database(std::istream& is);

[[deprecated("use try_save_database_file(path, db).or_throw()")]]
void save_database_file(const std::string& path, const LsiDatabase& db);

[[deprecated("use try_load_database_file(path).value()")]]
LsiDatabase load_database_file(const std::string& path);

}  // namespace lsi::core
