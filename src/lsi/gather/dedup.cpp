#include "lsi/gather/dedup.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"

namespace lsi::gather {

SparseTermVector reconstruct_term_profile(const lsi::la::DenseMatrix& u,
                                          const std::vector<double>& sigma,
                                          const lsi::la::DenseMatrix& v,
                                          index_t doc_row,
                                          const text::Vocabulary& vocabulary,
                                          std::size_t top_terms) {
  // Row doc_row of A_k = U S V^T: U * (sigma .* v_row). The sigma scaling
  // matters — without it every factor contributes equally and the profile
  // stops resembling the document's actual term distribution.
  lsi::la::Vector coords = v.row(doc_row);
  for (std::size_t f = 0; f < coords.size() && f < sigma.size(); ++f) {
    coords[f] *= sigma[f];
  }
  const lsi::la::Vector profile = lsi::la::multiply(u, coords);

  std::vector<index_t> order;
  order.reserve(profile.size());
  for (index_t i = 0; i < profile.size(); ++i) {
    if (profile[i] != 0.0) order.push_back(i);
  }
  // Magnitude descending; ties alphabetically so truncation is one order.
  std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    const double ma = std::fabs(profile[a]), mb = std::fabs(profile[b]);
    if (ma != mb) return ma > mb;
    return vocabulary.term(a) < vocabulary.term(b);
  });
  if (top_terms > 0 && order.size() > top_terms) order.resize(top_terms);

  SparseTermVector out;
  out.reserve(order.size());
  for (index_t i : order) out.emplace_back(vocabulary.term(i), profile[i]);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

double sparse_cosine(const SparseTermVector& a, const SparseTermVector& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const int cmp = a[i].first.compare(b[j].first);
    if (cmp < 0) {
      na += a[i].second * a[i].second;
      ++i;
    } else if (cmp > 0) {
      nb += b[j].second * b[j].second;
      ++j;
    } else {
      dot += a[i].second * b[j].second;
      na += a[i].second * a[i].second;
      nb += b[j].second * b[j].second;
      ++i;
      ++j;
    }
  }
  for (; i < a.size(); ++i) na += a[i].second * a[i].second;
  for (; j < b.size(); ++j) nb += b[j].second * b[j].second;
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

std::vector<CollapsedHit> collapse_near_duplicates(
    const std::vector<FusedHit>& fused,
    const std::vector<SparseTermVector>& profiles, double threshold) {
  std::vector<CollapsedHit> out;
  out.reserve(fused.size());
  const bool active = threshold > 0.0 && threshold <= 1.0;
  std::vector<std::size_t> rep_index;  // fused index of each representative
  std::size_t collapsed = 0;
  for (std::size_t h = 0; h < fused.size(); ++h) {
    bool joined = false;
    if (active) {
      for (std::size_t r = 0; r < rep_index.size(); ++r) {
        if (sparse_cosine(profiles[h], profiles[rep_index[r]]) >= threshold) {
          out[r].duplicates.push_back(fused[h].doc);
          joined = true;
          ++collapsed;
          break;
        }
      }
    }
    if (!joined) {
      rep_index.push_back(h);
      out.push_back(CollapsedHit{fused[h], {}});
    }
  }
  if (collapsed > 0) obs::count("gather.collapsed_hits", collapsed);
  return out;
}

}  // namespace lsi::gather
