#include "lsi/gather/facets.hpp"

#include <algorithm>
#include <map>

#include "la/vector_ops.hpp"

namespace lsi::gather {

namespace {

bool facet_before(const Facet& a, const Facet& b) {
  if (a.weight != b.weight) return a.weight > b.weight;
  return a.term < b.term;
}

}  // namespace

std::vector<Facet> shard_facets(const lsi::la::DenseMatrix& u,
                                const std::vector<double>& sigma,
                                const lsi::la::DenseMatrix& v,
                                const text::Vocabulary& vocabulary,
                                const std::vector<lsi::la::index_t>& doc_rows,
                                std::size_t top_terms) {
  if (doc_rows.empty() || top_terms == 0 || u.rows() == 0) return {};
  const std::size_t k = std::min<std::size_t>(u.cols(), sigma.size());

  lsi::la::Vector centroid(k, 0.0);
  for (lsi::la::index_t row : doc_rows) {
    const lsi::la::Vector coords = v.row(row);
    for (std::size_t f = 0; f < k; ++f) centroid[f] += coords[f] * sigma[f];
  }
  lsi::la::scale(centroid, 1.0 / static_cast<double>(doc_rows.size()));
  if (lsi::la::norm2(centroid) == 0.0) return {};

  std::vector<Facet> scored;
  scored.reserve(u.rows());
  lsi::la::Vector term_coords(k, 0.0);
  for (lsi::la::index_t i = 0; i < u.rows(); ++i) {
    for (std::size_t f = 0; f < k; ++f) term_coords[f] = u(i, f) * sigma[f];
    const double w = lsi::la::cosine(term_coords, centroid);
    if (w > 0.0) scored.push_back(Facet{vocabulary.term(i), w});
  }
  std::sort(scored.begin(), scored.end(), facet_before);
  if (scored.size() > top_terms) scored.resize(top_terms);
  return scored;
}

std::vector<Facet> merge_facets(const std::vector<std::vector<Facet>>& lists,
                                std::size_t top) {
  // std::map keys the merge by term string; with max-weight semantics the
  // result is independent of shard visit order.
  std::map<std::string, double> best;
  for (const std::vector<Facet>& list : lists) {
    for (const Facet& f : list) {
      auto [it, inserted] = best.emplace(f.term, f.weight);
      if (!inserted && f.weight > it->second) it->second = f.weight;
    }
  }
  std::vector<Facet> merged;
  merged.reserve(best.size());
  for (const auto& [term, weight] : best) merged.push_back(Facet{term, weight});
  std::sort(merged.begin(), merged.end(), facet_before);
  if (top > 0 && merged.size() > top) merged.resize(top);
  return merged;
}

}  // namespace lsi::gather
