#pragma once
// Per-query facet / term-suggestion lists from the top-z semantic
// neighborhood (docs/GATHER.md).
//
// The latent space already encodes which terms co-occur with the returned
// documents, so facets fall out of the factors directly: take the centroid
// of the top hits' scaled document coordinates (sigma .* v_row) inside ONE
// shard's latent space, then score every vocabulary term by the cosine of
// its scaled term coordinates (sigma .* u_i) against that centroid. Terms
// that score high are the ones the SVD places next to the result set —
// query refinements the user never typed (the paper's "intelligent" access:
// suggestions come from co-occurrence structure, not string overlap).
//
// Like dedup, cross-shard comparison happens on term STRINGS: each shard
// produces facets in its own basis, and the gather merges them by term,
// keeping the best weight seen for each. All orderings break ties
// alphabetically so the merged list is deterministic.

#include <cstddef>
#include <string>
#include <vector>

#include "la/dense.hpp"
#include "text/vocabulary.hpp"

namespace lsi::gather {

struct Facet {
  std::string term;
  double weight = 0.0;  ///< cosine of the term against the hit centroid
};

/// Facets from one shard: centroid of (sigma .* v_row) over `doc_rows`
/// (LOCAL row indices into v), every term i scored by
/// cos(sigma .* u_i, centroid), top `top_terms` kept (weight descending,
/// term ascending). Empty when doc_rows is empty or the centroid is zero.
std::vector<Facet> shard_facets(const lsi::la::DenseMatrix& u,
                                const std::vector<double>& sigma,
                                const lsi::la::DenseMatrix& v,
                                const text::Vocabulary& vocabulary,
                                const std::vector<lsi::la::index_t>& doc_rows,
                                std::size_t top_terms);

/// Merges per-shard facet lists by term string, keeping each term's maximum
/// weight, and returns the top `top` (weight descending, term ascending).
std::vector<Facet> merge_facets(const std::vector<std::vector<Facet>>& lists,
                                std::size_t top);

}  // namespace lsi::gather
