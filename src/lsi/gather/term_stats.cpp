#include "lsi/gather/term_stats.hpp"

#include <cmath>

#include "obs/trace.hpp"

namespace lsi::gather {

void TermStatsPartial::add_counts(const lsi::la::CscMatrix& counts,
                                  const text::Vocabulary& vocabulary) {
  docs += static_cast<std::uint64_t>(counts.cols());
  for (lsi::la::index_t j = 0; j < counts.cols(); ++j) {
    auto rows = counts.col_rows(j);
    auto vals = counts.col_values(j);
    for (std::size_t p = 0; p < rows.size(); ++p) {
      const double tf = vals[p];
      if (tf <= 0.0) continue;
      TermStats& ts = terms[vocabulary.term(rows[p])];
      ts.df += 1;
      ts.gf += tf;
      ts.tf_log_tf += tf * std::log2(tf);
      ts.tf_sq += tf * tf;
    }
  }
}

void TermStatsPartial::add_document(
    const std::map<std::string, double>& term_counts) {
  docs += 1;
  for (const auto& [term, tf] : term_counts) {
    if (tf <= 0.0) continue;
    TermStats& ts = terms[term];
    ts.df += 1;
    ts.gf += tf;
    ts.tf_log_tf += tf * std::log2(tf);
    ts.tf_sq += tf * tf;
  }
}

void TermStatsPartial::merge(const TermStatsPartial& other) {
  docs += other.docs;
  for (const auto& [term, ts] : other.terms) terms[term].merge(ts);
}

const TermStats* GlobalTermStats::find(const std::string& term) const {
  const auto it = terms_.find(term);
  return it == terms_.end() ? nullptr : &it->second;
}

std::vector<double> GlobalTermStats::weights_for(
    const text::Vocabulary& vocabulary, weighting::GlobalWeight g) const {
  const std::size_t m = vocabulary.size();
  std::vector<double> out(m, 1.0);
  if (g == weighting::GlobalWeight::kNone || m == 0 || docs_ == 0) return out;

  const double n = static_cast<double>(docs_);
  // Same n == 1 convention as weighting::global_weights' entropy branch.
  const double logn = n > 1.0 ? std::log2(n) : 1.0;
  static const TermStats kEmpty{};

  for (std::size_t i = 0; i < m; ++i) {
    const TermStats* ts = find(vocabulary.term(i));
    if (ts == nullptr) ts = &kEmpty;
    switch (g) {
      case weighting::GlobalWeight::kIdf:
        out[i] = ts->df > 0
                     ? std::log2(n / static_cast<double>(ts->df)) + 1.0
                     : 0.0;
        break;
      case weighting::GlobalWeight::kGfIdf:
        out[i] = ts->df > 0 ? ts->gf / static_cast<double>(ts->df) : 0.0;
        break;
      case weighting::GlobalWeight::kEntropy: {
        // sum_j p log2 p = (sum tf log2 tf)/gf - log2 gf with p = tf/gf:
        // the additive form of the monolithic per-element accumulation.
        const double entropy =
            ts->gf > 0.0 ? ts->tf_log_tf / ts->gf - std::log2(ts->gf) : 0.0;
        out[i] = 1.0 + entropy / logn;
        break;
      }
      case weighting::GlobalWeight::kNormal:
        out[i] = ts->tf_sq > 0.0 ? 1.0 / std::sqrt(ts->tf_sq) : 0.0;
        break;
      case weighting::GlobalWeight::kNone:
        break;
    }
  }
  return out;
}

TermStatsExchange::TermStatsExchange(std::size_t num_shards)
    : partials_(num_shards) {}

void TermStatsExchange::accumulate(std::size_t shard,
                                   const TermStatsPartial& partial) {
  std::lock_guard<std::mutex> lock(mu_);
  partials_[shard].merge(partial);
}

void TermStatsExchange::accumulate_document(
    std::size_t shard, const std::map<std::string, double>& term_counts) {
  std::lock_guard<std::mutex> lock(mu_);
  partials_[shard].add_document(term_counts);
}

std::shared_ptr<const GlobalTermStats> TermStatsExchange::publish() {
  std::lock_guard<std::mutex> lock(mu_);
  TermStatsPartial merged;
  for (const TermStatsPartial& p : partials_) merged.merge(p);
  ++version_;
  published_ = std::make_shared<const GlobalTermStats>(
      version_, merged.docs, std::move(merged.terms));
  obs::count("gather.term_stats_publishes");
  obs::gauge("gather.term_stats_version", static_cast<double>(version_));
  obs::gauge("gather.term_stats_terms",
             static_cast<double>(published_->num_terms()));
  obs::gauge("gather.term_stats_docs",
             static_cast<double>(published_->docs()));
  return published_;
}

std::shared_ptr<const GlobalTermStats> TermStatsExchange::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_;
}

}  // namespace lsi::gather
