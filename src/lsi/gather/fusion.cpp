#include "lsi/gather/fusion.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"

namespace lsi::gather {

bool parse_merge_policy(std::string_view name, MergePolicy& out) {
  if (name == "cosine" || name == "raw") {
    out = MergePolicy::kRawCosine;
    return true;
  }
  if (name == "zscore" || name == "znorm") {
    out = MergePolicy::kZScore;
    return true;
  }
  if (name == "rrf") {
    out = MergePolicy::kRRF;
    return true;
  }
  return false;
}

std::vector<FusedHit> fuse(const std::vector<ShardList>& per_shard,
                           const FusionOptions& opts, std::size_t top_z) {
  std::size_t total = 0;
  for (const ShardList& list : per_shard) total += list.docs.size();
  std::vector<FusedHit> fused;
  fused.reserve(total);

  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    const ShardList& list = per_shard[s];
    // Per-shard normalization state (kZScore): mean and population standard
    // deviation of THIS query's scores in THIS shard. Preferred source is
    // the shard's full-sweep background moments (bg_*, see ShardList) — the
    // statistic metasearch normalization calls for; when a caller only has
    // the truncated lists the list's own moments are the fallback.
    double mean = 0.0, sd = 0.0;
    if (opts.policy == MergePolicy::kZScore) {
      if (list.bg_count > 0) {
        mean = list.bg_mean;
        sd = list.bg_stdev;
      } else if (!list.cosines.empty()) {
        for (double c : list.cosines) mean += c;
        mean /= static_cast<double>(list.cosines.size());
        double var = 0.0;
        for (double c : list.cosines) var += (c - mean) * (c - mean);
        var /= static_cast<double>(list.cosines.size());
        sd = std::sqrt(var);
      }
    }
    for (std::size_t r = 0; r < list.docs.size(); ++r) {
      FusedHit hit;
      hit.doc = list.docs[r];
      hit.cosine = list.cosines[r];
      hit.shard = s;
      switch (opts.policy) {
        case MergePolicy::kRawCosine:
          hit.score = hit.cosine;
          break;
        case MergePolicy::kZScore:
          // A constant list carries no ordering information beyond rank;
          // 0 is the neutral standardized score.
          hit.score = sd > 0.0 ? (hit.cosine - mean) / sd : 0.0;
          break;
        case MergePolicy::kRRF:
          hit.score = 1.0 / (opts.rrf_k + static_cast<double>(r + 1));
          break;
      }
      fused.push_back(hit);
    }
  }

  std::sort(fused.begin(), fused.end(), fused_before);
  if (top_z > 0 && fused.size() > top_z) fused.resize(top_z);
  obs::count("gather.fused_hits", fused.size());
  return fused;
}

}  // namespace lsi::gather
