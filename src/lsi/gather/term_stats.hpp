#pragma once
// Cross-shard term-statistics exchange (docs/GATHER.md).
//
// The paper's Equation-5 weighting a_ij = L(i,j) x G(i) assumes G(i) is
// computed over the WHOLE collection, but every shard of a ShardedIndex
// parses and weights only its own slice — so two shards disagree about how
// informative a term is, their weighted matrices live on different scales,
// and their cosines stop being comparable at the gather (docs/SHARDING.md
// names this per-shard score divergence as the residual error behind the
// overlap@10 floor). This header is the fix's first half: shards exchange
// the sufficient statistics of every global weight formula, the merged
// totals are published as a versioned GlobalTermStats, and every shard
// derives its G(i) from the SAME merged statistics.
//
// The statistics are chosen so each formula in weighting/weighting.cpp is an
// exact function of the merged totals (df, gf, sum tf*log2 tf, sum tf^2 per
// term, plus the total document count):
//
//   idf      log2(n / df) + 1
//   gfidf    gf / df
//   normal   1 / sqrt(sum tf^2)
//   entropy  1 + [ (sum_j tf log2 tf)/gf - log2 gf ] / log2 n
//
// The entropy line uses the identity sum_j p log2 p = (sum tf log2 tf)/gf -
// log2 gf with p = tf/gf — per-document probabilities never need to cross
// the wire, only two running sums per term do. Merging partials is plain
// addition, so the exchange is associative and order-independent: any subset
// of shards can be combined in any order and the published totals agree.
//
// The merged weights equal the monolithic global_weights() values up to
// floating-point reassociation (the identity regroups the entropy sum), so
// exchange-derived weights are numerically — not bit — identical to a
// single-index build over the same documents. The exchange is therefore OFF
// by default; the bit-parity contracts of the default configuration are
// untouched.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "la/sparse.hpp"
#include "text/vocabulary.hpp"
#include "weighting/weighting.hpp"

namespace lsi::gather {

/// Sufficient statistics of one term for every GlobalWeight formula.
/// Addition-mergeable: the totals of a collection are the element-wise sums
/// of the totals of any partition of it.
struct TermStats {
  std::uint64_t df = 0;    ///< documents containing the term
  double gf = 0.0;         ///< total occurrences across the collection
  double tf_log_tf = 0.0;  ///< sum over docs of tf * log2(tf)
  double tf_sq = 0.0;      ///< sum over docs of tf^2

  void merge(const TermStats& other) {
    df += other.df;
    gf += other.gf;
    tf_log_tf += other.tf_log_tf;
    tf_sq += other.tf_sq;
  }
};

/// One shard's contribution to the exchange: its document count and the
/// per-term statistics of its slice, keyed by term STRING — shards have
/// independent vocabularies, so row indices mean nothing across shards.
struct TermStatsPartial {
  std::uint64_t docs = 0;
  std::unordered_map<std::string, TermStats> terms;

  /// Accumulates a parsed term-document matrix (a shard's raw counts at
  /// build time). Every stored entry is one (term, document) pair with
  /// tf > 0, so df advances by one per entry.
  void add_counts(const lsi::la::CscMatrix& counts,
                  const text::Vocabulary& vocabulary);

  /// Accumulates one streamed document's term counts (the ingest path).
  void add_document(const std::map<std::string, double>& term_counts);

  void merge(const TermStatsPartial& other);
};

/// An immutable, versioned snapshot of the merged cross-shard statistics.
/// Published by TermStatsExchange; shards derive their Equation-5 global
/// weights from one of these so every shard weights by the SAME G(i).
class GlobalTermStats {
 public:
  GlobalTermStats(std::uint64_t version, std::uint64_t docs,
                  std::unordered_map<std::string, TermStats> terms)
      : version_(version), docs_(docs), terms_(std::move(terms)) {}

  /// Publish sequence number (1 = the build-time exchange).
  std::uint64_t version() const noexcept { return version_; }
  /// Documents accumulated across every shard.
  std::uint64_t docs() const noexcept { return docs_; }
  /// Distinct terms seen by any shard.
  std::size_t num_terms() const noexcept { return terms_.size(); }

  /// The merged statistics of `term`, or null when no shard has seen it.
  const TermStats* find(const std::string& term) const;

  /// Equation-5 global weight vector for a shard's vocabulary, computed
  /// from the MERGED statistics with exactly the formulas (and zero-df /
  /// zero-gf conventions) of weighting::global_weights. A term no shard has
  /// reported gets the same value the monolithic formula assigns a term
  /// with empty statistics (0 for idf/gfidf/normal, 1 for entropy/none).
  std::vector<double> weights_for(const text::Vocabulary& vocabulary,
                                  weighting::GlobalWeight g) const;

 private:
  std::uint64_t version_;
  std::uint64_t docs_;
  std::unordered_map<std::string, TermStats> terms_;
};

/// The exchange itself: one accumulator slot per shard plus a versioned
/// publish. Thread-safe — shard builds accumulate in parallel and the
/// ingest path appends documents concurrently with publishes. Publishing
/// merges every slot into a fresh immutable GlobalTermStats and bumps the
/// version; accumulation after a publish is reflected in the NEXT publish
/// (the paper's "periodic" exchange — republish on whatever cadence the
/// operator picks, cheap enough to run per consolidation).
class TermStatsExchange {
 public:
  explicit TermStatsExchange(std::size_t num_shards);

  /// Adds a whole partial into shard `shard`'s slot (build-time path).
  void accumulate(std::size_t shard, const TermStatsPartial& partial);

  /// Adds one streamed document's counts into shard `shard`'s slot.
  void accumulate_document(std::size_t shard,
                           const std::map<std::string, double>& term_counts);

  /// Merges every slot and publishes the result under the next version.
  std::shared_ptr<const GlobalTermStats> publish();

  /// The latest published statistics (null before the first publish).
  std::shared_ptr<const GlobalTermStats> current() const;

  std::size_t num_shards() const noexcept { return partials_.size(); }

 private:
  mutable std::mutex mu_;
  std::vector<TermStatsPartial> partials_;
  std::uint64_t version_ = 0;
  std::shared_ptr<const GlobalTermStats> published_;
};

}  // namespace lsi::gather
