#pragma once
// Gather-side merge policies (docs/GATHER.md): how N per-shard top-z lists
// become one global ranking.
//
// With N > 1 every shard scores queries in its own independently-estimated
// latent space, so raw cosines from different shards are measured on
// different scales — the classic metasearch problem. Three policies:
//
//   kRawCosine   concatenate and sort by raw cosine (today's gather, the
//                default — kept EXACTLY equivalent to lsi/ranking.hpp's
//                merge_rankings, so the N = 1 bit-parity contract and every
//                existing parity suite hold unmodified);
//   kZScore      standardize each shard's list to zero mean / unit variance
//                before merging — removes per-shard scale and offset, the
//                cheapest score-comparability fix (a shard list with zero
//                variance normalizes to 0, the neutral score);
//   kRRF         reciprocal-rank fusion: score(d) = 1 / (rrf_k + rank_d)
//                with rank starting at 1 in the shard's canonical order —
//                ignores scores entirely, so it is immune to any latent-
//                space scale divergence (Cormack et al.'s robust default;
//                rrf_k = 60 is the literature's standard damping).
//
// Every policy is deterministic via the shared ranking.hpp tie-order: fused
// score descending, then GLOBAL document id ascending. Per-shard inputs are
// already in canonical per-shard order (cosine desc, local id asc mapped to
// global ids), and each document lives in exactly one shard, so no
// cross-list score summation is needed — fusion is a pure re-scoring.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "la/dense.hpp"

namespace lsi::gather {

using index_t = lsi::la::index_t;

enum class MergePolicy {
  kRawCosine,  ///< concatenate + sort by raw cosine (bit-identical default)
  kZScore,     ///< per-shard z-score normalization, then sort
  kRRF,        ///< reciprocal-rank fusion 1 / (rrf_k + rank)
};

/// Returns "cosine" / "zscore" / "rrf".
constexpr std::string_view merge_policy_name(MergePolicy p) noexcept {
  switch (p) {
    case MergePolicy::kRawCosine: return "cosine";
    case MergePolicy::kZScore: return "zscore";
    case MergePolicy::kRRF: return "rrf";
  }
  return "unknown";
}

/// Parses a policy name (the /search `merge=` values); false on garbage.
bool parse_merge_policy(std::string_view name, MergePolicy& out);

struct FusionOptions {
  MergePolicy policy = MergePolicy::kRawCosine;
  /// RRF damping constant; larger values flatten the rank discount.
  double rrf_k = 60.0;
};

/// One fused hit: the fusion score the global ranking sorts by, plus the raw
/// per-shard cosine (kept for display/thresholds) and the shard it came
/// from (the dedup/facet stages need to know which latent space to consult).
struct FusedHit {
  index_t doc = 0;      ///< global document id
  double score = 0.0;   ///< fusion score (== cosine under kRawCosine)
  double cosine = 0.0;  ///< raw per-shard cosine
  std::size_t shard = 0;
};

/// Canonical fused order: score descending, global doc id ascending — the
/// ranking.hpp comparator applied to fusion scores.
inline bool fused_before(const FusedHit& a, const FusedHit& b) noexcept {
  if (a.score != b.score) return a.score > b.score;
  return a.doc < b.doc;
}

/// Fuses per-shard rankings into one global list. `per_shard[s]` must be in
/// canonical per-shard order with documents already mapped to global ids;
/// `scores(s)` / `docs(s)` are read via the two parallel span-like vectors
/// below. Returns the fused list truncated to `top_z` (0 = unlimited).
///
/// Under kRawCosine the output order (and scores) are exactly what
/// lsi/ranking.hpp merge_rankings produces — callers wanting the bit-parity
/// fast path can keep calling merge_rankings directly.
struct ShardList {
  std::vector<index_t> docs;     ///< global ids, canonical shard order
  std::vector<double> cosines;   ///< matching raw cosines
  /// Background score distribution of the shard's FULL scored sweep for
  /// this query (BatchedRetriever fills these via ScoreMoments — every
  /// cosine the shard computed, not just the top-z it returned). A z-score
  /// estimated over the returned page alone is dominated by the peak of the
  /// shard's distribution; standardizing against the whole sweep measures
  /// how far a hit stands out of its shard's BACKGROUND, which is the
  /// cross-shard-comparable quantity. When bg_count == 0 (layers that only
  /// have the lists, e.g. unit fixtures) kZScore falls back to the list's
  /// own moments.
  std::size_t bg_count = 0;
  double bg_mean = 0.0;
  double bg_stdev = 0.0;         ///< population standard deviation
};

std::vector<FusedHit> fuse(const std::vector<ShardList>& per_shard,
                           const FusionOptions& opts, std::size_t top_z = 0);

}  // namespace lsi::gather
