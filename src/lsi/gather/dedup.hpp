#pragma once
// Near-duplicate collapse at the gather (docs/GATHER.md).
//
// A sharded collection routinely holds near-identical documents on
// DIFFERENT shards (wire copies, re-ingested revisions), and the gather is
// the first place the copies meet — so it is the natural (and only) place
// to collapse them into one representative hit plus a `duplicates` list.
//
// Hits from different shards cannot be compared in k-space: each shard's
// latent coordinates live in its own SVD basis. What the shards DO share is
// the surface vocabulary, so each candidate hit is reconstructed back into
// term space — row j of the rank-k approximation A_k = U (sigma .* v_j) —
// truncated to its strongest terms and compared as a sparse term-string
// vector. Two hits whose reconstructed term profiles agree above the
// threshold are the same document for ranking purposes regardless of which
// shard, vocabulary row order, or latent basis each came from.
//
// Collapse is greedy in fused rank order and therefore deterministic: walk
// the fused list best-first; each hit joins the FIRST already-chosen
// representative it matches, else becomes a representative itself. The
// representative of a group is always its best-ranked member, so collapsing
// never reorders survivors.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "la/dense.hpp"
#include "lsi/gather/fusion.hpp"
#include "text/vocabulary.hpp"

namespace lsi::gather {

/// A reconstructed document profile: (term, weight) pairs sorted by term so
/// two profiles from different shards merge-join in linear time.
using SparseTermVector = std::vector<std::pair<std::string, double>>;

/// Reconstructs document `doc_row`'s term-space profile from a shard's
/// truncated SVD: U * (sigma .* v_row), keeping the `top_terms` entries of
/// largest magnitude (0 = all). Ties in magnitude break alphabetically, so
/// the truncation is deterministic.
SparseTermVector reconstruct_term_profile(const lsi::la::DenseMatrix& u,
                                          const std::vector<double>& sigma,
                                          const lsi::la::DenseMatrix& v,
                                          index_t doc_row,
                                          const text::Vocabulary& vocabulary,
                                          std::size_t top_terms = 64);

/// Cosine between two sorted sparse term vectors (0 when either is empty).
double sparse_cosine(const SparseTermVector& a, const SparseTermVector& b);

/// One collapsed result: the representative (best-ranked member) and the
/// global ids of the hits folded into it, in fused rank order.
struct CollapsedHit {
  FusedHit rep;
  std::vector<index_t> duplicates;
};

/// Greedy best-first collapse of `fused` (already in fused order) using the
/// parallel `profiles` array (profiles[i] describes fused[i]). Hits whose
/// profile cosine against a representative is >= `threshold` fold into it.
/// A threshold outside (0, 1] collapses nothing (every hit survives).
std::vector<CollapsedHit> collapse_near_duplicates(
    const std::vector<FusedHit>& fused,
    const std::vector<SparseTermVector>& profiles, double threshold);

}  // namespace lsi::gather
