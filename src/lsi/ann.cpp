#include "lsi/ann.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "la/kernels.hpp"
#include "lsi/doc_store.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace lsi::core {

namespace {

/// Chunk size for the assignment passes: the per-chunk gathered row buffer
/// (chunk * k doubles) stays L2-resident for the k values in use here.
constexpr std::size_t kAssignChunk = 256;

/// Gathers documents [lo, hi)'s sigma-scaled coordinates into a row-major
/// buffer, reading V column-by-column (V is column-major; a row-by-row
/// gather would stride by n on every element).
void gather_scaled_rows(const SemanticSpace& space, std::size_t lo,
                        std::size_t hi, std::vector<double>& buf) {
  const index_t k = space.k();
  buf.resize((hi - lo) * k);
  for (index_t i = 0; i < k; ++i) {
    const double* vi = space.v.col(i).data();
    const double s = space.sigma[i];
    for (std::size_t j = lo; j < hi; ++j) buf[(j - lo) * k + i] = vi[j] * s;
  }
}

/// Best centroid for one k-vector: highest dot product, ties toward the
/// lower centroid id. Positive rescaling of `row` never changes the argmax
/// over unit centroids, so callers pass unnormalized coordinates.
index_t nearest_centroid(const double* row, const la::DenseMatrix& centroids) {
  const index_t k = centroids.rows();
  const index_t c_count = centroids.cols();
  const la::kern::Ops& kern_ops = la::kern::active();
  index_t best = 0;
  double best_dot = -std::numeric_limits<double>::infinity();
  for (index_t c = 0; c < c_count; ++c) {
    const double dot = kern_ops.dot(centroids.col(c).data(), row, k);
    if (dot > best_dot) {
      best_dot = dot;
      best = c;
    }
  }
  return best;
}

/// Assigns documents [0, n) (or a tail [from, n)) to their nearest centroid,
/// in parallel over disjoint chunks — deterministic: centroids are read-only
/// and every chunk writes only its own assign slots.
void assign_documents(const SemanticSpace& space,
                      const la::DenseMatrix& centroids, std::size_t from,
                      std::vector<index_t>& assign) {
  const std::size_t n = space.num_docs();
  const index_t k = space.k();
  util::parallel_for_chunks(
      from, n,
      [&](std::size_t lo, std::size_t hi) {
        std::vector<double> buf;
        gather_scaled_rows(space, lo, hi, buf);
        for (std::size_t j = lo; j < hi; ++j) {
          assign[j] = nearest_centroid(buf.data() + (j - lo) * k, centroids);
        }
      },
      /*grain=*/kAssignChunk);
}

}  // namespace

Status AnnOptions::Validate() const {
  if (training_sample == 0) {
    return Status::InvalidArgument(
        "ann.training_sample must be at least 1 (k-means needs data)");
  }
  return Status::Ok();
}

index_t AnnIndex::resolve_nprobe(const SearchOptions& opts) const noexcept {
  const index_t c_count = num_centroids();
  if (c_count == 0) return 0;
  if (opts.nprobe > 0) {
    return std::min<index_t>(opts.nprobe, c_count);
  }
  // recall_target -> nprobe (docs/ANN.md): sqrt(C) probes — the classic
  // cluster-pruning operating point — aim at the default 0.95 target;
  // below it the count shrinks proportionally, above it the remaining 5% of
  // target sweeps linearly up to every centroid, so a target of 1.0 probes
  // all C and is bit-identical to the exact scan. Monotone non-decreasing
  // in the target by construction.
  const double base = std::ceil(std::sqrt(static_cast<double>(c_count)));
  const double t = opts.recall_target;
  double np;
  if (t <= 0.95) {
    np = std::ceil(base * t / 0.95);
  } else {
    np = base + std::ceil((static_cast<double>(c_count) - base) *
                          ((t - 0.95) / 0.05));
  }
  return std::clamp<index_t>(static_cast<index_t>(np), 1, c_count);
}

void AnnIndex::select_clusters(std::span<const double> query_coords,
                               index_t nprobe,
                               std::vector<index_t>& out) const {
  assert(query_coords.size() == static_cast<std::size_t>(k_));
  const index_t c_count = num_centroids();
  nprobe = std::min(nprobe, c_count);
  // Centroid scoring is a pure dot reduction, so it runs on the dispatched
  // kernel; cluster choice may differ across kernels on near-ties, which
  // only moves recall, never correctness (the re-rank below stays exact).
  const la::kern::Ops& kern_ops = la::kern::active();
  std::vector<double> score(c_count);
  for (index_t c = 0; c < c_count; ++c) {
    score[c] = kern_ops.dot(centroids_.col(c).data(), query_coords.data(), k_);
  }
  out.resize(c_count);
  std::iota(out.begin(), out.end(), index_t{0});
  // One fixed total order (score descending, id ascending) for every nprobe:
  // the top-p prefix is nested in the top-(p+1) prefix, which is what makes
  // recall monotone in nprobe (tests/lsi/ann_pruning_test.cpp).
  std::partial_sort(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(nprobe),
                    out.end(), [&](index_t a, index_t b) {
                      if (score[a] != score[b]) return score[a] > score[b];
                      return a < b;
                    });
  out.resize(nprobe);
}

void AnnIndex::regroup(const SemanticSpace& space,
                       const std::vector<index_t>& assign) {
  const std::size_t n = assign.size();
  const index_t c_count = centroids_.cols();
  offsets_.assign(c_count + 1, 0);
  for (std::size_t j = 0; j < n; ++j) ++offsets_[assign[j] + 1];
  for (index_t c = 0; c < c_count; ++c) offsets_[c + 1] += offsets_[c];
  docs_.resize(n);
  std::vector<index_t> cursor(offsets_.begin(), offsets_.end() - 1);
  // j ascending => posting lists ascending by local doc id.
  for (std::size_t j = 0; j < n; ++j) docs_[cursor[assign[j]]++] = j;
  // Pack each posting's raw V_k row (bit-exact copies: the pruned re-rank
  // must reproduce the exact sweep's arithmetic). Column-by-column so the
  // reads of V are sequential per column.
  rows_.resize(n * static_cast<std::size_t>(k_));
  for (index_t i = 0; i < k_; ++i) {
    const double* vi = space.v.col(i).data();
    for (std::size_t pos = 0; pos < n; ++pos) {
      rows_[pos * k_ + i] = vi[docs_[pos]];
    }
  }
  // When the space carries a compressed store, mirror its encoded words into
  // posting order too (verbatim copies, never re-encoded from V: the pruned
  // bf16 re-rank must decode exactly what the exact bf16 sweep decodes).
  if (const Bf16DocStore* store = space.compressed_docs()) {
    rows16_.resize(n * static_cast<std::size_t>(k_));
    for (index_t i = 0; i < k_; ++i) {
      const std::uint16_t* ci = store->col(i);
      for (std::size_t pos = 0; pos < n; ++pos) {
        rows16_[pos * k_ + i] = ci[docs_[pos]];
      }
    }
  }
  num_docs_ = n;
}

std::shared_ptr<const AnnIndex> AnnIndex::build(const SemanticSpace& space,
                                                const AnnOptions& opts,
                                                std::uint64_t generation) {
  const std::size_t n = space.num_docs();
  const index_t k = space.k();
  if (!opts.enabled || k == 0 || n == 0 ||
      n < static_cast<std::size_t>(opts.exact_cutoff)) {
    return nullptr;
  }
  LSI_OBS_SPAN(span, "ann.build");

  // Deterministic stride subsample for training (the final assignment pass
  // covers every document regardless).
  const std::size_t sample =
      std::min<std::size_t>(n, std::max<index_t>(opts.training_sample, 1));
  std::vector<double> x;  // sample x k row-major, unit rows
  x.resize(sample * k);
  {
    std::vector<double> buf;
    for (std::size_t t = 0; t < sample; ++t) {
      const std::size_t j = t * n / sample;
      gather_scaled_rows(space, j, j + 1, buf);
      double nrm = 0.0;
      for (index_t i = 0; i < k; ++i) nrm += buf[i] * buf[i];
      nrm = std::sqrt(nrm);
      for (index_t i = 0; i < k; ++i) {
        x[t * k + i] = nrm > 0.0 ? buf[i] / nrm : 0.0;
      }
    }
  }

  index_t c_count = opts.num_centroids > 0
                        ? opts.num_centroids
                        : static_cast<index_t>(
                              std::ceil(std::sqrt(static_cast<double>(n))));
  c_count = std::clamp<index_t>(c_count, 1, static_cast<index_t>(sample));

  auto ann = std::shared_ptr<AnnIndex>(new AnnIndex());
  ann->opts_ = opts;
  ann->k_ = k;
  ann->generation_ = generation;
  la::DenseMatrix& centroids = ann->centroids_;
  centroids = la::DenseMatrix(k, c_count);

  // k-means++ seeding over the unit sample, squared chordal distance
  // 2 - 2*cos as the D^2 weight. All randomness flows from opts.seed.
  util::Rng rng(opts.seed);
  std::vector<double> dist(sample, 2.0);
  {
    const std::size_t first = rng.uniform_index(sample);
    auto col = centroids.col(0);
    for (index_t i = 0; i < k; ++i) col[i] = x[first * k + i];
  }
  for (index_t c = 1; c < c_count; ++c) {
    const double* prev = centroids.col(c - 1).data();
    util::parallel_for(
        0, sample,
        [&](std::size_t t) {
          double dot = 0.0;
          for (index_t i = 0; i < k; ++i) dot += prev[i] * x[t * k + i];
          dist[t] = std::min(dist[t], std::max(0.0, 2.0 - 2.0 * dot));
        },
        /*grain=*/1024);
    const double total = std::accumulate(dist.begin(), dist.end(), 0.0);
    std::size_t pick;
    if (total > 0.0) {
      double r = rng.uniform() * total;
      pick = sample - 1;
      for (std::size_t t = 0; t < sample; ++t) {
        r -= dist[t];
        if (r <= 0.0) {
          pick = t;
          break;
        }
      }
    } else {
      pick = rng.uniform_index(sample);
    }
    auto col = centroids.col(c);
    for (index_t i = 0; i < k; ++i) col[i] = x[pick * k + i];
  }

  // Bounded Lloyd over the sample (spherical k-means: means renormalized).
  std::vector<index_t> assign_s(sample);
  std::vector<double> best_dot(sample);
  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    util::parallel_for(
        0, sample,
        [&](std::size_t t) {
          const double* row = x.data() + t * k;
          index_t best = 0;
          double bd = -std::numeric_limits<double>::infinity();
          for (index_t c = 0; c < c_count; ++c) {
            const double* cc = centroids.col(c).data();
            double dot = 0.0;
            for (index_t i = 0; i < k; ++i) dot += cc[i] * row[i];
            if (dot > bd) {
              bd = dot;
              best = c;
            }
          }
          assign_s[t] = best;
          best_dot[t] = bd;
        },
        /*grain=*/256);
    // Sequential accumulation in sample order: deterministic sums.
    la::DenseMatrix sums(k, c_count);
    std::vector<std::size_t> counts(c_count, 0);
    for (std::size_t t = 0; t < sample; ++t) {
      auto col = sums.col(assign_s[t]);
      const double* row = x.data() + t * k;
      for (index_t i = 0; i < k; ++i) col[i] += row[i];
      ++counts[assign_s[t]];
    }
    for (index_t c = 0; c < c_count; ++c) {
      auto sum = sums.col(c);
      double nrm = 0.0;
      for (index_t i = 0; i < k; ++i) nrm += sum[i] * sum[i];
      nrm = std::sqrt(nrm);
      if (counts[c] > 0 && nrm > 0.0) {
        auto col = centroids.col(c);
        for (index_t i = 0; i < k; ++i) col[i] = sum[i] / nrm;
      } else {
        // Empty (or degenerate) cluster: reseed deterministically with the
        // worst-fit sample point — lowest best-dot, ties toward the lower
        // sample index; marking it used keeps two empties distinct.
        std::size_t victim = 0;
        double worst = std::numeric_limits<double>::infinity();
        for (std::size_t t = 0; t < sample; ++t) {
          if (best_dot[t] < worst) {
            worst = best_dot[t];
            victim = t;
          }
        }
        best_dot[victim] = std::numeric_limits<double>::infinity();
        auto col = centroids.col(c);
        for (index_t i = 0; i < k; ++i) col[i] = x[victim * k + i];
      }
    }
  }

  // Final assignment over ALL documents, then CSR regroup + row packing.
  std::vector<index_t> assign(n);
  assign_documents(space, centroids, 0, assign);
  ann->regroup(space, assign);

  obs::count("ann.builds");
  obs::gauge("ann.centroids", static_cast<double>(c_count));
  return ann;
}

std::shared_ptr<const AnnIndex> AnnIndex::extend(
    const SemanticSpace& space) const {
  const std::size_t n = space.num_docs();
  assert(n >= num_docs_);
  assert(space.k() == k_);
  LSI_OBS_SPAN(span, "ann.extend");

  // Recover the existing assignment from the CSR lists, assign only the
  // appended rows, regroup the union.
  std::vector<index_t> assign(n);
  const index_t c_count = num_centroids();
  for (index_t c = 0; c < c_count; ++c) {
    for (index_t pos = offsets_[c]; pos < offsets_[c + 1]; ++pos) {
      assign[docs_[pos]] = c;
    }
  }
  assign_documents(space, centroids_, num_docs_, assign);

  auto ann = std::shared_ptr<AnnIndex>(new AnnIndex());
  ann->opts_ = opts_;
  ann->k_ = k_;
  ann->generation_ = generation_;  // the partition is unchanged
  ann->centroids_ = centroids_;
  ann->regroup(space, assign);

  obs::count("ann.extends");
  return ann;
}

}  // namespace lsi::core
