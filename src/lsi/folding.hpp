#pragma once
// Folding-in (Section 2.3): representing new documents/terms in an existing
// semantic space without recomputing the SVD.
//
//   d_hat = d^T U_k S_k^{-1}     (Equation 7, new document -> row of V)
//   t_hat = t   V_k S_k^{-1}     (Equation 8, new term     -> row of U)
//
// Folding-in is cheap (2mkp flops for p documents) but appends
// non-orthogonal rows: the existing structure never moves, and the basis
// orthogonality degrades (Section 4.3) — orthogonality_loss() measures it.

#include "la/sparse.hpp"
#include "lsi/semantic_space.hpp"

namespace lsi::core {

/// Folds the columns of D (m x p, weighted like the training matrix) into
/// the space as p new documents: V gains p rows; U, S unchanged.
void fold_in_documents(SemanticSpace& space, const la::CscMatrix& d);

/// Folds the rows of T (q x n, weighted) into the space as q new terms:
/// U gains q rows; S, V unchanged. T's column count must equal num_docs().
void fold_in_terms(SemanticSpace& space, const la::CscMatrix& t);

/// Dense conveniences (columns of d / rows of t as above).
void fold_in_documents(SemanticSpace& space, const la::DenseMatrix& d);
void fold_in_terms(SemanticSpace& space, const la::DenseMatrix& t);

}  // namespace lsi::core
