#pragma once
// LsiIndex: the high-level public API tying the whole pipeline together —
// parse a collection, weight it (Equation 5), compute the truncated SVD,
// then query, fold-in, or SVD-update. This is the type the examples and most
// benches use; the lower layers stay available for fine-grained control.

#include <string>
#include <string_view>
#include <vector>

#include <memory>

#include "lsi/folding.hpp"
#include "lsi/gather/term_stats.hpp"
#include "lsi/retrieval.hpp"
#include "lsi/semantic_space.hpp"
#include "lsi/status.hpp"
#include "lsi/update.hpp"
#include "text/parser.hpp"
#include "weighting/weighting.hpp"

namespace lsi::core {

/// The single source of truth for pipeline configuration. Settings that
/// historically lived in two places resolve with documented precedence:
///
///   * number of factors: `IndexOptions::k` overrides `BuildOptions::k`
///     (which in turn overrides `LanczosOptions::k` inside the builder) —
///     `effective_build()` is the resolved value the index actually uses;
///   * query behavior: `IndexOptions::query` is the default for query calls
///     that pass no QueryOptions; an explicit per-call QueryOptions replaces
///     it wholesale (no field-wise merging);
///   * observability: a per-call `QueryOptions::sink` overrides
///     `IndexOptions::sink`, which overrides the ambient active sink.
struct IndexOptions {
  text::ParserOptions parser;
  weighting::Scheme scheme = weighting::kLogEntropy;
  index_t k = 100;             ///< factors retained (wins over build.k)
  BuildOptions build;          ///< k field overridden by `k`, see above
  QueryOptions query;          ///< defaults for query calls without options
  /// Store document vectors additionally as bf16 and score the Equation-6
  /// sweep against them (fp32 accumulation, ~half the memory traffic of the
  /// fp64 sweep; docs/KERNELS.md). Rankings are near-identical, not
  /// bit-identical, to the fp64 path — overlap@10 >= 0.99 is gated by
  /// bench_kernel_roofline. The flag is sticky across fold-ins,
  /// consolidation and save/load.
  bool compress_docs = false;
  /// When non-null, installed as the active observability sink during
  /// build and every query made through the index.
  obs::Sink* sink = nullptr;
  /// When non-null, Equation 5 global weights G(i) come from these
  /// COLLECTION-wide term statistics (published by the cross-shard
  /// gather::TermStatsExchange) instead of this index's own counts. Local
  /// weights L(i,j) are unaffected. This is how every shard of a sharded
  /// build applies the SAME global weight to a term even though each shard
  /// sees only its slice of the collection (docs/GATHER.md).
  std::shared_ptr<const gather::GlobalTermStats> shared_stats;

  /// `build` with the k precedence applied: the BuildOptions the index
  /// passes to try_build_semantic_space.
  BuildOptions effective_build() const {
    BuildOptions resolved = build;
    resolved.k = k;
    return resolved;
  }

  /// First violation found, or OK. Checked by LsiIndex::try_build before
  /// any work happens.
  Status Validate() const;
};

/// How new documents are incorporated (Section 2.3's taxonomy).
enum class AddMethod {
  kFoldIn,     ///< Equation 7; cheap, existing structure frozen
  kSvdUpdate,  ///< Section 4; rotates the whole decomposition
};

struct QueryResult {
  std::string label;
  index_t doc = 0;
  double cosine = 0.0;
};

class LsiIndex {
 public:
  /// Parses, weights and decomposes a collection. Fails with the first
  /// IndexOptions::Validate() violation, InvalidArgument on an empty
  /// collection, or whatever try_build_semantic_space reports. Runs with
  /// opts.sink installed (when non-null) under the "build" trace span.
  static Expected<LsiIndex> try_build(const text::Collection& docs,
                                      const IndexOptions& opts);

  /// Deprecated throwing signature (one-PR migration shim; see status.hpp).
  [[deprecated("use LsiIndex::try_build(docs, opts).value()")]]
  static LsiIndex build(const text::Collection& docs,
                        const IndexOptions& opts);

  /// Ranks documents against free-text. Unknown words are ignored (they are
  /// not indexed terms, exactly like "of children with" in the paper's
  /// example query). The no-options overload uses IndexOptions::query;
  /// `stats`, when non-null, accumulates the per-stage breakdown.
  std::vector<QueryResult> query(std::string_view text) const;
  std::vector<QueryResult> query(std::string_view text,
                                 const QueryOptions& opts,
                                 QueryStats* stats = nullptr) const;

  /// Ranks documents against an explicit raw term-frequency vector.
  std::vector<QueryResult> query_vector(const la::Vector& raw_tf) const;
  std::vector<QueryResult> query_vector(const la::Vector& raw_tf,
                                        const QueryOptions& opts,
                                        QueryStats* stats = nullptr) const;

  /// Projects free-text into k-space (for relevance feedback, filtering
  /// profiles, and term lookups).
  la::Vector project(std::string_view text) const;

  /// Ranks documents against an already-projected k-vector.
  std::vector<QueryResult> query_projected(const la::Vector& q_hat) const;
  std::vector<QueryResult> query_projected(const la::Vector& q_hat,
                                           const QueryOptions& opts,
                                           QueryStats* stats = nullptr) const;

  /// Adds new documents by folding-in or SVD-updating. Terms not in the
  /// vocabulary are dropped (the paper's fold-in semantics); document labels
  /// are appended.
  void add_documents(const text::Collection& docs, AddMethod method);

  /// Most similar terms to the given term (Section 5.4: online thesaurus).
  std::vector<std::pair<std::string, double>> similar_terms(
      std::string_view term, std::size_t top = 10) const;

  const SemanticSpace& space() const noexcept { return space_; }
  SemanticSpace& mutable_space() noexcept { return space_; }
  const text::Vocabulary& vocabulary() const noexcept {
    return tdm_.vocabulary;
  }
  const std::vector<std::string>& doc_labels() const noexcept {
    return labels_;
  }
  /// Mutable label list for components (e.g. IncrementalIndexer) that
  /// manage documents through mutable_space() directly.
  std::vector<std::string>& mutable_labels() noexcept { return labels_; }
  const la::CscMatrix& raw_counts() const noexcept { return tdm_.counts; }
  const la::CscMatrix& weighted_matrix() const noexcept { return weighted_; }
  const std::vector<double>& global_weights() const noexcept {
    return global_weights_;
  }
  const IndexOptions& options() const noexcept { return opts_; }

  /// Weighted term vector for free text, consistent with the index scheme.
  la::Vector weighted_term_vector(std::string_view text) const;

 private:
  IndexOptions opts_;
  text::TermDocumentMatrix tdm_;     ///< raw counts of the *original* docs
  la::CscMatrix weighted_;           ///< Equation 5 applied
  std::vector<double> global_weights_;
  SemanticSpace space_;
  std::vector<std::string> labels_;  ///< grows as documents are added
};

}  // namespace lsi::core
