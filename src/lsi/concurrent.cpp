#include "lsi/concurrent.hpp"

#include <utility>

#include "lsi/batched_retrieval.hpp"
#include "lsi/retrieval.hpp"
#include "obs/trace.hpp"
#include "text/parser.hpp"
#include "util/failpoint.hpp"

namespace lsi::core {

// ---------------------------------------------------------------------------
// SnapshotQueryContext
// ---------------------------------------------------------------------------

SnapshotQueryContext::SnapshotQueryContext(const text::Vocabulary& vocabulary,
                                           const text::ParserOptions& parser,
                                           const weighting::Scheme& scheme,
                                           std::vector<double> global_weights)
    : parser_(parser),
      scheme_(scheme),
      global_weights_(std::move(global_weights)) {
  vocab_shim_.vocabulary = vocabulary;
}

la::Vector SnapshotQueryContext::weighted_term_vector(
    std::string_view text) const {
  const la::Vector raw = text::text_to_term_vector(vocab_shim_, text, parser_);
  return weighting::apply_to_vector(raw, global_weights_, scheme_.local);
}

// ---------------------------------------------------------------------------
// IndexSnapshot
// ---------------------------------------------------------------------------

std::vector<QueryResult> IndexSnapshot::query(std::string_view text,
                                              const SearchOptions& opts,
                                              QueryStats* stats) const {
  // Projects with the single-query kernel (project_query), exactly like
  // LsiIndex::query, so concurrent-vs-sequential rankings stay bit-identical;
  // the batched from_term_vectors GEMM accumulates in a different order.
  obs::ScopedSink scoped(opts.sink ? opts.sink : obs::Sink::active());
  const la::Vector q_hat =
      project_query(*space_, ctx_->weighted_term_vector(text));
  const QueryBatch one = QueryBatch::from_projected(*space_, {q_hat});
  auto ranked = BatchedRetriever(space_, ann_).rank(one, opts, stats);
  std::vector<QueryResult> out;
  for (const ScoredDoc& sd : ranked.front()) {
    out.push_back({(*labels_)[sd.doc], sd.doc, sd.cosine});
  }
  return out;
}

std::vector<ScoredDoc> IndexSnapshot::retrieve(const la::Vector& term_vector,
                                               const SearchOptions& opts,
                                               QueryStats* stats) const {
  // Batch-size-1 pass through the batched engine with this snapshot's ANN
  // structure attached; in exact mode this is the same single code path
  // core::retrieve wraps, so results are unchanged by the redesign.
  obs::ScopedSink scoped(opts.sink ? opts.sink : obs::Sink::active());
  const QueryBatch one =
      QueryBatch::from_term_vectors(*space_, {term_vector}, stats);
  auto ranked = BatchedRetriever(space_, ann_).rank(one, opts, stats);
  return std::move(ranked.front());
}

// ---------------------------------------------------------------------------
// ConcurrentIndexer
// ---------------------------------------------------------------------------

namespace {

IncrementalOptions master_options(const ConcurrentOptions& opts) {
  IncrementalOptions io;
  // The consolidation *policy* lives in ConcurrentIndexer (it brackets the
  // SVD-update with the consolidating_ flag and its own counters), so the
  // wrapped IncrementalIndexer runs in manual mode.
  io.consolidate_every = 0;
  io.exact_update = opts.exact_update;
  return io;
}

std::shared_ptr<const SnapshotQueryContext> make_context(
    const LsiIndex& index) {
  return std::make_shared<const SnapshotQueryContext>(
      index.vocabulary(), index.options().parser, index.options().scheme,
      index.global_weights());
}

}  // namespace

ConcurrentIndexer::ConcurrentIndexer(LsiIndex index,
                                     const ConcurrentOptions& opts)
    : opts_(opts),
      ctx_(make_context(index)),
      master_(std::move(index), master_options(opts)),
      queue_(opts.queue_capacity) {
  // Generation 1: the base index is servable before the first add().
  publish();
}

ConcurrentIndexer::~ConcurrentIndexer() { shutdown(); }

Status ConcurrentIndexer::add(text::Document doc) {
  switch (queue_.push(std::move(doc))) {
    case util::QueuePush::kOk:
      schedule_writer();
      return Status::Ok();
    case util::QueuePush::kClosed:
      return Status::FailedPrecondition("ConcurrentIndexer is shut down");
    case util::QueuePush::kFull:
      break;  // push() blocks instead of reporting kFull
  }
  return Status::Internal("BoundedQueue::push returned kFull");
}

Status ConcurrentIndexer::try_add(text::Document doc) {
  switch (queue_.try_push(std::move(doc))) {
    case util::QueuePush::kOk:
      schedule_writer();
      return Status::Ok();
    case util::QueuePush::kClosed:
      return Status::FailedPrecondition("ConcurrentIndexer is shut down");
    case util::QueuePush::kFull:
      obs::count("concurrent.ingest_rejected");
      return Status::ResourceExhausted(
          "ingest queue full (capacity " +
          std::to_string(queue_.capacity()) + ")");
  }
  return Status::Internal("unreachable");
}

void ConcurrentIndexer::flush() {
  schedule_writer();
  wait_idle();
}

Status ConcurrentIndexer::consolidate() {
  if (queue_.closed()) {
    return Status::FailedPrecondition("ConcurrentIndexer is shut down");
  }
  force_consolidate_.store(true, std::memory_order_release);
  schedule_writer();
  wait_idle();
  return Status::Ok();
}

void ConcurrentIndexer::shutdown() {
  queue_.close();  // blocked producers wake with kClosed
  // Drain everything accepted before the close; accepted != dropped.
  schedule_writer();
  wait_idle();
}

void ConcurrentIndexer::schedule_writer() {
  std::lock_guard<std::mutex> lock(mu_);
  if (writer_active_) return;
  writer_active_ = true;
  writer_.submit([this] { writer_drain(); });
}

void ConcurrentIndexer::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return !writer_active_ && queue_.empty(); });
}

void ConcurrentIndexer::writer_drain() {
  std::vector<text::Document> batch;
  for (;;) {
    batch.clear();
    queue_.pop_batch(batch, opts_.max_batch);
    if (!batch.empty()) {
      ingest_batch(batch);
      continue;
    }
    if (force_consolidate_.exchange(false, std::memory_order_acq_rel)) {
      if (master_.pending() > 0) {
        consolidate_now();
        publish();
      }
      continue;  // re-check the queue before going idle
    }
    std::unique_lock<std::mutex> lock(mu_);
    // Producers enqueue *then* check writer_active_ under mu_, so either
    // they see us active (and we see their document here) or they schedule
    // a fresh drain after we go idle — no missed wakeups.
    if (!queue_.empty() ||
        force_consolidate_.load(std::memory_order_acquire)) {
      continue;
    }
    writer_active_ = false;
    lock.unlock();
    cv_idle_.notify_all();
    return;
  }
}

void ConcurrentIndexer::ingest_batch(std::vector<text::Document>& batch) {
  std::size_t unpublished = 0;
  {
    LSI_OBS_SPAN(span, "concurrent.ingest");
    for (text::Document& doc : batch) {
      (void)LSI_FAILPOINT("concurrent.fold", opts_.failpoint_tag);
      master_.add(doc);  // immediate fold-in (Equation 7)
      ingested_.fetch_add(1, std::memory_order_relaxed);
      ++unpublished;
      if (opts_.consolidate_every > 0 &&
          master_.pending() >= opts_.consolidate_every) {
        consolidate_now();
        // Publish right here, not at the batch boundary: the ANN rebuild
        // (and the consolidated basis) then lands at a doc-count-determined
        // point, so replicas fed the same document sequence build identical
        // structures no matter how their batches happened to be chopped.
        publish();
        unpublished = 0;
      }
    }
  }
  if (unpublished > 0) publish();
}

void ConcurrentIndexer::consolidate_now() {
  (void)LSI_FAILPOINT("concurrent.consolidate", opts_.failpoint_tag);
  consolidating_.store(true, std::memory_order_release);
  {
    LSI_OBS_SPAN(span, "concurrent.consolidate");
    master_.consolidate();
  }
  consolidations_.fetch_add(1, std::memory_order_relaxed);
  consolidating_.store(false, std::memory_order_release);
  // Consolidation recomputes the SVD, rotating every document's V_k row;
  // the cluster partition over the old coordinates is meaningless now.
  ann_rebuild_ = true;
}

void ConcurrentIndexer::publish() {
  (void)LSI_FAILPOINT("concurrent.publish", opts_.failpoint_tag);
  LSI_OBS_SPAN(span, "concurrent.publish");
  // Copy-on-publish: the writer's master space stays private and mutable,
  // readers get an immutable copy whose norm caches are warm by
  // construction. The copy inherits the master's caches, which folding
  // keeps extended incrementally, so the prewarm below is usually free.
  auto space = std::make_shared<SemanticSpace>(master_.index().space());
  space->prewarm_doc_norms();
  auto labels = std::make_shared<const std::vector<std::string>>(
      master_.index().doc_labels());
  const std::uint64_t generation =
      publishes_.fetch_add(1, std::memory_order_relaxed) + 1;
  // ANN maintenance mirrors the norm caches: fold-ins only append V rows, so
  // the existing partition is extended over the new tail; a consolidation
  // rotated V (ann_rebuild_), so the partition is rebuilt from scratch.
  // AnnIndex::build returns null below the exact-scan cutoff — queries then
  // fall back to the exact sweep until the corpus grows past it.
  if (opts_.ann.enabled) {
    if (master_ann_ == nullptr || ann_rebuild_) {
      master_ann_ = AnnIndex::build(*space, opts_.ann, generation);
    } else if (master_ann_->num_docs() <
               static_cast<index_t>(space->num_docs())) {
      master_ann_ = master_ann_->extend(*space);
    }
  } else {
    master_ann_ = nullptr;
  }
  ann_rebuild_ = false;
  auto snap = std::make_shared<const IndexSnapshot>(
      std::move(space), std::move(labels), ctx_, generation,
      master_.pending(), IndexSnapshot::clock::now(), master_ann_);
  std::shared_ptr<const IndexSnapshot> old;
  {
    // The mutex covers only this swap; the retired snapshot (and anything
    // only it kept alive) is released after the lock is dropped.
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    old = std::move(snapshot_);
    snapshot_ = std::move(snap);
  }
  if (old) {
    // Age of the snapshot being retired = how stale reads were allowed to
    // get; a production SLO watches this gauge.
    obs::gauge("concurrent.snapshot_age_seconds", old->age_seconds());
  }
  obs::count("concurrent.publishes");
  obs::gauge("concurrent.pending_docs", static_cast<double>(queue_.size()));
  obs::gauge("concurrent.unconsolidated_docs",
             static_cast<double>(master_.pending()));
}

}  // namespace lsi::core
