#pragma once
// Query projection (Equation 6) and cosine retrieval (Section 2.2):
//
//   q_hat = q^T U_k S_k^{-1}
//
// The query vector lands at the weighted sum of its constituent term
// vectors; documents are ranked by cosine similarity and the z closest (or
// all above a threshold) are returned.
//
// The paper leaves the exact inner-product convention implicit, so the mode
// is explicit here. With q_hat from Equation 6 and document j at row v_j of
// V_k, the three conventions in the LSI literature are all cosines of
// sigma-rescaled pairs:
//
//   kColumnSpace:  cos(U_k^T q,  S_k v_j)  = cos(q_hat S_k, v_j S_k)
//                  == cosine between the raw query and *column j of A_k* —
//                  reproduces the paper's Table 4 rankings best (default);
//   kProjected:    cos(q_hat, v_j S_k) — the geometry actually plotted in
//                  Figures 5/6 (query at q_hat, documents at V_k S_k);
//   kPlainV:       cos(q_hat, v_j) — unscaled factor space.

#include <cstdint>
#include <span>
#include <vector>

#include "lsi/semantic_space.hpp"
#include "obs/trace.hpp"

namespace lsi::core {

// SimilarityMode itself lives in semantic_space.hpp (the per-document norm
// cache is keyed by it); it is re-exported here for all retrieval callers.

struct QueryOptions {
  SimilarityMode mode = SimilarityMode::kColumnSpace;
  /// Cosine threshold; -1 returns everything. The threshold is applied
  /// BEFORE top-z selection: documents below it never enter the candidate
  /// heap, so `top_z` returns the z best documents *passing the threshold*
  /// (possibly fewer than z).
  double min_cosine = -1.0;
  std::size_t top_z = 0;     ///< keep only the z best (0 = unlimited)
  /// When non-null, installed as the active observability sink for the
  /// duration of the retrieval call (the previous sink is restored on
  /// return); null leaves whatever sink is already active in place.
  obs::Sink* sink = nullptr;
};

/// Per-call timing and work counters reported by the retrieval engine.
/// Fields ACCUMULATE: pass the same struct to QueryBatch::from_term_vectors
/// and BatchedRetriever::rank to get the full projection + scoring +
/// selection breakdown of one logical batch, or zero it between calls.
/// Stages a call does not execute (e.g. projection when the batch was built
/// from pre-projected vectors) are left untouched. Times are wall seconds
/// and are always collected (a few steady_clock reads per call, independent
/// of whether an observability sink is installed).
struct QueryStats {
  index_t batch_size = 0;        ///< queries handled
  index_t docs_scored = 0;       ///< documents swept per query (exact path)
  double project_seconds = 0.0;  ///< batched Equation 6 projection
  double score_seconds = 0.0;    ///< cosine sweep over V_k panels
  double select_seconds = 0.0;   ///< threshold + top-z selection
  double total_seconds = 0.0;    ///< wall time of the instrumented calls
  /// Analytic flop count of the kernels actually executed (zero query
  /// weights are skipped by the sweep, so this can undercut the dense
  /// lsi::flops model predictions).
  std::uint64_t flops = 0;
  /// Cluster-pruned candidate generation (lsi/ann.hpp); all zero when every
  /// query in the batch took the exact path.
  index_t ann_pruned_queries = 0;         ///< queries served by pruning
  std::uint64_t ann_centroids_probed = 0; ///< posting lists scanned, summed
  std::uint64_t ann_docs_scanned = 0;     ///< candidates re-ranked, summed
};

struct ScoredDoc {
  index_t doc = 0;
  double cosine = 0.0;
};

/// Equation 6: projects a (weighted) m-vector of term frequencies into the
/// k-space. Also the folding-in formula for documents (Equation 7).
la::Vector project_query(const SemanticSpace& space,
                         std::span<const double> term_vector);

/// Equation 8: projects a (weighted) n-vector of per-document frequencies
/// for a new term into k-space: t_hat = t V_k S_k^{-1}.
la::Vector project_term(const SemanticSpace& space,
                        std::span<const double> doc_vector);

/// Cosine between the projected query (Equation 6 coordinates) and every
/// document, ranked descending, filtered per `opts`. Ties broken by document
/// index for determinism. Thin wrapper over the batched engine
/// (batched_retrieval.hpp) at batch size 1 — there is exactly one scoring
/// code path, so single-query and batched rankings are identical by
/// construction.
std::vector<ScoredDoc> rank_documents(const SemanticSpace& space,
                                      std::span<const double> query_khat,
                                      const QueryOptions& opts = {},
                                      QueryStats* stats = nullptr);

/// One-call retrieval: project `term_vector` and rank.
std::vector<ScoredDoc> retrieve(const SemanticSpace& space,
                                std::span<const double> term_vector,
                                const QueryOptions& opts = {},
                                QueryStats* stats = nullptr);

/// Cosine between two documents in the space (doc-doc similarity, in the
/// S-scaled coordinates the paper plots).
double document_similarity(const SemanticSpace& space, index_t a, index_t b);

/// Cosine between two terms in the space (rows of U_k S_k — used by the
/// synonym test of Section 5.4).
double term_similarity(const SemanticSpace& space, index_t a, index_t b);

/// Ranks all terms by similarity to the given S-scaled term coordinates —
/// "there is no reason that similar terms could not be returned"
/// (Section 5.4, online thesauri).
std::vector<ScoredDoc> rank_terms(const SemanticSpace& space,
                                  std::span<const double> term_coords,
                                  std::size_t top_z = 0);

/// How a multi-point query combines its per-point cosines.
enum class MultiPointCombiner {
  kMax,  ///< document scores its best point (disjunctive interests)
  kSum,  ///< relevance-density style: points reinforce each other
};

/// Multiple-points-of-interest retrieval (Section 5.4, after Kane-Esrig et
/// al.'s relevance density method): the query is a *set* of k-vectors
/// (each an Equation-6 projection) rather than a single centroid — useful
/// when an information need spans distinct subtopics that would cancel if
/// averaged. Each document's cosine to every point is combined per
/// `combiner`; thresholding/top-z as usual.
std::vector<ScoredDoc> rank_documents_multipoint(
    const SemanticSpace& space, const std::vector<la::Vector>& points,
    const QueryOptions& opts = {},
    MultiPointCombiner combiner = MultiPointCombiner::kMax);

}  // namespace lsi::core
