#pragma once
// Compressed (bf16) document-vector store: an optional reduced-precision
// mirror of V_k for the Eq. 6 scoring sweep (docs/KERNELS.md).
//
// Memory is the scoring sweep's roof: at scale the sweep streams n*k doubles
// of V per batch. Storing the document coordinates as bf16 (the top 16 bits
// of fp32, round-to-nearest-even) quarters that traffic; accumulation stays
// fp32 and every norm/normalization stays double, which keeps ranking
// overlap@10 >= 0.99 against the fp64 path (gated by bench_kernel_roofline).
//
// Layout mirrors V: column-major (col(i) is factor i across all documents),
// which is exactly the access order of the batched sweep. The store also
// carries its own per-mode document norms, computed from the DECODED bf16
// values — cosines must divide by the norm of the vector actually scored,
// not the fp64 norm, or the quantization would bias every score.
//
// Lifecycle: owned by SemanticSpace behind the same lazy/extend/invalidate
// protocol as the doc-norm caches (see semantic_space.hpp). The store is
// immutable once built; "extension" builds a new store sharing nothing,
// bit-identical to a fresh build over the larger space.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "la/dense.hpp"
#include "lsi/semantic_space.hpp"

namespace lsi::core {

class Bf16DocStore {
 public:
  /// Encodes space.v (round-to-nearest-even via kern::bf16_from_f64) and
  /// computes the per-mode decoded-value norms. Deterministic given the
  /// space; building twice yields byte-identical stores.
  static std::shared_ptr<const Bf16DocStore> build(const SemanticSpace& space);

  /// Append-only maintenance: copies `old`'s columns and encodes only rows
  /// [old.num_docs(), space.num_docs()). Only valid when the mutation
  /// appended V rows and left existing rows and sigma untouched; the result
  /// is bit-identical to build(space).
  static std::shared_ptr<const Bf16DocStore> extend(const Bf16DocStore& old,
                                                    const SemanticSpace& space);

  /// Reconstructs a store from a serialized payload (lsi/io.cpp): the norms
  /// are recomputed from the payload and `sigma`, so a loaded store is
  /// byte-identical to the one that was saved.
  static std::shared_ptr<const Bf16DocStore> from_payload(
      la::index_t num_docs, la::index_t k, std::vector<std::uint16_t> data,
      std::span<const double> sigma);

  la::index_t num_docs() const noexcept { return num_docs_; }
  la::index_t k() const noexcept { return k_; }

  /// Factor i's bf16 document column (length num_docs()).
  const std::uint16_t* col(la::index_t i) const noexcept {
    return data_.data() + static_cast<std::size_t>(i) * num_docs_;
  }
  /// The full column-major payload (io serialization).
  std::span<const std::uint16_t> payload() const noexcept { return data_; }

  /// Per-document norms of the decoded coordinates `mode` compares against
  /// (decoded bf16 values scaled by sigma for the sigma-scaled modes),
  /// computed with the same scalar la::norm2 as the fp64 caches.
  std::span<const double> doc_norms(SimilarityMode mode) const noexcept;

 private:
  Bf16DocStore() = default;

  void fill_norms(std::span<const double> sigma, la::index_t begin,
                  la::index_t end);

  la::index_t num_docs_ = 0;
  la::index_t k_ = 0;
  std::vector<std::uint16_t> data_;  ///< column-major, num_docs * k
  std::vector<std::vector<double>> norms_;  ///< one vector per SimilarityMode
};

}  // namespace lsi::core
