#pragma once
// Error handling for the public API: lsi::Status and lsi::Expected<T>.
//
// Historically the pipeline mixed ad-hoc conventions — build_semantic_space
// silently clamped bad inputs, io threw std::runtime_error, LsiIndex::build
// did both. The canonical entry points (LsiIndex::Build,
// try_build_semantic_space, try_load_database, try_save_database) now report
// failures as values instead, so callers can branch without exception
// handling; the old throwing signatures remain for one PR as thin
// [[deprecated]] wrappers that call .value() / .or_throw().
//
// Header-only on purpose: Status is used below lsi_core in the layering
// (obs's schema validator reports through it) and must not drag in a link
// dependency.

#include <stdexcept>
#include <string>
#include <utility>

namespace lsi {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     ///< caller passed something unusable (empty input,
                        ///< zero k, mismatched shapes)
  kFailedPrecondition,  ///< object state does not admit the operation
  kNotFound,            ///< named resource (file, term) absent
  kDataLoss,            ///< malformed or truncated serialized data
  kResourceExhausted,   ///< a bounded resource (ingest queue) is full —
                        ///< retry later or apply backpressure upstream
  kDeadlineExceeded,    ///< a per-request deadline expired before the work
                        ///< completed (see SearchOptions::deadline)
  kUnavailable,         ///< the service cannot take the operation right now
                        ///< (replica quorum lost); retry after recovery
  kInternal,            ///< invariant violation inside the library
};

/// Returns the canonical lower-case name ("ok", "invalid-argument", ...).
std::string_view status_code_name(StatusCode code) noexcept;

class [[nodiscard]] Status {
 public:
  /// Default-constructed Status is OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return {StatusCode::kInvalidArgument, std::move(msg)};
  }
  static Status FailedPrecondition(std::string msg) {
    return {StatusCode::kFailedPrecondition, std::move(msg)};
  }
  static Status NotFound(std::string msg) {
    return {StatusCode::kNotFound, std::move(msg)};
  }
  static Status DataLoss(std::string msg) {
    return {StatusCode::kDataLoss, std::move(msg)};
  }
  static Status ResourceExhausted(std::string msg) {
    return {StatusCode::kResourceExhausted, std::move(msg)};
  }
  static Status DeadlineExceeded(std::string msg) {
    return {StatusCode::kDeadlineExceeded, std::move(msg)};
  }
  static Status Unavailable(std::string msg) {
    return {StatusCode::kUnavailable, std::move(msg)};
  }
  static Status Internal(std::string msg) {
    return {StatusCode::kInternal, std::move(msg)};
  }

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "ok" or "<code-name>: <message>".
  std::string to_string() const {
    if (ok()) return "ok";
    return std::string(status_code_name(code_)) + ": " + message_;
  }

  /// Bridges to the legacy throwing convention: no-op when ok, otherwise
  /// throws std::runtime_error carrying the message.
  void or_throw() const {
    if (!ok()) throw std::runtime_error(to_string());
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::string_view status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kFailedPrecondition: return "failed-precondition";
    case StatusCode::kNotFound: return "not-found";
    case StatusCode::kDataLoss: return "data-loss";
    case StatusCode::kResourceExhausted: return "resource-exhausted";
    case StatusCode::kDeadlineExceeded: return "deadline-exceeded";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

/// A value or the Status explaining why there is none. The subset of
/// std::expected (C++23) this library needs, with value() deliberately
/// throwing the same std::runtime_error the deprecated signatures threw, so
/// `try_f(...).value()` is a drop-in for the old `f(...)`.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Expected(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Expected constructed from OK status");
    }
  }

  bool ok() const noexcept { return status_.ok(); }
  explicit operator bool() const noexcept { return ok(); }

  const Status& status() const noexcept { return status_; }

  T& value() & {
    status_.or_throw();
    return value_;
  }
  const T& value() const& {
    status_.or_throw();
    return value_;
  }
  T&& value() && {
    status_.or_throw();
    return std::move(value_);
  }

  /// Unchecked access (caller has tested ok()).
  T& operator*() & noexcept { return value_; }
  const T& operator*() const& noexcept { return value_; }
  T* operator->() noexcept { return &value_; }
  const T* operator->() const noexcept { return &value_; }

  /// The value, or `fallback` when this holds an error.
  T value_or(T fallback) const& { return ok() ? value_ : std::move(fallback); }

 private:
  T value_{};   ///< default-constructed when holding an error
  Status status_;
};

}  // namespace lsi
