#include "lsi/flops.hpp"

namespace lsi::core {

namespace {

std::uint64_t dense_rotation_term(const FlopModelParams& x) {
  // (2k^2 - k)(m + n): the U_k U_F / V_k V_F products of Equation (13).
  return (2 * x.k * x.k - x.k) * (x.m + x.n);
}

}  // namespace

std::uint64_t flops_fold_documents(const FlopModelParams& x) {
  return 2 * x.m * x.k * x.p;
}

std::uint64_t flops_fold_terms(const FlopModelParams& x) {
  return 2 * x.n * x.k * x.q;
}

std::uint64_t flops_update_documents(const FlopModelParams& x) {
  const std::uint64_t per_iter =
      4 * x.nnz_d + 4 * x.m * x.k + x.k * x.k + 2 * x.m + x.p;
  const std::uint64_t per_triplet = 2 * x.nnz_d + 2 * x.m * x.k + x.m;
  return x.iterations * per_iter + x.triplets * per_triplet +
         dense_rotation_term(x);
}

std::uint64_t flops_update_terms(const FlopModelParams& x) {
  const std::uint64_t per_iter =
      4 * x.nnz_t + 4 * x.k * x.n + x.k * x.k + 2 * x.n + x.q;
  const std::uint64_t per_triplet = 2 * x.nnz_t + 2 * x.k * x.n + x.n;
  return x.iterations * per_iter + x.triplets * per_triplet +
         dense_rotation_term(x);
}

std::uint64_t flops_update_weights(const FlopModelParams& x) {
  const std::uint64_t per_iter = 4 * x.nnz_z + 4 * x.k * x.m + 2 * x.m * x.j +
                                 2 * x.k * x.n + 3 * x.k * x.k + x.j * x.m;
  const std::uint64_t per_triplet =
      2 * x.nnz_z + 2 * x.k * x.m + 2 * x.k * x.n + x.j * x.n;
  return x.iterations * per_iter + x.triplets * per_triplet +
         dense_rotation_term(x);
}

std::uint64_t flops_recompute(const FlopModelParams& x) {
  const std::uint64_t rows = x.m + x.q;
  const std::uint64_t cols = x.n + x.p;
  const std::uint64_t per_iter = 4 * x.nnz_a + rows + cols;
  const std::uint64_t per_triplet = 2 * x.nnz_a + rows;
  return x.iterations * per_iter + x.triplets * per_triplet;
}

std::uint64_t flops_batch_project(const FlopModelParams& x) {
  return 2 * x.m * x.k * x.b + x.k * x.b;
}

std::uint64_t flops_batch_score(const FlopModelParams& x) {
  return 3 * x.k * x.b + 2 * x.n * x.k * x.b + x.n * x.b;
}

std::uint64_t flops_doc_norm_cache(const FlopModelParams& x) {
  return 3 * x.n * x.k + x.n;
}

}  // namespace lsi::core
