#include "lsi/lsi_index.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace lsi::core {

LsiIndex LsiIndex::build(const text::Collection& docs,
                         const IndexOptions& opts) {
  LsiIndex index;
  index.opts_ = opts;
  index.tdm_ = text::build_term_document_matrix(docs, opts.parser);
  index.weighted_ = weighting::apply(index.tdm_.counts, opts.scheme);
  index.global_weights_ =
      weighting::global_weights(index.tdm_.counts, opts.scheme.global);

  BuildOptions build = opts.build;
  build.k = opts.k;
  index.space_ = build_semantic_space(index.weighted_, build);
  index.labels_ = index.tdm_.doc_labels;
  return index;
}

la::Vector LsiIndex::weighted_term_vector(std::string_view text) const {
  const la::Vector raw = text::text_to_term_vector(tdm_, text, opts_.parser);
  return weighting::apply_to_vector(raw, global_weights_,
                                    opts_.scheme.local);
}

la::Vector LsiIndex::project(std::string_view text) const {
  return project_query(space_, weighted_term_vector(text));
}

std::vector<QueryResult> LsiIndex::query_projected(
    const la::Vector& q_hat, const QueryOptions& opts) const {
  std::vector<QueryResult> out;
  for (const ScoredDoc& sd : rank_documents(space_, q_hat, opts)) {
    out.push_back({labels_[sd.doc], sd.doc, sd.cosine});
  }
  return out;
}

std::vector<QueryResult> LsiIndex::query(std::string_view text,
                                         const QueryOptions& opts) const {
  return query_projected(project(text), opts);
}

std::vector<QueryResult> LsiIndex::query_vector(
    const la::Vector& raw_tf, const QueryOptions& opts) const {
  const la::Vector weighted = weighting::apply_to_vector(
      raw_tf, global_weights_, opts_.scheme.local);
  return query_projected(project_query(space_, weighted), opts);
}

void LsiIndex::add_documents(const text::Collection& docs, AddMethod method) {
  la::CooBuilder builder(space_.num_terms(), docs.size());
  for (std::size_t d = 0; d < docs.size(); ++d) {
    const la::Vector w = weighted_term_vector(docs[d].body);
    for (index_t i = 0; i < w.size(); ++i) {
      if (w[i] != 0.0) builder.add(i, d, w[i]);
    }
    labels_.push_back(docs[d].label);
  }
  const la::CscMatrix d = builder.to_csc();
  if (method == AddMethod::kFoldIn) {
    fold_in_documents(space_, d);
  } else {
    update_documents(space_, d);
  }
}

std::vector<std::pair<std::string, double>> LsiIndex::similar_terms(
    std::string_view term, std::size_t top) const {
  std::vector<std::pair<std::string, double>> out;
  const auto row = tdm_.vocabulary.find(
      lsi::util::to_lower(std::string(term)));
  if (!row) return out;
  const la::Vector anchor = space_.term_coords(*row);
  std::vector<ScoredDoc> ranked = rank_terms(space_, anchor, top + 1);
  for (const ScoredDoc& sd : ranked) {
    if (sd.doc == *row) continue;
    out.emplace_back(tdm_.vocabulary.term(sd.doc), sd.cosine);
    if (out.size() == top) break;
  }
  return out;
}

}  // namespace lsi::core
