#include "lsi/lsi_index.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/strings.hpp"

namespace lsi::core {

Status IndexOptions::Validate() const {
  if (k == 0) {
    return Status::InvalidArgument("IndexOptions: k must be at least 1");
  }
  if (build.lanczos.tol <= 0.0) {
    return Status::InvalidArgument(
        "IndexOptions: build.lanczos.tol must be positive");
  }
  if (parser.min_document_frequency == 0) {
    return Status::InvalidArgument(
        "IndexOptions: parser.min_document_frequency must be at least 1");
  }
  if (query.min_cosine > 1.0) {
    return Status::InvalidArgument(
        "IndexOptions: query.min_cosine above 1 matches nothing");
  }
  return Status::Ok();
}

Expected<LsiIndex> LsiIndex::try_build(const text::Collection& docs,
                                       const IndexOptions& opts) {
  if (Status s = opts.Validate(); !s.ok()) return s;
  if (docs.empty()) {
    return Status::InvalidArgument("LsiIndex: empty collection");
  }
  obs::ScopedSink scoped(opts.sink ? opts.sink : obs::Sink::active());
  LSI_OBS_SPAN(span, "build");
  LsiIndex index;
  index.opts_ = opts;
  index.tdm_ = text::build_term_document_matrix(docs, opts.parser);
  {
    LSI_OBS_SPAN(span_weight, "build.weight");
    if (opts.shared_stats) {
      index.global_weights_ = opts.shared_stats->weights_for(
          index.tdm_.vocabulary, opts.scheme.global);
      index.weighted_ = weighting::apply_with_global(
          index.tdm_.counts, opts.scheme.local, index.global_weights_);
    } else {
      index.weighted_ = weighting::apply(index.tdm_.counts, opts.scheme);
      index.global_weights_ =
          weighting::global_weights(index.tdm_.counts, opts.scheme.global);
    }
  }
  Expected<SemanticSpace> space =
      try_build_semantic_space(index.weighted_, opts.effective_build());
  if (!space.ok()) return space.status();
  index.space_ = std::move(space).value();
  index.space_.set_compress_docs(opts.compress_docs);
  index.labels_ = index.tdm_.doc_labels;
  return index;
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
LsiIndex LsiIndex::build(const text::Collection& docs,
                         const IndexOptions& opts) {
  return try_build(docs, opts).value();
}
#pragma GCC diagnostic pop

la::Vector LsiIndex::weighted_term_vector(std::string_view text) const {
  const la::Vector raw = text::text_to_term_vector(tdm_, text, opts_.parser);
  return weighting::apply_to_vector(raw, global_weights_,
                                    opts_.scheme.local);
}

la::Vector LsiIndex::project(std::string_view text) const {
  return project_query(space_, weighted_term_vector(text));
}

std::vector<QueryResult> LsiIndex::query_projected(
    const la::Vector& q_hat, const QueryOptions& opts,
    QueryStats* stats) const {
  // Sink precedence: per-call QueryOptions::sink wins (applied inside
  // rank), then the index-level sink installed here, then the ambient one.
  obs::ScopedSink scoped(opts_.sink ? opts_.sink : obs::Sink::active());
  std::vector<QueryResult> out;
  for (const ScoredDoc& sd : rank_documents(space_, q_hat, opts, stats)) {
    out.push_back({labels_[sd.doc], sd.doc, sd.cosine});
  }
  return out;
}

std::vector<QueryResult> LsiIndex::query_projected(
    const la::Vector& q_hat) const {
  return query_projected(q_hat, opts_.query);
}

std::vector<QueryResult> LsiIndex::query(std::string_view text,
                                         const QueryOptions& opts,
                                         QueryStats* stats) const {
  return query_projected(project(text), opts, stats);
}

std::vector<QueryResult> LsiIndex::query(std::string_view text) const {
  return query(text, opts_.query);
}

std::vector<QueryResult> LsiIndex::query_vector(const la::Vector& raw_tf,
                                                const QueryOptions& opts,
                                                QueryStats* stats) const {
  const la::Vector weighted = weighting::apply_to_vector(
      raw_tf, global_weights_, opts_.scheme.local);
  return query_projected(project_query(space_, weighted), opts, stats);
}

std::vector<QueryResult> LsiIndex::query_vector(
    const la::Vector& raw_tf) const {
  return query_vector(raw_tf, opts_.query);
}

void LsiIndex::add_documents(const text::Collection& docs, AddMethod method) {
  obs::ScopedSink scoped(opts_.sink ? opts_.sink : obs::Sink::active());
  la::CooBuilder builder(space_.num_terms(), docs.size());
  for (std::size_t d = 0; d < docs.size(); ++d) {
    const la::Vector w = weighted_term_vector(docs[d].body);
    for (index_t i = 0; i < w.size(); ++i) {
      if (w[i] != 0.0) builder.add(i, d, w[i]);
    }
    labels_.push_back(docs[d].label);
  }
  const la::CscMatrix d = builder.to_csc();
  if (method == AddMethod::kFoldIn) {
    fold_in_documents(space_, d);
  } else {
    update_documents(space_, d);
  }
}

std::vector<std::pair<std::string, double>> LsiIndex::similar_terms(
    std::string_view term, std::size_t top) const {
  std::vector<std::pair<std::string, double>> out;
  const auto row = tdm_.vocabulary.find(
      lsi::util::to_lower(std::string(term)));
  if (!row) return out;
  const la::Vector anchor = space_.term_coords(*row);
  std::vector<ScoredDoc> ranked = rank_terms(space_, anchor, top + 1);
  for (const ScoredDoc& sd : ranked) {
    if (sd.doc == *row) continue;
    out.emplace_back(tdm_.vocabulary.term(sd.doc), sd.cosine);
    if (out.size() == top) break;
  }
  return out;
}

}  // namespace lsi::core
