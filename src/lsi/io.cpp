#include "lsi/io.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "lsi/doc_store.hpp"
#include "obs/trace.hpp"

namespace lsi::core {

namespace {
// The read/write helpers below throw std::runtime_error internally; the
// try_* entry points are the exception boundary, translating to Status
// (DataLoss for malformed input, Internal for write failures, NotFound for
// unopenable paths).

constexpr std::uint32_t kMagic = 0x4C534932;  // "LSI2"

/// Marker for the OPTIONAL trailing compressed-document section. Databases
/// written before this section existed simply end after global_weights, and
/// readers detect the section by peeking for more bytes — both directions
/// of the format remain compatible (old readers never see the section
/// because old writers never had a store; new readers load old files as
/// uncompressed).
constexpr std::uint64_t kBf16SectionMarker = 0x4246313656454331ULL;  // "BF16VEC1"

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("lsi::io: truncated stream");
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  write_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const std::uint64_t len = read_u64(is);
  if (len > (1ULL << 32)) throw std::runtime_error("lsi::io: bad string");
  std::string s(len, '\0');
  is.read(s.data(), static_cast<std::streamsize>(len));
  if (!is) throw std::runtime_error("lsi::io: truncated stream");
  return s;
}

void write_matrix(std::ostream& os, const la::DenseMatrix& m) {
  write_u64(os, m.rows());
  write_u64(os, m.cols());
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(m.rows() * m.cols() *
                                        sizeof(double)));
}

la::DenseMatrix read_matrix(std::istream& is) {
  const std::uint64_t rows = read_u64(is);
  const std::uint64_t cols = read_u64(is);
  if (rows * cols > (1ULL << 34)) {
    throw std::runtime_error("lsi::io: matrix too large");
  }
  la::DenseMatrix m(rows, cols);
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(rows * cols * sizeof(double)));
  if (!is) throw std::runtime_error("lsi::io: truncated stream");
  return m;
}

}  // namespace

namespace {

void save_database_impl(std::ostream& os, const LsiDatabase& db) {
  write_u64(os, kMagic);
  write_matrix(os, db.space.u);
  write_u64(os, db.space.sigma.size());
  os.write(reinterpret_cast<const char*>(db.space.sigma.data()),
           static_cast<std::streamsize>(db.space.sigma.size() *
                                        sizeof(double)));
  write_matrix(os, db.space.v);
  write_u64(os, db.vocabulary.size());
  for (const auto& t : db.vocabulary.terms()) write_string(os, t);
  write_u64(os, db.doc_labels.size());
  for (const auto& l : db.doc_labels) write_string(os, l);
  write_u64(os, static_cast<std::uint64_t>(db.scheme.local));
  write_u64(os, static_cast<std::uint64_t>(db.scheme.global));
  write_u64(os, db.global_weights.size());
  os.write(reinterpret_cast<const char*>(db.global_weights.data()),
           static_cast<std::streamsize>(db.global_weights.size() *
                                        sizeof(double)));
  // Optional trailing section: the bf16 document store, present iff the
  // space has compression enabled. Only the encoded payload is serialized;
  // norms are recomputed on load from the payload + sigma, so a loaded
  // store is byte-identical to the one saved (and a resave round-trips).
  if (db.space.compress_docs()) {
    const Bf16DocStore* store = db.space.compressed_docs();
    write_u64(os, kBf16SectionMarker);
    write_u64(os, store->num_docs());
    write_u64(os, store->k());
    const auto payload = store->payload();
    os.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size() *
                                          sizeof(std::uint16_t)));
  }
  if (!os) throw std::runtime_error("lsi::io: write failed");
}

LsiDatabase load_database_impl(std::istream& is) {
  if (read_u64(is) != kMagic) {
    throw std::runtime_error("lsi::io: bad magic (not an LSI database)");
  }
  LsiDatabase db;
  db.space.u = read_matrix(is);
  const std::uint64_t k = read_u64(is);
  db.space.sigma.resize(k);
  is.read(reinterpret_cast<char*>(db.space.sigma.data()),
          static_cast<std::streamsize>(k * sizeof(double)));
  if (!is) throw std::runtime_error("lsi::io: truncated stream");
  db.space.v = read_matrix(is);
  const std::uint64_t nterms = read_u64(is);
  std::vector<std::string> terms;
  terms.reserve(nterms);
  for (std::uint64_t i = 0; i < nterms; ++i) terms.push_back(read_string(is));
  db.vocabulary = text::Vocabulary(std::move(terms));
  const std::uint64_t nlabels = read_u64(is);
  db.doc_labels.reserve(nlabels);
  for (std::uint64_t i = 0; i < nlabels; ++i) {
    db.doc_labels.push_back(read_string(is));
  }
  const std::uint64_t local = read_u64(is);
  const std::uint64_t global = read_u64(is);
  if (local > 3 || global > 4) {
    throw std::runtime_error("lsi::io: bad weighting scheme");
  }
  db.scheme.local = static_cast<weighting::LocalWeight>(local);
  db.scheme.global = static_cast<weighting::GlobalWeight>(global);
  const std::uint64_t ng = read_u64(is);
  if (ng > (1ULL << 32)) throw std::runtime_error("lsi::io: bad weights");
  db.global_weights.resize(ng);
  is.read(reinterpret_cast<char*>(db.global_weights.data()),
          static_cast<std::streamsize>(ng * sizeof(double)));
  if (!is) throw std::runtime_error("lsi::io: truncated stream");
  // Optional trailing bf16 section (see kBf16SectionMarker): detected by
  // peeking past the last mandatory field. EOF here means an uncompressed
  // database; anything else must be the marker.
  if (is.peek() != std::istream::traits_type::eof()) {
    if (read_u64(is) != kBf16SectionMarker) {
      throw std::runtime_error("lsi::io: bad trailing section marker");
    }
    const std::uint64_t ndocs = read_u64(is);
    const std::uint64_t kk = read_u64(is);
    if (ndocs != static_cast<std::uint64_t>(db.space.num_docs()) ||
        kk != static_cast<std::uint64_t>(db.space.k())) {
      throw std::runtime_error(
          "lsi::io: bf16 section shape does not match the space");
    }
    std::vector<std::uint16_t> payload(ndocs * kk);
    is.read(reinterpret_cast<char*>(payload.data()),
            static_cast<std::streamsize>(payload.size() *
                                         sizeof(std::uint16_t)));
    if (!is) throw std::runtime_error("lsi::io: truncated stream");
    db.space.adopt_compressed_docs(Bf16DocStore::from_payload(
        static_cast<index_t>(ndocs), static_cast<index_t>(kk),
        std::move(payload), db.space.sigma));
  }
  return db;
}

}  // namespace

Status try_save_database(std::ostream& os, const LsiDatabase& db) {
  LSI_OBS_SPAN(span, "io.save");
  try {
    save_database_impl(os, db);
  } catch (const std::exception& e) {
    return Status::Internal(e.what());
  }
  return Status::Ok();
}

Expected<LsiDatabase> try_load_database(std::istream& is) {
  LSI_OBS_SPAN(span, "io.load");
  try {
    return load_database_impl(is);
  } catch (const std::exception& e) {
    return Status::DataLoss(e.what());
  }
}

Status try_save_database_file(const std::string& path,
                              const LsiDatabase& db) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return Status::NotFound("lsi::io: cannot open " + path);
  return try_save_database(os, db);
}

Expected<LsiDatabase> try_load_database_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::NotFound("lsi::io: cannot open " + path);
  return try_load_database(is);
}

// Deprecated shims. The pragma silences the self-referential deprecation
// warnings these definitions would otherwise emit under -Werror.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
void save_database(std::ostream& os, const LsiDatabase& db) {
  try_save_database(os, db).or_throw();
}

LsiDatabase load_database(std::istream& is) {
  return try_load_database(is).value();
}

void save_database_file(const std::string& path, const LsiDatabase& db) {
  try_save_database_file(path, db).or_throw();
}

LsiDatabase load_database_file(const std::string& path) {
  return try_load_database_file(path).value();
}
#pragma GCC diagnostic pop

}  // namespace lsi::core
