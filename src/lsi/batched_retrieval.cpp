#include "lsi/batched_retrieval.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "la/kernels.hpp"
#include "lsi/doc_store.hpp"
#include "lsi/ranking.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace lsi::core {

namespace {

// ranks_before (lsi/ranking.hpp) is the total order every ranking obeys:
// higher cosine first, then lower document index. Also the heap ordering for
// bounded top-z selection.
constexpr auto by_rank = ranks_before<ScoredDoc, ScoredDoc>;

/// Threshold-then-select for one query's score column. The min_cosine
/// filter runs first, so the bounded heap only ever holds documents that
/// passed it (threshold before heap selection, per QueryOptions).
std::vector<ScoredDoc> select_ranked(std::span<const double> scores,
                                     const QueryOptions& opts) {
  const std::size_t n = scores.size();
  const std::size_t z = opts.top_z;
  std::vector<ScoredDoc> keep;
  if (z > 0 && z < n) {
    // Bounded heap of the z best so far; with comparator ranks_before the
    // heap top is the worst kept candidate.
    keep.reserve(z + 1);
    for (std::size_t j = 0; j < n; ++j) {
      const ScoredDoc cand{j, scores[j]};
      if (cand.cosine < opts.min_cosine) continue;
      if (keep.size() < z) {
        keep.push_back(cand);
        std::push_heap(keep.begin(), keep.end(), by_rank);
      } else if (by_rank(cand, keep.front())) {
        std::pop_heap(keep.begin(), keep.end(), by_rank);
        keep.back() = cand;
        std::push_heap(keep.begin(), keep.end(), by_rank);
      }
    }
    std::sort(keep.begin(), keep.end(), by_rank);
  } else {
    keep.reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      if (scores[j] >= opts.min_cosine) keep.push_back({j, scores[j]});
    }
    std::sort(keep.begin(), keep.end(), by_rank);
    if (z > 0 && keep.size() > z) keep.resize(z);
  }
  return keep;
}

/// First two moments of one query's scored cosines, accumulated in doc-index
/// order so the result is deterministic for a given space and candidate set.
ScoreMoments moments_of(std::span<const double> scores) {
  ScoreMoments m;
  m.count = scores.size();
  if (m.count == 0) return m;
  double sum = 0.0;
  for (const double s : scores) sum += s;
  m.mean = sum / static_cast<double>(m.count);
  double var = 0.0;
  for (const double s : scores) var += (s - m.mean) * (s - m.mean);
  m.stdev = std::sqrt(var / static_cast<double>(m.count));
  return m;
}

}  // namespace

QueryBatch QueryBatch::from_projected(const SemanticSpace& space,
                                      const std::vector<la::Vector>& qhats) {
  QueryBatch batch;
  batch.qhat_ = la::DenseMatrix(space.k(), qhats.size());
  for (index_t b = 0; b < qhats.size(); ++b) {
    assert(qhats[b].size() == space.k());
    auto col = batch.qhat_.col(b);
    for (index_t i = 0; i < space.k(); ++i) col[i] = qhats[b][i];
  }
  return batch;
}

Expected<QueryBatch> QueryBatch::try_from_projected(
    const SemanticSpace& space, const std::vector<la::Vector>& qhats) {
  for (std::size_t b = 0; b < qhats.size(); ++b) {
    if (qhats[b].size() != static_cast<std::size_t>(space.k())) {
      return Status::InvalidArgument(
          "projected query " + std::to_string(b) + " has length " +
          std::to_string(qhats[b].size()) + ", space has k = " +
          std::to_string(space.k()));
    }
  }
  return from_projected(space, qhats);
}

Expected<QueryBatch> QueryBatch::try_from_term_vectors(
    const SemanticSpace& space, const std::vector<la::Vector>& term_vectors,
    QueryStats* stats) {
  for (std::size_t b = 0; b < term_vectors.size(); ++b) {
    if (term_vectors[b].size() != static_cast<std::size_t>(space.num_terms())) {
      return Status::InvalidArgument(
          "term vector " + std::to_string(b) + " has length " +
          std::to_string(term_vectors[b].size()) + ", space has " +
          std::to_string(space.num_terms()) + " terms");
    }
  }
  return from_term_vectors(space, term_vectors, stats);
}

QueryBatch QueryBatch::from_term_vectors(
    const SemanticSpace& space, const std::vector<la::Vector>& term_vectors,
    QueryStats* stats) {
  util::WallTimer timer;
  LSI_OBS_SPAN(span, "retrieval.project");
  la::DenseMatrix q(space.num_terms(), term_vectors.size());
  for (index_t b = 0; b < term_vectors.size(); ++b) {
    assert(term_vectors[b].size() == space.num_terms());
    auto col = q.col(b);
    for (index_t i = 0; i < space.num_terms(); ++i) col[i] = term_vectors[b][i];
  }
  QueryBatch batch;
  batch.qhat_ = la::multiply_at_b_blocked(space.u, q);  // k x B
  // S_k^{-1} row scaling; zero singular values map to zero (pseudo-inverse
  // semantics, matching project_query).
  for (index_t b = 0; b < batch.qhat_.cols(); ++b) {
    auto col = batch.qhat_.col(b);
    for (index_t i = 0; i < space.k(); ++i) {
      col[i] = space.sigma[i] > 0.0 ? col[i] / space.sigma[i] : 0.0;
    }
  }
  if (stats) {
    const std::uint64_t m = space.num_terms();
    const std::uint64_t k = space.k();
    const std::uint64_t b = term_vectors.size();
    stats->flops += 2 * m * k * b + k * b;  // GEMM + S^{-1} row scaling
    const double elapsed = timer.seconds();
    stats->project_seconds += elapsed;
    stats->total_seconds += elapsed;
  }
  return batch;
}

la::DenseMatrix BatchedRetriever::scores(const QueryBatch& batch,
                                         SimilarityMode mode,
                                         QueryStats* stats) const {
  util::WallTimer timer;
  LSI_OBS_SPAN(span, "retrieval.score");
  const index_t n = space_.num_docs();
  const index_t k = space_.k();
  const index_t bsz = batch.size();
  assert(bsz == 0 || batch.k() == k);

  // All three modes are cos(q_hat .* s^a, v_j .* s^b): a = 1 only for
  // kColumnSpace; b = 1 except for kPlainV. The query-side coordinates q'
  // give the per-query norms; the document-side s^b is then folded into the
  // sweep weights w = q' .* s^b so the inner loop reads raw V_k entries.
  la::DenseMatrix w = batch.projected();
  std::vector<double> query_norm(bsz);
  for (index_t b = 0; b < bsz; ++b) {
    auto wb = w.col(b);
    if (mode == SimilarityMode::kColumnSpace) {
      for (index_t i = 0; i < k; ++i) wb[i] *= space_.sigma[i];
    }
    query_norm[b] = la::norm2(wb);
    if (mode != SimilarityMode::kPlainV) {
      for (index_t i = 0; i < k; ++i) wb[i] *= space_.sigma[i];
    }
  }
  // With compression enabled the sweep streams the bf16 store instead of V
  // and divides by the store's decoded-value norms — cosines must normalize
  // by the vector actually scored (doc_store.hpp).
  const Bf16DocStore* bf16 = space_.compressed_docs();
  const std::span<const double> doc_norm =
      bf16 ? bf16->doc_norms(mode)
           : std::span<const double>(space_.doc_norms(mode));

  la::DenseMatrix c(n, bsz);
  if (stats) {
    // Flops of the sweep below, counted against what actually runs: zero
    // weights skip their accumulation row, so tally the nonzeros.
    std::uint64_t nnz_w = 0;
    for (index_t b = 0; b < bsz; ++b) {
      for (index_t i = 0; i < k; ++i) {
        if (w(i, b) != 0.0) ++nnz_w;
      }
    }
    stats->batch_size += bsz;
    stats->docs_scored = n;
    stats->flops += 3ull * k * bsz      // weight prep + query norms
                    + 2ull * n * nnz_w  // multiply-accumulate sweep
                    + 1ull * n * bsz;   // normalization divides
  }
  if (n == 0 || bsz == 0) {
    if (stats) {
      const double elapsed = timer.seconds();
      stats->score_seconds += elapsed;
      stats->total_seconds += elapsed;
    }
    return c;
  }
  // One V_k-panel sweep: factor i's document column is loaded once per
  // panel and reused by every query. Each scores(j, b) accumulates over i
  // ascending, independent of panel bounds and batch size, so per-query
  // results do not depend on who else shares the batch. The accumulation
  // runs on the dispatched elementwise kernels (la/kernels.hpp): axpy4
  // drives four query streams off one load of vi, and because elementwise
  // kernels are bit-identical across kernels and to the scalar loop, every
  // parity contract (batched-vs-single, pruned full-probe, concurrent,
  // replicated) holds under any kernel.
  const la::kern::Ops& kern_ops = la::kern::active();
  if (bf16) obs::count("retrieval.bf16_queries", bsz);
  util::parallel_for_chunks(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        const std::size_t len = hi - lo;
        if (bf16) {
          // Reduced-precision sweep: stream the bf16 columns, accumulate in
          // fp32 (chunk-local buffer), normalize in double. The zero-skip
          // still tests the DOUBLE weight, so the bf16 path scores exactly
          // the terms the fp64 path scores.
          std::vector<float> acc(len * static_cast<std::size_t>(bsz), 0.0f);
          for (index_t i = 0; i < k; ++i) {
            const std::uint16_t* vi = bf16->col(i) + lo;
            float a4[4];
            float* y4[4];
            int lanes = 0;
            for (index_t b = 0; b < bsz; ++b) {
              const double wib = w(i, b);
              if (wib == 0.0) continue;
              a4[lanes] = static_cast<float>(wib);
              y4[lanes] = acc.data() + static_cast<std::size_t>(b) * len;
              if (++lanes == 4) {
                kern_ops.axpy4_bf16(a4, vi, y4[0], y4[1], y4[2], y4[3], len);
                lanes = 0;
              }
            }
            for (int t = 0; t < lanes; ++t) {
              kern_ops.axpy_bf16(a4[t], vi, y4[t], len);
            }
          }
          for (index_t b = 0; b < bsz; ++b) {
            kern_ops.cos_norm_f32(query_norm[b],
                                  acc.data() + static_cast<std::size_t>(b) * len,
                                  doc_norm.data() + lo, c.col(b).data() + lo,
                                  len);
          }
          return;
        }
        for (index_t i = 0; i < k; ++i) {
          const double* vi = space_.v.col(i).data() + lo;
          // Group the nonzero-weight queries into batches of four streams;
          // per (j, b) the chain is still "+= w(i,b) * vi[j]" in ascending
          // i, exactly as before.
          double a4[4];
          double* y4[4];
          int lanes = 0;
          for (index_t b = 0; b < bsz; ++b) {
            const double wib = w(i, b);
            if (wib == 0.0) continue;
            a4[lanes] = wib;
            y4[lanes] = c.col(b).data() + lo;
            if (++lanes == 4) {
              kern_ops.axpy4(a4, vi, y4[0], y4[1], y4[2], y4[3], len);
              lanes = 0;
            }
          }
          for (int t = 0; t < lanes; ++t) kern_ops.axpy(a4[t], vi, y4[t], len);
        }
        // Normalize the panel in place: cosine = dot / (|q'| * |d'|), with
        // la::cosine's zero-norm guard. cos_norm is correctly rounded in
        // every kernel, so the cosines stay bit-identical under dispatch.
        for (index_t b = 0; b < bsz; ++b) {
          kern_ops.cos_norm(query_norm[b], doc_norm.data() + lo,
                            c.col(b).data() + lo, len);
        }
      },
      /*grain=*/512);
  if (stats) {
    const double elapsed = timer.seconds();
    stats->score_seconds += elapsed;
    stats->total_seconds += elapsed;
  }
  return c;
}

std::vector<std::vector<ScoredDoc>> BatchedRetriever::rank(
    const QueryBatch& batch, const SearchOptions& opts, QueryStats* stats,
    std::vector<ScoreMoments>* moments) const {
  obs::ScopedSink scoped(opts.sink ? opts.sink : obs::Sink::active());
  if (moments) moments->assign(batch.size(), ScoreMoments{});
  if (ann_ != nullptr && opts.search != SearchMode::kExact) {
    return rank_pruned(batch, opts, stats, moments);
  }
  if (opts.search == SearchMode::kPruned && batch.size() > 0) {
    // kPruned without a structure (small corpus, ann disabled): exact scan,
    // made visible to operators rather than silently absorbed.
    obs::count("ann.exact_fallback_queries", batch.size());
  }
  const QueryOptions qopts = opts.query_options();
  const la::DenseMatrix c = scores(batch, qopts.mode, stats);
  util::WallTimer select_timer;
  std::vector<std::vector<ScoredDoc>> out(batch.size());
  {
    LSI_OBS_SPAN(span, "retrieval.select");
    util::parallel_for(
        0, batch.size(),
        [&](std::size_t b) {
          out[b] = select_ranked(c.col(b), qopts);
          if (moments) (*moments)[b] = moments_of(c.col(b));
        },
        /*grain=*/1);
  }
  obs::count("retrieval.batches");
  obs::count("retrieval.queries", batch.size());
  if (stats) {
    const double elapsed = select_timer.seconds();
    stats->select_seconds += elapsed;
    stats->total_seconds += elapsed;
  }
  return out;
}

std::vector<std::vector<ScoredDoc>> BatchedRetriever::rank_pruned(
    const QueryBatch& batch, const SearchOptions& opts, QueryStats* stats,
    std::vector<ScoreMoments>* moments) const {
  util::WallTimer timer;
  LSI_OBS_SPAN(span, "ann.rank");
  const index_t n = space_.num_docs();
  const index_t k = space_.k();
  const index_t bsz = batch.size();
  assert(bsz == 0 || batch.k() == k);
  std::vector<std::vector<ScoredDoc>> out(bsz);
  const index_t nprobe = ann_->resolve_nprobe(opts);
  if (n == 0 || bsz == 0 || nprobe == 0) return out;

  // Weight prep identical to scores(): q' (the query-side coordinates whose
  // norm divides the cosine) additionally drives centroid selection — the
  // centroids live in the document-coordinate geometry q' is compared
  // against. w then folds the document-side sigma in, exactly as the exact
  // sweep does, so each candidate's accumulation below reproduces the exact
  // path's arithmetic bit for bit.
  la::DenseMatrix w = batch.projected();
  la::DenseMatrix qprime(k, bsz);
  std::vector<double> query_norm(bsz);
  for (index_t b = 0; b < bsz; ++b) {
    auto wb = w.col(b);
    if (opts.mode == SimilarityMode::kColumnSpace) {
      for (index_t i = 0; i < k; ++i) wb[i] *= space_.sigma[i];
    }
    query_norm[b] = la::norm2(wb);
    auto qp = qprime.col(b);
    for (index_t i = 0; i < k; ++i) qp[i] = wb[i];
    if (opts.mode != SimilarityMode::kPlainV) {
      for (index_t i = 0; i < k; ++i) wb[i] *= space_.sigma[i];
    }
  }
  // Same precision switch as scores(): with compression on, re-rank decodes
  // the stored bf16 words and divides by the decoded-value norms, so a
  // full-probe pruned ranking stays bit-identical to the exact bf16 sweep.
  const Bf16DocStore* bf16 = space_.compressed_docs();
  const std::span<const double> doc_norm =
      bf16 ? bf16->doc_norms(opts.mode)
           : std::span<const double>(space_.doc_norms(opts.mode));
  const std::size_t z = opts.z;
  const double min_cos = opts.min_cosine;

  std::vector<std::uint64_t> scanned(bsz, 0);
  util::parallel_for(
      0, bsz,
      [&](std::size_t b) {
        std::vector<index_t> clusters;
        ann_->select_clusters(qprime.col(b), nprobe, clusters);
        const double qn = query_norm[b];
        const auto wb = w.col(b);
        // fp32 weights for the bf16 chain, cast exactly like the exact
        // sweep's lane setup; the zero-skip still tests the double weight.
        std::vector<float> w32;
        if (bf16) {
          w32.resize(k);
          for (index_t i = 0; i < k; ++i) {
            w32[i] = static_cast<float>(wb[i]);
          }
        }
        const bool ann_bf16 = bf16 != nullptr && ann_->has_bf16();
        const bool bounded = z > 0;
        std::vector<ScoredDoc> keep;
        keep.reserve(bounded ? z + 1 : 0);
        // Background moments cover every SCANNED candidate (the pruned
        // analogue of the exact sweep's all-documents statistics), gathered
        // before the min_cosine filter.
        std::vector<double> bg;
        std::uint64_t cand_count = 0;
        for (const index_t c : clusters) {
          const auto docs = ann_->cluster_docs(c);
          const auto rows = ann_->cluster_rows(c);
          const auto rows16 = ann_bf16 ? ann_->cluster_rows_bf16(c)
                                       : std::span<const std::uint16_t>{};
          cand_count += docs.size();
          for (std::size_t t = 0; t < docs.size(); ++t) {
            const index_t j = docs[t];
            double score;
            if (bf16) {
              // Decode the SAME encoded words the exact bf16 sweep streams
              // (packed posting rows when available, else a strided gather
              // from the store) and accumulate the same fp32 chain.
              float acc = 0.0f;
              if (ann_bf16) {
                const std::uint16_t* row16 = rows16.data() + t * k;
                for (index_t i = 0; i < k; ++i) {
                  if (wb[i] == 0.0) continue;
                  acc += w32[i] * la::kern::bf16_to_f32(row16[i]);
                }
              } else {
                for (index_t i = 0; i < k; ++i) {
                  if (wb[i] == 0.0) continue;
                  acc += w32[i] * la::kern::bf16_to_f32(bf16->col(i)[j]);
                }
              }
              score = static_cast<double>(acc);
            } else {
              const double* row = rows.data() + t * k;
              // Same accumulation as the exact sweep: i ascending, zero
              // weights skipped (they are skipped there too, so skipping is
              // not an approximation).
              double acc = 0.0;
              for (index_t i = 0; i < k; ++i) {
                const double wib = wb[i];
                if (wib == 0.0) continue;
                acc += wib * row[i];
              }
              score = acc;
            }
            const ScoredDoc cand{
                j, (qn == 0.0 || doc_norm[j] == 0.0)
                       ? 0.0
                       : score / (qn * doc_norm[j])};
            if (moments) bg.push_back(cand.cosine);
            if (cand.cosine < min_cos) continue;
            if (!bounded) {
              keep.push_back(cand);
            } else if (keep.size() < z) {
              keep.push_back(cand);
              std::push_heap(keep.begin(), keep.end(), by_rank);
            } else if (by_rank(cand, keep.front())) {
              std::pop_heap(keep.begin(), keep.end(), by_rank);
              keep.back() = cand;
              std::push_heap(keep.begin(), keep.end(), by_rank);
            }
          }
        }
        // ranks_before is a strict total order over distinct doc ids, so the
        // sorted top-z is unique no matter the candidate enumeration order —
        // the property that makes nprobe == num_centroids bit-identical to
        // the exact scan.
        std::sort(keep.begin(), keep.end(), by_rank);
        out[b] = std::move(keep);
        if (moments) (*moments)[b] = moments_of(bg);
        scanned[b] = cand_count;
      },
      /*grain=*/1);

  std::uint64_t total_scanned = 0;
  for (const std::uint64_t s : scanned) total_scanned += s;
  obs::count("retrieval.batches");
  obs::count("retrieval.queries", bsz);
  obs::count("ann.pruned_queries", bsz);
  obs::gauge("ann.probed_centroids", static_cast<double>(nprobe));
  obs::gauge("ann.scanned_docs",
             static_cast<double>(total_scanned) / static_cast<double>(bsz));
  if (stats) {
    stats->batch_size += bsz;
    stats->ann_pruned_queries += bsz;
    stats->ann_centroids_probed +=
        static_cast<std::uint64_t>(nprobe) * bsz;
    stats->ann_docs_scanned += total_scanned;
    stats->flops += 3ull * k * bsz                                // weight prep
                    + 2ull * ann_->num_centroids() * k * bsz      // centroids
                    + 2ull * total_scanned * k + total_scanned;   // re-rank
    const double elapsed = timer.seconds();
    stats->score_seconds += elapsed;
    stats->total_seconds += elapsed;
  }
  return out;
}

Expected<std::vector<std::vector<ScoredDoc>>> BatchedRetriever::try_rank(
    const QueryBatch& batch, const SearchOptions& opts,
    QueryStats* stats) const {
  if (Status s = opts.Validate(); !s.ok()) return s;
  if (batch.size() > 0 && batch.k() != space_.k()) {
    return Status::InvalidArgument(
        "batch was projected with k = " + std::to_string(batch.k()) +
        ", this retriever's space has k = " + std::to_string(space_.k()));
  }
  if (opts.deadline_expired()) {
    return Status::DeadlineExceeded(
        "search deadline expired before scoring began");
  }
  return rank(batch, opts, stats);
}

}  // namespace lsi::core
