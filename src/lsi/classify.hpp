#pragma once
// Text classification on LSI dimensions (Section 5.7: Hull, Yang & Chute,
// and Wu et al. "used LSI/SVD as the first step in conjunction with
// statistical classification ... effectively reduc[ing] the number of
// predictor variables").
//
// A nearest-centroid (Rocchio-style) classifier over the sigma-scaled
// document coordinates: each class is the normalized mean of its training
// documents' k-vectors; prediction is argmax cosine.

#include <cstddef>
#include <span>
#include <vector>

#include "la/dense.hpp"

namespace lsi::core {

/// Nearest-centroid classifier over arbitrary real feature vectors.
class CentroidClassifier {
 public:
  /// `features[i]` is the vector for sample i with label `labels[i]` in
  /// [0, num_classes). All vectors must share a dimension.
  CentroidClassifier(const std::vector<la::Vector>& features,
                     const std::vector<std::size_t>& labels,
                     std::size_t num_classes);

  /// Most similar class centroid by cosine; ties -> lowest class id.
  std::size_t predict(std::span<const double> features) const;

  /// Cosine against every class centroid.
  std::vector<double> scores(std::span<const double> features) const;

  std::size_t num_classes() const noexcept { return centroids_.size(); }

 private:
  std::vector<la::Vector> centroids_;  ///< unit-norm class means
};

/// Convenience: fraction of (features, labels) pairs predicted correctly.
double classification_accuracy(const CentroidClassifier& clf,
                               const std::vector<la::Vector>& features,
                               const std::vector<std::size_t>& labels);

}  // namespace lsi::core
