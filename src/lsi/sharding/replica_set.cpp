#include "lsi/sharding/replica_set.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <utility>

#include "obs/trace.hpp"
#include "util/failpoint.hpp"

namespace lsi::core {

namespace {

/// Entries copied out of the log per replay round. Small enough that the
/// feed lock is never held long, large enough to make catch-up cheap.
constexpr std::size_t kReplayChunk = 128;

std::string replica_tag(const std::string& prefix, std::size_t r) {
  std::string tag;
  if (!prefix.empty()) {
    tag = prefix;
    tag += '.';
  }
  tag += 'r';
  tag += std::to_string(r);
  return tag;
}

}  // namespace

Status ReplicaOptions::Validate() const {
  if (replicas == 0) {
    return Status::InvalidArgument("ReplicaOptions: replicas must be >= 1");
  }
  if (write_quorum > replicas) {
    return Status::InvalidArgument(
        "ReplicaOptions: write_quorum " + std::to_string(write_quorum) +
        " exceeds replica count " + std::to_string(replicas));
  }
  if (eject_after_refusals == 0) {
    return Status::InvalidArgument(
        "ReplicaOptions: eject_after_refusals must be >= 1");
  }
  if (strike_interval < std::chrono::milliseconds::zero()) {
    return Status::InvalidArgument(
        "ReplicaOptions: strike_interval must be non-negative");
  }
  return Status::Ok();
}

ReplicaSet::ReplicaSet(LsiIndex index, const ReplicaOptions& opts)
    : opts_(opts) {
  replicas_.reserve(opts_.replicas);
  for (std::size_t r = 0; r < opts_.replicas; ++r) {
    ConcurrentOptions copts = opts_.concurrent;
    copts.failpoint_tag = replica_tag(opts_.concurrent.failpoint_tag, r);
    // Every replica starts from a copy of the same built index, so replica
    // snapshots agree from generation 1 onward; the last takes it by move.
    LsiIndex base = (r + 1 < opts_.replicas) ? index : std::move(index);
    replicas_.push_back(std::make_unique<Replica>(std::move(base), copts,
                                                  copts.failpoint_tag));
    if (opts_.query_threads > 0) {
      replicas_.back()->gate->pool =
          std::make_unique<util::ThreadPool>(opts_.query_threads);
    }
  }
}

ReplicaSet::~ReplicaSet() { shutdown(); }

Status ReplicaSet::add(text::Document doc) {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(feed_mu_);
      const Status st = try_add_locked(doc);
      if (st.code() != StatusCode::kResourceExhausted) return st;
    }
    // Uniform backpressure: every healthy replica's queue is full. The
    // writers only pop, so space appears without any signal we could wait
    // on across queues — bounded poll, mirroring what a blocking push
    // against a single queue would cost under saturation.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

Status ReplicaSet::try_add(text::Document doc) {
  std::lock_guard<std::mutex> lock(feed_mu_);
  return try_add_locked(doc);
}

Status ReplicaSet::try_add_locked(const text::Document& doc) {
  for (;;) {
    if (shutdown_) {
      return Status::FailedPrecondition("ReplicaSet is shut down");
    }
    std::vector<std::size_t> healthy;
    std::vector<std::size_t> full;
    healthy.reserve(replicas_.size());
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
      Replica& rep = *replicas_[r];
      if (rep.state.load(std::memory_order_acquire) !=
          ReplicaState::kHealthy) {
        continue;
      }
      healthy.push_back(r);
      // Probe before feeding: writers only pop, and this thread (under
      // feed_mu_) is the only pusher, so queued() < capacity here means the
      // try_add below cannot refuse — the fan-out either feeds every
      // healthy replica or feeds none.
      if (rep.indexer.queued() >= opts_.concurrent.queue_capacity) {
        full.push_back(r);
      }
    }
    if (healthy.size() < opts_.quorum()) {
      return Status::Unavailable(
          "replica write quorum lost (" + std::to_string(healthy.size()) +
          " healthy < quorum " + std::to_string(opts_.quorum()) + ")");
    }
    if (full.size() == healthy.size()) {
      // Uniform backpressure is load, not a fault: nobody gets a strike.
      obs::count("replica.backpressure");
      return Status::ResourceExhausted(
          "every healthy replica's ingest queue is full (capacity " +
          std::to_string(opts_.concurrent.queue_capacity) + ")");
    }
    if (full.empty()) {
      log_.push_back({LogEntry::Kind::kDoc, doc});
      const std::uint64_t seq = ++next_seq_;
      for (std::size_t r : healthy) {
        Replica& rep = *replicas_[r];
        const Status st = rep.indexer.try_add(doc);
        if (!st.ok()) {
          // The probe guaranteed space and nothing else pushes; reaching
          // here means the single-pusher invariant was broken.
          return Status::Internal("replica " + std::to_string(r) +
                                  " refused a probed fold-in: " +
                                  st.to_string());
        }
        rep.fed.store(seq, std::memory_order_release);
        rep.strikes = 0;
      }
      trim_log_locked();
      return Status::Ok();
    }
    // Some healthy replicas are full while siblings have space. Entries are
    // positional — feeding only the replicas with room would fork their
    // document sequences — so nobody is fed. A full replica that is still
    // folding (fold counter moved since its last strike) is just behind;
    // one whose counter stays frozen for strike_interval after the previous
    // strike earns another. The interval is load-bearing: the blocking
    // add() retries on a microsecond poll, and without it a writer the
    // scheduler merely hasn't run yet would collect every strike before its
    // first chance to fold (observed as spurious ejections under TSan's
    // serialized scheduling).
    bool ejected = false;
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t r : full) {
      Replica& rep = *replicas_[r];
      const std::uint64_t folded = rep.indexer.ingested();
      if (rep.strikes > 0 && folded == rep.strike_ingested) {
        if (now - rep.strike_time >= opts_.strike_interval) {
          ++rep.strikes;
          rep.strike_time = now;
        }
      } else {
        rep.strikes = 1;
        rep.strike_ingested = folded;
        rep.strike_time = now;
      }
      if (rep.strikes >= opts_.eject_after_refusals) {
        eject_locked(r);
        ejected = true;
      }
    }
    if (ejected) continue;  // retry against the surviving set
    return Status::ResourceExhausted(
        "replica fold-in stalled behind a full sibling queue (strike " +
        std::to_string(replicas_[full.front()]->strikes) + "/" +
        std::to_string(opts_.eject_after_refusals) + ")");
  }
}

void ReplicaSet::flush() {
  for (auto& rep : replicas_) {
    if (rep->state.load(std::memory_order_acquire) ==
        ReplicaState::kHealthy) {
      rep->indexer.flush();
    }
  }
}

Status ReplicaSet::consolidate() {
  std::lock_guard<std::mutex> lock(feed_mu_);
  if (shutdown_) {
    return Status::FailedPrecondition("ReplicaSet is shut down");
  }
  // The marker and the per-replica consolidations happen under the feed
  // lock, so every healthy replica consolidates at exactly this log
  // position; an ejected replica replays the marker at the same position.
  log_.push_back({LogEntry::Kind::kConsolidate, {}});
  const std::uint64_t seq = ++next_seq_;
  Status first = Status::Ok();
  for (auto& rep : replicas_) {
    if (rep->state.load(std::memory_order_acquire) !=
        ReplicaState::kHealthy) {
      continue;
    }
    rep->fed.store(seq, std::memory_order_release);
    // consolidate() drains the replica's queue first, so everything fed
    // before the marker is folded before the basis recompute.
    const Status st = rep->indexer.consolidate();
    if (first.ok() && !st.ok()) first = st;
  }
  trim_log_locked();
  return first;
}

void ReplicaSet::shutdown() {
  {
    std::lock_guard<std::mutex> lock(feed_mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  for (auto& rep : replicas_) rep->indexer.shutdown();
}

ReplicaSet::ReadRef ReplicaSet::pick_reader() const {
  const std::size_t n = replicas_.size();
  std::size_t chosen = n;
  if (opts_.read_policy == ReadPolicy::kLeastLoaded) {
    std::size_t best = std::numeric_limits<std::size_t>::max();
    for (std::size_t r = 0; r < n; ++r) {
      const Replica& rep = *replicas_[r];
      if (rep.state.load(std::memory_order_acquire) !=
          ReplicaState::kHealthy) {
        continue;
      }
      const std::size_t load =
          rep.gate->in_flight.load(std::memory_order_relaxed);
      if (load < best) {  // strict <: ties resolve to the lower index
        best = load;
        chosen = r;
      }
    }
  } else {
    const std::uint64_t start =
        rr_next_.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t r = (start + i) % n;
      if (replicas_[r]->state.load(std::memory_order_acquire) ==
          ReplicaState::kHealthy) {
        chosen = r;
        break;
      }
    }
  }
  if (chosen == n) {
    // Zero healthy replicas: reads degrade to stale-but-valid snapshots
    // rather than failing — prefer one that is at least replaying forward.
    obs::count("replica.stale_reads");
    chosen = 0;
    for (std::size_t r = 0; r < n; ++r) {
      if (replicas_[r]->state.load(std::memory_order_acquire) ==
          ReplicaState::kReplaying) {
        chosen = r;
        break;
      }
    }
  }
  const Replica& rep = *replicas_[chosen];
  return ReadRef{rep.indexer.snapshot(), chosen, rep.gate};
}

Status ReplicaSet::eject(std::size_t r) {
  if (r >= replicas_.size()) {
    return Status::InvalidArgument("replica index " + std::to_string(r) +
                                   " out of range (replicas=" +
                                   std::to_string(replicas_.size()) + ")");
  }
  std::lock_guard<std::mutex> lock(feed_mu_);
  if (replicas_[r]->state.load(std::memory_order_acquire) !=
      ReplicaState::kHealthy) {
    return Status::FailedPrecondition(
        "replica " + std::to_string(r) + " is not healthy (state " +
        std::string(replica_state_name(
            replicas_[r]->state.load(std::memory_order_acquire))) +
        ")");
  }
  eject_locked(r);
  return Status::Ok();
}

void ReplicaSet::eject_locked(std::size_t r) {
  Replica& rep = *replicas_[r];
  rep.state.store(ReplicaState::kEjected, std::memory_order_release);
  rep.strikes = 0;
  rep.health_observed = false;
  obs::count("replica.ejections");
}

Status ReplicaSet::readmit(std::size_t r) {
  if (r >= replicas_.size()) {
    return Status::InvalidArgument("replica index " + std::to_string(r) +
                                   " out of range (replicas=" +
                                   std::to_string(replicas_.size()) + ")");
  }
  Replica& rep = *replicas_[r];
  {
    std::lock_guard<std::mutex> lock(feed_mu_);
    if (shutdown_) {
      return Status::FailedPrecondition("ReplicaSet is shut down");
    }
    if (rep.state.load(std::memory_order_acquire) != ReplicaState::kEjected) {
      return Status::FailedPrecondition(
          "replica " + std::to_string(r) + " is not ejected (state " +
          std::string(replica_state_name(
              rep.state.load(std::memory_order_acquire))) +
          ")");
    }
    rep.state.store(ReplicaState::kReplaying, std::memory_order_release);
  }
  obs::count("replica.readmits");
  // Replay in chunks: copy a slice of the log under the feed lock, apply it
  // with the lock dropped (fold-ins are slow), repeat until the cursor
  // catches the tail, then rejoin atomically. Writers keep appending
  // throughout — the loop terminates once replay outruns ingest.
  for (;;) {
    std::vector<LogEntry> chunk;
    {
      std::lock_guard<std::mutex> lock(feed_mu_);
      if (shutdown_) {
        rep.state.store(ReplicaState::kEjected, std::memory_order_release);
        return Status::FailedPrecondition("ReplicaSet is shut down");
      }
      const std::uint64_t from = rep.fed.load(std::memory_order_acquire);
      if (from < log_base_) {
        // trim_log_locked keeps everything above min(fed), so this is
        // unreachable unless the cursor invariant broke.
        rep.state.store(ReplicaState::kEjected, std::memory_order_release);
        return Status::Internal(
            "replica " + std::to_string(r) + " replay cursor " +
            std::to_string(from) + " below log base " +
            std::to_string(log_base_));
      }
      const std::size_t offset = from - log_base_;
      if (offset >= log_.size()) {
        // Caught up, and the lock is held: rejoining here means no entry
        // can slip between the last replayed one and the first fed one.
        rep.state.store(ReplicaState::kHealthy, std::memory_order_release);
        rep.strikes = 0;
        rep.health_observed = false;
        return Status::Ok();
      }
      const std::size_t take = std::min(log_.size() - offset, kReplayChunk);
      chunk.assign(log_.begin() + offset, log_.begin() + offset + take);
    }
    for (LogEntry& entry : chunk) {
      (void)LSI_FAILPOINT("replica.replay", rep.tag);
      Status st = Status::Ok();
      if (entry.kind == LogEntry::Kind::kDoc) {
        st = rep.indexer.add(std::move(entry.doc));
      } else {
        st = rep.indexer.consolidate();
      }
      if (!st.ok()) {
        rep.state.store(ReplicaState::kEjected, std::memory_order_release);
        return st;
      }
      rep.fed.fetch_add(1, std::memory_order_release);
    }
    {
      std::lock_guard<std::mutex> lock(feed_mu_);
      trim_log_locked();
    }
  }
}

std::size_t ReplicaSet::check_health() {
  std::lock_guard<std::mutex> lock(feed_mu_);
  std::size_t ejected = 0;
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    Replica& rep = *replicas_[r];
    if (rep.state.load(std::memory_order_acquire) !=
        ReplicaState::kHealthy) {
      continue;
    }
    // An armed "replica.health_probe" kFail for this replica's tag models a
    // probe timeout / crashed process.
    if (LSI_FAILPOINT("replica.health_probe", rep.tag)) {
      eject_locked(r);
      ++ejected;
      continue;
    }
    const std::size_t queued = rep.indexer.queued();
    const std::uint64_t folded = rep.indexer.ingested();
    const bool stuck_full = queued >= opts_.concurrent.queue_capacity;
    if (stuck_full && rep.health_observed &&
        rep.health_queued >= opts_.concurrent.queue_capacity &&
        folded == rep.health_ingested) {
      // Two consecutive probes saw a full queue with zero fold progress:
      // the writer is wedged, not merely busy.
      eject_locked(r);
      ++ejected;
      continue;
    }
    rep.health_queued = queued;
    rep.health_ingested = folded;
    rep.health_observed = true;
  }
  obs::gauge("replica.healthy",
             static_cast<double>(replicas_.size() - ejected));
  return ejected;
}

std::size_t ReplicaSet::healthy_count() const {
  std::size_t n = 0;
  for (const auto& rep : replicas_) {
    if (rep->state.load(std::memory_order_acquire) ==
        ReplicaState::kHealthy) {
      ++n;
    }
  }
  return n;
}

ReplicaState ReplicaSet::state(std::size_t r) const {
  return replicas_[r]->state.load(std::memory_order_acquire);
}

std::uint64_t ReplicaSet::ingested() const {
  std::uint64_t best = 0;
  for (const auto& rep : replicas_) {
    best = std::max(best, rep->indexer.ingested());
  }
  return best;
}

std::uint64_t ReplicaSet::next_seq() const {
  std::lock_guard<std::mutex> lock(feed_mu_);
  return next_seq_;
}

std::size_t ReplicaSet::log_entries() const {
  std::lock_guard<std::mutex> lock(feed_mu_);
  return log_.size();
}

std::vector<ReplicaSet::ReplicaInfo> ReplicaSet::replica_infos() const {
  std::vector<ReplicaInfo> out;
  out.reserve(replicas_.size());
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    const Replica& rep = *replicas_[r];
    ReplicaInfo info;
    info.replica = r;
    info.state = rep.state.load(std::memory_order_acquire);
    info.fed = rep.fed.load(std::memory_order_acquire);
    info.queued = rep.indexer.queued();
    info.in_flight = rep.gate->in_flight.load(std::memory_order_relaxed);
    info.generation = rep.indexer.snapshot()->generation();
    info.ingested = rep.indexer.ingested();
    info.publishes = rep.indexer.publishes();
    info.consolidations = rep.indexer.consolidations();
    out.push_back(info);
  }
  return out;
}

void ReplicaSet::trim_log_locked() {
  std::uint64_t min_fed = next_seq_;
  for (const auto& rep : replicas_) {
    min_fed = std::min(min_fed, rep->fed.load(std::memory_order_acquire));
  }
  while (log_base_ < min_fed && !log_.empty()) {
    log_.pop_front();
    ++log_base_;
  }
}

}  // namespace lsi::core
