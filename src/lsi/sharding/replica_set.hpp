#pragma once
// Per-shard replication with failover (docs/REPLICATION.md).
//
// A ReplicaSet owns R ConcurrentIndexer replicas of ONE shard, all built
// from copies of the same LsiIndex. Writes go through a per-shard
// append-only ingest log under a single feed mutex: every accepted entry is
// appended once and fanned out to every healthy replica in the same order,
// so replicas fold the identical document sequence. Consolidation is
// per-replica — publish generations may skew across replicas — but because
// the fold order, the auto-consolidation policy (doc-count driven) and the
// ANN rebuild point (publish-after-consolidation) are all functions of the
// document sequence alone, quiesced replicas answer queries byte-identically
// (the read-parity property tests assert exactly this).
//
// Failover protocol:
//
//   eject    a replica leaves the feed. Explicit (operator/test), via a
//            health check (queue full with a frozen fold counter across two
//            consecutive checks, or an armed "replica.health_probe"
//            failpoint), or implicit: a replica whose queue is full while a
//            sibling has space has fallen out of the feed — entries are
//            positional, so after `eject_after_refusals` such observations
//            with no fold progress — each at least `strike_interval` after
//            the previous one, so a briefly-descheduled writer is never
//            mistaken for a parked one — it is ejected rather than allowed
//            to stall ingest forever. Uniform backpressure (every healthy
//            replica full) is NOT a fault: the caller gets
//            kResourceExhausted and nobody is ejected.
//   replay   readmit() replays the ingest log from the replica's fed
//            cursor (entries accepted into its queue are never dropped, so
//            the cursor is exact — nothing is skipped or applied twice),
//            then atomically rejoins the feed under the feed mutex.
//
// Reads: pick_reader() pins one healthy replica's snapshot per scatter,
// round-robin or least-loaded (in-flight gauge on the replica's ReadGate).
// With query_threads > 0 each replica serves scatter work on its own
// executor, so read throughput scales with healthy replica count — the
// bench_replicated_serving gate.
//
// Admission: an accepted entry requires >= write_quorum healthy replicas at
// append time (kUnavailable below quorum — HTTP 503); every healthy replica
// full is kResourceExhausted (HTTP 429). The log is the source of truth:
// once appended, an entry reaches ejected replicas via replay.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "lsi/concurrent.hpp"
#include "lsi/status.hpp"
#include "util/thread_pool.hpp"

namespace lsi::core {

/// How pick_reader() chooses among healthy replicas.
enum class ReadPolicy {
  kRoundRobin,   ///< rotate through healthy replicas
  kLeastLoaded,  ///< fewest in-flight scatter passes; ties to lower index
};

/// Returns "round-robin" / "least-loaded".
constexpr std::string_view read_policy_name(ReadPolicy policy) noexcept {
  switch (policy) {
    case ReadPolicy::kRoundRobin: return "round-robin";
    case ReadPolicy::kLeastLoaded: return "least-loaded";
  }
  return "unknown";
}

enum class ReplicaState {
  kHealthy,    ///< in the feed, serving reads
  kEjected,    ///< out of the feed; snapshot still valid but stale
  kReplaying,  ///< readmit() in progress: catching up from the ingest log
};

/// Returns "healthy" / "ejected" / "replaying".
constexpr std::string_view replica_state_name(ReplicaState state) noexcept {
  switch (state) {
    case ReplicaState::kHealthy: return "healthy";
    case ReplicaState::kEjected: return "ejected";
    case ReplicaState::kReplaying: return "replaying";
  }
  return "unknown";
}

struct ReplicaOptions {
  /// Replicas per shard (R). 1 degenerates to a plain ConcurrentIndexer
  /// behind the same API.
  std::size_t replicas = 1;
  ReadPolicy read_policy = ReadPolicy::kRoundRobin;
  /// Per-replica read executor threads. 0 = scatter work runs where the
  /// caller's fan-out puts it (the shared scatter pool); > 0 gives every
  /// replica its own util::ThreadPool of this size, modeling independent
  /// replica serving capacity (reads then scale with healthy replicas).
  std::size_t query_threads = 0;
  /// Healthy replicas required to accept a write. 0 = majority of
  /// `replicas` (R=1 -> 1, R=2 -> 2, R=3 -> 2). Below quorum, writes fail
  /// with kUnavailable.
  std::size_t write_quorum = 0;
  /// Consecutive no-progress refusals (queue full while a sibling has
  /// space, fold counter frozen) before a replica is ejected from the feed.
  std::size_t eject_after_refusals = 3;
  /// Minimum time between successive strikes on the same replica — the
  /// bounded-queue timeout of the failure detector. Ejection therefore
  /// requires the queue to stay full with a frozen fold counter for at
  /// least (eject_after_refusals - 1) * strike_interval. Distinguishing a
  /// wedged writer from a merely-starved one is impossible from any single
  /// observation; the window is what keeps a busy-but-healthy replica (one
  /// the scheduler just hasn't run) from being ejected by a few
  /// microseconds-apart retry polls. A genuinely parked writer is frozen
  /// for ever, so failpoint-driven tests stay deterministic at any width.
  std::chrono::milliseconds strike_interval{50};
  /// Per-replica indexer configuration. `failpoint_tag` is used as a
  /// prefix: replica r hits failpoint sites tagged "<prefix>.r<r>" (or
  /// "r<r>" when the prefix is empty).
  ConcurrentOptions concurrent;

  /// First violation found, or OK.
  Status Validate() const;
  /// The resolved write quorum (majority when write_quorum == 0).
  std::size_t quorum() const noexcept {
    return write_quorum > 0 ? write_quorum : replicas / 2 + 1;
  }
};

/// Per-replica read-side state, shared with every pinned view that picked
/// this replica (outlives the ReplicaSet like a pinned snapshot does).
struct ReadGate {
  /// Scatter passes currently running against this replica — the
  /// queue-depth gauge the least-loaded policy reads.
  std::atomic<std::size_t> in_flight{0};
  /// The replica's private read executor (null when query_threads == 0).
  std::unique_ptr<util::ThreadPool> pool;
};

class ReplicaSet {
 public:
  /// Builds R replicas from copies of `index` (the last replica takes the
  /// argument by move, so R=1 copies nothing).
  ReplicaSet(LsiIndex index, const ReplicaOptions& opts);
  ~ReplicaSet();

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  /// Appends to the ingest log and fans out to every healthy replica,
  /// blocking (bounded poll) under uniform backpressure. kUnavailable below
  /// write quorum, kFailedPrecondition after shutdown().
  Status add(text::Document doc);

  /// Non-blocking variant: kResourceExhausted when every healthy replica's
  /// queue is full (uniform backpressure — nobody is ejected, nothing is
  /// logged), kUnavailable below quorum, kFailedPrecondition after
  /// shutdown(). A replica refusing while a sibling accepts accumulates
  /// ejection strikes (see the header comment).
  Status try_add(text::Document doc);

  /// Blocks until every healthy replica has folded and published everything
  /// it accepted. Ejected/replaying replicas are skipped (they catch up via
  /// replay).
  void flush();

  /// Appends a consolidation marker to the ingest log and consolidates
  /// every healthy replica at that exact log position (the feed mutex is
  /// held across the fan-out, so no entry lands between a replica's last
  /// fold and its consolidation). Ejected replicas replay the marker.
  Status consolidate();

  /// Shuts down every replica's indexer (all states). Wedged writers must
  /// be released (failpoints disarmed) first or this blocks.
  void shutdown();

  /// One pinned reader choice: the chosen replica's current snapshot, its
  /// index, and its ReadGate (for in-flight accounting and the replica's
  /// executor). Healthy replicas preferred; with none, a replaying — then
  /// any — replica serves degraded-but-valid stale reads.
  struct ReadRef {
    std::shared_ptr<const IndexSnapshot> snapshot;
    std::size_t replica = 0;
    std::shared_ptr<ReadGate> gate;
  };
  ReadRef pick_reader() const;

  /// Removes replica `r` from the feed (explicit wedge/kill). Its pinned
  /// snapshots stay valid. kFailedPrecondition unless currently healthy.
  Status eject(std::size_t r);

  /// Replays the ingest log from replica `r`'s fed cursor, then rejoins the
  /// feed atomically once caught up. Runs on the calling thread; under
  /// sustained saturation ingest it may chase the log for a while.
  /// kFailedPrecondition unless currently ejected.
  Status readmit(std::size_t r);

  /// Evaluates every healthy replica: an armed "replica.health_probe"
  /// failpoint (kFail) or a full queue with a frozen fold counter across
  /// two consecutive checks ejects it. Returns how many were ejected.
  std::size_t check_health();

  std::size_t num_replicas() const noexcept { return replicas_.size(); }
  std::size_t healthy_count() const;
  ReplicaState state(std::size_t r) const;

  /// Documents folded so far (max over replicas — the most caught-up one).
  std::uint64_t ingested() const;

  /// Next log sequence number (== entries ever accepted).
  std::uint64_t next_seq() const;
  /// Entries currently retained in the log (trimmed below the slowest
  /// replica's fed cursor; an ejected replica freezes its cursor and
  /// therefore the tail it will replay).
  std::size_t log_entries() const;

  /// Point-in-time per-replica row for /stats and the CLI.
  struct ReplicaInfo {
    std::size_t replica = 0;
    ReplicaState state = ReplicaState::kHealthy;
    std::uint64_t fed = 0;  ///< log entries accepted (the replay cursor)
    std::size_t queued = 0;
    std::size_t in_flight = 0;
    std::uint64_t generation = 0;
    std::uint64_t ingested = 0;
    std::uint64_t publishes = 0;
    std::uint64_t consolidations = 0;
  };
  std::vector<ReplicaInfo> replica_infos() const;

  /// Direct access for tests and stats (r < num_replicas()).
  const ConcurrentIndexer& replica(std::size_t r) const {
    return replicas_[r]->indexer;
  }

  const ReplicaOptions& options() const noexcept { return opts_; }

 private:
  struct LogEntry {
    enum class Kind { kDoc, kConsolidate };
    Kind kind = Kind::kDoc;
    text::Document doc;
  };

  struct Replica {
    Replica(LsiIndex index, const ConcurrentOptions& copts, std::string t)
        : tag(std::move(t)),
          gate(std::make_shared<ReadGate>()),
          indexer(std::move(index), copts) {}

    std::string tag;  ///< failpoint instance tag, "s<shard>.r<replica>"
    std::shared_ptr<ReadGate> gate;
    std::atomic<ReplicaState> state{ReplicaState::kHealthy};
    /// Log entries accepted into this replica's queue — exact, because
    /// accepted entries are never dropped (BoundedQueue contract).
    std::atomic<std::uint64_t> fed{0};
    // Strike/health bookkeeping, all under feed_mu_.
    std::size_t strikes = 0;
    std::uint64_t strike_ingested = 0;
    std::chrono::steady_clock::time_point strike_time{};
    std::size_t health_queued = 0;
    std::uint64_t health_ingested = 0;
    bool health_observed = false;
    ConcurrentIndexer indexer;  ///< declared last: joins first
  };

  /// Core admission + fan-out; feed_mu_ held.
  Status try_add_locked(const text::Document& doc);
  void eject_locked(std::size_t r);
  /// Drops log entries every replica (any state) has already been fed.
  void trim_log_locked();

  ReplicaOptions opts_;
  std::vector<std::unique_ptr<Replica>> replicas_;

  mutable std::mutex feed_mu_;  ///< serializes log append + fan-out
  std::deque<LogEntry> log_;
  std::uint64_t log_base_ = 0;  ///< sequence number of log_.front()
  std::uint64_t next_seq_ = 0;
  bool shutdown_ = false;

  mutable std::atomic<std::uint64_t> rr_next_{0};  ///< round-robin cursor
};

}  // namespace lsi::core
