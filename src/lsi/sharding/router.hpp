#pragma once
// Document-to-shard routing for the sharded LSI index (docs/SHARDING.md).
//
// The paper's TREC section could not compute one SVD over the full
// collection and decomposed it into subcollections instead; ShardRouter is
// the policy deciding which subcollection a document joins. Three policies:
//
//   kRoundRobin    cycle through shards in arrival order — every shard gets
//                  the same *count* of documents (the default; also what
//                  makes the N = 1 configuration trivially identical to the
//                  monolithic index);
//   kSizeBalanced  greedy bin-packing on accumulated document *text size* —
//                  shards end up with similar token mass even when document
//                  lengths are skewed, which balances both per-shard SVD
//                  cost and per-shard scoring cost;
//   kHashLabel     stable FNV-1a hash of the document label — a document id
//                  always routes to the same shard, across runs, platforms
//                  and restarts (util/hash.hpp fixes the hash for all time).
//                  The anchor for future replication/rebalancing work.
//
// A router is deliberately cheap, synchronous state (a counter or a size
// table); ShardedIndex serializes route() calls under its routing mutex.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lsi/status.hpp"

namespace lsi::core {

enum class RoutingPolicy {
  kRoundRobin,
  kSizeBalanced,
  kHashLabel,
};

/// Canonical lower-case name ("round-robin", "size-balanced", "hash-label").
std::string_view routing_policy_name(RoutingPolicy policy) noexcept;

/// Parses a policy name (also accepts the CLI short forms "rr", "size",
/// "hash"); kInvalidArgument for anything else.
Expected<RoutingPolicy> parse_routing_policy(std::string_view name);

/// Deterministic assignment of documents to `num_shards` shards. route() is
/// pure for kHashLabel and stateful (arrival-order dependent) for the other
/// two policies, so replaying the same sequence of calls always reproduces
/// the same assignment.
class ShardRouter {
 public:
  ShardRouter(RoutingPolicy policy, std::size_t num_shards);

  /// Shard for the next document. `label` keys the kHashLabel policy;
  /// `size_hint` (document text size in bytes, or any monotone proxy for
  /// its cost) feeds kSizeBalanced. Both are ignored by policies that do
  /// not need them.
  std::size_t route(std::string_view label, std::size_t size_hint);

  RoutingPolicy policy() const noexcept { return policy_; }
  std::size_t num_shards() const noexcept { return assigned_.size(); }

  /// Documents routed to each shard so far.
  const std::vector<std::size_t>& assigned() const noexcept {
    return assigned_;
  }
  /// Accumulated size hints per shard (the kSizeBalanced load measure).
  const std::vector<std::size_t>& load() const noexcept { return load_; }

 private:
  RoutingPolicy policy_;
  std::size_t next_ = 0;  ///< round-robin cursor
  std::vector<std::size_t> assigned_;
  std::vector<std::size_t> load_;
};

}  // namespace lsi::core
