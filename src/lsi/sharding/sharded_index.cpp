#include "lsi/sharding/sharded_index.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>

#include "lsi/gather/dedup.hpp"
#include "lsi/ranking.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace lsi::core {

namespace {

/// The pool shard fan-out (scatter tasks, parallel shard builds) runs on.
/// Deliberately NOT util::ThreadPool::global(): the per-shard work itself
/// calls parallel_for, whose wait_idle blocks until the *global* pool
/// drains — a global-pool worker waiting for its own pool would deadlock.
/// Keeping the fan-out on a separate pool makes the nesting a clean
/// cross-pool wait: scatter workers sleep, global-pool workers progress.
util::ThreadPool& scatter_pool() {
  static util::ThreadPool pool;  // hardware concurrency
  return pool;
}

/// Runs tasks[0..n) on the scatter pool and blocks until all complete.
/// Completion is tracked per call (not via ThreadPool::wait_idle, which
/// waits for *global* pool idleness and could starve under concurrent
/// queries from other threads).
void fan_out(std::size_t n, const std::function<void(std::size_t)>& task) {
  if (n == 0) return;
  if (n == 1 || scatter_pool().thread_count() <= 1) {
    // A single-threaded pool cannot overlap anything with the caller, so the
    // dispatch/latch round-trip would be pure overhead per batch.
    for (std::size_t i = 0; i < n; ++i) task(i);
    return;
  }
  std::mutex mu;
  std::condition_variable cv;
  std::size_t remaining = n;
  for (std::size_t i = 0; i < n; ++i) {
    scatter_pool().submit([&, i] {
      task(i);
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return remaining == 0; });
}

/// Replica-aware scatter fan-out: a shard view whose ReadGate carries a
/// private executor runs there (that replica's serving capacity, so read
/// throughput scales with healthy replicas); gateless views share the
/// scatter pool. Each view's in-flight gauge — the least-loaded read
/// policy's signal — is held from dispatch until its shard task finishes.
void fan_out_shards(const std::vector<ShardedSnapshot::ShardView>& shards,
                    const std::function<void(std::size_t)>& task) {
  const std::size_t n = shards.size();
  if (n == 0) return;
  bool private_pools = false;
  for (const ShardedSnapshot::ShardView& sv : shards) {
    if (sv.gate != nullptr && sv.gate->pool != nullptr) {
      private_pools = true;
      break;
    }
  }
  if (!private_pools && (n == 1 || scatter_pool().thread_count() <= 1)) {
    for (std::size_t i = 0; i < n; ++i) {
      ReadGate* gate = shards[i].gate.get();
      if (gate) gate->in_flight.fetch_add(1, std::memory_order_relaxed);
      task(i);
      if (gate) gate->in_flight.fetch_sub(1, std::memory_order_relaxed);
    }
    return;
  }
  std::mutex mu;
  std::condition_variable cv;
  std::size_t remaining = n;
  for (std::size_t i = 0; i < n; ++i) {
    ReadGate* gate = shards[i].gate.get();
    util::ThreadPool& pool = (gate != nullptr && gate->pool != nullptr)
                                 ? *gate->pool
                                 : scatter_pool();
    if (gate) gate->in_flight.fetch_add(1, std::memory_order_relaxed);
    pool.submit([&, i, gate] {
      task(i);
      if (gate) gate->in_flight.fetch_sub(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return remaining == 0; });
}

/// Accumulates one shard's per-stage stats into the batch aggregate. Times
/// sum to CPU-seconds across shards (shards overlap in wall time).
void accumulate_stats(QueryStats& into, const QueryStats& shard) {
  into.docs_scored += shard.docs_scored;
  into.project_seconds += shard.project_seconds;
  into.score_seconds += shard.score_seconds;
  into.select_seconds += shard.select_seconds;
  into.total_seconds += shard.total_seconds;
  into.flops += shard.flops;
  into.ann_pruned_queries += shard.ann_pruned_queries;
  into.ann_centroids_probed += shard.ann_centroids_probed;
  into.ann_docs_scanned += shard.ann_docs_scanned;
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardingOptions
// ---------------------------------------------------------------------------

Status ShardingOptions::Validate() const {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be at least 1");
  }
  if (min_shard_k < 1) {
    return Status::InvalidArgument("min_shard_k must be at least 1");
  }
  if (split_k_budget &&
      static_cast<std::size_t>(index.k) < num_shards) {
    return Status::InvalidArgument(
        "k budget " + std::to_string(index.k) + " cannot be split across " +
        std::to_string(num_shards) + " shards (fewer than one factor each)");
  }
  if (Status s = replica_options().Validate(); !s.ok()) return s;
  return index.Validate();
}

ReplicaOptions ShardingOptions::replica_options() const {
  ReplicaOptions ropts;
  ropts.replicas = replicas;
  ropts.read_policy = read_policy;
  ropts.query_threads = query_threads;
  ropts.write_quorum = write_quorum;
  ropts.eject_after_refusals = eject_after_refusals;
  ropts.strike_interval = strike_interval;
  ropts.concurrent = concurrent;
  return ropts;
}

index_t ShardingOptions::shard_k(std::size_t shard) const {
  if (!split_k_budget) return index.k;
  const index_t n = static_cast<index_t>(num_shards);
  const index_t base = index.k / n;
  const index_t extra = static_cast<index_t>(shard) < index.k % n ? 1 : 0;
  return std::max(min_shard_k, base + extra);
}

// ---------------------------------------------------------------------------
// ShardedSnapshot
// ---------------------------------------------------------------------------

ShardedSnapshot::ShardedSnapshot(std::vector<ShardView> shards)
    : shards_(std::move(shards)) {
  for ([[maybe_unused]] const ShardView& s : shards_) {
    assert(s.snapshot != nullptr);
    assert(s.global_ids != nullptr);
    assert(s.global_ids->size() >=
           static_cast<std::size_t>(s.snapshot->space().num_docs()));
  }
}

index_t ShardedSnapshot::num_docs() const noexcept {
  index_t total = 0;
  for (const ShardView& s : shards_) total += s.snapshot->space().num_docs();
  return total;
}

std::vector<std::uint64_t> ShardedSnapshot::generations() const {
  std::vector<std::uint64_t> gens;
  gens.reserve(shards_.size());
  for (const ShardView& s : shards_) gens.push_back(s.snapshot->generation());
  return gens;
}

std::vector<std::vector<std::vector<ScoredDoc>>> ShardedSnapshot::scatter(
    const std::vector<std::string>& texts, const SearchOptions& opts,
    std::vector<QueryStats>* shard_stats, std::atomic<bool>* expired,
    std::vector<std::vector<ScoreMoments>>* moments) const {
  // Scatter: every shard handles the whole batch against its own space —
  // through its own cluster-pruned structure when the snapshot carries one
  // and opts.search admits it. Per-shard results stay in shard-local
  // document indices until the gather; each worker writes only its own
  // slot, so no synchronization beyond the fan_out join is needed.
  const std::size_t bsz = texts.size();
  SearchOptions shard_opts = opts;
  shard_opts.sink = nullptr;  // installed once by the caller, for all shards
  std::vector<std::vector<std::vector<ScoredDoc>>> per_shard(shards_.size());
  if (moments) moments->assign(shards_.size(), {});
  LSI_OBS_SPAN(span, "sharding.scatter");
  fan_out_shards(shards_, [&](std::size_t s) {
    // Per-shard deadline check (try_* paths only): a scatter task that has
    // not started by expiry abandons the batch instead of scoring it.
    if (expired != nullptr && shard_opts.deadline_expired()) {
      expired->store(true, std::memory_order_relaxed);
      return;
    }
    LSI_OBS_SPAN(shard_span, "sharding.shard_rank");
    const IndexSnapshot& snap = *shards_[s].snapshot;
    std::vector<la::Vector> vectors;
    vectors.reserve(bsz);
    for (const std::string& text : texts) {
      vectors.push_back(snap.context().weighted_term_vector(text));
    }
    QueryStats* qs = shard_stats ? &(*shard_stats)[s] : nullptr;
    const QueryBatch batch =
        QueryBatch::from_term_vectors(snap.space(), vectors, qs);
    per_shard[s] = BatchedRetriever(snap.space_ptr(), snap.ann())
                       .rank(batch, shard_opts, qs,
                             moments ? &(*moments)[s] : nullptr);
  });
  return per_shard;
}

std::vector<std::vector<ScoredDoc>> ShardedSnapshot::rank_batch_impl(
    const std::vector<std::string>& texts, const SearchOptions& opts,
    QueryStats* stats, std::atomic<bool>* expired) const {
  obs::ScopedSink scoped(opts.sink ? opts.sink : obs::Sink::active());
  const std::size_t bsz = texts.size();
  const std::size_t n_shards = shards_.size();
  std::vector<std::vector<ScoredDoc>> merged(bsz);
  if (bsz == 0 || n_shards == 0) return merged;

  std::vector<QueryStats> shard_stats(n_shards);
  const bool raw_policy = opts.merge == gather::MergePolicy::kRawCosine;
  std::vector<std::vector<ScoreMoments>> shard_moments;
  auto per_shard =
      scatter(texts, opts, stats ? &shard_stats : nullptr, expired,
              raw_policy ? nullptr : &shard_moments);
  if (expired != nullptr &&
      expired->load(std::memory_order_relaxed)) {
    return merged;  // caller reports kDeadlineExceeded; results are partial
  }

  // Gather: map shard-local indices to global ids, then merge every query's
  // N sorted lists under the shared comparator. Equal cosines order by
  // global id — independent of which shard produced them, so the tie order
  // is identical across shard counts. The raw-cosine default stays on the
  // original merge_rankings path (bit-identical to the pre-gather engine);
  // kZScore/kRRF re-score each shard's list before the same sort.
  {
    LSI_OBS_SPAN(span, "sharding.gather");
    for (std::size_t b = 0; b < bsz; ++b) {
      if (raw_policy) {
        std::vector<std::vector<ScoredDoc>> lists(n_shards);
        for (std::size_t s = 0; s < n_shards; ++s) {
          const std::vector<index_t>& ids = *shards_[s].global_ids;
          lists[s] = std::move(per_shard[s][b]);
          for (ScoredDoc& sd : lists[s]) sd.doc = ids[sd.doc];
        }
        merged[b] = merge_rankings(lists, opts.z);
      } else {
        std::vector<gather::ShardList> lists(n_shards);
        for (std::size_t s = 0; s < n_shards; ++s) {
          const std::vector<index_t>& ids = *shards_[s].global_ids;
          const std::vector<ScoredDoc>& ranked = per_shard[s][b];
          lists[s].docs.reserve(ranked.size());
          lists[s].cosines.reserve(ranked.size());
          for (const ScoredDoc& sd : ranked) {
            lists[s].docs.push_back(ids[sd.doc]);
            lists[s].cosines.push_back(sd.cosine);
          }
          // Full-sweep background moments: the z-score standardizes each
          // shard's list against everything the shard scored, not just the
          // top-z it returned (fusion.hpp).
          const ScoreMoments& m = shard_moments[s][b];
          lists[s].bg_count = m.count;
          lists[s].bg_mean = m.mean;
          lists[s].bg_stdev = m.stdev;
        }
        const std::vector<gather::FusedHit> fused =
            gather::fuse(lists, opts.fusion_options(), opts.z);
        merged[b].reserve(fused.size());
        // The cosine slot carries the FUSION score so downstream ordering
        // consumers (paging cursors, min_cosine-free sessions) stay policy-
        // agnostic; gather_batch exposes both values separately.
        for (const gather::FusedHit& h : fused) {
          merged[b].push_back(ScoredDoc{h.doc, h.score});
        }
      }
    }
  }

  if (stats) {
    stats->batch_size += static_cast<index_t>(bsz);
    for (const QueryStats& qs : shard_stats) accumulate_stats(*stats, qs);
  }
  obs::count("sharding.batches");
  obs::count("sharding.queries", bsz);
  return merged;
}

std::vector<ShardedSnapshot::GatherResult> ShardedSnapshot::gather_batch_impl(
    const std::vector<std::string>& texts, const SearchOptions& opts,
    QueryStats* stats, std::atomic<bool>* expired) const {
  obs::ScopedSink scoped(opts.sink ? opts.sink : obs::Sink::active());
  const std::size_t bsz = texts.size();
  const std::size_t n_shards = shards_.size();
  std::vector<GatherResult> results(bsz);
  if (bsz == 0 || n_shards == 0) return results;

  std::vector<QueryStats> shard_stats(n_shards);
  const bool raw_policy = opts.merge == gather::MergePolicy::kRawCosine;
  std::vector<std::vector<ScoreMoments>> shard_moments;
  auto per_shard =
      scatter(texts, opts, stats ? &shard_stats : nullptr, expired,
              raw_policy ? nullptr : &shard_moments);
  if (expired != nullptr && expired->load(std::memory_order_relaxed)) {
    return results;  // caller reports kDeadlineExceeded
  }

  const bool collapse =
      opts.collapse_cosine > 0.0 && opts.collapse_cosine <= 1.0;
  LSI_OBS_SPAN(span, "sharding.gather");
  for (std::size_t b = 0; b < bsz; ++b) {
    // Global-id shard lists for the fusion, plus a global -> shard-local row
    // lookup (dedup reconstruction and facets read shard-local V rows).
    std::vector<gather::ShardList> lists(n_shards);
    std::vector<std::unordered_map<index_t, index_t>> local_rows(n_shards);
    for (std::size_t s = 0; s < n_shards; ++s) {
      const std::vector<index_t>& ids = *shards_[s].global_ids;
      const std::vector<ScoredDoc>& ranked = per_shard[s][b];
      lists[s].docs.reserve(ranked.size());
      lists[s].cosines.reserve(ranked.size());
      for (const ScoredDoc& sd : ranked) {
        lists[s].docs.push_back(ids[sd.doc]);
        lists[s].cosines.push_back(sd.cosine);
        local_rows[s].emplace(ids[sd.doc], sd.doc);
      }
      if (!raw_policy) {
        const ScoreMoments& m = shard_moments[s][b];
        lists[s].bg_count = m.count;
        lists[s].bg_mean = m.mean;
        lists[s].bg_stdev = m.stdev;
      }
    }

    std::vector<gather::FusedHit> fused;
    {
      LSI_OBS_SPAN(fuse_span, "gather.fuse");
      // Collapse needs the full candidate pool: a duplicate ranked below
      // position z must still be able to fold into a top-z representative.
      fused = gather::fuse(lists, opts.fusion_options(),
                           collapse ? 0 : opts.z);
    }

    std::vector<gather::CollapsedHit> collapsed;
    if (collapse) {
      LSI_OBS_SPAN(collapse_span, "gather.collapse");
      std::vector<gather::SparseTermVector> profiles;
      profiles.reserve(fused.size());
      for (const gather::FusedHit& h : fused) {
        const IndexSnapshot& snap = *shards_[h.shard].snapshot;
        const SemanticSpace& sp = snap.space();
        profiles.push_back(gather::reconstruct_term_profile(
            sp.u, sp.sigma, sp.v, local_rows[h.shard].at(h.doc),
            snap.context().vocabulary()));
      }
      collapsed = gather::collapse_near_duplicates(fused, profiles,
                                                   opts.collapse_cosine);
      if (opts.z > 0 && collapsed.size() > opts.z) collapsed.resize(opts.z);
    } else {
      collapsed.reserve(fused.size());
      for (const gather::FusedHit& h : fused) {
        collapsed.push_back(gather::CollapsedHit{h, {}});
      }
    }

    GatherResult& result = results[b];
    result.hits.reserve(collapsed.size());
    for (gather::CollapsedHit& ch : collapsed) {
      GatherHit hit;
      hit.doc = ch.rep.doc;
      hit.score = ch.rep.score;
      hit.cosine = ch.rep.cosine;
      hit.shard = ch.rep.shard;
      hit.duplicates = std::move(ch.duplicates);
      result.hits.push_back(std::move(hit));
    }

    if (opts.facets > 0 && !result.hits.empty()) {
      LSI_OBS_SPAN(facet_span, "gather.facets");
      std::vector<std::vector<index_t>> rows_by_shard(n_shards);
      for (const GatherHit& hit : result.hits) {
        rows_by_shard[hit.shard].push_back(
            local_rows[hit.shard].at(hit.doc));
      }
      std::vector<std::vector<gather::Facet>> shard_lists;
      for (std::size_t s = 0; s < n_shards; ++s) {
        if (rows_by_shard[s].empty()) continue;
        const IndexSnapshot& snap = *shards_[s].snapshot;
        const SemanticSpace& sp = snap.space();
        shard_lists.push_back(gather::shard_facets(
            sp.u, sp.sigma, sp.v, snap.context().vocabulary(),
            rows_by_shard[s], opts.facets));
      }
      result.facets = gather::merge_facets(shard_lists, opts.facets);
    }
  }

  if (stats) {
    stats->batch_size += static_cast<index_t>(bsz);
    for (const QueryStats& qs : shard_stats) accumulate_stats(*stats, qs);
  }
  obs::count("sharding.batches");
  obs::count("sharding.queries", bsz);
  return results;
}

std::vector<ShardedSnapshot::GatherResult> ShardedSnapshot::gather_batch(
    const std::vector<std::string>& texts, const SearchOptions& opts,
    QueryStats* stats) const {
  return gather_batch_impl(texts, opts, stats, /*expired=*/nullptr);
}

Expected<std::vector<ShardedSnapshot::GatherResult>>
ShardedSnapshot::try_gather_batch(const std::vector<std::string>& texts,
                                  const SearchOptions& opts,
                                  QueryStats* stats) const {
  if (Status s = opts.Validate(); !s.ok()) return s;
  if (opts.deadline_expired()) {
    return Status::DeadlineExceeded(
        "search deadline expired before the scatter began");
  }
  std::atomic<bool> expired{false};
  auto results = gather_batch_impl(texts, opts, stats, &expired);
  if (expired.load(std::memory_order_relaxed)) {
    return Status::DeadlineExceeded(
        "search deadline expired during the shard scatter");
  }
  return results;
}

std::vector<std::vector<ScoredDoc>> ShardedSnapshot::rank_batch(
    const std::vector<std::string>& texts, const SearchOptions& opts,
    QueryStats* stats) const {
  return rank_batch_impl(texts, opts, stats, /*expired=*/nullptr);
}

Expected<std::vector<std::vector<ScoredDoc>>> ShardedSnapshot::try_rank_batch(
    const std::vector<std::string>& texts, const SearchOptions& opts,
    QueryStats* stats) const {
  if (Status s = opts.Validate(); !s.ok()) return s;
  if (opts.deadline_expired()) {
    return Status::DeadlineExceeded(
        "search deadline expired before the scatter began");
  }
  std::atomic<bool> expired{false};
  auto merged = rank_batch_impl(texts, opts, stats, &expired);
  if (expired.load(std::memory_order_relaxed)) {
    return Status::DeadlineExceeded(
        "search deadline expired during the shard scatter");
  }
  return merged;
}

std::vector<ScoredDoc> ShardedSnapshot::retrieve(std::string_view text,
                                                 const SearchOptions& opts,
                                                 QueryStats* stats) const {
  auto ranked = rank_batch({std::string(text)}, opts, stats);
  return ranked.empty() ? std::vector<ScoredDoc>{} : std::move(ranked[0]);
}

std::vector<QueryResult> ShardedSnapshot::query(std::string_view text,
                                                const SearchOptions& opts,
                                                QueryStats* stats) const {
  const std::vector<ScoredDoc> ranked = retrieve(text, opts, stats);
  // Resolve labels: global ids are sparse in the merged list, so build the
  // reverse (global id -> shard, local) view only for the returned docs.
  std::vector<QueryResult> out;
  out.reserve(ranked.size());
  for (const ScoredDoc& sd : ranked) {
    QueryResult qr;
    qr.doc = sd.doc;
    qr.cosine = sd.cosine;
    for (const ShardView& shard : shards_) {
      const std::vector<index_t>& ids = *shard.global_ids;
      const std::size_t docs =
          static_cast<std::size_t>(shard.snapshot->space().num_docs());
      for (std::size_t j = 0; j < docs; ++j) {
        if (ids[j] == sd.doc) {
          qr.label = shard.snapshot->doc_labels()[j];
          break;
        }
      }
      if (!qr.label.empty()) break;
    }
    out.push_back(std::move(qr));
  }
  return out;
}

// ---------------------------------------------------------------------------
// ShardedIndex
// ---------------------------------------------------------------------------

/// One shard: a ReplicaSet (R ConcurrentIndexer replicas behind one ingest
/// log — a plain single writer at R=1) plus the copy-on-write shard-local →
/// global id map. `add_mu` orders (id append, feed) pairs so the map always
/// lists ids in the shard's fold order — the ReplicaSet's log gives every
/// replica that same order; `ids_mu` guards only the map pointer (snapshot
/// readers copy it without touching add_mu).
struct ShardedIndex::Shard {
  Shard(LsiIndex index, const ReplicaOptions& ropts,
        std::vector<index_t> initial_ids)
      : ids(std::make_shared<const std::vector<index_t>>(
            std::move(initial_ids))),
        replicas(std::move(index), ropts) {}

  std::shared_ptr<const std::vector<index_t>> ids_snapshot() const {
    std::lock_guard<std::mutex> lock(ids_mu);
    return ids;
  }

  /// Appends `gid` (copy-on-write); returns the previous map so a failed
  /// enqueue can roll back. Caller must hold add_mu.
  std::shared_ptr<const std::vector<index_t>> append_id(index_t gid) {
    auto next = std::make_shared<std::vector<index_t>>();
    std::shared_ptr<const std::vector<index_t>> prev;
    {
      std::lock_guard<std::mutex> lock(ids_mu);
      prev = ids;
    }
    next->reserve(prev->size() + 1);
    *next = *prev;
    next->push_back(gid);
    {
      std::lock_guard<std::mutex> lock(ids_mu);
      ids = std::move(next);
    }
    return prev;
  }

  void restore_ids(std::shared_ptr<const std::vector<index_t>> prev) {
    std::lock_guard<std::mutex> lock(ids_mu);
    ids = std::move(prev);
  }

  mutable std::mutex ids_mu;
  std::shared_ptr<const std::vector<index_t>> ids;
  std::mutex add_mu;
  ReplicaSet replicas;  ///< declared last: joins before ids dies
};

/// Routing decisions and global id assignment, serialized under one mutex so
/// a single-threaded producer gets a fully deterministic assignment.
struct ShardedIndex::RouterState {
  RouterState(RoutingPolicy policy, std::size_t num_shards, index_t next_gid)
      : router(policy, num_shards), next_global_id(next_gid) {}

  index_t allocate_id() {
    std::lock_guard<std::mutex> lock(mu);
    if (!free_ids.empty()) {
      const index_t id = free_ids.back();
      free_ids.pop_back();
      return id;
    }
    return next_global_id++;
  }

  /// Returns a reserved id after a failed enqueue so ids stay dense: every
  /// rejected attempt is followed by a retry (or nothing at all), and
  /// allocation prefers freed ids, so the ids actually ingested always form
  /// a contiguous [0, n) — no holes burned by backpressure.
  void release_id(index_t id) {
    std::lock_guard<std::mutex> lock(mu);
    free_ids.push_back(id);
  }

  std::mutex mu;
  ShardRouter router;
  index_t next_global_id;
  std::vector<index_t> free_ids;
};

Expected<ShardedIndex> ShardedIndex::try_build(const text::Collection& docs,
                                               const ShardingOptions& opts) {
  if (Status s = opts.Validate(); !s.ok()) return s;
  if (docs.empty()) {
    return Status::InvalidArgument("cannot build from an empty collection");
  }
  if (docs.size() < opts.num_shards) {
    return Status::InvalidArgument(
        "collection of " + std::to_string(docs.size()) +
        " documents cannot fill " + std::to_string(opts.num_shards) +
        " shards");
  }

  LSI_OBS_SPAN(span, "sharding.build");

  // Partition: global id of a document is its position in `docs`.
  auto router = std::make_unique<RouterState>(
      opts.routing, opts.num_shards, static_cast<index_t>(docs.size()));
  std::vector<text::Collection> shard_docs(opts.num_shards);
  std::vector<std::vector<index_t>> shard_ids(opts.num_shards);
  for (std::size_t d = 0; d < docs.size(); ++d) {
    const std::size_t s =
        router->router.route(docs[d].label, docs[d].body.size());
    shard_docs[s].push_back(docs[d]);
    shard_ids[s].push_back(static_cast<index_t>(d));
  }
  for (std::size_t s = 0; s < opts.num_shards; ++s) {
    if (shard_docs[s].empty()) {
      return Status::InvalidArgument(
          "shard " + std::to_string(s) + " received no documents under " +
          std::string(routing_policy_name(opts.routing)) +
          " routing; use fewer shards");
    }
  }

  // Term-statistics exchange (share_term_stats): a statistics pass BEFORE
  // any shard weights its slice. Each shard parses its documents, reduces
  // them to mergeable sufficient statistics {df, gf, sum tf log2 tf,
  // sum tf^2}, and the merged, versioned snapshot hands every shard the
  // same collection-wide Equation-5 global weights. Costs one extra parse
  // per shard at build time; per-shard statistics (the default) skip it.
  std::shared_ptr<gather::TermStatsExchange> exchange;
  std::shared_ptr<const gather::GlobalTermStats> shared_stats;
  if (opts.share_term_stats) {
    LSI_OBS_SPAN(stats_span, "gather.term_stats");
    exchange = std::make_shared<gather::TermStatsExchange>(opts.num_shards);
    fan_out(opts.num_shards, [&](std::size_t s) {
      const text::TermDocumentMatrix tdm =
          text::build_term_document_matrix(shard_docs[s], opts.index.parser);
      gather::TermStatsPartial partial;
      partial.add_counts(tdm.counts, tdm.vocabulary);
      exchange->accumulate(s, partial);
    });
    shared_stats = exchange->publish();
  }

  // Build every shard's index in parallel (each build's numerical kernels
  // additionally parallel_for over the global pool).
  std::vector<std::optional<Expected<LsiIndex>>> built(opts.num_shards);
  fan_out(opts.num_shards, [&](std::size_t s) {
    IndexOptions shard_opts = opts.index;
    shard_opts.k = opts.shard_k(s);
    shard_opts.shared_stats = shared_stats;
    built[s].emplace(LsiIndex::try_build(shard_docs[s], shard_opts));
  });
  for (std::size_t s = 0; s < opts.num_shards; ++s) {
    if (!built[s]->ok()) {
      const Status& st = built[s]->status();
      return Status(st.code(),
                    "shard " + std::to_string(s) + ": " + st.message());
    }
  }

  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(opts.num_shards);
  for (std::size_t s = 0; s < opts.num_shards; ++s) {
    ReplicaOptions ropts = opts.replica_options();
    // Failpoint instance tags are "s<shard>.r<replica>" — chaos tests wedge
    // one replica of one shard without touching its siblings.
    ropts.concurrent.failpoint_tag = "s" + std::to_string(s);
    shards.push_back(std::make_unique<Shard>(std::move(built[s]->value()),
                                             ropts, std::move(shard_ids[s])));
  }
  ShardedIndex index(opts, std::move(router), std::move(shards));
  index.exchange_ = std::move(exchange);
  obs::gauge("sharding.shards", static_cast<double>(opts.num_shards));
  const auto& assigned = index.router_->router.assigned();
  obs::gauge("sharding.docs_per_shard_min",
             static_cast<double>(
                 *std::min_element(assigned.begin(), assigned.end())));
  obs::gauge("sharding.docs_per_shard_max",
             static_cast<double>(
                 *std::max_element(assigned.begin(), assigned.end())));
  return index;
}

/// Outstanding pin_snapshot handles. Heap-allocated and co-owned by every
/// handle so a release after the index is destroyed decrements live memory.
struct ShardedIndex::PinCount {
  std::atomic<std::size_t> count{0};
};

ShardedIndex::ShardedIndex(ShardingOptions opts,
                           std::unique_ptr<RouterState> router,
                           std::vector<std::unique_ptr<Shard>> shards)
    : opts_(std::move(opts)),
      router_(std::move(router)),
      shards_(std::move(shards)),
      pins_(std::make_shared<PinCount>()) {}

ShardedIndex::ShardedIndex() : pins_(std::make_shared<PinCount>()) {}
ShardedIndex::ShardedIndex(ShardedIndex&&) noexcept = default;
ShardedIndex& ShardedIndex::operator=(ShardedIndex&&) noexcept = default;

ShardedIndex::~ShardedIndex() {
  if (!shards_.empty()) shutdown();
}

Status ShardedIndex::add(text::Document doc) {
  return add_impl(std::move(doc), /*blocking=*/true);
}

Status ShardedIndex::try_add(text::Document doc) {
  return add_impl(std::move(doc), /*blocking=*/false);
}

Status ShardedIndex::add_impl(text::Document doc, bool blocking) {
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(router_->mu);
    target = router_->router.route(doc.label, doc.body.size());
  }
  // Tokenize for the exchange before the body is moved into the queue (only
  // when the exchange is live — the default ingest path pays nothing).
  std::map<std::string, double> term_counts;
  if (exchange_) {
    term_counts = text::document_term_counts(doc.body, opts_.index.parser);
  }
  const index_t gid = router_->allocate_id();
  Shard& shard = *shards_[target];
  // add_mu makes (append id, enqueue) atomic with respect to other
  // producers targeting this shard, so the id map's order always matches
  // the queue's FIFO fold order. Blocking adds hold it through the
  // backpressure wait — producers to a saturated shard serialize, producers
  // to other shards are unaffected (independent per-shard backpressure).
  std::lock_guard<std::mutex> lock(shard.add_mu);
  auto prev = shard.append_id(gid);
  Status status = blocking ? shard.replicas.add(std::move(doc))
                           : shard.replicas.try_add(std::move(doc));
  if (!status.ok()) {
    shard.restore_ids(std::move(prev));
    router_->release_id(gid);
    obs::count("sharding.ingest_rejected");
  } else if (exchange_) {
    // Accumulated but not republished: already-built shards keep their
    // frozen fold-in weighting (the paper's Section 2.3 semantics); the
    // merged statistics become visible at the next refresh_term_stats().
    exchange_->accumulate_document(target, term_counts);
  }
  return status;
}

void ShardedIndex::flush() {
  for (auto& shard : shards_) shard->replicas.flush();
}

Status ShardedIndex::consolidate() {
  for (auto& shard : shards_) {
    if (Status s = shard->replicas.consolidate(); !s.ok()) return s;
  }
  return Status::Ok();
}

void ShardedIndex::shutdown() {
  for (auto& shard : shards_) shard->replicas.shutdown();
}

ShardedSnapshot ShardedIndex::snapshot() const {
  std::vector<ShardedSnapshot::ShardView> views;
  views.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardedSnapshot::ShardView view;
    // Order matters: pin the index snapshot FIRST. Ids are appended before
    // their document is fed, so any id map read afterwards covers every
    // document the pinned snapshot can contain. pick_reader chooses one
    // healthy replica per the configured read policy; the whole query (or
    // session) then sticks to that replica's snapshot.
    ReplicaSet::ReadRef ref = shard->replicas.pick_reader();
    view.snapshot = std::move(ref.snapshot);
    view.replica = ref.replica;
    view.gate = std::move(ref.gate);
    view.global_ids = shard->ids_snapshot();
    views.push_back(std::move(view));
  }
  return ShardedSnapshot(std::move(views));
}

std::shared_ptr<const ShardedSnapshot> ShardedIndex::pin_snapshot() const {
  std::shared_ptr<PinCount> pins = pins_;
  pins->count.fetch_add(1, std::memory_order_relaxed);
  obs::count("sharding.snapshot_pins");
  // The deleter co-owns the count, so releasing a pin after the index is
  // destroyed is well-defined (the count block outlives the index).
  return std::shared_ptr<const ShardedSnapshot>(
      new ShardedSnapshot(snapshot()), [pins](const ShardedSnapshot* view) {
        delete view;
        pins->count.fetch_sub(1, std::memory_order_relaxed);
      });
}

std::size_t ShardedIndex::pinned() const noexcept {
  return pins_->count.load(std::memory_order_relaxed);
}

std::uint64_t ShardedIndex::ingested() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->replicas.ingested();
  return total;
}

std::size_t ShardedIndex::healthy_replicas(std::size_t shard) const {
  return shards_[shard]->replicas.healthy_count();
}

Status ShardedIndex::eject_replica(std::size_t shard, std::size_t replica) {
  if (shard >= shards_.size()) {
    return Status::InvalidArgument("shard index " + std::to_string(shard) +
                                   " out of range (shards=" +
                                   std::to_string(shards_.size()) + ")");
  }
  return shards_[shard]->replicas.eject(replica);
}

Status ShardedIndex::readmit_replica(std::size_t shard, std::size_t replica) {
  if (shard >= shards_.size()) {
    return Status::InvalidArgument("shard index " + std::to_string(shard) +
                                   " out of range (shards=" +
                                   std::to_string(shards_.size()) + ")");
  }
  return shards_[shard]->replicas.readmit(replica);
}

std::size_t ShardedIndex::check_health() {
  std::size_t ejected = 0;
  for (auto& shard : shards_) ejected += shard->replicas.check_health();
  return ejected;
}

std::vector<ReplicaSet::ReplicaInfo> ShardedIndex::replica_infos(
    std::size_t shard) const {
  return shards_[shard]->replicas.replica_infos();
}

std::shared_ptr<const gather::GlobalTermStats>
ShardedIndex::refresh_term_stats() {
  if (!exchange_) return nullptr;
  return exchange_->publish();
}

ShardedIndex::TermStatsInfo ShardedIndex::term_stats_info() const {
  TermStatsInfo info;
  if (!exchange_) return info;
  info.enabled = true;
  if (auto stats = exchange_->current()) {
    info.version = stats->version();
    info.docs = stats->docs();
    info.terms = stats->num_terms();
  }
  return info;
}

std::vector<ShardedIndex::ShardInfo> ShardedIndex::shard_infos(
    const ShardedSnapshot& view) const {
  std::vector<ShardInfo> infos;
  const std::size_t n = std::min(view.num_shards(), shards_.size());
  infos.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    const auto& shard = *shards_[s];
    // Snapshot-derived fields come from the caller's pinned view — the same
    // IndexSnapshot pointers a session's queries run against — so a /stats
    // row and the /session generations can never disagree about one view.
    const IndexSnapshot& snap = *view.shard(s).snapshot;
    ShardInfo info;
    info.shard = s;
    info.docs = static_cast<std::size_t>(snap.space().num_docs());
    info.terms = snap.context().vocabulary().size();
    info.k = snap.space().k();
    info.generation = snap.generation();
    info.unconsolidated = snap.unconsolidated();
    // Counter fields read the replica the view pinned (clamped for
    // hand-built views), so a /stats row describes the replica actually
    // serving that view's queries.
    const std::size_t r =
        std::min(view.shard(s).replica, shard.replicas.num_replicas() - 1);
    const ConcurrentIndexer& indexer = shard.replicas.replica(r);
    info.queued = indexer.queued();
    info.ingested = indexer.ingested();
    info.publishes = indexer.publishes();
    info.consolidations = indexer.consolidations();
    info.replica = r;
    info.replicas = shard.replicas.num_replicas();
    info.healthy = shard.replicas.healthy_count();
    if (const auto& ann = snap.ann()) {
      info.ann_centroids = ann->num_centroids();
      info.ann_generation = ann->build_generation();
      info.ann_exact_fallback = false;
    }
    infos.push_back(info);
  }
  return infos;
}

std::vector<ShardedIndex::ShardInfo> ShardedIndex::shard_infos() const {
  return shard_infos(snapshot());
}

}  // namespace lsi::core
