#pragma once
// Sharded LSI index with scatter-gather query serving (docs/SHARDING.md).
//
// The paper's TREC section (Section 6) could not compute one SVD over the
// full collection and decomposed it into subcollections, each with its own
// truncated SVD; this header is that decomposition as a first-class
// subsystem. A ShardedIndex partitions a collection into N shards by a
// ShardRouter policy; each shard owns a full, independent pipeline — its own
// vocabulary, Equation-5 weighting, truncated SVD, and a ConcurrentIndexer
// writer with an independent bounded ingest queue (backpressure is per
// shard: one hot shard refusing documents does not stall the others).
//
// Queries are served scatter-gather against a ShardedSnapshot, which pins
// ONE IndexSnapshot per shard — the multi-shard analogue of the concurrent
// index's snapshot consistency contract: every shard's project/score/select
// pass runs against the same pinned generation vector, so a query never
// mixes a shard's pre-consolidation basis with another's post-consolidation
// one from a later publish.
//
//   scatter  each shard projects the whole query batch once against its own
//            (U_k, S_k) — the batched Equation 6 via QueryBatch — and ranks
//            it with the shard-local BatchedRetriever into a per-shard
//            bounded top-z heap; shards fan out across a dedicated pool;
//   gather   per-shard rankings are mapped from shard-local document
//            indices to global document ids and merged with the shared
//            lsi/ranking.hpp comparator (cosine descending, global id
//            ascending) into one deterministic global top-z.
//
// With N = 1 the scatter is a single BatchedRetriever pass and the gather a
// truncation, so the sharded path is bit-identical to the monolithic batched
// engine (the parity tests assert this). With N > 1 each shard's SVD spans
// only its own subcollection, so scores are computed in N different latent
// spaces — the deliberate TREC trade-off: per-shard SVDs are cheaper to
// build, cheaper to update, and cheaper to score (n/N documents against
// k/N factors under the default split-k budget), at the cost of rank
// blending across independently-estimated spaces (docs/SHARDING.md
// quantifies the overlap against the monolithic index).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "lsi/batched_retrieval.hpp"
#include "lsi/concurrent.hpp"
#include "lsi/gather/facets.hpp"
#include "lsi/gather/fusion.hpp"
#include "lsi/gather/term_stats.hpp"
#include "lsi/sharding/replica_set.hpp"
#include "lsi/sharding/router.hpp"
#include "lsi/status.hpp"

namespace lsi::core {

struct ShardingOptions {
  std::size_t num_shards = 4;
  RoutingPolicy routing = RoutingPolicy::kRoundRobin;
  /// Per-shard pipeline configuration. `index.k` is the TOTAL factor
  /// budget: with `split_k_budget` (the default) shard s receives
  /// k/N + (s < k mod N) factors, so the factor count summed across shards
  /// equals the monolithic budget — the "equal total k-budget" contract the
  /// sharded-vs-monolithic benches compare under. With it off, every shard
  /// uses `index.k` outright (N times the monolithic budget).
  IndexOptions index;
  bool split_k_budget = true;
  /// Floor applied to every per-shard factor count after the split (a shard
  /// with one factor is a degenerate ranking).
  index_t min_shard_k = 2;
  /// Each shard's ConcurrentIndexer configuration: queue capacity bounds
  /// that shard's ingest backpressure independently of its siblings. With
  /// replication, every replica of a shard gets this configuration.
  ConcurrentOptions concurrent;

  /// Replicas per shard (R). 1 keeps the PR-5 behavior: one writer per
  /// shard, no ingest log overhead beyond an empty deque. See
  /// docs/REPLICATION.md and lsi/sharding/replica_set.hpp.
  std::size_t replicas = 1;
  /// How each scatter picks among a shard's healthy replicas.
  ReadPolicy read_policy = ReadPolicy::kRoundRobin;
  /// Per-replica read executor threads (0 = all scatter work on the shared
  /// pool; > 0 models independent per-replica serving capacity).
  std::size_t query_threads = 0;
  /// Healthy replicas required per shard to accept a write (0 = majority).
  std::size_t write_quorum = 0;
  /// No-progress feed refusals before a wedged replica is ejected.
  std::size_t eject_after_refusals = 3;
  /// Minimum spacing between those refusals — the failure detector's
  /// timeout window (ReplicaOptions::strike_interval).
  std::chrono::milliseconds strike_interval{50};

  /// Cross-shard term-statistics exchange (docs/GATHER.md). When on, the
  /// build runs a statistics pass before any shard weights its slice:
  /// per-shard {df, gf, sum tf log2 tf, sum tf^2} partials are merged into
  /// one versioned GlobalTermStats snapshot, and every shard derives its
  /// Equation-5 GLOBAL weights from it — so all shards agree on every
  /// term's global weight exactly as a monolithic build would (numerically
  /// identical, not bit-identical: the additive entropy identity reorders
  /// the floating-point sum). Off (the default) keeps per-shard statistics
  /// and bit-identical builds. Streamed adds keep accumulating into the
  /// exchange; refresh_term_stats() republishes the merged snapshot.
  bool share_term_stats = false;

  /// First violation found, or OK (checked by ShardedIndex::try_build).
  Status Validate() const;
  /// The factor count the budget split assigns to shard `shard`.
  index_t shard_k(std::size_t shard) const;
  /// The per-shard ReplicaOptions these fields assemble into.
  ReplicaOptions replica_options() const;
};

/// A consistent multi-shard read view: one pinned IndexSnapshot (plus the
/// matching shard-local → global document id map) per shard. Immutable and
/// freely shareable across threads; hold one for the duration of a logical
/// query (or batch) so every per-shard pass answers against the same
/// generation vector even while shard writers publish newer snapshots.
class ShardedSnapshot {
 public:
  struct ShardView {
    std::shared_ptr<const IndexSnapshot> snapshot;
    /// global_ids[j] is the global document id of the shard's document j.
    /// May be longer than the snapshot's document count (ids are recorded
    /// at enqueue time, before the writer folds); never shorter.
    std::shared_ptr<const std::vector<index_t>> global_ids;
    /// Which replica of the shard this view pinned (0 without replication).
    std::size_t replica = 0;
    /// The pinned replica's ReadGate: in-flight accounting plus its private
    /// read executor. Null (hand-built test views, R=1 fast path untouched
    /// by query_threads) means the shared scatter pool serves this shard.
    std::shared_ptr<ReadGate> gate;
  };

  /// Assembled by ShardedIndex::snapshot (directly constructible for tests
  /// — e.g. the tie-break determinism tests build shard views by hand).
  explicit ShardedSnapshot(std::vector<ShardView> shards);

  std::size_t num_shards() const noexcept { return shards_.size(); }
  const ShardView& shard(std::size_t s) const { return shards_[s]; }
  /// Documents across all pinned shard snapshots.
  index_t num_docs() const noexcept;
  /// The pinned generation vector, one publish sequence number per shard —
  /// two queries against equal generation vectors see identical indexes.
  std::vector<std::uint64_t> generations() const;

  /// Batched scatter-gather retrieval over free-text queries: result[b] is
  /// query b's global top-z ranking with GLOBAL document ids, in the shared
  /// lsi/ranking.hpp order. Each shard parses/weights the texts against its
  /// own vocabulary, projects the whole batch once, ranks with its
  /// BatchedRetriever — through that shard's cluster-pruned structure when
  /// `opts.search` admits it (lsi/search_options.hpp); per-shard exact
  /// fallbacks are independent, so a small shard can sweep exactly while a
  /// large sibling prunes — and the per-shard top-z lists are merged
  /// deterministically. Runs under the "sharding.scatter" / "sharding.gather"
  /// spans; `stats` (when non-null) accumulates the summed per-shard stage
  /// breakdown (seconds are CPU-seconds across shards, not wall time).
  std::vector<std::vector<ScoredDoc>> rank_batch(
      const std::vector<std::string>& texts, const SearchOptions& opts = {},
      QueryStats* stats = nullptr) const;

  /// Checked variant: the first SearchOptions::Validate() violation, or
  /// kDeadlineExceeded when `opts.deadline` has expired at entry or by the
  /// time a shard's scatter task starts (coarse-grained: a shard pass that
  /// began before expiry runs to completion; shards that had not started
  /// abandon the batch).
  Expected<std::vector<std::vector<ScoredDoc>>> try_rank_batch(
      const std::vector<std::string>& texts, const SearchOptions& opts = {},
      QueryStats* stats = nullptr) const;

  /// Single-query convenience wrapper over rank_batch.
  std::vector<ScoredDoc> retrieve(std::string_view text,
                                  const SearchOptions& opts = {},
                                  QueryStats* stats = nullptr) const;

  /// One result of the rich gather path: the fused hit plus the global ids
  /// of near-duplicates collapsed into it (empty without collapse).
  struct GatherHit {
    index_t doc = 0;      ///< global document id of the representative
    double score = 0.0;   ///< fusion score the global ranking sorts by
    double cosine = 0.0;  ///< raw per-shard cosine of the representative
    std::size_t shard = 0;
    std::vector<index_t> duplicates;
  };

  /// One query's gather output: the global top-z plus optional facet terms
  /// (query refinements from the top hits' semantic neighborhood).
  struct GatherResult {
    std::vector<GatherHit> hits;
    std::vector<gather::Facet> facets;
  };

  /// The rich gather path (docs/GATHER.md): the same scatter as rank_batch,
  /// then the full gather pipeline — merge under `opts.merge` (z-score /
  /// RRF re-score per-shard lists before the deterministic global sort;
  /// the default raw-cosine policy orders exactly like rank_batch), collapse
  /// near-duplicates when `opts.collapse_cosine` is in (0, 1], and attach
  /// `opts.facets` facet terms per query. Runs the extra stages under the
  /// "gather.fuse" / "gather.collapse" / "gather.facets" spans.
  std::vector<GatherResult> gather_batch(const std::vector<std::string>& texts,
                                         const SearchOptions& opts = {},
                                         QueryStats* stats = nullptr) const;

  /// Checked variant; same contract as try_rank_batch.
  Expected<std::vector<GatherResult>> try_gather_batch(
      const std::vector<std::string>& texts, const SearchOptions& opts = {},
      QueryStats* stats = nullptr) const;

  /// Free-text retrieval with labels resolved against the pinned shard
  /// snapshots; `doc` carries the global document id.
  std::vector<QueryResult> query(std::string_view text,
                                 const SearchOptions& opts = {},
                                 QueryStats* stats = nullptr) const;

 private:
  /// Shared scatter-gather body. When `expired` is non-null the per-shard
  /// deadline protocol is active: a scatter task observing an expired
  /// `opts.deadline` before it starts sets the flag and abandons its pass.
  std::vector<std::vector<ScoredDoc>> rank_batch_impl(
      const std::vector<std::string>& texts, const SearchOptions& opts,
      QueryStats* stats, std::atomic<bool>* expired) const;

  /// The scatter stage shared by rank_batch_impl and gather_batch_impl:
  /// result[s][b] is shard s's top-z for query b in SHARD-LOCAL document
  /// indices. `shard_stats` (when non-null) must be pre-sized to
  /// num_shards(); deadline protocol as above. `moments` (when non-null) is
  /// filled so moments[s][b] holds shard s's full-sweep ScoreMoments for
  /// query b — the background statistics the z-score merge policy
  /// standardizes against (requested only for non-raw policies; the raw
  /// path skips the extra passes entirely).
  std::vector<std::vector<std::vector<ScoredDoc>>> scatter(
      const std::vector<std::string>& texts, const SearchOptions& opts,
      std::vector<QueryStats>* shard_stats, std::atomic<bool>* expired,
      std::vector<std::vector<ScoreMoments>>* moments = nullptr) const;

  std::vector<GatherResult> gather_batch_impl(
      const std::vector<std::string>& texts, const SearchOptions& opts,
      QueryStats* stats, std::atomic<bool>* expired) const;

  std::vector<ShardView> shards_;
};

/// Partition, build, ingest and serve: the sharded face of the library.
/// Thread-safe throughout — add/try_add may be called from any thread, and
/// snapshot() hands out consistent read views concurrently with ingestion.
class ShardedIndex {
 public:
  /// Routes `docs` across opts.num_shards shards and builds every shard's
  /// index (shards build in parallel). Fails with the first
  /// ShardingOptions::Validate() violation, kInvalidArgument when a shard
  /// receives no documents (possible under hash-label routing on small
  /// collections), or whatever a shard's LsiIndex::try_build reports.
  /// Global document ids are the positions in `docs` (0-based), so routing
  /// never changes what a result's `doc` field means.
  static Expected<ShardedIndex> try_build(const text::Collection& docs,
                                          const ShardingOptions& opts);

  /// An empty index with no shards — exists only so Expected<ShardedIndex>
  /// can default-construct its error slot. Every member function requires a
  /// try_build result. (Special members are defined out of line: Shard is
  /// incomplete here.)
  ShardedIndex();

  ShardedIndex(ShardedIndex&&) noexcept;
  ShardedIndex& operator=(ShardedIndex&&) noexcept;
  ~ShardedIndex();

  /// Routes one document to its shard (assigning it the next global id) and
  /// enqueues it there, blocking while that shard's ingest queue is at
  /// capacity. kFailedPrecondition after shutdown().
  Status add(text::Document doc);

  /// Non-blocking variant: kResourceExhausted when the routed shard's queue
  /// is full — only that shard is saturated; a later retry re-routes under
  /// the same policy (hash-label lands on the same shard, round-robin moves
  /// on).
  Status try_add(text::Document doc);

  /// Blocks until every accepted document is folded into its shard and a
  /// snapshot containing it is published (all shards).
  void flush();

  /// Requests SVD-update consolidation on every shard and blocks until all
  /// are published. Fails with kFailedPrecondition after shutdown().
  Status consolidate();

  /// Stops ingestion, drains every shard and joins their writers.
  /// Idempotent; also run by the destructor.
  void shutdown();

  /// The current consistent read view: pins every shard's latest published
  /// snapshot (each a cheap pointer copy — readers never wait on writer
  /// work, per shard, exactly as in ConcurrentIndexer).
  ShardedSnapshot snapshot() const;

  /// Explicitly refcounted pin over the current read view, for holders that
  /// outlive the call frame (serving sessions, paging cursors). The handle
  /// keeps every per-shard IndexSnapshot alive — consolidations may retire
  /// and republish underneath it, but the pinned generation vector stays
  /// dereferenceable until the last copy of the handle is dropped, at which
  /// point the pin count decrements and the retired shard snapshots are
  /// freed. Release is the handle going out of scope; there is no unpin
  /// call to forget. Safe to hold across (and after) ShardedIndex
  /// destruction: the count outlives the index.
  std::shared_ptr<const ShardedSnapshot> pin_snapshot() const;

  /// Outstanding pin_snapshot handles not yet released (0 when every
  /// session has dropped its view — the drain-completion check the serving
  /// layer gates on).
  std::size_t pinned() const noexcept;

  std::size_t num_shards() const noexcept { return shards_.size(); }
  const ShardingOptions& options() const noexcept { return opts_; }
  /// Documents folded across all shards so far (per shard, the most
  /// caught-up replica's count).
  std::uint64_t ingested() const;

  // -- Replica administration (no-ops degenerate gracefully at R=1; see
  //    docs/REPLICATION.md for the eject/replay protocol) -----------------

  /// Replicas configured per shard.
  std::size_t replicas_per_shard() const noexcept { return opts_.replicas; }
  /// Healthy replicas of `shard` right now.
  std::size_t healthy_replicas(std::size_t shard) const;
  /// Removes one replica of `shard` from its feed (explicit kill/wedge).
  Status eject_replica(std::size_t shard, std::size_t replica);
  /// Replays the shard's ingest log into an ejected replica and rejoins it.
  Status readmit_replica(std::size_t shard, std::size_t replica);
  /// Runs every shard's replica health check; returns total ejections.
  std::size_t check_health();
  /// Per-replica rows for one shard (the /stats "replicas" arrays).
  std::vector<ReplicaSet::ReplicaInfo> replica_infos(std::size_t shard) const;

  /// Point-in-time per-shard statistics (the CLI's shard-stats table and the
  /// serving layer's /stats endpoint).
  struct ShardInfo {
    std::size_t shard = 0;
    std::size_t docs = 0;       ///< documents in the latest snapshot
    std::size_t terms = 0;      ///< shard vocabulary size
    index_t k = 0;              ///< shard factor count
    std::uint64_t generation = 0;
    std::size_t unconsolidated = 0;
    std::size_t queued = 0;
    std::uint64_t ingested = 0;
    std::uint64_t publishes = 0;
    std::uint64_t consolidations = 0;
    /// Cluster-pruned structure state of the shard's snapshot (lsi/ann.hpp).
    index_t ann_centroids = 0;          ///< 0 = no structure attached
    std::uint64_t ann_generation = 0;   ///< publish generation it was built at
    bool ann_exact_fallback = true;     ///< queries sweep exactly (no AnnIndex)
    /// Replication state: which replica the view pinned, and how the
    /// shard's replica set looks right now.
    std::size_t replica = 0;            ///< replica serving the pinned view
    std::size_t replicas = 1;           ///< configured replicas (R)
    std::size_t healthy = 1;            ///< currently healthy replicas
  };

  /// Republishes the cross-shard term statistics from everything
  /// accumulated so far (the initial build pass plus every streamed add) and
  /// returns the new snapshot. Streamed documents keep their shard's frozen
  /// fold-in weighting — the republished statistics feed /stats visibility
  /// and FUTURE builds/consolidations, mirroring the paper's frozen-space
  /// fold-in semantics. Null when share_term_stats is off.
  std::shared_ptr<const gather::GlobalTermStats> refresh_term_stats();

  /// State of the term-statistics exchange (the /stats "gather" row).
  struct TermStatsInfo {
    bool enabled = false;
    std::uint64_t version = 0;  ///< publishes so far (0 = never)
    std::uint64_t docs = 0;     ///< documents covered by the snapshot
    std::size_t terms = 0;      ///< distinct terms in the snapshot
  };
  TermStatsInfo term_stats_info() const;

  /// Statistics computed against one consistent read view: every
  /// snapshot-derived field (docs, k, generation, ANN state) comes from the
  /// shard snapshots pinned in `view` — the single source of truth a serving
  /// layer must use so /stats and a session's pinned /session generations
  /// can never disagree about the same view. Counter fields (queued,
  /// ingested, publishes, consolidations) still read the live per-shard
  /// indexers. `view` must come from this index's snapshot()/pin_snapshot().
  std::vector<ShardInfo> shard_infos(const ShardedSnapshot& view) const;

  /// Convenience overload over the current snapshot() — equivalent to
  /// shard_infos(snapshot()).
  std::vector<ShardInfo> shard_infos() const;

 private:
  struct Shard;
  struct RouterState;
  struct PinCount;

  ShardedIndex(ShardingOptions opts, std::unique_ptr<RouterState> router,
               std::vector<std::unique_ptr<Shard>> shards);

  Status add_impl(text::Document doc, bool blocking);

  ShardingOptions opts_;
  std::unique_ptr<RouterState> router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Cross-shard term-statistics exchange; null when share_term_stats is
  /// off (the exchange then costs nothing on the ingest path).
  std::shared_ptr<gather::TermStatsExchange> exchange_;
  /// Shared (not owned) so a pin handle released after this index is gone
  /// still has a live count to decrement.
  std::shared_ptr<PinCount> pins_;
};

}  // namespace lsi::core
