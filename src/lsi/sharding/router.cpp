#include "lsi/sharding/router.hpp"

#include <algorithm>
#include <cassert>

#include "util/hash.hpp"

namespace lsi::core {

std::string_view routing_policy_name(RoutingPolicy policy) noexcept {
  switch (policy) {
    case RoutingPolicy::kRoundRobin: return "round-robin";
    case RoutingPolicy::kSizeBalanced: return "size-balanced";
    case RoutingPolicy::kHashLabel: return "hash-label";
  }
  return "unknown";
}

Expected<RoutingPolicy> parse_routing_policy(std::string_view name) {
  if (name == "round-robin" || name == "rr") {
    return RoutingPolicy::kRoundRobin;
  }
  if (name == "size-balanced" || name == "size") {
    return RoutingPolicy::kSizeBalanced;
  }
  if (name == "hash-label" || name == "hash") {
    return RoutingPolicy::kHashLabel;
  }
  return Status::InvalidArgument("unknown routing policy: " +
                                 std::string(name));
}

ShardRouter::ShardRouter(RoutingPolicy policy, std::size_t num_shards)
    : policy_(policy), assigned_(num_shards, 0), load_(num_shards, 0) {
  assert(num_shards > 0);
}

std::size_t ShardRouter::route(std::string_view label,
                               std::size_t size_hint) {
  const std::size_t n = assigned_.size();
  std::size_t shard = 0;
  switch (policy_) {
    case RoutingPolicy::kRoundRobin:
      shard = next_;
      next_ = (next_ + 1) % n;
      break;
    case RoutingPolicy::kSizeBalanced:
      // Greedy: the least-loaded shard takes the next document; ties go to
      // the lowest shard index so the assignment is deterministic.
      shard = static_cast<std::size_t>(
          std::min_element(load_.begin(), load_.end()) - load_.begin());
      break;
    case RoutingPolicy::kHashLabel:
      shard = static_cast<std::size_t>(util::fnv1a64(label) % n);
      break;
  }
  ++assigned_[shard];
  // Count every document as at least one unit so kSizeBalanced still cycles
  // (rather than piling onto shard 0) when callers pass size_hint = 0.
  load_[shard] += std::max<std::size_t>(1, size_hint);
  return shard;
}

}  // namespace lsi::core
