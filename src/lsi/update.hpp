#pragma once
// SVD-updating (Section 4): folding new information into the *decomposition*
// rather than just the coordinate lists, at higher cost than folding-in but
// preserving orthogonality and the true rank-k approximation of (A_k | D).
//
// Three phases, applied in any order (Section 4.2):
//   documents:  B = (A_k | D)        -> SVD via F = (S_k | U_k^T D)
//   terms:      C = (A_k ; T)        -> SVD via H = (S_k ; T V_k)
//   weights:    W = A_k + Y_j Z_j^T  -> SVD via Q = S_k + (U_k^T Y)(V_k^T Z)^T
//
// Each phase reduces the big sparse update to a small dense SVD (k+p, k+q or
// k square-ish) followed by the dense products U_k U_F / V_k V_F whose
// O(2k^2 m + 2k^2 n) flops dominate (the paper's Section 4.2 discussion and
// Table 7).

#include "la/sparse.hpp"
#include "lsi/semantic_space.hpp"

namespace lsi::core {

/// SVD-updates the space with p new document columns D (m x p, weighted the
/// same way as the training matrix). The space keeps k factors; V gains p
/// rows and all factor matrices rotate.
void update_documents(SemanticSpace& space, const la::CscMatrix& d);

/// SVD-updates the space with q new term rows T (q x n, weighted).
void update_terms(SemanticSpace& space, const la::CscMatrix& t);

/// Correction step for changed term weights: W = A_k + Y_j Z_j^T where Y_j
/// (m x j) selects term rows and Z_j (n x j) holds the per-document deltas
/// (see weighting::weight_correction). Factor count is unchanged.
void update_weights(SemanticSpace& space, const la::DenseMatrix& y,
                    const la::DenseMatrix& z);

/// Dense conveniences.
void update_documents(SemanticSpace& space, const la::DenseMatrix& d);
void update_terms(SemanticSpace& space, const la::DenseMatrix& t);

// ---------------------------------------------------------------------------
// Exact low-rank updating (extension).
//
// The Section 4.2 method projects new data onto the retained subspaces
// (U_B = U_k U_F can never leave span(U_k)), which is what made folding-in
// vs updating "interesting future research" in Section 4.3. The variants
// below carry the out-of-subspace component explicitly via a thin QR of the
// residual (the construction later published by Zha & Simon), so the result
// IS the truncated SVD of the bordered matrix — at the extra cost of the QR
// and a (k+p)-sized inner SVD.
// ---------------------------------------------------------------------------

/// Exact update: the space becomes the best rank-k approximation of
/// (A_k | D) for *any* D, including components orthogonal to span(U_k).
void update_documents_exact(SemanticSpace& space, const la::CscMatrix& d);

/// Exact update: the space becomes the best rank-k approximation of
/// (A_k ; T).
void update_terms_exact(SemanticSpace& space, const la::CscMatrix& t);

/// Exact update: the space becomes the best rank-k approximation of
/// A_k + Y Z^T.
void update_weights_exact(SemanticSpace& space, const la::DenseMatrix& y,
                          const la::DenseMatrix& z);

}  // namespace lsi::core
