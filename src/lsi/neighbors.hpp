#pragma once
// Approximate nearest-neighbor search in k-space — the third open problem
// of Section 5.6 ("efficiently comparing queries to documents (i.e.,
// finding near neighbors in high-dimension spaces)").
//
// Design: spherical k-means over the (sigma-scaled, unit-normalized)
// document coordinates partitions the collection into clusters; a query
// scans only the `probes` clusters whose centroids score highest. Because
// cosine similarity against a cluster member is bounded by the similarity
// to its centroid plus the cluster radius, probing a handful of clusters
// recovers almost all true neighbors at a fraction of the comparisons.

#include <cstdint>
#include <vector>

#include "lsi/retrieval.hpp"
#include "lsi/semantic_space.hpp"

namespace lsi::core {

struct NeighborIndexOptions {
  index_t clusters = 0;       ///< 0 -> about sqrt(num_docs)
  int max_iterations = 25;    ///< k-means refinement cap
  std::uint64_t seed = 7;     ///< centroid seeding
};

struct NeighborQueryStats {
  std::size_t documents_scored = 0;  ///< exact cosines computed
  std::size_t clusters_probed = 0;
};

/// Cluster-pruned cosine search over a (frozen) semantic space's documents.
class DocNeighborIndex {
 public:
  /// Builds the cluster structure from the space's document coordinates
  /// (rows of V_k S_k, normalized).
  DocNeighborIndex(const SemanticSpace& space,
                   const NeighborIndexOptions& opts = {});

  /// Approximate top-z documents by cosine against the sigma-scaled query
  /// coordinates (i.e. the kColumnSpace similarity of retrieval.hpp).
  /// `probes` = number of clusters scanned (clamped to [1, clusters]).
  std::vector<ScoredDoc> query(std::span<const double> query_coords,
                               std::size_t top_z, std::size_t probes,
                               NeighborQueryStats* stats = nullptr) const;

  index_t num_clusters() const noexcept { return centroids_.rows(); }
  index_t num_docs() const noexcept { return doc_coords_.rows(); }

 private:
  la::DenseMatrix doc_coords_;   ///< num_docs x k, unit rows
  la::DenseMatrix centroids_;    ///< clusters x k, unit rows
  std::vector<std::vector<index_t>> members_;  ///< docs per cluster
};

}  // namespace lsi::core
