#include "lsi/retrieval.hpp"

#include <algorithm>
#include <cassert>

#include "lsi/batched_retrieval.hpp"
#include "lsi/ranking.hpp"

namespace lsi::core {

namespace {

/// Applies S^{-1} entrywise; zero singular values map to zero (pseudo-
/// inverse semantics, so rank-deficient spaces behave).
void scale_by_sigma_inverse(la::Vector& x, const std::vector<double>& sigma) {
  for (index_t i = 0; i < x.size(); ++i) {
    x[i] = sigma[i] > 0.0 ? x[i] / sigma[i] : 0.0;
  }
}

}  // namespace

la::Vector project_query(const SemanticSpace& space,
                         std::span<const double> term_vector) {
  assert(term_vector.size() == space.num_terms());
  la::Vector q_hat = la::multiply_transpose(space.u, term_vector);
  scale_by_sigma_inverse(q_hat, space.sigma);
  return q_hat;
}

la::Vector project_term(const SemanticSpace& space,
                        std::span<const double> doc_vector) {
  assert(doc_vector.size() == space.num_docs());
  la::Vector t_hat = la::multiply_transpose(space.v, doc_vector);
  scale_by_sigma_inverse(t_hat, space.sigma);
  return t_hat;
}

std::vector<ScoredDoc> rank_documents(const SemanticSpace& space,
                                      std::span<const double> query_khat,
                                      const QueryOptions& opts,
                                      QueryStats* stats) {
  assert(query_khat.size() == space.k());
  // Batch-size-1 wrapper over the batched engine — the one scoring path.
  const QueryBatch one = QueryBatch::from_projected(
      space, {la::Vector(query_khat.begin(), query_khat.end())});
  auto ranked =
      BatchedRetriever(space).rank(one, SearchOptions::FromQuery(opts), stats);
  return std::move(ranked.front());
}

std::vector<ScoredDoc> retrieve(const SemanticSpace& space,
                                std::span<const double> term_vector,
                                const QueryOptions& opts,
                                QueryStats* stats) {
  // Batch-size-1 wrapper over the batched engine, projection included, so
  // streamed single queries and batched queries share every kernel.
  obs::ScopedSink scoped(opts.sink ? opts.sink : obs::Sink::active());
  const QueryBatch one = QueryBatch::from_term_vectors(
      space, {la::Vector(term_vector.begin(), term_vector.end())}, stats);
  auto ranked =
      BatchedRetriever(space).rank(one, SearchOptions::FromQuery(opts), stats);
  return std::move(ranked.front());
}

double document_similarity(const SemanticSpace& space, index_t a, index_t b) {
  const la::Vector va = space.doc_coords(a);
  const la::Vector vb = space.doc_coords(b);
  return la::cosine(va, vb);
}

double term_similarity(const SemanticSpace& space, index_t a, index_t b) {
  const la::Vector ta = space.term_coords(a);
  const la::Vector tb = space.term_coords(b);
  return la::cosine(ta, tb);
}

std::vector<ScoredDoc> rank_documents_multipoint(
    const SemanticSpace& space, const std::vector<la::Vector>& points,
    const QueryOptions& opts, MultiPointCombiner combiner) {
  std::vector<ScoredDoc> out;
  if (points.empty()) return out;

  // Score per point, then combine.
  std::vector<std::vector<double>> per_point;
  per_point.reserve(points.size());
  for (const auto& p : points) {
    QueryOptions all = opts;
    all.min_cosine = -1.0;  // filter only after combining
    all.top_z = 0;
    std::vector<double> scores(space.num_docs(), 0.0);
    for (const ScoredDoc& sd : rank_documents(space, p, all)) {
      scores[sd.doc] = sd.cosine;
    }
    per_point.push_back(std::move(scores));
  }
  for (index_t d = 0; d < space.num_docs(); ++d) {
    double combined =
        combiner == MultiPointCombiner::kMax ? -2.0 : 0.0;
    for (const auto& scores : per_point) {
      if (combiner == MultiPointCombiner::kMax) {
        combined = std::max(combined, scores[d]);
      } else {
        combined += scores[d] / static_cast<double>(points.size());
      }
    }
    if (combined >= opts.min_cosine) out.push_back({d, combined});
  }
  std::stable_sort(out.begin(), out.end(), ranks_before<ScoredDoc>);
  if (opts.top_z > 0 && out.size() > opts.top_z) out.resize(opts.top_z);
  return out;
}

std::vector<ScoredDoc> rank_terms(const SemanticSpace& space,
                                  std::span<const double> term_coords,
                                  std::size_t top_z) {
  std::vector<ScoredDoc> out;
  out.reserve(space.num_terms());
  for (index_t i = 0; i < space.num_terms(); ++i) {
    const la::Vector t = space.term_coords(i);
    out.push_back({i, la::cosine(term_coords, t)});
  }
  std::stable_sort(out.begin(), out.end(), ranks_before<ScoredDoc>);
  if (top_z > 0 && out.size() > top_z) out.resize(top_z);
  return out;
}

}  // namespace lsi::core
