#pragma once
// Real-time SVD-updating — the second open problem of Section 5.6
// ("perform SVD-updating in real-time for databases that change
// frequently").
//
// Strategy: arriving documents are folded in immediately (cheap, 2mk flops
// per document, Table 7), and the decomposition is *consolidated* by an
// SVD-update over the accumulated batch once the number of folded-but-not-
// consolidated documents exceeds a budget. This bounds both the per-arrival
// latency and the basis distortion folding-in accrues (Section 4.3).

#include <cstddef>

#include "lsi/lsi_index.hpp"

namespace lsi::core {

struct IncrementalOptions {
  /// Consolidate after this many folded-in documents (0 = never, pure
  /// folding).
  std::size_t consolidate_every = 64;
  /// Use the exact (residual-carrying) update when consolidating.
  bool exact_update = false;
};

/// Wraps an LsiIndex with fold-now / consolidate-later ingestion.
class IncrementalIndexer {
 public:
  IncrementalIndexer(LsiIndex index, const IncrementalOptions& opts = {});

  /// Ingests one document: always an immediate fold-in; triggers a
  /// consolidation pass when the batch budget is exhausted. Returns true if
  /// this call consolidated.
  bool add(const text::Document& doc);

  /// Forces consolidation of any pending documents.
  void consolidate();

  std::size_t pending() const noexcept { return pending_docs_.size(); }
  std::size_t consolidations() const noexcept { return consolidations_; }
  const LsiIndex& index() const noexcept { return index_; }
  LsiIndex& index() noexcept { return index_; }

 private:
  LsiIndex index_;
  IncrementalOptions opts_;
  /// Weighted term vectors of folded-but-unconsolidated documents; kept so
  /// consolidation can rebuild their coordinates through the SVD-update.
  std::vector<la::Vector> pending_docs_;
  std::size_t consolidations_ = 0;
};

}  // namespace lsi::core
