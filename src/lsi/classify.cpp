#include "lsi/classify.hpp"

#include <cassert>

#include "la/vector_ops.hpp"

namespace lsi::core {

CentroidClassifier::CentroidClassifier(
    const std::vector<la::Vector>& features,
    const std::vector<std::size_t>& labels, std::size_t num_classes) {
  assert(features.size() == labels.size());
  const std::size_t dim = features.empty() ? 0 : features[0].size();
  centroids_.assign(num_classes, la::Vector(dim, 0.0));
  for (std::size_t i = 0; i < features.size(); ++i) {
    assert(labels[i] < num_classes);
    assert(features[i].size() == dim);
    la::axpy(1.0, features[i], centroids_[labels[i]]);
  }
  for (auto& c : centroids_) la::normalize(c);
}

std::size_t CentroidClassifier::predict(
    std::span<const double> features) const {
  std::size_t best = 0;
  double best_score = -2.0;
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    const double score = la::cosine(features, centroids_[c]);
    if (score > best_score) {
      best_score = score;
      best = c;
    }
  }
  return best;
}

std::vector<double> CentroidClassifier::scores(
    std::span<const double> features) const {
  std::vector<double> out;
  out.reserve(centroids_.size());
  for (const auto& c : centroids_) out.push_back(la::cosine(features, c));
  return out;
}

double classification_accuracy(const CentroidClassifier& clf,
                               const std::vector<la::Vector>& features,
                               const std::vector<std::size_t>& labels) {
  if (features.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < features.size(); ++i) {
    hits += clf.predict(features[i]) == labels[i];
  }
  return static_cast<double>(hits) / static_cast<double>(features.size());
}

}  // namespace lsi::core
