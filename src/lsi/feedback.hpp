#pragma once
// Relevance feedback in k-space (Section 5.1), including the negative
// information the paper flags as unexploited: "The use of negative
// information has not yet been exploited in LSI; for example, by moving the
// query away from documents which the user has indicated are irrelevant."
//
// Rocchio's formulation over projected vectors:
//
//   q' = alpha * q + beta * mean(relevant docs) - gamma * mean(irrelevant)
//
// The paper's tested method ("replace the query with the vector sum of the
// selected relevant documents") is the (0, 1, 0) special case.

#include <vector>

#include "lsi/semantic_space.hpp"

namespace lsi::core {

struct RocchioWeights {
  double alpha = 1.0;  ///< original query
  double beta = 0.75;  ///< relevant centroid pull
  double gamma = 0.25; ///< irrelevant centroid push (the paper's open idea)
};

/// The paper's §5.1 protocol: replace the query with the mean projection of
/// the selected relevant documents (documents indexed into `space`).
la::Vector replace_with_relevant(const SemanticSpace& space,
                                 const std::vector<index_t>& relevant_docs);

/// Rocchio update of a projected query from judged documents. Unjudged
/// documents are ignored; empty judgment sets contribute nothing.
la::Vector rocchio_feedback(const SemanticSpace& space,
                            const la::Vector& query_khat,
                            const std::vector<index_t>& relevant_docs,
                            const std::vector<index_t>& irrelevant_docs,
                            const RocchioWeights& weights = {});

}  // namespace lsi::core
