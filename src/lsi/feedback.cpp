#include "lsi/feedback.hpp"

#include <cassert>

namespace lsi::core {

namespace {

/// Mean of the given documents' rows of V (the Equation-6/7 coordinate
/// system queries live in). Empty input -> zero vector.
la::Vector doc_centroid(const SemanticSpace& space,
                        const std::vector<index_t>& docs) {
  la::Vector centroid(space.k(), 0.0);
  if (docs.empty()) return centroid;
  for (index_t d : docs) {
    assert(d < space.num_docs());
    for (index_t i = 0; i < space.k(); ++i) centroid[i] += space.v(d, i);
  }
  for (double& v : centroid) v /= static_cast<double>(docs.size());
  return centroid;
}

}  // namespace

la::Vector replace_with_relevant(const SemanticSpace& space,
                                 const std::vector<index_t>& relevant_docs) {
  return doc_centroid(space, relevant_docs);
}

la::Vector rocchio_feedback(const SemanticSpace& space,
                            const la::Vector& query_khat,
                            const std::vector<index_t>& relevant_docs,
                            const std::vector<index_t>& irrelevant_docs,
                            const RocchioWeights& weights) {
  assert(query_khat.size() == space.k());
  la::Vector out(space.k(), 0.0);
  la::axpy(weights.alpha, query_khat, out);
  const la::Vector rel = doc_centroid(space, relevant_docs);
  la::axpy(weights.beta, rel, out);
  const la::Vector irr = doc_centroid(space, irrelevant_docs);
  la::axpy(-weights.gamma, irr, out);
  return out;
}

}  // namespace lsi::core
