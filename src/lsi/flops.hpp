#pragma once
// The computational-complexity model of Table 7 ("Computational complexity
// of updating methods"), with the paper's Table 6 symbols:
//
//   A   m x n   original term-document matrix      I    Lanczos iterations
//   U_k m x k   left singular vectors of A_k       trp  accepted triplets
//   S_k k x k   singular values of A_k             p    new documents
//   V_k n x k   right singular vectors of A_k      q    new terms
//   D   m x p   new document vectors               j    terms with changed
//   T   q x n   new term vectors                        weights
//   Z_j n x j   adjusted term weights
//
// The general sparse-SVD cost skeleton is Section 4.2's
//     I * cost(G^T G x) + trp * cost(G x),
// instantiated per method. The printed table in the SC'95 proceedings is
// OCR-damaged in places; the per-term constants below were reconstructed
// from that skeleton and O'Brien's thesis the paper cites, and every method
// keeps the structure and dominant terms the paper states (notably the
// (2k^2 - k)(m + n) dense-multiplication term that makes SVD-updating
// "considerably more expensive" than folding-in).

#include <cstdint>

namespace lsi::core {

/// Inputs shared by all methods. Set only the fields a method uses.
struct FlopModelParams {
  std::uint64_t m = 0;      ///< terms in the existing space
  std::uint64_t n = 0;      ///< documents in the existing space
  std::uint64_t k = 0;      ///< retained factors
  std::uint64_t p = 0;      ///< new documents
  std::uint64_t q = 0;      ///< new terms
  std::uint64_t j = 0;      ///< terms with changed weights
  std::uint64_t nnz_d = 0;  ///< nonzeros of D
  std::uint64_t nnz_t = 0;  ///< nonzeros of T
  std::uint64_t nnz_z = 0;  ///< nonzeros of Z_j
  std::uint64_t nnz_a = 0;  ///< nonzeros of the rebuilt matrix A~
  std::uint64_t iterations = 0;  ///< Lanczos iterations I
  std::uint64_t triplets = 0;    ///< accepted triplets trp
  std::uint64_t b = 0;           ///< queries in a batch (batched retrieval)
};

/// Folding-in p documents: 2mkp.
std::uint64_t flops_fold_documents(const FlopModelParams& x);

/// Folding-in q terms: 2nkq.
std::uint64_t flops_fold_terms(const FlopModelParams& x);

/// SVD-updating documents:
///   I [4 nnz(D) + 4mk + k^2 + 2m + p] + trp [2 nnz(D) + 2mk + m]
///   + (2k^2 - k)(m + n).
std::uint64_t flops_update_documents(const FlopModelParams& x);

/// SVD-updating terms:
///   I [4 nnz(T) + 4kn + k^2 + 2n + q] + trp [2 nnz(T) + 2kn + n]
///   + (2k^2 - k)(m + n).
std::uint64_t flops_update_terms(const FlopModelParams& x);

/// SVD-updating correction step:
///   I [4 nnz(Z_j) + 4km + 2mj + 2kn + 3k^2 + jm]
///   + trp [2 nnz(Z_j) + 2km + 2kn + jn] + (2k^2 - k)(m + n).
std::uint64_t flops_update_weights(const FlopModelParams& x);

/// Recomputing the SVD of the rebuilt (m+q) x (n+p) matrix:
///   I [4 nnz(A~) + (m+q) + (n+p)] + trp [2 nnz(A~) + (m+q)].
std::uint64_t flops_recompute(const FlopModelParams& x);

// --- Batched retrieval (the serving hot path; see batched_retrieval.hpp).

/// Projecting a batch of b queries, Q_hat = S_k^{-1} (U_k^T Q): 2mkb for
/// the blocked GEMM plus kb for the diagonal rescaling.
std::uint64_t flops_batch_project(const FlopModelParams& x);

/// Scoring b projected queries against all n documents: 3kb to build the
/// per-query weights and norms, 2nkb for the V_k-panel sweep, nb for the
/// cosine normalization divides.
std::uint64_t flops_batch_score(const FlopModelParams& x);

/// Building the per-document norm cache for one similarity mode (paid once
/// per space per mode, amortized over every later batch): 3nk + n.
std::uint64_t flops_doc_norm_cache(const FlopModelParams& x);

}  // namespace lsi::core
