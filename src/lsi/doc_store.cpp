#include "lsi/doc_store.hpp"

#include <cassert>
#include <utility>

#include "la/kernels.hpp"
#include "la/vector_ops.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace lsi::core {

std::span<const double> Bf16DocStore::doc_norms(
    SimilarityMode mode) const noexcept {
  return norms_[static_cast<std::size_t>(mode)];
}

void Bf16DocStore::fill_norms(std::span<const double> sigma,
                              la::index_t begin, la::index_t end) {
  for (auto& n : norms_) n.resize(num_docs_);
  for (std::size_t m = 0; m < kNumSimilarityModes; ++m) {
    const bool scale_docs =
        static_cast<SimilarityMode>(m) != SimilarityMode::kPlainV;
    auto& norms = norms_[m];
    util::parallel_for_chunks(
        begin, end,
        [&](std::size_t lo, std::size_t hi) {
          // Decoded-value norms, double accumulation: the scored vector is
          // the decoded bf16 row, so that is what the cosine divides by.
          // Same scratch-row shape, grain, and la::norm2 as the fp64 cache
          // fill (semantic_space.cpp) so the two paths stay comparable.
          la::Vector doc(k_);
          for (std::size_t j = lo; j < hi; ++j) {
            for (la::index_t i = 0; i < k_; ++i) {
              doc[i] =
                  static_cast<double>(la::kern::bf16_to_f32(col(i)[j]));
              if (scale_docs) doc[i] *= sigma[i];
            }
            norms[j] = la::norm2(doc);
          }
        },
        /*grain=*/256);
  }
}

std::shared_ptr<const Bf16DocStore> Bf16DocStore::build(
    const SemanticSpace& space) {
  LSI_OBS_SPAN(span, "retrieval.bf16_store.build");
  auto store = std::shared_ptr<Bf16DocStore>(new Bf16DocStore());
  store->num_docs_ = space.num_docs();
  store->k_ = space.k();
  store->norms_.resize(kNumSimilarityModes);
  const std::size_t n = store->num_docs_;
  store->data_.resize(n * static_cast<std::size_t>(store->k_));
  for (la::index_t i = 0; i < store->k_; ++i) {
    const double* vi = space.v.col(i).data();
    std::uint16_t* ci = store->data_.data() + static_cast<std::size_t>(i) * n;
    util::parallel_for_chunks(
        0, n,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t j = lo; j < hi; ++j) {
            ci[j] = la::kern::bf16_from_f64(vi[j]);
          }
        },
        /*grain=*/4096);
  }
  store->fill_norms(space.sigma, 0, store->num_docs_);
  obs::count("retrieval.bf16_store.builds");
  return store;
}

std::shared_ptr<const Bf16DocStore> Bf16DocStore::extend(
    const Bf16DocStore& old, const SemanticSpace& space) {
  assert(space.k() == old.k_);
  assert(space.num_docs() >= old.num_docs_);
  LSI_OBS_SPAN(span, "retrieval.bf16_store.extend");
  auto store = std::shared_ptr<Bf16DocStore>(new Bf16DocStore());
  store->num_docs_ = space.num_docs();
  store->k_ = old.k_;
  store->norms_.resize(kNumSimilarityModes);
  const std::size_t n = store->num_docs_;
  const std::size_t n0 = old.num_docs_;
  store->data_.resize(n * static_cast<std::size_t>(store->k_));
  for (la::index_t i = 0; i < store->k_; ++i) {
    const double* vi = space.v.col(i).data();
    std::uint16_t* ci = store->data_.data() + static_cast<std::size_t>(i) * n;
    const std::uint16_t* oi = old.col(i);
    for (std::size_t j = 0; j < n0; ++j) ci[j] = oi[j];
    for (std::size_t j = n0; j < n; ++j) {
      ci[j] = la::kern::bf16_from_f64(vi[j]);
    }
  }
  // Old norms carry over verbatim; only the appended rows are computed —
  // per element this is the exact arithmetic of a fresh build, so extension
  // is bit-identical to it (asserted by tests/lsi/bf16_store_test.cpp).
  for (std::size_t m = 0; m < kNumSimilarityModes; ++m) {
    store->norms_[m] = old.norms_[m];
  }
  store->fill_norms(space.sigma, static_cast<la::index_t>(n0),
                    store->num_docs_);
  obs::count("retrieval.bf16_store.extends",
             store->num_docs_ - old.num_docs_);
  return store;
}

std::shared_ptr<const Bf16DocStore> Bf16DocStore::from_payload(
    la::index_t num_docs, la::index_t k, std::vector<std::uint16_t> data,
    std::span<const double> sigma) {
  assert(data.size() ==
         static_cast<std::size_t>(num_docs) * static_cast<std::size_t>(k));
  auto store = std::shared_ptr<Bf16DocStore>(new Bf16DocStore());
  store->num_docs_ = num_docs;
  store->k_ = k;
  store->data_ = std::move(data);
  store->norms_.resize(kNumSimilarityModes);
  store->fill_norms(sigma, 0, num_docs);
  return store;
}

}  // namespace lsi::core
