#include "synth/spelling.hpp"

#include "lsi/retrieval.hpp"

namespace lsi::synth {

std::vector<std::string> word_ngrams(const std::string& word) {
  std::vector<std::string> out;
  const std::string padded = "#" + word + "#";
  for (std::size_t i = 0; i + 2 <= padded.size(); ++i) {
    out.push_back(padded.substr(i, 2));
  }
  for (std::size_t i = 0; i + 3 <= padded.size(); ++i) {
    out.push_back(padded.substr(i, 3));
  }
  return out;
}

SpellingModel build_spelling_model(const std::vector<std::string>& lexicon,
                                   lsi::la::index_t k) {
  SpellingModel model;
  for (const auto& w : lexicon) model.lexicon.add(w);

  // First pass: collect the n-gram universe.
  std::vector<std::vector<std::string>> grams(lexicon.size());
  for (std::size_t j = 0; j < lexicon.size(); ++j) {
    grams[j] = word_ngrams(lexicon[j]);
    for (const auto& g : grams[j]) model.ngrams.add(g);
  }

  lsi::la::CooBuilder builder(model.ngrams.size(), lexicon.size());
  for (std::size_t j = 0; j < lexicon.size(); ++j) {
    for (const auto& g : grams[j]) {
      builder.add(*model.ngrams.find(g), j, 1.0);
    }
  }
  model.ngram_by_word = builder.to_csc();
  model.space = core::try_build_semantic_space(model.ngram_by_word, k).value();
  return model;
}

std::vector<SpellingSuggestion> suggest_corrections(
    const SpellingModel& model, const std::string& input, std::size_t top) {
  lsi::la::Vector q(model.ngrams.size(), 0.0);
  for (const auto& g : word_ngrams(input)) {
    if (auto row = model.ngrams.find(g)) q[*row] += 1.0;
  }
  core::QueryOptions opts;
  opts.top_z = top;
  std::vector<SpellingSuggestion> out;
  for (const core::ScoredDoc& sd : core::retrieve(model.space, q, opts)) {
    out.push_back({model.lexicon.term(sd.doc), sd.cosine});
  }
  return out;
}

}  // namespace lsi::synth
