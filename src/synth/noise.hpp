#pragma once
// Character-level corruption emulating OCR / pen-machine recognition errors
// (Section 5.4, "Noisy Input": 8.8% word-level error rates left LSI
// retrieval undisrupted).

#include <cstdint>
#include <string>

#include "util/rng.hpp"

namespace lsi::synth {

struct NoiseSpec {
  /// Probability that any given word is corrupted (word-level error rate,
  /// the statistic the paper quotes).
  double word_error_rate = 0.088;
};

/// Corrupts whitespace-separated words independently: each selected word
/// suffers one random character substitution, deletion, insertion or
/// adjacent transposition. Deterministic given the Rng state.
std::string corrupt_text(const std::string& text, const NoiseSpec& spec,
                         util::Rng& rng);

/// Fraction of whitespace-separated words that differ between `a` and `b`
/// (positional comparison over the shorter length).
double word_error_fraction(const std::string& a, const std::string& b);

}  // namespace lsi::synth
