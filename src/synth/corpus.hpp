#pragma once
// Synthetic test collections with controllable synonymy and polysemy — the
// stand-in for the paper's MED/TREC/encyclopedia corpora (see DESIGN.md §2).
//
// Generative model: documents are drawn from latent *topics*; each topic
// owns a pool of *concepts*; every concept can be voiced by several
// *surface forms* (synonym groups, Zipf-distributed). Queries voice
// concepts of one topic, biased toward the rarer forms, so literal matching
// suffers exactly the synonymy failure the paper's introduction describes
// while the latent structure stays recoverable by the truncated SVD.
// Polysemy is injected by letting a concept reuse a surface form owned by a
// concept of a different topic.

#include <cstdint>
#include <string>
#include <vector>

#include "eval/metrics.hpp"
#include "text/document.hpp"

namespace lsi::synth {

struct CorpusSpec {
  std::size_t topics = 10;
  std::size_t concepts_per_topic = 12;
  std::size_t shared_concepts = 30;   ///< topic-neutral "general vocabulary"
  std::size_t forms_per_concept = 3;  ///< synonym-group size
  std::size_t docs_per_topic = 30;
  double mean_doc_len = 40.0;         ///< Poisson mean of tokens per doc
  double general_prob = 0.35;         ///< chance a token is general vocab
  /// Zipf exponent of the shared (general) vocabulary. Steep values (1.5+)
  /// make a handful of uninformative words extremely frequent — the tf
  /// dispersion that makes local/global weighting matter (Section 5.1).
  double general_zipf = 1.05;
  /// Document-level burstiness: each document picks a few "pet" general
  /// words; with this probability a general token repeats one of them
  /// instead of sampling the global distribution. Raw term frequency is
  /// hostage to these accidental repetitions (the effect log local
  /// weighting exists to tame); 0 disables.
  double pet_word_prob = 0.0;
  /// Probability that a *topical* token is drawn from the document's own
  /// topic; the remainder comes from a random other topic. Below 1.0,
  /// documents of different topics share vocabulary and ranking becomes
  /// genuinely hard (real collections are mixtures, not partitions).
  double own_topic_prob = 1.0;
  double concept_zipf = 1.1;          ///< concept skew within a topic
  double form_zipf = 1.3;             ///< surface-form skew within a concept
  double polysemy_prob = 0.08;        ///< concepts that reuse a foreign form
  /// When true, each document picks ONE surface form per concept and reuses
  /// it (authors write "car" or "automobile", not both). Synonyms then
  /// rarely co-occur within a document — the regime where word-overlap
  /// methods fail and latent structure is required (Section 5.4).
  bool consistent_forms_per_doc = false;
  /// When true, a concept's surface forms are *morphological variants* of
  /// one pronounceable root ("becido", "becidos", "becidoed", "becidoing")
  /// instead of unrelated strings — the regime where a stemmer can conflate
  /// them by rule. Used by the stemming ablation. Supports up to 4 forms.
  bool morphological_forms = false;
  std::size_t queries_per_topic = 3;
  std::size_t query_len = 5;          ///< concepts voiced per query
  /// Probability a query voices a concept with a non-dominant form — the
  /// synonymy knob: 0 = queries use the common words, 1 = always rare forms.
  double query_offform_prob = 0.5;
  std::uint64_t seed = 1234;
};

struct Query {
  std::string text;
  eval::DocSet relevant;  ///< documents of the same topic
  std::size_t topic = 0;
};

struct SyntheticCorpus {
  text::Collection docs;
  std::vector<std::size_t> doc_topics;  ///< ground-truth topic per document
  std::vector<Query> queries;
  /// Topic-owned concepts' surface forms (concept_forms[c][f]); concept c
  /// belongs to topic concept_topic[c]. Used by the synonym test.
  std::vector<std::vector<std::string>> concept_forms;
  std::vector<std::size_t> concept_topic;
};

/// Deterministic for a given spec (including seed).
SyntheticCorpus generate_corpus(const CorpusSpec& spec);

}  // namespace lsi::synth
