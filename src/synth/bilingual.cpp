#include "synth/bilingual.hpp"

#include "util/rng.hpp"

namespace lsi::synth {

namespace {

std::string form_name(char lang, std::size_t concept_id, std::size_t form) {
  // Built by appends: GCC 12's -Wrestrict misfires on chained operator+.
  std::string name(1, lang);
  name += std::to_string(concept_id);
  name += 'f';
  name += std::to_string(form);
  return name;
}

}  // namespace

BilingualCorpus generate_bilingual_corpus(const BilingualSpec& spec) {
  util::Rng rng(spec.seed);
  BilingualCorpus out;


  const std::size_t num_docs = spec.topics * spec.docs_per_topic;

  // Documents are concept sequences rendered twice (independent synonym
  // draws per language, like a translation rather than a transliteration).
  out.dual.reserve(num_docs);
  out.mono_a.reserve(num_docs);
  out.mono_b.reserve(num_docs);
  for (std::size_t topic = 0; topic < spec.topics; ++topic) {
    for (std::size_t d = 0; d < spec.docs_per_topic; ++d) {
      const int len = std::max(6, rng.poisson(spec.mean_doc_len));
      std::string body_a, body_b;
      for (int t = 0; t < len; ++t) {
        std::size_t src_topic = topic;
        if (spec.topics > 1 && spec.own_topic_prob < 1.0 &&
            !rng.bernoulli(spec.own_topic_prob)) {
          src_topic = rng.uniform_index(spec.topics - 1);
          if (src_topic >= topic) ++src_topic;
        }
        const std::size_t local =
            rng.zipf(spec.concepts_per_topic, 1.1);
        const std::size_t concept_id =
            src_topic * spec.concepts_per_topic + local;
        const std::size_t fa = rng.zipf(spec.forms_per_concept, 1.3);
        const std::size_t fb = rng.zipf(spec.forms_per_concept, 1.3);
        if (!body_a.empty()) body_a += ' ';
        if (!body_b.empty()) body_b += ' ';
        body_a += form_name('a', concept_id, fa);
        body_b += form_name('b', concept_id, fb);
      }
      std::string label = "D";
      label += std::to_string(out.dual.size());
      std::string dual_body = body_a;
      dual_body += ' ';
      dual_body += body_b;
      out.dual.push_back({label, std::move(dual_body)});
      out.mono_a.push_back({label + "a", body_a});
      out.mono_b.push_back({label + "b", body_b});
      out.doc_topics.push_back(topic);
    }
  }

  auto make_queries = [&](char lang) {
    std::vector<BilingualQuery> queries;
    for (std::size_t topic = 0; topic < spec.topics; ++topic) {
      eval::DocSet relevant;
      for (std::size_t d = 0; d < num_docs; ++d) {
        if (out.doc_topics[d] == topic) relevant.insert(d);
      }
      for (std::size_t q = 0; q < spec.queries_per_topic; ++q) {
        const std::size_t len =
            std::min(spec.query_len, spec.concepts_per_topic);
        const auto picks =
            rng.sample_without_replacement(spec.concepts_per_topic, len);
        std::string body;
        for (std::size_t local : picks) {
          if (!body.empty()) body += ' ';
          body += form_name(lang, topic * spec.concepts_per_topic + local,
                            rng.zipf(spec.forms_per_concept, 1.3));
        }
        queries.push_back(BilingualQuery{std::move(body), relevant, topic});
      }
    }
    return queries;
  };
  out.queries_a = make_queries('a');
  out.queries_b = make_queries('b');

  return out;
}

}  // namespace lsi::synth
