#include "synth/corpus.hpp"

#include <cassert>
#include <unordered_map>

#include "util/rng.hpp"

namespace lsi::synth {

namespace {

std::string form_name(std::size_t concept_id, std::size_t form) {
  // Built by appends: GCC 12's -Wrestrict misfires on chained operator+.
  std::string name = "w";
  name += std::to_string(concept_id);
  name += 'f';
  name += std::to_string(form);
  return name;
}

/// Pronounceable root for a concept id: digit d -> consonant-vowel pair, so
/// the Porter stemmer's vowel-based rules apply to the suffixed variants.
std::string morph_root(std::size_t concept_id) {
  static constexpr char consonants[] = "bcdfghjklm";
  static constexpr char vowels[] = "aeiou";
  std::string digits = std::to_string(concept_id);
  std::string root = "z";  // distinct leading letter avoids real stop words
  for (char d : digits) {
    const int v = d - '0';
    root += consonants[v];
    root += vowels[v % 5];
  }
  return root;
}

std::string morph_form_name(std::size_t concept_id, std::size_t form) {
  static constexpr const char* suffixes[] = {"", "s", "ed", "ing"};
  return morph_root(concept_id) + suffixes[form % 4];
}

std::string general_name(std::size_t concept_id, std::size_t form) {
  std::string name = "g";
  name += std::to_string(concept_id);
  name += 'f';
  name += std::to_string(form);
  return name;
}

}  // namespace

SyntheticCorpus generate_corpus(const CorpusSpec& spec) {
  util::Rng rng(spec.seed);
  SyntheticCorpus out;

  // Concept tables. Topic-owned concepts are globally numbered so their
  // surface forms are unique strings unless polysemy deliberately aliases.
  const std::size_t num_concepts = spec.topics * spec.concepts_per_topic;
  out.concept_forms.resize(num_concepts);
  out.concept_topic.resize(num_concepts);
  for (std::size_t c = 0; c < num_concepts; ++c) {
    out.concept_topic[c] = c / spec.concepts_per_topic;
    out.concept_forms[c].reserve(spec.forms_per_concept);
    for (std::size_t f = 0; f < spec.forms_per_concept; ++f) {
      out.concept_forms[c].push_back(spec.morphological_forms
                                         ? morph_form_name(c, f)
                                         : form_name(c, f));
    }
  }
  // Polysemy: a concept's last form is replaced by the dominant form of a
  // concept from a *different* topic, so that string becomes ambiguous.
  if (spec.polysemy_prob > 0.0 && spec.topics > 1 &&
      spec.forms_per_concept > 1) {
    for (std::size_t c = 0; c < num_concepts; ++c) {
      if (!rng.bernoulli(spec.polysemy_prob)) continue;
      for (int attempt = 0; attempt < 8; ++attempt) {
        const std::size_t other = rng.uniform_index(num_concepts);
        if (out.concept_topic[other] != out.concept_topic[c]) {
          out.concept_forms[c].back() = out.concept_forms[other][0];
          break;
        }
      }
    }
  }

  std::vector<std::vector<std::string>> general_forms(spec.shared_concepts);
  for (std::size_t g = 0; g < spec.shared_concepts; ++g) {
    for (std::size_t f = 0; f < spec.forms_per_concept; ++f) {
      general_forms[g].push_back(general_name(g, f));
    }
  }

  // Documents.
  const std::size_t num_docs = spec.topics * spec.docs_per_topic;
  out.docs.reserve(num_docs);
  out.doc_topics.reserve(num_docs);
  for (std::size_t topic = 0; topic < spec.topics; ++topic) {
    for (std::size_t d = 0; d < spec.docs_per_topic; ++d) {
      const int len =
          std::max(8, rng.poisson(spec.mean_doc_len));
      // Per-document pet general words (accidental burstiness).
      std::vector<std::size_t> pets;
      if (spec.pet_word_prob > 0.0 && spec.shared_concepts > 0) {
        const std::size_t count = std::min<std::size_t>(
            3, spec.shared_concepts);
        pets = rng.sample_without_replacement(spec.shared_concepts, count);
      }
      std::string body;
      // Form memory for consistent_forms_per_doc (keyed by forms table).
      std::unordered_map<const std::vector<std::string>*, std::size_t>
          chosen_form;
      for (int t = 0; t < len; ++t) {
        const std::vector<std::string>* forms = nullptr;
        if (spec.shared_concepts > 0 && rng.bernoulli(spec.general_prob)) {
          std::size_t g;
          if (!pets.empty() && rng.bernoulli(spec.pet_word_prob)) {
            g = pets[rng.uniform_index(pets.size())];
          } else {
            g = rng.zipf(spec.shared_concepts, spec.general_zipf);
          }
          forms = &general_forms[g];
        } else {
          std::size_t src_topic = topic;
          if (spec.topics > 1 && spec.own_topic_prob < 1.0 &&
              !rng.bernoulli(spec.own_topic_prob)) {
            src_topic = rng.uniform_index(spec.topics - 1);
            if (src_topic >= topic) ++src_topic;
          }
          const std::size_t local =
              rng.zipf(spec.concepts_per_topic, spec.concept_zipf);
          forms = &out.concept_forms[src_topic * spec.concepts_per_topic +
                                     local];
        }
        std::size_t f;
        if (spec.consistent_forms_per_doc) {
          auto it = chosen_form.find(forms);
          if (it == chosen_form.end()) {
            f = rng.zipf(forms->size(), spec.form_zipf);
            chosen_form.emplace(forms, f);
          } else {
            f = it->second;
          }
        } else {
          f = rng.zipf(forms->size(), spec.form_zipf);
        }
        if (!body.empty()) body += ' ';
        body += (*forms)[f];
      }
      std::string label = "D";
      label += std::to_string(out.docs.size());
      out.docs.push_back({std::move(label), std::move(body)});
      out.doc_topics.push_back(topic);
    }
  }

  // Queries: voice `query_len` distinct concepts of one topic, choosing the
  // dominant form with prob (1 - query_offform_prob) and a rarer synonym
  // otherwise.
  for (std::size_t topic = 0; topic < spec.topics; ++topic) {
    eval::DocSet relevant;
    for (std::size_t d = 0; d < num_docs; ++d) {
      if (out.doc_topics[d] == topic) relevant.insert(d);
    }
    for (std::size_t q = 0; q < spec.queries_per_topic; ++q) {
      const std::size_t len =
          std::min(spec.query_len, spec.concepts_per_topic);
      const auto picks = rng.sample_without_replacement(
          spec.concepts_per_topic, len);
      std::string body;
      for (std::size_t local : picks) {
        const auto& forms =
            out.concept_forms[topic * spec.concepts_per_topic + local];
        std::size_t f = 0;
        if (forms.size() > 1 && rng.bernoulli(spec.query_offform_prob)) {
          f = 1 + rng.uniform_index(forms.size() - 1);
        }
        if (!body.empty()) body += ' ';
        body += forms[f];
      }
      out.queries.push_back(Query{std::move(body), relevant, topic});
    }
  }
  return out;
}

}  // namespace lsi::synth
