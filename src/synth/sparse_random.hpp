#pragma once
// Random sparse term-document-like matrices at TREC-style densities
// (Section 5.3: ~70,000 x 90,000 with 0.001-0.002% nonzeros) for the
// computational-scaling benches.

#include <cstdint>

#include "la/sparse.hpp"

namespace lsi::synth {

/// m x n sparse matrix with approximately `density` fraction of nonzeros,
/// positive values distributed like term frequencies (1 + floor(|N(0,1.5)|)).
/// At most one entry per sampled (i, j); duplicates merge.
lsi::la::CscMatrix random_sparse_matrix(lsi::la::index_t m,
                                        lsi::la::index_t n, double density,
                                        std::uint64_t seed);

}  // namespace lsi::synth
