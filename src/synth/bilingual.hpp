#pragma once
// Bilingual synthetic corpus for the cross-language retrieval experiment
// (Section 5.4, Landauer & Littman's method): the training matrix is built
// from *dual-language* documents (each document's language-A and language-B
// renderings concatenated), after which monolingual documents fold in and
// queries in either language retrieve documents in the other.
//
// The two languages are disjoint surface vocabularies over the same latent
// concepts ("aNNfM" vs "bNNfM"), the synthetic analogue of the French /
// English mated abstracts.

#include <cstdint>
#include <string>
#include <vector>

#include "eval/metrics.hpp"
#include "text/document.hpp"

namespace lsi::synth {

struct BilingualSpec {
  std::size_t topics = 8;
  std::size_t concepts_per_topic = 10;
  std::size_t forms_per_concept = 2;  ///< synonyms within each language
  std::size_t docs_per_topic = 24;
  double mean_doc_len = 30.0;
  /// Probability a token's concept comes from the document's own topic (the
  /// remainder from a random other topic); < 1 makes retrieval non-trivial.
  double own_topic_prob = 1.0;
  std::size_t queries_per_topic = 3;
  std::size_t query_len = 5;
  std::uint64_t seed = 77;
};

struct BilingualQuery {
  std::string text;       ///< single-language text
  eval::DocSet relevant;  ///< same-topic documents (indices shared by all views)
  std::size_t topic = 0;
};

struct BilingualCorpus {
  /// Training view: every document as the concatenation of both renderings.
  text::Collection dual;
  /// Monolingual views of the same documents (index-aligned with `dual`).
  text::Collection mono_a;
  text::Collection mono_b;
  std::vector<std::size_t> doc_topics;
  std::vector<BilingualQuery> queries_a;  ///< language-A queries
  std::vector<BilingualQuery> queries_b;  ///< language-B queries
};

BilingualCorpus generate_bilingual_corpus(const BilingualSpec& spec);

}  // namespace lsi::synth
