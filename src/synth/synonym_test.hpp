#pragma once
// TOEFL-style synonym test generator (Section 5.4, "Modeling Human
// Memory"): each item is a stem word, one true synonym (a different surface
// form of the same latent concept) and three distractors from other topics.
// The paper: LSI scored 64% vs 33% for word-overlap methods.

#include <cstdint>
#include <string>
#include <vector>

#include "synth/corpus.hpp"

namespace lsi::synth {

struct SynonymItem {
  std::string stem;
  std::vector<std::string> choices;  ///< 4 alternatives
  std::size_t correct = 0;           ///< index of the synonym in `choices`
};

/// Builds up to `max_items` test items from concepts with at least two
/// distinct surface forms. Only forms the corpus actually voices somewhere
/// should be answerable; callers typically filter to the indexed vocabulary.
std::vector<SynonymItem> make_synonym_test(const SyntheticCorpus& corpus,
                                           std::size_t max_items,
                                           std::uint64_t seed);

}  // namespace lsi::synth
