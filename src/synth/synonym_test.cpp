#include "synth/synonym_test.hpp"

#include "util/rng.hpp"

namespace lsi::synth {

std::vector<SynonymItem> make_synonym_test(const SyntheticCorpus& corpus,
                                           std::size_t max_items,
                                           std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<SynonymItem> items;
  const std::size_t num_concepts = corpus.concept_forms.size();
  if (num_concepts < 4) return items;

  std::vector<std::size_t> candidates;
  for (std::size_t c = 0; c < num_concepts; ++c) {
    if (corpus.concept_forms[c].size() >= 2 &&
        corpus.concept_forms[c][0] != corpus.concept_forms[c][1]) {
      candidates.push_back(c);
    }
  }
  rng.shuffle(candidates);

  for (std::size_t c : candidates) {
    if (items.size() >= max_items) break;
    SynonymItem item;
    // Stem: the rarer form; synonym: the dominant form (mirrors a TOEFL
    // item where the stem is an uncommon word).
    item.stem = corpus.concept_forms[c][1];
    const std::string synonym = corpus.concept_forms[c][0];

    // Distractors: dominant forms of concepts from *other* topics.
    std::vector<std::string> distractors;
    for (int attempt = 0; attempt < 64 && distractors.size() < 3; ++attempt) {
      const std::size_t other = rng.uniform_index(num_concepts);
      if (corpus.concept_topic[other] == corpus.concept_topic[c]) continue;
      const std::string& d = corpus.concept_forms[other][0];
      if (d == synonym || d == item.stem) continue;
      bool dup = false;
      for (const auto& existing : distractors) dup = dup || existing == d;
      if (!dup) distractors.push_back(d);
    }
    if (distractors.size() < 3) continue;

    item.choices = {synonym, distractors[0], distractors[1], distractors[2]};
    // Shuffle choices, tracking the synonym's slot.
    for (std::size_t i = item.choices.size(); i > 1; --i) {
      const std::size_t j = rng.uniform_index(i);
      std::swap(item.choices[i - 1], item.choices[j]);
    }
    for (std::size_t i = 0; i < item.choices.size(); ++i) {
      if (item.choices[i] == synonym) item.correct = i;
    }
    items.push_back(std::move(item));
  }
  return items;
}

}  // namespace lsi::synth
