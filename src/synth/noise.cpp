#include "synth/noise.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace lsi::synth {

namespace {

std::string corrupt_word(const std::string& word, util::Rng& rng) {
  if (word.empty()) return word;
  std::string out = word;
  const auto pos = static_cast<std::size_t>(rng.uniform_index(out.size()));
  const char random_char = static_cast<char>('a' + rng.uniform_index(26));
  switch (rng.uniform_index(4)) {
    case 0:  // substitution
      out[pos] = random_char;
      break;
    case 1:  // deletion (keep at least one character)
      if (out.size() > 1) out.erase(pos, 1);
      break;
    case 2:  // insertion
      out.insert(pos, 1, random_char);
      break;
    default:  // adjacent transposition
      if (out.size() > 1) {
        const std::size_t p = std::min(pos, out.size() - 2);
        std::swap(out[p], out[p + 1]);
      }
      break;
  }
  return out;
}

}  // namespace

std::string corrupt_text(const std::string& text, const NoiseSpec& spec,
                         util::Rng& rng) {
  const auto words = util::split(text, " \t\n");
  std::string out;
  for (const auto& w : words) {
    if (!out.empty()) out += ' ';
    out += rng.bernoulli(spec.word_error_rate) ? corrupt_word(w, rng) : w;
  }
  return out;
}

double word_error_fraction(const std::string& a, const std::string& b) {
  const auto wa = util::split(a, " \t\n");
  const auto wb = util::split(b, " \t\n");
  const std::size_t n = std::min(wa.size(), wb.size());
  if (n == 0) return 0.0;
  std::size_t diff = wa.size() > wb.size() ? wa.size() - wb.size()
                                           : wb.size() - wa.size();
  for (std::size_t i = 0; i < n; ++i) diff += (wa[i] != wb[i]);
  return static_cast<double>(diff) /
         static_cast<double>(std::max(wa.size(), wb.size()));
}

}  // namespace lsi::synth
