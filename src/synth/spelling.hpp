#pragma once
// Kukich-style spelling correction with LSI (Section 5.4): "the rows were
// unigrams and bigrams and the columns were correctly spelled words. An
// input word ... was broken down into its [n-grams], the query vector was
// located at the weighted vector sum of these elements, and the nearest
// word in LSI space was returned as the suggested correct spelling."
//
// We use character bigrams + trigrams over '#'-delimited words as the rows.

#include <string>
#include <vector>

#include "la/sparse.hpp"
#include "lsi/semantic_space.hpp"
#include "text/vocabulary.hpp"

namespace lsi::synth {

struct SpellingModel {
  text::Vocabulary lexicon;           ///< column j <-> word j
  text::Vocabulary ngrams;            ///< row i <-> n-gram i
  lsi::la::CscMatrix ngram_by_word;   ///< counts
  core::SemanticSpace space;          ///< truncated SVD of the counts
};

/// Character bigrams + trigrams of "#word#".
std::vector<std::string> word_ngrams(const std::string& word);

/// Builds the n-gram x word matrix over `lexicon` and its rank-k space.
SpellingModel build_spelling_model(const std::vector<std::string>& lexicon,
                                   lsi::la::index_t k);

struct SpellingSuggestion {
  std::string word;
  double cosine = 0.0;
};

/// Ranks lexicon words by nearness to the (possibly misspelled) input in
/// the LSI space.
std::vector<SpellingSuggestion> suggest_corrections(
    const SpellingModel& model, const std::string& input, std::size_t top);

}  // namespace lsi::synth
