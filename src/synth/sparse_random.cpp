#include "synth/sparse_random.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace lsi::synth {

lsi::la::CscMatrix random_sparse_matrix(lsi::la::index_t m,
                                        lsi::la::index_t n, double density,
                                        std::uint64_t seed) {
  util::Rng rng(seed);
  lsi::la::CooBuilder builder(m, n);
  const auto target = static_cast<std::uint64_t>(
      density * static_cast<double>(m) * static_cast<double>(n));
  for (std::uint64_t e = 0; e < target; ++e) {
    const auto i = static_cast<lsi::la::index_t>(rng.uniform_index(m));
    const auto j = static_cast<lsi::la::index_t>(rng.uniform_index(n));
    const double v = 1.0 + std::floor(std::fabs(rng.normal(0.0, 1.5)));
    builder.add(i, j, v);
  }
  return builder.to_csc();
}

}  // namespace lsi::synth
