#pragma once
// The paper's running example, verbatim:
//   * Table 2 — 14 MEDLINE-derived medical topics (M1..M14);
//   * Table 5 — 2 additional topics used for updating (M15, M16);
//   * Table 3 — the 18 x 14 term-document matrix, exactly as printed;
//   * Figure 5 — the printed U_2, Sigma_2 and query coordinates, used as
//     numerical oracles for the SVD and the query projection;
//   * Table 4 — the published ranked retrieval lists for k = 2, 4, 8.
//
// Known discrepancy preserved on purpose: the topic *text* puts the term
// "respect" in M9 and M12, but the printed Table 3 marks M8 and M12. All of
// the paper's downstream numbers (Figure 5, Table 4) are consistent with the
// *printed* matrix, so kTable3Counts is the printed version; the parser
// reproduction bench reports the one-cell difference explicitly.

#include <string>
#include <vector>

#include "la/dense.hpp"
#include "la/sparse.hpp"
#include "text/document.hpp"

namespace lsi::data {

/// Table 2: the 14 original medical topics.
const lsi::text::Collection& med_topics();

/// Table 5: the two update topics (M15, M16).
const lsi::text::Collection& med_update_topics();

/// med_topics() + med_update_topics() (M1..M16).
lsi::text::Collection med_all_topics();

/// Table 3's 18 indexed terms, in the printed (alphabetical) order.
const std::vector<std::string>& table3_terms();

/// Table 3: the printed 18 x 14 raw-count matrix.
const lsi::la::CscMatrix& table3_counts();

/// The 18 x 2 term-document columns for M15/M16 under the Table 3
/// vocabulary (used by the folding-in and SVD-updating examples).
const lsi::la::CscMatrix& update_document_columns();

/// Figure 5 oracle: the printed U_2 (18 x 2).
const lsi::la::DenseMatrix& figure5_u2();

/// Figure 5 oracle: Sigma_2 = diag(3.5919, 2.6471).
const std::vector<double>& figure5_sigma();

/// Figure 5 oracle: coordinates of the query "age blood abnormalities".
const std::vector<double>& figure5_query_coords();

/// The example query of Section 3.1.
inline constexpr const char* kQueryText = "age of children with blood abnormalities";

/// One (label, cosine) row of a published ranking.
struct RankedDoc {
  std::string label;
  double cosine;
};

/// Table 4 oracle: returned documents (cosine >= 0.40) for a given k.
/// Supported k: 2, 4, 8.
const std::vector<RankedDoc>& table4_ranking(int k);

/// Section 3.2 oracles: label sets returned by LSI at thresholds .85/.75 and
/// by lexical matching.
const std::vector<std::string>& lsi_results_at_085();
const std::vector<std::string>& lsi_extra_at_075();
const std::vector<std::string>& lexical_match_results();

}  // namespace lsi::data
