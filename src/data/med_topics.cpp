#include "data/med_topics.hpp"

#include <stdexcept>

namespace lsi::data {

namespace {

using lsi::la::CooBuilder;
using lsi::la::CscMatrix;
using lsi::la::DenseMatrix;

/// Builds a CSC matrix from (term-row, doc-col) incidence lists.
CscMatrix incidence(lsi::la::index_t rows, lsi::la::index_t cols,
                    const std::vector<std::vector<int>>& cols_per_row) {
  CooBuilder b(rows, cols);
  for (lsi::la::index_t i = 0; i < cols_per_row.size(); ++i) {
    for (int j : cols_per_row[i]) b.add(i, static_cast<lsi::la::index_t>(j), 1.0);
  }
  return b.to_csc();
}

}  // namespace

const lsi::text::Collection& med_topics() {
  static const lsi::text::Collection topics = {
      {"M1",
       "study of depressed patients after discharge with regard to age of "
       "onset and culture"},
      {"M2",
       "culture of pleuropneumonia like organisms found in vaginal discharge "
       "of patients"},
      {"M3",
       "study showed oestrogen production is depressed by ovarian "
       "irradiation"},
      {"M4",
       "cortisone rapidly depressed the secondary rise in oestrogen output "
       "of patients"},
      {"M5",
       "boys tend to react to death anxiety by acting out behavior while "
       "girls tended to become depressed"},
      {"M6",
       "changes in children s behavior following hospitalization studied a "
       "week after discharge"},
      {"M7", "surgical technique to close ventricular septal defects"},
      {"M8",
       "chromosomal abnormalities in blood cultures and bone marrow from "
       "leukaemic patients"},
      {"M9",
       "study of christmas disease with respect to generation and culture"},
      {"M10",
       "insulin not responsible for metabolic abnormalities accompanying a "
       "prolonged fast"},
      {"M11",
       "close relationship between high blood pressure and vascular "
       "disease"},
      {"M12",
       "mouse kidneys show a decline with respect to age in the ability to "
       "concentrate the urine during a water fast"},
      {"M13",
       "fast cell generation in the eye lens epithelium of rats"},
      {"M14", "fast rise of cerebral oxygen pressure in rats"},
  };
  return topics;
}

const lsi::text::Collection& med_update_topics() {
  static const lsi::text::Collection topics = {
      {"M15", "behavior of rats after detected rise in oestrogen"},
      {"M16", "depressed patients who feel the pressure to fast"},
  };
  return topics;
}

lsi::text::Collection med_all_topics() {
  lsi::text::Collection all = med_topics();
  const auto& extra = med_update_topics();
  all.insert(all.end(), extra.begin(), extra.end());
  return all;
}

const std::vector<std::string>& table3_terms() {
  static const std::vector<std::string> terms = {
      "abnormalities", "age",        "behavior",  "blood",    "close",
      "culture",       "depressed",  "discharge", "disease",  "fast",
      "generation",    "oestrogen",  "patients",  "pressure", "rats",
      "respect",       "rise",       "study"};
  return terms;
}

const CscMatrix& table3_counts() {
  // Column indices are 0-based documents (M1 -> 0, ..., M14 -> 13), exactly
  // as printed in Table 3 (including "respect" marked in M8 rather than the
  // M9 the topic text implies).
  static const CscMatrix a = incidence(
      18, 14,
      {
          /* abnormalities */ {7, 9},
          /* age           */ {0, 11},
          /* behavior      */ {4, 5},
          /* blood         */ {7, 10},
          /* close         */ {6, 10},
          /* culture       */ {0, 1, 7, 8},
          /* depressed     */ {0, 2, 3, 4},
          /* discharge     */ {0, 1, 5},
          /* disease       */ {8, 10},
          /* fast          */ {9, 11, 12, 13},
          /* generation    */ {8, 12},
          /* oestrogen     */ {2, 3},
          /* patients      */ {0, 1, 3, 7},
          /* pressure      */ {10, 13},
          /* rats          */ {12, 13},
          /* respect       */ {7, 11},
          /* rise          */ {3, 13},
          /* study         */ {0, 2, 8},
      });
  return a;
}

const CscMatrix& update_document_columns() {
  // M15: behavior, oestrogen, rats, rise.  M16: depressed, fast, patients,
  // pressure. (Rows follow table3_terms(); "detected"/"feel"/function words
  // are not indexed terms.)
  static const CscMatrix d = [] {
    CooBuilder b(18, 2);
    b.add(2, 0, 1.0);   // behavior
    b.add(11, 0, 1.0);  // oestrogen
    b.add(14, 0, 1.0);  // rats
    b.add(16, 0, 1.0);  // rise
    b.add(6, 1, 1.0);   // depressed
    b.add(9, 1, 1.0);   // fast
    b.add(12, 1, 1.0);  // patients
    b.add(13, 1, 1.0);  // pressure
    return b.to_csc();
  }();
  return d;
}

const DenseMatrix& figure5_u2() {
  static const DenseMatrix u2 = DenseMatrix::from_rows({
      {0.1623, -0.1372},  // abnormalities
      {0.2068, -0.0488},  // age
      {0.0597, 0.0614},   // behavior
      {0.1663, -0.1313},  // blood
      {0.0258, -0.1246},  // close
      {0.4534, 0.0386},   // culture
      {0.3579, 0.1710},   // depressed
      {0.2931, 0.1426},   // discharge
      {0.0690, -0.1576},  // disease
      {0.0940, -0.6535},  // fast
      {0.0599, -0.2378},  // generation
      {0.1560, 0.0661},   // oestrogen
      {0.4948, 0.1091},   // patients
      {0.0460, -0.3393},  // pressure
      {0.0369, -0.4196},  // rats
      {0.1797, -0.1456},  // respect
      {0.1087, -0.2126},  // rise
      {0.3814, 0.0941},   // study
  });
  return u2;
}

const std::vector<double>& figure5_sigma() {
  static const std::vector<double> sigma = {3.5919, 2.6471};
  return sigma;
}

const std::vector<double>& figure5_query_coords() {
  static const std::vector<double> q = {0.1491, -0.1199};
  return q;
}

const std::vector<RankedDoc>& table4_ranking(int k) {
  static const std::vector<RankedDoc> k2 = {
      {"M9", 1.00},  {"M12", 0.88}, {"M8", 0.85}, {"M11", 0.82},
      {"M10", 0.79}, {"M7", 0.74},  {"M14", 0.72}, {"M13", 0.71},
      {"M4", 0.67},  {"M1", 0.56},  {"M2", 0.42},
  };
  static const std::vector<RankedDoc> k4 = {
      {"M8", 0.92},  {"M9", 0.89},  {"M2", 0.64},
      {"M10", 0.48}, {"M12", 0.46}, {"M11", 0.40},
  };
  static const std::vector<RankedDoc> k8 = {
      {"M8", 0.67}, {"M12", 0.55}, {"M10", 0.54},
  };
  switch (k) {
    case 2:
      return k2;
    case 4:
      return k4;
    case 8:
      return k8;
  }
  throw std::invalid_argument("table4_ranking: k must be 2, 4 or 8");
}

const std::vector<std::string>& lsi_results_at_085() {
  static const std::vector<std::string> docs = {"M8", "M9", "M12"};
  return docs;
}

const std::vector<std::string>& lsi_extra_at_075() {
  static const std::vector<std::string> docs = {"M7", "M11"};
  return docs;
}

const std::vector<std::string>& lexical_match_results() {
  static const std::vector<std::string> docs = {"M1", "M8", "M10", "M11",
                                                "M12"};
  return docs;
}

}  // namespace lsi::data
