#pragma once
// The LSI query daemon: an HTTP/1.1 serving layer over ShardedIndex
// (docs/SERVING.md has the full protocol). One epoll event-loop thread owns
// the listening socket, every connection, the parser state machines, and
// the session table; the heavy lifting under each request — scatter-gather
// retrieval, fold-in, consolidation — runs through the thread-safe
// ShardedIndex, so the daemon thread and the per-shard writer threads
// interact exactly as any other ConcurrentIndexer client.
//
// Command surface (JSON responses):
//
//   GET    /search?q=..&top=N[&session=T][&cursor=C][&labels=1]
//              [&nprobe=P | &recall=R | &exact=1][&deadline_ms=D]
//          nprobe/recall/exact steer the cluster-pruned candidate path
//          (lsi/search_options.hpp); invalid combinations answer 400 with a
//          precise message and an expired deadline_ms answers 504
//   POST   /ingest[?session=T][&wait=1]      body: "label\ttext" per line
//   POST   /consolidate
//   GET    /stats                            (chunked transfer coding;
//                                            per-replica rows per shard)
//   POST   /session          DELETE /session?session=T
//   GET    /healthz          POST   /shutdown
//   POST   /replica/eject?shard=S&replica=R
//   POST   /replica/readmit?shard=S&replica=R
//
// /healthz reports replication state (docs/REPLICATION.md): "ok" with every
// replica healthy, "degraded" (still 200 — the cluster serves, reads just
// lost headroom) when replicas are ejected but every shard keeps at least
// one, and 503 "unavailable" when some shard has zero healthy replicas
// (reads fall back to stale snapshots, writes cannot reach quorum).
// /replica/eject and /replica/readmit drive the failover protocol
// explicitly — the serve-smoke kill-one-replica step and the chaos tests
// use them; readmit replays the shard's ingest log before answering.
//
// Admission control maps the library's backpressure onto HTTP:
//
//   429 + Retry-After   a shard's bounded ingest queue refused a document
//                       (kResourceExhausted from try_add)
//   503 + Retry-After   connection/session tables full, server draining,
//                       the index is shut down (kFailedPrecondition), or a
//                       shard lost its replica write quorum (kUnavailable)
//
// Graceful drain (request_drain / POST /shutdown): stop accepting, answer
// everything already buffered, flush outputs, then close; sessions are
// released (dropping their snapshot pins) and the loop exits. A drain
// deadline force-closes stragglers so shutdown is bounded.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "lsi/sharding/sharded_index.hpp"
#include "serve/event_loop.hpp"
#include "serve/http.hpp"
#include "serve/session.hpp"

namespace lsi::serve {

struct ServerOptions {
  /// Loopback only by design: the daemon speaks plaintext HTTP/1.1.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the result from HttpServer::port().
  std::uint16_t port = 0;
  std::size_t max_connections = 1024;
  std::size_t max_sessions = 4096;
  std::chrono::seconds session_ttl{300};
  /// Retry-After value on 429/503 answers.
  unsigned retry_after_seconds = 1;
  /// Hard cap on a single search's ranked depth (sessions page within it).
  std::size_t max_ranking = 1000;
  std::size_t default_page_size = 10;
  /// Force-close stragglers this long after drain starts.
  std::chrono::milliseconds drain_deadline{5000};
  HttpParser::Limits limits;
  std::uint64_t token_seed = 0x5eedf00dULL;
};

class HttpServer {
 public:
  /// The index must outlive the server. The server never shuts the index
  /// down — drain only releases the serving-side state.
  HttpServer(core::ShardedIndex& index, ServerOptions opts = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the event-loop thread. Fails with
  /// kUnavailable-ish Internal on bind errors (port in use).
  Status start();

  /// The bound port (after start(); useful with opts.port = 0).
  std::uint16_t port() const noexcept { return bound_port_; }

  /// Begins graceful drain from any thread; returns immediately.
  void request_drain();

  /// Blocks until the loop thread exits (drain complete or /shutdown).
  void join();

  /// request_drain() + join() with the configured deadline.
  void drain();

  /// True once the loop thread has exited and serving state is released.
  bool stopped() const noexcept {
    return stopped_.load(std::memory_order_acquire);
  }

  /// Point-in-time serving counters (thread-safe snapshot; the /stats
  /// endpoint renders the same numbers plus per-shard tables).
  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_open = 0;
    std::uint64_t requests = 0;
    std::uint64_t responses_2xx = 0;
    std::uint64_t responses_4xx = 0;
    std::uint64_t responses_5xx = 0;
    std::uint64_t backpressure_429 = 0;
    std::uint64_t draining_503 = 0;
    std::uint64_t quorum_503 = 0;
    std::uint64_t parse_errors = 0;
    std::uint64_t sessions_created = 0;
    std::uint64_t sessions_expired = 0;
    std::uint64_t docs_ingested = 0;
    std::uint64_t sessions_open = 0;
  };
  Stats stats() const;

 private:
  struct Connection;
  enum class RunState : int { kRunning = 0, kDraining = 1, kStopped = 2 };

  void loop_main();
  void on_accept(std::uint32_t events);
  void on_connection_event(int fd, std::uint32_t events);
  void process_buffered(Connection& conn);
  void flush(Connection& conn);
  void close_connection(int fd);
  void tick();
  void finish_drain();

  HttpResponse dispatch(const HttpRequest& request);
  HttpResponse handle_search(const HttpRequest& request);
  HttpResponse handle_ingest(const HttpRequest& request);
  HttpResponse handle_consolidate(const HttpRequest& request);
  HttpResponse handle_stats(const HttpRequest& request);
  HttpResponse handle_session_create(const HttpRequest& request);
  HttpResponse handle_session_delete(const HttpRequest& request);
  HttpResponse handle_healthz();
  HttpResponse handle_replica_admin(const HttpRequest& request, bool eject);
  HttpResponse error_response(int status, std::string_view message);
  void count_response(int status);

  core::ShardedIndex& index_;
  ServerOptions opts_;
  EventLoop loop_;
  SessionTable sessions_;
  std::thread thread_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<int> state_{static_cast<int>(RunState::kRunning)};
  std::atomic<bool> stopped_{false};
  std::chrono::steady_clock::time_point started_at_;
  std::chrono::steady_clock::time_point drain_started_;

  std::unordered_map<int, std::unique_ptr<Connection>> connections_;

  // Counters are written on the loop thread, read from anywhere.
  struct AtomicStats {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> responses_2xx{0};
    std::atomic<std::uint64_t> responses_4xx{0};
    std::atomic<std::uint64_t> responses_5xx{0};
    std::atomic<std::uint64_t> backpressure_429{0};
    std::atomic<std::uint64_t> draining_503{0};
    std::atomic<std::uint64_t> quorum_503{0};
    std::atomic<std::uint64_t> parse_errors{0};
    std::atomic<std::uint64_t> sessions_created{0};
    std::atomic<std::uint64_t> sessions_expired{0};
    std::atomic<std::uint64_t> docs_ingested{0};
    std::atomic<std::uint64_t> connections_open{0};
    std::atomic<std::uint64_t> sessions_open{0};
  };
  AtomicStats counters_;
};

}  // namespace lsi::serve
