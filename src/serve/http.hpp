#pragma once
// Dependency-free HTTP/1.1 wire layer for the LSI query daemon
// (docs/SERVING.md): request model, an incremental request parser that
// consumes bytes as they arrive off a non-blocking socket, and response
// serialization with identity (Content-Length) or chunked transfer coding.
//
// The parser is a byte-at-a-time-safe state machine in the pazpar2
// `http.c` tradition: feed() accepts arbitrary fragments (a request split
// at every byte boundary parses identically to one delivered whole), a
// completed request is take()n and the machine re-arms on the leftover
// bytes, so pipelined requests stream out one take() at a time. Protocol
// violations park the parser in a failed state carrying the HTTP status the
// server should answer with before closing:
//
//   400  malformed request line / header, bad Content-Length
//   405  syntactically valid but unsupported method (allowed: GET, POST,
//        DELETE — the command surface of docs/SERVING.md)
//   413  body larger than Limits::max_body_bytes
//   414  request line larger than Limits::max_request_line
//   431  header block larger than Limits::max_header_bytes
//   501  Transfer-Encoding on a request (the daemon accepts identity only)
//   505  HTTP version other than 1.0 / 1.1

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lsi::serve {

/// Canonical reason phrase for the status codes the daemon emits.
std::string_view status_reason(int status) noexcept;

/// Percent-decodes %XX escapes and '+' (as space, per form encoding).
/// Malformed escapes are passed through verbatim rather than rejected.
std::string url_decode(std::string_view s);

/// Minimal JSON string escaping (quotes, backslash, control characters) for
/// the daemon's hand-rolled response bodies.
std::string json_escape(std::string_view s);

/// One parsed request. Header names are lower-cased at parse time; query
/// parameter keys and values are percent-decoded.
struct HttpRequest {
  std::string method;   ///< "GET" / "POST" / "DELETE"
  std::string target;   ///< raw request target, e.g. "/search?q=x%20y"
  std::string path;     ///< decoded path component, e.g. "/search"
  std::vector<std::pair<std::string, std::string>> query;  ///< decoded params
  int version_minor = 1;  ///< 1 for HTTP/1.1, 0 for HTTP/1.0
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; an explicit
  /// Connection header overrides either way.
  bool keep_alive = true;

  /// First header with this (case-insensitive) name, or empty view.
  std::string_view header(std::string_view name) const noexcept;
  /// First query parameter with this name, or `fallback`.
  std::string_view param(std::string_view name,
                         std::string_view fallback = {}) const noexcept;
  bool has_param(std::string_view name) const noexcept;
};

/// Incremental HTTP/1.1 request parser. One instance per connection; after
/// take() it is re-armed for the next pipelined request automatically.
class HttpParser {
 public:
  struct Limits {
    std::size_t max_request_line = 8 * 1024;
    std::size_t max_header_bytes = 16 * 1024;
    std::size_t max_body_bytes = 1 * 1024 * 1024;
  };

  HttpParser() : HttpParser(Limits{}) {}
  explicit HttpParser(Limits limits);

  /// Appends bytes from the wire and advances the state machine as far as
  /// they allow. No-op once failed() (the connection is doomed anyway).
  void feed(std::string_view data);

  /// A full request is parsed and ready to take().
  bool complete() const noexcept { return state_ == State::kComplete; }
  /// Protocol violation: answer with error_status() and close.
  bool failed() const noexcept { return state_ == State::kError; }
  int error_status() const noexcept { return error_status_; }
  const std::string& error_reason() const noexcept { return error_reason_; }

  /// Moves the completed request out and restarts the machine on whatever
  /// bytes followed it (pipelining), which may immediately complete() again.
  HttpRequest take();

  /// Bytes buffered but not yet consumed by a completed request.
  std::size_t buffered() const noexcept { return buffer_.size(); }

 private:
  enum class State { kRequestLine, kHeaders, kBody, kComplete, kError };

  void advance();
  bool parse_request_line(std::string_view line);
  bool parse_header_line(std::string_view line);
  void finish_headers();
  void fail(int status, std::string reason);

  Limits limits_;
  State state_ = State::kRequestLine;
  std::string buffer_;        ///< unconsumed bytes
  std::size_t header_bytes_ = 0;
  std::size_t body_expected_ = 0;
  HttpRequest request_;
  int error_status_ = 400;
  std::string error_reason_;
};

/// One response under assembly. serialize() renders the status line,
/// headers, and the body under the chosen transfer coding.
struct HttpResponse {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Chunked transfer coding instead of Content-Length (the /stats endpoint
  /// streams this way; everything else is identity).
  bool chunked = false;
  bool keep_alive = true;

  void set_header(std::string name, std::string value) {
    headers.emplace_back(std::move(name), std::move(value));
  }
};

/// Renders the complete wire form. Content-Type defaults to
/// application/json when a body is present and none was set; Content-Length
/// or Transfer-Encoding: chunked and the Connection header are always
/// emitted.
std::string serialize(const HttpResponse& response);

/// Parses the query string (everything after '?') into decoded key/value
/// pairs. Exposed for tests.
std::vector<std::pair<std::string, std::string>> parse_query_string(
    std::string_view qs);

}  // namespace lsi::serve
