#include "serve/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace lsi::serve {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ >= 0 && wake_fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::add(int fd, std::uint32_t events, Callback callback) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl add: ") +
                            std::strerror(errno));
  }
  callbacks_[fd] = std::make_shared<Callback>(std::move(callback));
  return Status::Ok();
}

Status EventLoop::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl mod: ") +
                            std::strerror(errno));
  }
  return Status::Ok();
}

void EventLoop::remove(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

void EventLoop::stop() {
  stop_requested_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::defer(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(deferred_mu_);
    deferred_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::set_tick(std::chrono::milliseconds interval,
                         std::function<void()> fn) {
  tick_interval_ = interval;
  tick_ = std::move(fn);
}

void EventLoop::drain_wakeup() {
  std::uint64_t count = 0;
  while (::read(wake_fd_, &count, sizeof count) > 0) {
  }
}

void EventLoop::run_deferred() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(deferred_mu_);
    batch.swap(deferred_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::run() {
  using clock = std::chrono::steady_clock;
  running_.store(true, std::memory_order_release);
  clock::time_point next_tick = clock::now() + tick_interval_;

  epoll_event events[64];
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const auto now = clock::now();
    int timeout_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(next_tick - now)
            .count());
    if (timeout_ms < 0) timeout_ms = 0;
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0 && errno != EINTR) break;

    run_deferred();
    for (int i = 0; i < n; ++i) {
      if (stop_requested_.load(std::memory_order_acquire)) break;
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        drain_wakeup();
        continue;
      }
      // Hold the closure across the call: the callback may remove(fd).
      auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) continue;  // removed by an earlier event
      std::shared_ptr<Callback> cb = it->second;
      (*cb)(events[i].events);
    }
    if (clock::now() >= next_tick) {
      if (tick_) tick_();
      next_tick = clock::now() + tick_interval_;
    }
  }
  run_deferred();
  running_.store(false, std::memory_order_release);
  stop_requested_.store(false, std::memory_order_release);
}

}  // namespace lsi::serve
