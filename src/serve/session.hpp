#pragma once
// Per-client session state for the query daemon (docs/SERVING.md): a token-
// keyed table where each session holds a refcounted pin over one
// ShardedSnapshot generation vector plus the paging cursor of its last
// query.
//
// Why pin: consolidation retires and republishes shard snapshots underneath
// long-lived readers. A session that pages through a ranking must keep
// answering from the generation it started on — both for cursor stability
// (page 3 of the old ranking is meaningless against a new one) and for
// memory safety (the pin handle keeps the retired snapshots alive; see
// ShardedIndex::pin_snapshot). Read-your-writes is a pin *refresh*: after a
// session's own ingest is flushed, the server replaces its pin with the
// current view, so the session's subsequent reads include its writes while
// other sessions keep their older pinned generations.
//
// The table is deliberately NOT thread-safe: the daemon is a single event-
// loop thread and every access happens there (the same discipline keeps the
// connection table lock-free).

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "lsi/sharding/sharded_index.hpp"
#include "util/rng.hpp"

namespace lsi::serve {

struct Session {
  std::string token;
  /// The pinned read view every search in this session answers from.
  std::shared_ptr<const core::ShardedSnapshot> pin;
  std::chrono::steady_clock::time_point last_used;

  /// Paging state of the session's most recent query: the full ranking is
  /// computed once against the pin and paged out by cursor. A change in
  /// either the query text or the retrieval knobs (nprobe/recall/exact —
  /// anything that can alter the ranking) invalidates the cache and
  /// re-ranks; `last_options_key` is the server's canonical encoding of
  /// those knobs.
  std::string last_query;
  std::string last_options_key;
  std::vector<core::ScoredDoc> ranking;
  std::size_t cursor = 0;

  /// Documents this session ingested (reported by /stats).
  std::uint64_t writes = 0;
};

/// Token-keyed session store with LRU-free TTL expiry (sessions die
/// `ttl` after their last touch, checked on the loop's housekeeping tick).
class SessionTable {
 public:
  SessionTable(std::size_t max_sessions, std::chrono::seconds ttl,
               std::uint64_t token_seed);

  /// Creates a session holding `pin`; returns nullptr when the table is at
  /// max_sessions (the caller answers 503). The returned pointer stays
  /// valid until the session is released or expires.
  Session* create(std::shared_ptr<const core::ShardedSnapshot> pin,
                  std::chrono::steady_clock::time_point now);

  /// Looks up and touches; nullptr for unknown tokens.
  Session* find(std::string_view token,
                std::chrono::steady_clock::time_point now);

  /// Explicit release (DELETE /session). False for unknown tokens.
  bool release(std::string_view token);

  /// Drops every session idle past the TTL; returns how many.
  std::size_t evict_expired(std::chrono::steady_clock::time_point now);

  /// Releases everything (drain: every pin drops with it).
  void clear() { sessions_.clear(); }

  std::size_t size() const noexcept { return sessions_.size(); }
  std::chrono::seconds ttl() const noexcept { return ttl_; }

 private:
  std::size_t max_sessions_;
  std::chrono::seconds ttl_;
  util::Rng rng_;
  std::uint64_t next_serial_ = 0;
  std::unordered_map<std::string, std::unique_ptr<Session>> sessions_;
};

}  // namespace lsi::serve
