#pragma once
// A single-threaded epoll event loop — the pazpar2 `eventl.c` architecture
// with a C++ surface: file descriptors register a callback for a level-
// triggered interest set, run() dispatches readiness until stop(), and a
// periodic tick drives housekeeping (session TTL eviction, drain deadlines).
//
// Everything except stop() and defer() must run on the loop thread; both of
// those are thread-safe and wake the loop through an eventfd, which is how
// the serving layer requests drain from outside. Callbacks may add, modify
// or remove fds — including their own — mid-dispatch: dispatch holds a
// shared_ptr to the callback it invokes, so self-removal never frees a
// running closure.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "lsi/status.hpp"

namespace lsi::serve {

class EventLoop {
 public:
  /// Readiness callback; `events` is the epoll event mask (EPOLLIN, ...).
  using Callback = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events` (level-triggered). The loop never closes
  /// registered fds; owners do, after remove().
  Status add(int fd, std::uint32_t events, Callback callback);
  /// Replaces the interest set of a registered fd.
  Status modify(int fd, std::uint32_t events);
  /// Deregisters; safe from inside the fd's own callback.
  void remove(int fd);

  /// Dispatches until stop(). Runs on the caller's thread, which becomes
  /// the loop thread for the duration.
  void run();

  /// Requests loop exit; thread-safe, returns immediately.
  void stop();

  /// Enqueues `fn` to run on the loop thread before the next dispatch
  /// round; thread-safe. The loop wakes immediately.
  void defer(std::function<void()> fn);

  /// Housekeeping hook invoked roughly every `interval` while running.
  void set_tick(std::chrono::milliseconds interval,
                std::function<void()> fn);

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

 private:
  void drain_wakeup();
  void run_deferred();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: stop()/defer() wakeups
  std::unordered_map<int, std::shared_ptr<Callback>> callbacks_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  std::mutex deferred_mu_;
  std::vector<std::function<void()>> deferred_;

  std::chrono::milliseconds tick_interval_{100};
  std::function<void()> tick_;
};

}  // namespace lsi::serve
