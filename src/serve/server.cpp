#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "obs/trace.hpp"

namespace lsi::serve {

namespace {

/// Nonnegative integer parameter, or `fallback` on absence/garbage.
std::size_t parse_size(std::string_view s, std::size_t fallback) {
  if (s.empty()) return fallback;
  std::size_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return fallback;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  return value;
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

/// Parses the /search retrieval knobs — nprobe, recall, exact, deadline_ms —
/// into `opts`. Returns false (with a precise message in `error` for the 400
/// body) on an invalid value or combination. Absent knobs leave the
/// SearchOptions defaults: kAuto search, the library's recall target.
bool parse_search_knobs(const HttpRequest& request, core::SearchOptions& opts,
                        std::string& error) {
  const std::string_view nprobe = request.param("nprobe");
  const std::string_view recall = request.param("recall");
  const std::string_view exact = request.param("exact");
  const std::string_view deadline_ms = request.param("deadline_ms");

  if (!exact.empty() && exact != "0" && exact != "1") {
    error = "exact must be 0 or 1";
    return false;
  }
  const bool want_exact = exact == "1";
  if (want_exact && !nprobe.empty()) {
    error = "nprobe cannot be combined with exact=1";
    return false;
  }
  if (want_exact && !recall.empty()) {
    error = "recall cannot be combined with exact=1";
    return false;
  }
  if (!nprobe.empty() && !recall.empty()) {
    error = "nprobe and recall are mutually exclusive; pass one";
    return false;
  }
  if (want_exact) opts.search = core::SearchMode::kExact;
  if (!nprobe.empty()) {
    const std::size_t v = parse_size(nprobe, 0);
    if (v == 0) {
      error = "nprobe must be a positive integer";
      return false;
    }
    opts.nprobe = v;
  }
  if (!recall.empty()) {
    const std::string text(recall);
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || !(v > 0.0) || v > 1.0) {
      error = "recall must be a number in (0, 1]";
      return false;
    }
    opts.recall_target = v;
  }
  if (!deadline_ms.empty()) {
    const std::size_t ms = parse_size(deadline_ms, 0);
    if (ms == 0) {
      error = "deadline_ms must be a positive integer";
      return false;
    }
    opts.deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  }

  // Gather knobs (docs/GATHER.md): merge policy, RRF constant, near-dup
  // collapse threshold, facet count.
  if (const std::string_view merge = request.param("merge"); !merge.empty()) {
    if (!gather::parse_merge_policy(merge, opts.merge)) {
      error = "merge must be one of cosine, zscore, rrf";
      return false;
    }
  }
  if (const std::string_view rrf_k = request.param("rrf_k");
      !rrf_k.empty()) {
    const std::string text(rrf_k);
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || !(v > 0.0)) {
      error = "rrf_k must be a positive number";
      return false;
    }
    opts.rrf_k = v;
  }
  if (const std::string_view collapse = request.param("collapse");
      !collapse.empty()) {
    const std::string text(collapse);
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || !(v > 0.0) || v > 1.0) {
      error = "collapse must be a cosine threshold in (0, 1]";
      return false;
    }
    opts.collapse_cosine = v;
  }
  if (const std::string_view facets = request.param("facets");
      !facets.empty()) {
    const std::size_t v = parse_size(facets, 0);
    if (v == 0) {
      error = "facets must be a positive integer";
      return false;
    }
    opts.facets = v;
  }
  return true;
}

/// Canonical encoding of the ranking-affecting knobs for the session cache:
/// a session re-ranks when the query text OR this key changes. deadline_ms
/// is deliberately excluded (a latency budget never alters the ranking).
std::string search_knobs_key(const HttpRequest& request) {
  std::string key;
  key += request.param("nprobe");
  key += '|';
  key += request.param("recall");
  key += '|';
  key += request.param("exact");
  key += '|';
  key += request.param("merge");
  key += '|';
  key += request.param("rrf_k");
  return key;
}

std::string generations_json(const std::vector<std::uint64_t>& gens) {
  std::string out = "[";
  for (std::size_t i = 0; i < gens.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(gens[i]);
  }
  out += ']';
  return out;
}

std::string ranking_page_json(const std::vector<core::ScoredDoc>& ranking,
                              std::size_t begin, std::size_t end) {
  std::string out = "[";
  for (std::size_t i = begin; i < end; ++i) {
    if (i != begin) out += ',';
    out += "{\"doc\":";
    out += std::to_string(ranking[i].doc);
    out += ",\"cosine\":";
    append_double(out, ranking[i].cosine);
    out += '}';
  }
  out += ']';
  return out;
}

}  // namespace

/// One accepted socket: its parser, its pending output, and the flags the
/// state machine needs. Owned by the loop thread exclusively.
struct HttpServer::Connection {
  Connection(int fd_in, HttpParser::Limits limits)
      : fd(fd_in), parser(limits) {}
  int fd;
  HttpParser parser;
  std::string outbuf;
  std::size_t out_pos = 0;
  bool close_after_flush = false;
  bool want_write = false;  ///< EPOLLOUT currently in the interest set
};

HttpServer::HttpServer(core::ShardedIndex& index, ServerOptions opts)
    : index_(index),
      opts_(std::move(opts)),
      sessions_(opts_.max_sessions, opts_.session_ttl, opts_.token_seed) {}

HttpServer::~HttpServer() {
  if (thread_.joinable()) {
    request_drain();
    thread_.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Status HttpServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparseable host: " + opts_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    return Status::Internal(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port_ = ntohs(bound.sin_port);

  if (Status s = loop_.add(listen_fd_, EPOLLIN,
                           [this](std::uint32_t ev) { on_accept(ev); });
      !s.ok()) {
    return s;
  }
  loop_.set_tick(std::chrono::milliseconds(50), [this] { tick(); });
  started_at_ = std::chrono::steady_clock::now();
  thread_ = std::thread([this] { loop_main(); });
  return Status::Ok();
}

void HttpServer::loop_main() {
  loop_.run();
  // Whatever survived the drain deadline: hard-close and release.
  for (auto& [fd, conn] : connections_) ::close(fd);
  connections_.clear();
  counters_.connections_open.store(0, std::memory_order_relaxed);
  sessions_.clear();
  counters_.sessions_open.store(0, std::memory_order_relaxed);
  state_.store(static_cast<int>(RunState::kStopped),
               std::memory_order_release);
  stopped_.store(true, std::memory_order_release);
}

void HttpServer::request_drain() {
  if (stopped_.load(std::memory_order_acquire)) return;
  loop_.defer([this] {
    if (state_.load(std::memory_order_relaxed) !=
        static_cast<int>(RunState::kRunning)) {
      return;
    }
    state_.store(static_cast<int>(RunState::kDraining),
                 std::memory_order_release);
    drain_started_ = std::chrono::steady_clock::now();
    obs::count("serve.drains");
    if (listen_fd_ >= 0) {
      loop_.remove(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    // In-flight = bytes already buffered: answer them, flush, then close.
    // New reads stop (on_connection_event ignores EPOLLIN while draining).
    std::vector<int> fds;
    fds.reserve(connections_.size());
    for (const auto& [fd, conn] : connections_) fds.push_back(fd);
    for (int fd : fds) {
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      Connection& conn = *it->second;
      conn.close_after_flush = true;
      process_buffered(conn);
      if (connections_.count(fd)) flush(conn);
    }
    finish_drain();
  });
}

void HttpServer::join() {
  if (thread_.joinable()) thread_.join();
}

void HttpServer::drain() {
  request_drain();
  join();
}

void HttpServer::finish_drain() {
  if (state_.load(std::memory_order_relaxed) !=
          static_cast<int>(RunState::kDraining) ||
      !connections_.empty()) {
    return;
  }
  // Last writer out: sessions die here, dropping every snapshot pin before
  // the loop reports stopped.
  sessions_.clear();
  counters_.sessions_open.store(0, std::memory_order_relaxed);
  loop_.stop();
}

void HttpServer::tick() {
  const auto now = std::chrono::steady_clock::now();
  const std::size_t evicted = sessions_.evict_expired(now);
  if (evicted > 0) {
    counters_.sessions_expired.fetch_add(evicted, std::memory_order_relaxed);
    counters_.sessions_open.store(sessions_.size(),
                                  std::memory_order_relaxed);
    obs::count("serve.sessions_expired", evicted);
  }
  obs::gauge("serve.connections", static_cast<double>(connections_.size()));
  obs::gauge("serve.sessions", static_cast<double>(sessions_.size()));
  obs::gauge("serve.pinned_snapshots", static_cast<double>(index_.pinned()));

  if (state_.load(std::memory_order_relaxed) ==
          static_cast<int>(RunState::kDraining) &&
      now - drain_started_ > opts_.drain_deadline) {
    std::vector<int> fds;
    for (const auto& [fd, conn] : connections_) fds.push_back(fd);
    for (int fd : fds) close_connection(fd);
    finish_drain();
  }
}

void HttpServer::on_accept(std::uint32_t) {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // EMFILE etc: retry on the next readiness
    }
    if (connections_.size() >= opts_.max_connections) {
      // Admission control at the door: a one-shot 503 with Retry-After.
      counters_.draining_503.fetch_add(1, std::memory_order_relaxed);
      obs::count("serve.overload_503");
      HttpResponse resp;
      resp.status = 503;
      resp.keep_alive = false;
      resp.set_header("Retry-After", std::to_string(opts_.retry_after_seconds));
      resp.body = "{\"error\":\"connection table full\"}";
      const std::string wire = serialize(resp);
      [[maybe_unused]] ssize_t n =
          ::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_unique<Connection>(fd, opts_.limits);
    if (!loop_.add(fd, EPOLLIN,
                   [this, fd](std::uint32_t ev) {
                     on_connection_event(fd, ev);
                   })
             .ok()) {
      ::close(fd);
      continue;
    }
    connections_.emplace(fd, std::move(conn));
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    counters_.connections_open.store(connections_.size(),
                                     std::memory_order_relaxed);
    obs::count("serve.connections_accepted");
  }
}

void HttpServer::on_connection_event(int fd, std::uint32_t events) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;

  if (events & (EPOLLHUP | EPOLLERR)) {
    close_connection(fd);
    return;
  }
  if (events & EPOLLOUT) {
    flush(conn);
    if (!connections_.count(fd)) return;
  }
  if ((events & EPOLLIN) &&
      state_.load(std::memory_order_relaxed) ==
          static_cast<int>(RunState::kRunning)) {
    char buf[16384];
    bool peer_closed = false;
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n > 0) {
        conn.parser.feed(std::string_view(buf, static_cast<std::size_t>(n)));
        continue;
      }
      if (n == 0) {
        peer_closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      peer_closed = true;
      break;
    }
    process_buffered(conn);
    if (!connections_.count(fd)) return;
    if (peer_closed) conn.close_after_flush = true;
    flush(conn);
    if (!connections_.count(fd)) return;
    if (peer_closed && conn.outbuf.empty()) close_connection(fd);
  }
}

void HttpServer::process_buffered(Connection& conn) {
  while (conn.parser.complete() && !conn.close_after_flush) {
    const HttpRequest request = conn.parser.take();
    HttpResponse response = dispatch(request);
    if (!request.keep_alive) response.keep_alive = false;
    if (state_.load(std::memory_order_relaxed) !=
        static_cast<int>(RunState::kRunning)) {
      response.keep_alive = false;
    }
    if (!response.keep_alive) conn.close_after_flush = true;
    conn.outbuf += serialize(response);
    count_response(response.status);
  }
  if (conn.parser.failed()) {
    counters_.parse_errors.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve.parse_errors");
    HttpResponse response =
        error_response(conn.parser.error_status(), conn.parser.error_reason());
    response.keep_alive = false;
    conn.outbuf += serialize(response);
    count_response(response.status);
    conn.close_after_flush = true;
  }
}

void HttpServer::flush(Connection& conn) {
  const int fd = conn.fd;
  while (conn.out_pos < conn.outbuf.size()) {
    const ssize_t n = ::send(fd, conn.outbuf.data() + conn.out_pos,
                             conn.outbuf.size() - conn.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.want_write) {
        conn.want_write = true;
        (void)loop_.modify(fd, EPOLLIN | EPOLLOUT);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    close_connection(fd);
    return;
  }
  conn.outbuf.clear();
  conn.out_pos = 0;
  if (conn.want_write) {
    conn.want_write = false;
    (void)loop_.modify(fd, EPOLLIN);
  }
  if (conn.close_after_flush) close_connection(fd);
}

void HttpServer::close_connection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  loop_.remove(fd);
  ::close(fd);
  connections_.erase(it);
  counters_.connections_open.store(connections_.size(),
                                   std::memory_order_relaxed);
  if (state_.load(std::memory_order_relaxed) ==
      static_cast<int>(RunState::kDraining)) {
    finish_drain();
  }
}

// ---------------------------------------------------------------------------
// Command dispatch
// ---------------------------------------------------------------------------

void HttpServer::count_response(int status) {
  if (status < 400) {
    counters_.responses_2xx.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve.responses_2xx");
  } else if (status < 500) {
    counters_.responses_4xx.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve.responses_4xx");
  } else {
    counters_.responses_5xx.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve.responses_5xx");
  }
}

HttpResponse HttpServer::error_response(int status, std::string_view message) {
  HttpResponse resp;
  resp.status = status;
  if (status == 429 || status == 503) {
    resp.set_header("Retry-After", std::to_string(opts_.retry_after_seconds));
  }
  resp.body = "{\"error\":\"";
  resp.body += json_escape(message);
  resp.body += "\"}";
  return resp;
}

HttpResponse HttpServer::dispatch(const HttpRequest& request) {
  LSI_OBS_SPAN(span, "serve.request");
  counters_.requests.fetch_add(1, std::memory_order_relaxed);
  obs::count("serve.requests");

  const std::string& path = request.path;
  const std::string& method = request.method;
  auto method_not_allowed = [&](const char* allow) {
    HttpResponse resp = error_response(405, "method not allowed");
    resp.set_header("Allow", allow);
    return resp;
  };

  if (path == "/search") {
    if (method != "GET") return method_not_allowed("GET");
    return handle_search(request);
  }
  if (path == "/ingest") {
    if (method != "POST") return method_not_allowed("POST");
    return handle_ingest(request);
  }
  if (path == "/consolidate") {
    if (method != "POST") return method_not_allowed("POST");
    return handle_consolidate(request);
  }
  if (path == "/stats") {
    if (method != "GET") return method_not_allowed("GET");
    return handle_stats(request);
  }
  if (path == "/session") {
    if (method == "POST") return handle_session_create(request);
    if (method == "DELETE") return handle_session_delete(request);
    return method_not_allowed("POST, DELETE");
  }
  if (path == "/healthz") {
    if (method != "GET") return method_not_allowed("GET");
    return handle_healthz();
  }
  if (path == "/replica/eject") {
    if (method != "POST") return method_not_allowed("POST");
    return handle_replica_admin(request, /*eject=*/true);
  }
  if (path == "/replica/readmit") {
    if (method != "POST") return method_not_allowed("POST");
    return handle_replica_admin(request, /*eject=*/false);
  }
  if (path == "/shutdown") {
    if (method != "POST") return method_not_allowed("POST");
    // Answer first, drain after: request_drain defers onto this loop, so
    // the drain runs after this response is queued and flushed.
    request_drain();
    HttpResponse resp;
    resp.keep_alive = false;
    resp.body = "{\"draining\":true}";
    return resp;
  }
  return error_response(404, "no such command: " + path);
}

HttpResponse HttpServer::handle_search(const HttpRequest& request) {
  LSI_OBS_SPAN(span, "serve.search");
  const std::size_t page =
      std::min(parse_size(request.param("top"), opts_.default_page_size),
               opts_.max_ranking);
  const std::string_view token = request.param("session");
  const std::string_view q = request.param("q");

  core::SearchOptions sopts;
  std::string knob_error;
  if (!parse_search_knobs(request, sopts, knob_error)) {
    return error_response(400, knob_error);
  }
  // Library status → HTTP status for the checked retrieval path.
  auto status_response = [&](const Status& st) {
    const int http = st.code() == StatusCode::kDeadlineExceeded ? 504
                     : st.code() == StatusCode::kInvalidArgument ? 400
                                                                 : 500;
    return error_response(http, st.message());
  };

  if (token.empty()) {
    // Sessionless: one-shot against the current view, no paging state.
    if (q.empty()) return error_response(400, "missing q parameter");
    sopts.z = page;
    const core::ShardedSnapshot snap = index_.snapshot();
    HttpResponse resp;
    if (request.param("labels") == "1") {
      // Label resolution has no checked variant; enforce the deadline at
      // entry (same coarse granularity as try_rank_batch's entry check).
      if (sopts.deadline_expired()) {
        return error_response(504, "search deadline expired");
      }
      const auto hits = snap.query(q, sopts);
      resp.body = "{\"results\":[";
      for (std::size_t i = 0; i < hits.size(); ++i) {
        if (i) resp.body += ',';
        resp.body += "{\"doc\":";
        resp.body += std::to_string(hits[i].doc);
        resp.body += ",\"label\":\"";
        resp.body += json_escape(hits[i].label);
        resp.body += "\",\"cosine\":";
        append_double(resp.body, hits[i].cosine);
        resp.body += '}';
      }
      resp.body += ']';
    } else if (sopts.facets > 0 ||
               (sopts.collapse_cosine > 0.0 && sopts.collapse_cosine <= 1.0)) {
      // Rich gather path: collapse and/or facets were requested, so answer
      // with the full per-hit shape (fusion score, raw cosine, source shard,
      // collapsed duplicates) plus the facet list.
      auto gathered = snap.try_gather_batch({std::string(q)}, sopts);
      if (!gathered.ok()) return status_response(gathered.status());
      const auto& result = gathered.value()[0];
      resp.body = "{\"results\":[";
      for (std::size_t i = 0; i < result.hits.size(); ++i) {
        const auto& hit = result.hits[i];
        if (i) resp.body += ',';
        resp.body += "{\"doc\":";
        resp.body += std::to_string(hit.doc);
        resp.body += ",\"score\":";
        append_double(resp.body, hit.score);
        resp.body += ",\"cosine\":";
        append_double(resp.body, hit.cosine);
        resp.body += ",\"shard\":";
        resp.body += std::to_string(hit.shard);
        resp.body += ",\"duplicates\":[";
        for (std::size_t d = 0; d < hit.duplicates.size(); ++d) {
          if (d) resp.body += ',';
          resp.body += std::to_string(hit.duplicates[d]);
        }
        resp.body += "]}";
      }
      resp.body += "],\"facets\":[";
      for (std::size_t f = 0; f < result.facets.size(); ++f) {
        if (f) resp.body += ',';
        resp.body += "{\"term\":\"";
        resp.body += json_escape(result.facets[f].term);
        resp.body += "\",\"weight\":";
        append_double(resp.body, result.facets[f].weight);
        resp.body += '}';
      }
      resp.body += ']';
    } else {
      auto ranked = snap.try_rank_batch({std::string(q)}, sopts);
      if (!ranked.ok()) return status_response(ranked.status());
      const auto& list = ranked.value()[0];
      resp.body = "{\"results\":";
      resp.body += ranking_page_json(list, 0, list.size());
    }
    resp.body += ",\"generations\":";
    resp.body += generations_json(snap.generations());
    resp.body += '}';
    return resp;
  }

  Session* session =
      sessions_.find(token, std::chrono::steady_clock::now());
  if (session == nullptr) return error_response(404, "unknown session");

  const std::string knobs_key = search_knobs_key(request);
  if (!q.empty() && (std::string(q) != session->last_query ||
                     knobs_key != session->last_options_key)) {
    // New query (or changed knobs) for this session: rank once against the
    // PINNED view (depth capped at max_ranking) and page from the cache.
    core::SearchOptions qopts = sopts;
    qopts.z = opts_.max_ranking;
    auto ranked = session->pin->try_rank_batch({std::string(q)}, qopts);
    if (!ranked.ok()) return status_response(ranked.status());
    session->ranking = std::move(ranked.value()[0]);
    session->last_query = std::string(q);
    session->last_options_key = knobs_key;
    session->cursor = 0;
  } else if (session->last_query.empty()) {
    return error_response(400, "missing q parameter and no cached query");
  }
  if (request.has_param("cursor")) {
    session->cursor =
        parse_size(request.param("cursor"), session->cursor);
  }

  const std::size_t begin = std::min(session->cursor, session->ranking.size());
  const std::size_t end = std::min(begin + page, session->ranking.size());
  session->cursor = end;

  HttpResponse resp;
  resp.body = "{\"session\":\"";
  resp.body += json_escape(session->token);
  resp.body += "\",\"results\":";
  resp.body += ranking_page_json(session->ranking, begin, end);
  resp.body += ",\"cursor\":";
  resp.body += std::to_string(end);
  resp.body += ",\"total\":";
  resp.body += std::to_string(session->ranking.size());
  resp.body += ",\"more\":";
  resp.body += end < session->ranking.size() ? "true" : "false";
  resp.body += ",\"generations\":";
  resp.body += generations_json(session->pin->generations());
  resp.body += '}';
  return resp;
}

HttpResponse HttpServer::handle_ingest(const HttpRequest& request) {
  LSI_OBS_SPAN(span, "serve.ingest");
  if (request.body.empty()) {
    return error_response(400, "empty ingest body (label\\ttext per line)");
  }
  Session* session = nullptr;
  if (const std::string_view token = request.param("session");
      !token.empty()) {
    session = sessions_.find(token, std::chrono::steady_clock::now());
    if (session == nullptr) return error_response(404, "unknown session");
  }

  std::size_t accepted = 0;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  const std::string& body = request.body;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    std::string_view line(body.data() + pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    pos = eol + 1;
    if (line.empty()) continue;
    ++line_no;
    const std::size_t tab = line.find('\t');
    if (tab == std::string_view::npos) {
      return error_response(
          400, "ingest line " + std::to_string(line_no) + " has no tab");
    }
    text::Document doc{std::string(line.substr(0, tab)),
                       std::string(line.substr(tab + 1))};
    const Status status = index_.try_add(std::move(doc));
    if (status.ok()) {
      ++accepted;
      continue;
    }
    if (status.code() == StatusCode::kResourceExhausted) {
      // The routed shard's bounded queue is full: the library's
      // backpressure becomes HTTP 429 and the client retries after a beat.
      counters_.backpressure_429.fetch_add(1, std::memory_order_relaxed);
      obs::count("serve.backpressure_429");
      HttpResponse resp = error_response(429, "shard ingest queue full");
      resp.body = "{\"error\":\"shard ingest queue full\",\"accepted\":" +
                  std::to_string(accepted) +
                  ",\"rejected_line\":" + std::to_string(line_no) + "}";
      counters_.docs_ingested.fetch_add(accepted, std::memory_order_relaxed);
      if (session) session->writes += accepted;
      return resp;
    }
    if (status.code() == StatusCode::kUnavailable) {
      // The routed shard cannot reach its replica write quorum: the ack is
      // keyed on quorum, so the document is NOT accepted — 503 and the
      // client retries once replicas are readmitted.
      counters_.quorum_503.fetch_add(1, std::memory_order_relaxed);
      obs::count("serve.quorum_503");
      HttpResponse resp = error_response(503, status.message());
      resp.body = "{\"error\":\"" + json_escape(status.message()) +
                  "\",\"accepted\":" + std::to_string(accepted) +
                  ",\"rejected_line\":" + std::to_string(line_no) + "}";
      counters_.docs_ingested.fetch_add(accepted, std::memory_order_relaxed);
      if (session) session->writes += accepted;
      return resp;
    }
    // kFailedPrecondition: the index is shut down underneath the daemon.
    return error_response(503, status.message());
  }
  counters_.docs_ingested.fetch_add(accepted, std::memory_order_relaxed);
  obs::count("serve.docs_ingested", accepted);
  if (session) session->writes += accepted;

  bool refreshed = false;
  if (request.param("wait") == "1") {
    // Read-your-writes: block until every accepted document is folded and
    // published, then refresh the session's pin to the view containing
    // them. Other sessions keep their older pinned generations.
    index_.flush();
    if (session) {
      session->pin = index_.pin_snapshot();
      session->last_query.clear();
      session->ranking.clear();
      session->cursor = 0;
      refreshed = true;
    }
  }

  HttpResponse resp;
  resp.status = 202;
  resp.body = "{\"accepted\":" + std::to_string(accepted) +
              ",\"pin_refreshed\":" + (refreshed ? "true" : "false") + "}";
  return resp;
}

HttpResponse HttpServer::handle_consolidate(const HttpRequest&) {
  LSI_OBS_SPAN(span, "serve.consolidate");
  const Status status = index_.consolidate();
  if (!status.ok()) return error_response(503, status.message());
  HttpResponse resp;
  resp.body = "{\"consolidated\":true,\"generations\":";
  resp.body += generations_json(index_.snapshot().generations());
  resp.body += '}';
  return resp;
}

HttpResponse HttpServer::handle_session_create(const HttpRequest&) {
  Session* session = sessions_.create(index_.pin_snapshot(),
                                      std::chrono::steady_clock::now());
  if (session == nullptr) {
    return error_response(503, "session table full");
  }
  counters_.sessions_created.fetch_add(1, std::memory_order_relaxed);
  counters_.sessions_open.store(sessions_.size(), std::memory_order_relaxed);
  obs::count("serve.sessions_created");
  HttpResponse resp;
  resp.status = 201;
  resp.body = "{\"session\":\"";
  resp.body += json_escape(session->token);
  resp.body += "\",\"generations\":";
  resp.body += generations_json(session->pin->generations());
  resp.body += ",\"ttl_seconds\":";
  resp.body += std::to_string(sessions_.ttl().count());
  resp.body += '}';
  return resp;
}

HttpResponse HttpServer::handle_session_delete(const HttpRequest& request) {
  const std::string_view token = request.param("session");
  if (token.empty()) return error_response(400, "missing session parameter");
  if (!sessions_.release(token)) {
    return error_response(404, "unknown session");
  }
  counters_.sessions_open.store(sessions_.size(), std::memory_order_relaxed);
  obs::count("serve.sessions_released");
  HttpResponse resp;
  resp.body = "{\"released\":true}";
  return resp;
}

HttpResponse HttpServer::handle_healthz() {
  // Replication-aware health: the daemon serves as long as every shard has
  // at least one healthy replica. Losing some (but not all) replicas of a
  // shard is "degraded" — still 200, because reads and quorum writes still
  // work where quorum holds; an operator alerts on the field, a load
  // balancer does not pull the node. A shard at zero healthy replicas is
  // 503: reads fall back to stale snapshots and writes cannot ack.
  const std::size_t shards = index_.num_shards();
  const std::size_t replicas = index_.replicas_per_shard();
  std::size_t degraded_shards = 0;
  std::size_t dead_shards = 0;
  std::string per_shard = "[";
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t healthy = index_.healthy_replicas(s);
    if (healthy == 0) {
      ++dead_shards;
    } else if (healthy < replicas) {
      ++degraded_shards;
    }
    if (s) per_shard += ',';
    per_shard += std::to_string(healthy);
  }
  per_shard += ']';

  const char* status = dead_shards > 0      ? "unavailable"
                       : degraded_shards > 0 ? "degraded"
                                             : "ok";
  HttpResponse resp;
  if (dead_shards > 0) {
    resp.status = 503;
    resp.set_header("Retry-After", std::to_string(opts_.retry_after_seconds));
  }
  resp.body = "{\"status\":\"";
  resp.body += status;
  resp.body += "\",\"replicas_per_shard\":";
  resp.body += std::to_string(replicas);
  resp.body += ",\"healthy_replicas\":";
  resp.body += per_shard;
  resp.body += '}';
  return resp;
}

HttpResponse HttpServer::handle_replica_admin(const HttpRequest& request,
                                              bool eject) {
  LSI_OBS_SPAN(span, eject ? "serve.replica_eject" : "serve.replica_readmit");
  const std::size_t npos = static_cast<std::size_t>(-1);
  const std::size_t shard = parse_size(request.param("shard"), npos);
  const std::size_t replica = parse_size(request.param("replica"), npos);
  if (shard == npos || replica == npos) {
    return error_response(400, "shard and replica parameters are required");
  }
  // readmit replays the shard's ingest log on this (loop) thread before
  // answering: the 200 means the replica is caught up and back in the feed,
  // which is exactly what the scripted failover steps want to assert.
  const Status status = eject ? index_.eject_replica(shard, replica)
                              : index_.readmit_replica(shard, replica);
  if (!status.ok()) {
    const int http =
        status.code() == StatusCode::kInvalidArgument ? 400 : 409;
    return error_response(http, status.message());
  }
  HttpResponse resp;
  resp.body = "{\"shard\":" + std::to_string(shard) +
              ",\"replica\":" + std::to_string(replica) + ",\"state\":\"" +
              (eject ? "ejected" : "healthy") + "\",\"healthy\":" +
              std::to_string(index_.healthy_replicas(shard)) + "}";
  return resp;
}

HttpResponse HttpServer::handle_stats(const HttpRequest&) {
  LSI_OBS_SPAN(span, "serve.stats");
  const Stats s = stats();
  const double uptime = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - started_at_)
                            .count();
  std::string body = "{\"state\":\"";
  body += state_.load(std::memory_order_relaxed) ==
                  static_cast<int>(RunState::kRunning)
              ? "running"
              : "draining";
  body += "\",\"uptime_seconds\":";
  append_double(body, uptime);
  body += ",\"connections\":{\"open\":";
  body += std::to_string(s.connections_open);
  body += ",\"accepted\":";
  body += std::to_string(s.connections_accepted);
  body += "},\"requests\":";
  body += std::to_string(s.requests);
  body += ",\"responses\":{\"2xx\":";
  body += std::to_string(s.responses_2xx);
  body += ",\"4xx\":";
  body += std::to_string(s.responses_4xx);
  body += ",\"5xx\":";
  body += std::to_string(s.responses_5xx);
  body += "},\"backpressure_429\":";
  body += std::to_string(s.backpressure_429);
  body += ",\"quorum_503\":";
  body += std::to_string(s.quorum_503);
  body += ",\"parse_errors\":";
  body += std::to_string(s.parse_errors);
  body += ",\"sessions\":{\"open\":";
  body += std::to_string(s.sessions_open);
  body += ",\"created\":";
  body += std::to_string(s.sessions_created);
  body += ",\"expired\":";
  body += std::to_string(s.sessions_expired);
  body += "},\"pinned_snapshots\":";
  body += std::to_string(index_.pinned());
  body += ",\"docs_ingested\":";
  body += std::to_string(s.docs_ingested);
  // One snapshot feeds BOTH the generation vector and the per-shard rows, so
  // the "generations" array and every row's "generation" (and ANN state) are
  // views of the same pinned IndexSnapshots — exactly what /session reports
  // for a pinned view (ShardedSnapshot is the single source of truth).
  const core::ShardedSnapshot snap = index_.snapshot();
  body += ",\"generations\":";
  body += generations_json(snap.generations());
  // Term-statistics exchange state (docs/GATHER.md): version 0 with
  // enabled=true means configured but never published (cannot happen after
  // a successful build — the build pass publishes v1).
  const auto ts = index_.term_stats_info();
  body += ",\"gather\":{\"term_stats\":{\"enabled\":";
  body += ts.enabled ? "true" : "false";
  body += ",\"version\":";
  body += std::to_string(ts.version);
  body += ",\"docs\":";
  body += std::to_string(ts.docs);
  body += ",\"terms\":";
  body += std::to_string(ts.terms);
  body += "}}";
  body += ",\"shards\":[";
  const auto infos = index_.shard_infos(snap);
  for (std::size_t i = 0; i < infos.size(); ++i) {
    if (i) body += ',';
    body += "{\"shard\":";
    body += std::to_string(infos[i].shard);
    body += ",\"docs\":";
    body += std::to_string(infos[i].docs);
    body += ",\"terms\":";
    body += std::to_string(infos[i].terms);
    body += ",\"k\":";
    body += std::to_string(infos[i].k);
    body += ",\"generation\":";
    body += std::to_string(infos[i].generation);
    body += ",\"queued\":";
    body += std::to_string(infos[i].queued);
    body += ",\"ingested\":";
    body += std::to_string(infos[i].ingested);
    body += ",\"publishes\":";
    body += std::to_string(infos[i].publishes);
    body += ",\"consolidations\":";
    body += std::to_string(infos[i].consolidations);
    body += ",\"ann\":{\"centroids\":";
    body += std::to_string(infos[i].ann_centroids);
    body += ",\"generation\":";
    body += std::to_string(infos[i].ann_generation);
    body += ",\"exact_fallback\":";
    body += infos[i].ann_exact_fallback ? "true" : "false";
    // Per-replica rows: `pinned_replica` is the replica serving THIS pinned
    // view (its generation equals the row's "generation" above); sibling
    // generations may legitimately skew while consolidations land.
    body += "},\"pinned_replica\":";
    body += std::to_string(infos[i].replica);
    body += ",\"healthy_replicas\":";
    body += std::to_string(infos[i].healthy);
    body += ",\"replicas\":[";
    const auto rows = index_.replica_infos(i);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (r) body += ',';
      body += "{\"replica\":";
      body += std::to_string(rows[r].replica);
      body += ",\"state\":\"";
      body += core::replica_state_name(rows[r].state);
      body += "\",\"fed\":";
      body += std::to_string(rows[r].fed);
      body += ",\"queued\":";
      body += std::to_string(rows[r].queued);
      body += ",\"in_flight\":";
      body += std::to_string(rows[r].in_flight);
      body += ",\"generation\":";
      body += std::to_string(rows[r].generation);
      body += ",\"ingested\":";
      body += std::to_string(rows[r].ingested);
      body += ",\"publishes\":";
      body += std::to_string(rows[r].publishes);
      body += ",\"consolidations\":";
      body += std::to_string(rows[r].consolidations);
      body += '}';
    }
    body += "]}";
  }
  body += "]}";

  HttpResponse resp;
  resp.body = std::move(body);
  resp.chunked = true;  // the daemon's demonstration of the chunked coder
  return resp;
}

HttpServer::Stats HttpServer::stats() const {
  Stats s;
  s.connections_accepted =
      counters_.connections_accepted.load(std::memory_order_relaxed);
  s.connections_open =
      counters_.connections_open.load(std::memory_order_relaxed);
  s.requests = counters_.requests.load(std::memory_order_relaxed);
  s.responses_2xx = counters_.responses_2xx.load(std::memory_order_relaxed);
  s.responses_4xx = counters_.responses_4xx.load(std::memory_order_relaxed);
  s.responses_5xx = counters_.responses_5xx.load(std::memory_order_relaxed);
  s.backpressure_429 =
      counters_.backpressure_429.load(std::memory_order_relaxed);
  s.draining_503 = counters_.draining_503.load(std::memory_order_relaxed);
  s.quorum_503 = counters_.quorum_503.load(std::memory_order_relaxed);
  s.parse_errors = counters_.parse_errors.load(std::memory_order_relaxed);
  s.sessions_created =
      counters_.sessions_created.load(std::memory_order_relaxed);
  s.sessions_expired =
      counters_.sessions_expired.load(std::memory_order_relaxed);
  s.docs_ingested = counters_.docs_ingested.load(std::memory_order_relaxed);
  s.sessions_open = counters_.sessions_open.load(std::memory_order_relaxed);
  return s;
}

}  // namespace lsi::serve
