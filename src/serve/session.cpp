#include "serve/session.hpp"

#include <cstdio>

namespace lsi::serve {

SessionTable::SessionTable(std::size_t max_sessions, std::chrono::seconds ttl,
                           std::uint64_t token_seed)
    : max_sessions_(max_sessions), ttl_(ttl), rng_(token_seed) {}

Session* SessionTable::create(
    std::shared_ptr<const core::ShardedSnapshot> pin,
    std::chrono::steady_clock::time_point now) {
  if (sessions_.size() >= max_sessions_) return nullptr;
  // Token = serial + 64 random bits: unique by construction, unguessable
  // enough for a loopback daemon.
  char token[36];
  std::snprintf(token, sizeof token, "s%llx-%016llx",
                static_cast<unsigned long long>(next_serial_++),
                static_cast<unsigned long long>(rng_.next_u64()));
  auto session = std::make_unique<Session>();
  session->token = token;
  session->pin = std::move(pin);
  session->last_used = now;
  Session* raw = session.get();
  sessions_.emplace(raw->token, std::move(session));
  return raw;
}

Session* SessionTable::find(std::string_view token,
                            std::chrono::steady_clock::time_point now) {
  const auto it = sessions_.find(std::string(token));
  if (it == sessions_.end()) return nullptr;
  it->second->last_used = now;
  return it->second.get();
}

bool SessionTable::release(std::string_view token) {
  return sessions_.erase(std::string(token)) > 0;
}

std::size_t SessionTable::evict_expired(
    std::chrono::steady_clock::time_point now) {
  std::size_t evicted = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now - it->second->last_used > ttl_) {
      it = sessions_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

}  // namespace lsi::serve
