#include "serve/http.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace lsi::serve {

namespace {

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// RFC 9110 token characters (method names, header field names).
bool is_token_char(char c) noexcept {
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool is_token(std::string_view s) noexcept {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), is_token_char);
}

int hex_digit(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string to_lower_copy(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

std::string_view status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Content Too Large";
    case 414: return "URI Too Long";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default:  return "Unknown";
  }
}

std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = hex_digit(s[i + 1]);
      const int lo = hex_digit(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back('%');
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out.push_back(hex[(c >> 4) & 0xf]);
          out.push_back(hex[c & 0xf]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> parse_query_string(
    std::string_view qs) {
  std::vector<std::pair<std::string, std::string>> params;
  std::size_t pos = 0;
  while (pos <= qs.size()) {
    const std::size_t amp = std::min(qs.find('&', pos), qs.size());
    const std::string_view piece = qs.substr(pos, amp - pos);
    if (!piece.empty()) {
      const std::size_t eq = piece.find('=');
      if (eq == std::string_view::npos) {
        params.emplace_back(url_decode(piece), "");
      } else {
        params.emplace_back(url_decode(piece.substr(0, eq)),
                            url_decode(piece.substr(eq + 1)));
      }
    }
    if (amp == qs.size()) break;
    pos = amp + 1;
  }
  return params;
}

std::string_view HttpRequest::header(std::string_view name) const noexcept {
  for (const auto& [n, v] : headers) {
    if (iequals(n, name)) return v;
  }
  return {};
}

std::string_view HttpRequest::param(std::string_view name,
                                    std::string_view fallback) const noexcept {
  for (const auto& [n, v] : query) {
    if (n == name) return v;
  }
  return fallback;
}

bool HttpRequest::has_param(std::string_view name) const noexcept {
  for (const auto& [n, v] : query) {
    if (n == name) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// HttpParser
// ---------------------------------------------------------------------------

HttpParser::HttpParser(Limits limits) : limits_(limits) {}

void HttpParser::feed(std::string_view data) {
  if (state_ == State::kError) return;
  buffer_.append(data);
  advance();
}

void HttpParser::fail(int status, std::string reason) {
  state_ = State::kError;
  error_status_ = status;
  error_reason_ = std::move(reason);
}

HttpRequest HttpParser::take() {
  HttpRequest out = std::move(request_);
  request_ = HttpRequest{};
  state_ = State::kRequestLine;
  header_bytes_ = 0;
  body_expected_ = 0;
  // Re-run on leftover bytes: a pipelined successor may already be whole.
  advance();
  return out;
}

void HttpParser::advance() {
  for (;;) {
    switch (state_) {
      case State::kRequestLine: {
        const std::size_t eol = buffer_.find('\n');
        if (eol == std::string::npos) {
          if (buffer_.size() > limits_.max_request_line) {
            fail(414, "request line exceeds " +
                          std::to_string(limits_.max_request_line) + " bytes");
          }
          return;
        }
        if (eol > limits_.max_request_line) {
          fail(414, "request line exceeds " +
                        std::to_string(limits_.max_request_line) + " bytes");
          return;
        }
        std::string_view line(buffer_.data(), eol);
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
        // RFC 9112 tolerance: skip blank line(s) before the request line.
        if (line.empty()) {
          buffer_.erase(0, eol + 1);
          continue;
        }
        if (!parse_request_line(line)) return;  // failed
        buffer_.erase(0, eol + 1);
        state_ = State::kHeaders;
        continue;
      }
      case State::kHeaders: {
        const std::size_t eol = buffer_.find('\n');
        if (eol == std::string::npos) {
          if (header_bytes_ + buffer_.size() > limits_.max_header_bytes) {
            fail(431, "header block exceeds " +
                          std::to_string(limits_.max_header_bytes) + " bytes");
          }
          return;
        }
        header_bytes_ += eol + 1;
        if (header_bytes_ > limits_.max_header_bytes) {
          fail(431, "header block exceeds " +
                        std::to_string(limits_.max_header_bytes) + " bytes");
          return;
        }
        std::string_view line(buffer_.data(), eol);
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
        if (line.empty()) {
          buffer_.erase(0, eol + 1);
          finish_headers();
          if (state_ == State::kError) return;
          continue;
        }
        if (!parse_header_line(line)) return;  // failed
        buffer_.erase(0, eol + 1);
        continue;
      }
      case State::kBody: {
        if (buffer_.size() < body_expected_) return;
        request_.body = buffer_.substr(0, body_expected_);
        buffer_.erase(0, body_expected_);
        state_ = State::kComplete;
        return;
      }
      case State::kComplete:
      case State::kError:
        return;
    }
  }
}

bool HttpParser::parse_request_line(std::string_view line) {
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    fail(400, "malformed request line");
    return false;
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);

  if (!is_token(method)) {
    fail(400, "malformed method token");
    return false;
  }
  if (target.empty() || target.find(' ') != std::string_view::npos) {
    fail(400, "malformed request target");
    return false;
  }
  if (version == "HTTP/1.1") {
    request_.version_minor = 1;
    request_.keep_alive = true;
  } else if (version == "HTTP/1.0") {
    request_.version_minor = 0;
    request_.keep_alive = false;
  } else if (version.substr(0, 5) == "HTTP/") {
    fail(505, "unsupported HTTP version");
    return false;
  } else {
    fail(400, "malformed request line");
    return false;
  }
  if (method != "GET" && method != "POST" && method != "DELETE") {
    fail(405, "method not supported: " + std::string(method));
    return false;
  }
  request_.method = std::string(method);
  request_.target = std::string(target);
  const std::size_t q = target.find('?');
  request_.path = url_decode(target.substr(0, q));
  if (q != std::string_view::npos) {
    request_.query = parse_query_string(target.substr(q + 1));
  }
  return true;
}

bool HttpParser::parse_header_line(std::string_view line) {
  const std::size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    fail(400, "malformed header line");
    return false;
  }
  const std::string_view name = line.substr(0, colon);
  if (!is_token(name)) {
    fail(400, "malformed header name");
    return false;
  }
  std::string_view value = line.substr(colon + 1);
  while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
    value.remove_prefix(1);
  }
  while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
    value.remove_suffix(1);
  }
  request_.headers.emplace_back(to_lower_copy(name), std::string(value));
  return true;
}

void HttpParser::finish_headers() {
  if (!request_.header("transfer-encoding").empty()) {
    fail(501, "transfer codings are not accepted on requests");
    return;
  }
  const std::string_view cl = request_.header("content-length");
  body_expected_ = 0;
  if (!cl.empty()) {
    std::size_t parsed = 0;
    for (char c : cl) {
      if (c < '0' || c > '9') {
        fail(400, "malformed Content-Length");
        return;
      }
      parsed = parsed * 10 + static_cast<std::size_t>(c - '0');
      if (parsed > limits_.max_body_bytes) {
        fail(413, "body exceeds " + std::to_string(limits_.max_body_bytes) +
                      " bytes");
        return;
      }
    }
    body_expected_ = parsed;
  }
  const std::string_view conn = request_.header("connection");
  if (iequals(conn, "close")) {
    request_.keep_alive = false;
  } else if (iequals(conn, "keep-alive")) {
    request_.keep_alive = true;
  }
  state_ = body_expected_ > 0 ? State::kBody : State::kComplete;
}

// ---------------------------------------------------------------------------
// Response serialization
// ---------------------------------------------------------------------------

std::string serialize(const HttpResponse& response) {
  std::string out;
  out.reserve(response.body.size() + 256);
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += status_reason(response.status);
  out += "\r\n";

  bool has_type = false;
  for (const auto& [name, value] : response.headers) {
    if (iequals(name, "Content-Type")) has_type = true;
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  if (!has_type && !response.body.empty()) {
    out += "Content-Type: application/json\r\n";
  }
  out += response.keep_alive ? "Connection: keep-alive\r\n"
                             : "Connection: close\r\n";

  if (response.chunked) {
    out += "Transfer-Encoding: chunked\r\n\r\n";
    // One chunk per 4 KiB window, then the terminal zero chunk.
    constexpr std::size_t kChunk = 4096;
    std::size_t pos = 0;
    while (pos < response.body.size()) {
      const std::size_t n = std::min(kChunk, response.body.size() - pos);
      char size_line[16];
      const int len = std::snprintf(size_line, sizeof size_line, "%zx\r\n", n);
      out.append(size_line, static_cast<std::size_t>(len));
      out.append(response.body, pos, n);
      out += "\r\n";
      pos += n;
    }
    out += "0\r\n\r\n";
  } else {
    out += "Content-Length: ";
    out += std::to_string(response.body.size());
    out += "\r\n\r\n";
    out += response.body;
  }
  return out;
}

}  // namespace lsi::serve
