#pragma once
// Metric primitives for the observability layer (docs/OBSERVABILITY.md):
// monotonic counters, last-value gauges, and fixed-bucket latency histograms
// with interpolated p50/p95/p99, all registered by name in a thread-safe
// MetricsRegistry.
//
// Recording is lock-free (relaxed atomics); only the first lookup of a name
// takes the registry lock. Instrumented code holds Counter*/Histogram*
// references, which stay valid for the registry's lifetime.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

namespace lsi::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (e.g. a dimension, a rate computed once).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Read-only view of a histogram at one instant.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<std::uint64_t> buckets;  ///< per-bucket counts

  double mean() const noexcept { return count ? sum / count : 0.0; }

  /// Quantile estimate for q in [0, 1], by locating the bucket holding the
  /// q-th sample and interpolating linearly inside it. The estimate's
  /// relative error is bounded by the bucket growth factor (~19%); the exact
  /// recorded min/max are returned at q = 0 / 1.
  double quantile(double q) const noexcept;
};

/// Fixed-bucket log-spaced histogram for nonnegative values (latencies in
/// seconds, sizes, flops). Buckets grow by 2^(1/4) per step from kLowest;
/// values below the first boundary land in bucket 0, values beyond the last
/// in the overflow bucket. record() is wait-free: one log2, two atomic adds.
class Histogram {
 public:
  /// Bucket b covers [kLowest * 2^(b/4), kLowest * 2^((b+1)/4)).
  static constexpr double kLowest = 1e-9;
  static constexpr int kBucketsPerOctave = 4;
  static constexpr std::size_t kNumBuckets = 161;  // up to ~1.1e3, + overflow

  void record(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

  HistogramSnapshot snapshot() const;

  /// Lower boundary of bucket b (for exporters and tests).
  static double bucket_lower_bound(std::size_t b) noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// One named metric of each kind, created on first use and owned by the
/// registry. Lookups after the first are a shared-lock map find; recording
/// through the returned reference never locks.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Stable-ordered snapshots for exporters.
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms() const;

 private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace lsi::obs
