#include "obs/schema.hpp"

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace lsi::obs {

namespace {

// --- Minimal JSON value + recursive-descent parser. Only what the schema
// check needs: objects, arrays, strings, numbers, booleans, null. Duplicate
// object keys keep the last value (like most parsers).

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonObject>, std::shared_ptr<JsonArray>>
      v = nullptr;

  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  const JsonObject* object() const {
    auto* p = std::get_if<std::shared_ptr<JsonObject>>(&v);
    return p ? p->get() : nullptr;
  }
  const JsonArray* array() const {
    auto* p = std::get_if<std::shared_ptr<JsonArray>>(&v);
    return p ? p->get() : nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  /// Parses one document; error() is non-empty on failure.
  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (error_.empty() && pos_ != text_.size()) {
      fail("trailing characters after document");
    }
    return v;
  }

  const std::string& error() const { return error_; }

 private:
  void fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    if (depth_ > 64) {
      fail("nesting too deep");
      return {};
    }
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return {};
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == 't' || c == 'f') {
      JsonValue v;
      if (literal("true")) {
        v.v = true;
      } else if (literal("false")) {
        v.v = false;
      } else {
        fail("bad literal");
      }
      return v;
    }
    if (c == 'n') {
      if (!literal("null")) fail("bad literal");
      return {};
    }
    return parse_number();
  }

  JsonValue parse_string() {
    JsonValue v;
    if (!consume('"')) {
      fail("expected string");
      return v;
    }
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            // Validated but not decoded; the schema never inspects escaped
            // content.
            for (int i = 0; i < 4 && pos_ < text_.size(); ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
                fail("bad \\u escape");
                return v;
              }
              ++pos_;
            }
            out += '?';
            break;
          default:
            fail("bad escape");
            return v;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
        return v;
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) {
      fail("unterminated string");
      return v;
    }
    ++pos_;  // closing quote
    v.v = std::move(out);
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    JsonValue v;
    if (pos_ == start) {
      fail("expected value");
      return v;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      fail("malformed number '" + token + "'");
      return v;
    }
    v.v = d;
    return v;
  }

  JsonValue parse_object() {
    JsonValue v;
    auto obj = std::make_shared<JsonObject>();
    consume('{');
    ++depth_;
    skip_ws();
    if (!consume('}')) {
      while (error_.empty()) {
        JsonValue key = parse_string();
        if (!error_.empty()) break;
        if (!consume(':')) {
          fail("expected ':'");
          break;
        }
        (*obj)[std::get<std::string>(key.v)] = parse_value();
        if (consume(',')) continue;
        if (consume('}')) break;
        fail("expected ',' or '}'");
      }
    }
    --depth_;
    v.v = std::move(obj);
    return v;
  }

  JsonValue parse_array() {
    JsonValue v;
    auto arr = std::make_shared<JsonArray>();
    consume('[');
    ++depth_;
    skip_ws();
    if (!consume(']')) {
      while (error_.empty()) {
        arr->push_back(parse_value());
        if (consume(',')) continue;
        if (consume(']')) break;
        fail("expected ',' or ']'");
      }
    }
    --depth_;
    v.v = std::move(arr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

// --- lsi.stats.v1 structural checks.

Status require_numeric_map(const JsonValue* v, const std::string& field,
                           bool integral) {
  if (v == nullptr) return Status::Ok();  // optional section
  const JsonObject* obj = v->object();
  if (obj == nullptr) {
    return Status::DataLoss("\"" + field + "\" must be an object");
  }
  for (const auto& [key, val] : *obj) {
    if (!val.is_number()) {
      return Status::DataLoss("\"" + field + "\"[\"" + key +
                              "\"] must be a number");
    }
    if (integral) {
      const double d = std::get<double>(val.v);
      if (d < 0 || d != static_cast<double>(static_cast<std::uint64_t>(d))) {
        return Status::DataLoss("\"" + field + "\"[\"" + key +
                                "\"] must be a nonnegative integer");
      }
    }
  }
  return Status::Ok();
}

Status require_record_array(const JsonValue* v, const std::string& field,
                            const std::vector<std::string>& numeric_keys) {
  if (v == nullptr) return Status::Ok();  // optional section
  const JsonArray* arr = v->array();
  if (arr == nullptr) {
    return Status::DataLoss("\"" + field + "\" must be an array");
  }
  for (std::size_t i = 0; i < arr->size(); ++i) {
    const JsonObject* rec = (*arr)[i].object();
    const std::string where =
        "\"" + field + "\"[" + std::to_string(i) + "]";
    if (rec == nullptr) return Status::DataLoss(where + " must be an object");
    const auto name = rec->find("name");
    if (name == rec->end() || !name->second.is_string()) {
      return Status::DataLoss(where + " needs a string \"name\"");
    }
    for (const std::string& key : numeric_keys) {
      const auto it = rec->find(key);
      if (it == rec->end() || !it->second.is_number()) {
        return Status::DataLoss(where + " needs numeric \"" + key + "\"");
      }
    }
  }
  return Status::Ok();
}

const JsonValue* find(const JsonObject& obj, const std::string& key) {
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

}  // namespace

Status validate_stats_json(std::string_view text) {
  Parser parser(text);
  const JsonValue doc = parser.parse();
  if (!parser.error().empty()) {
    return Status::DataLoss("not valid JSON: " + parser.error());
  }
  const JsonObject* root = doc.object();
  if (root == nullptr) {
    return Status::DataLoss("top level must be an object");
  }

  const JsonValue* schema = find(*root, "schema");
  if (schema == nullptr || !schema->is_string()) {
    return Status::DataLoss("missing string \"schema\"");
  }
  if (std::get<std::string>(schema->v) != "lsi.stats.v1") {
    return Status::DataLoss("unsupported schema \"" +
                            std::get<std::string>(schema->v) + "\"");
  }
  const JsonValue* name = find(*root, "name");
  if (name == nullptr || !name->is_string()) {
    return Status::DataLoss("missing string \"name\"");
  }

  if (Status s = require_numeric_map(find(*root, "params"), "params",
                                     /*integral=*/false);
      !s.ok()) {
    return s;
  }
  if (Status s = require_numeric_map(find(*root, "counters"), "counters",
                                     /*integral=*/true);
      !s.ok()) {
    return s;
  }
  if (Status s = require_numeric_map(find(*root, "gauges"), "gauges",
                                     /*integral=*/false);
      !s.ok()) {
    return s;
  }
  if (Status s = require_record_array(
          find(*root, "spans"), "spans",
          {"count", "total_s", "self_s", "p50_s", "p95_s", "p99_s"});
      !s.ok()) {
    return s;
  }
  if (Status s = require_record_array(find(*root, "flops"), "flops",
                                      {"predicted", "measured"});
      !s.ok()) {
    return s;
  }
  return Status::Ok();
}

}  // namespace lsi::obs
