#pragma once
// Structural validation of "lsi.stats.v1" documents — the schema check CI
// runs over every emitted BENCH_<name>.json (no external JSON dependency; a
// ~150-line recursive-descent parser is all the layer needs).

#include <string_view>

#include "lsi/status.hpp"

namespace lsi::obs {

/// Parses `text` as JSON and checks the lsi.stats.v1 shape:
///   - top level object with "schema": "lsi.stats.v1" and a string "name";
///   - "params"/"gauges": objects with numeric values;
///   - "counters": object with nonnegative integer values;
///   - "spans": array of objects each carrying a string "name" and numeric
///     "count", "total_s", "self_s", "p50_s", "p95_s", "p99_s";
///   - "flops": array of objects each carrying a string "name" and numeric
///     "predicted" and "measured".
/// Returns OK or a Status pinpointing the first violation.
Status validate_stats_json(std::string_view text);

}  // namespace lsi::obs
