#include "obs/trace.hpp"

#include <mutex>

namespace lsi::obs {

namespace {

std::atomic<Sink*> g_active_sink{nullptr};

#if LSI_OBS_ENABLED
thread_local TraceSpan* t_span_top = nullptr;
#endif

void atomic_add(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void SpanStats::record(double total_s, double self_s) noexcept {
  count.add(1);
  latency.record(total_s);
  atomic_add(total_seconds, total_s);
  atomic_add(self_seconds, self_s);
}

SpanStats& Sink::span(const std::string& name) {
  {
    std::shared_lock lock(mutex_);
    if (auto it = spans_.find(name); it != spans_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto& slot = spans_[name];
  if (!slot) slot = std::make_unique<SpanStats>();
  return *slot;
}

std::vector<SpanSnapshot> Sink::spans() const {
  std::shared_lock lock(mutex_);
  std::vector<SpanSnapshot> out;
  out.reserve(spans_.size());
  for (const auto& [name, s] : spans_) {
    SpanSnapshot snap;
    snap.name = name;
    snap.count = s->count.value();
    snap.total_seconds = s->total_seconds.load(std::memory_order_relaxed);
    snap.self_seconds = s->self_seconds.load(std::memory_order_relaxed);
    snap.latency = s->latency.snapshot();
    out.push_back(std::move(snap));
  }
  return out;
}

Sink* Sink::active() noexcept {
  return g_active_sink.load(std::memory_order_relaxed);
}

Sink* Sink::set_active(Sink* sink) noexcept {
  return g_active_sink.exchange(sink, std::memory_order_acq_rel);
}

#if LSI_OBS_ENABLED

TraceSpan::TraceSpan(const char* name) noexcept : sink_(Sink::active()) {
  if (!sink_) return;
  name_ = name;
  parent_ = t_span_top;
  t_span_top = this;
  start_ = clock::now();
}

void TraceSpan::stop() noexcept {
  if (!sink_) return;
  const double elapsed =
      std::chrono::duration<double>(clock::now() - start_).count();
  // Pop this span off the thread's stack. Destruction order guarantees we
  // are the top for well-nested scopes; the guard keeps a stray
  // heap-allocated span from corrupting the stack.
  if (t_span_top == this) t_span_top = parent_;
  if (parent_ != nullptr && parent_->sink_ == sink_) {
    parent_->child_seconds_ += elapsed;
  }
  sink_->span(name_).record(elapsed, elapsed - child_seconds_);
  sink_ = nullptr;
}

#endif  // LSI_OBS_ENABLED

}  // namespace lsi::obs
