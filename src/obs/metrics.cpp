#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

namespace lsi::obs {

namespace {

/// Atomic fetch-add for doubles (compare-exchange loop; contention on these
/// is light — one update per span end / histogram record).
void atomic_add(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

double Histogram::bucket_lower_bound(std::size_t b) noexcept {
  return kLowest * std::exp2(static_cast<double>(b) / kBucketsPerOctave);
}

void Histogram::record(double v) noexcept {
  if (!(v >= 0.0)) v = 0.0;  // NaN / negative clamp to zero
  std::size_t b = 0;
  if (v >= kLowest) {
    const double octaves = std::log2(v / kLowest);
    b = static_cast<std::size_t>(octaves * kBucketsPerOctave);
    if (b >= kNumBuckets) b = kNumBuckets - 1;
  }
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t prev = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  if (prev == 0) {
    // First sample seeds min; later samples only shrink/grow it. A racing
    // first pair may briefly leave min at 0, which is the conservative side.
    min_.store(v, std::memory_order_relaxed);
  } else {
    atomic_min(min_, v);
  }
  atomic_max(max_, v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.buckets.resize(kNumBuckets);
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  // Rank of the wanted sample among `count` sorted samples (1-based).
  const double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const std::uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      const double lo = Histogram::bucket_lower_bound(b);
      const double hi = b + 1 < buckets.size()
                            ? Histogram::bucket_lower_bound(b + 1)
                            : max;
      // Linear interpolation by in-bucket fraction, clamped to observed
      // extremes so the estimate never leaves [min, max].
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return std::clamp(lo + frac * (hi - lo), min, max);
    }
    seen += in_bucket;
  }
  return max;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  {
    std::shared_lock lock(mutex_);
    if (auto it = counters_.find(name); it != counters_.end()) {
      return *it->second;
    }
  }
  std::unique_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  {
    std::shared_lock lock(mutex_);
    if (auto it = gauges_.find(name); it != gauges_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  {
    std::shared_lock lock(mutex_);
    if (auto it = histograms_.find(name); it != histograms_.end()) {
      return *it->second;
    }
  }
  std::unique_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counters()
    const {
  std::shared_lock lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges() const {
  std::shared_lock lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::histograms() const {
  std::shared_lock lock(mutex_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.emplace_back(name, h->snapshot());
  }
  return out;
}

}  // namespace lsi::obs
