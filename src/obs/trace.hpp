#pragma once
// Trace spans: RAII timers over named pipeline stages ("lanczos.reorth",
// "retrieval.score", ...) that nest per thread and aggregate into a Sink.
//
// A Sink owns a MetricsRegistry plus per-span-name aggregates (count, total
// wall time, self time excluding child spans, and a latency histogram for
// p50/p95/p99). Exactly one sink is *active* process-wide at a time;
// instrumented code does
//
//   LSI_OBS_SPAN(span, "lanczos.reorth");
//
// which is a no-op unless observability is compiled in (LSI_OBS_ENABLED,
// default on) AND a sink is currently installed (runtime toggle). The
// disabled-at-runtime cost is one relaxed atomic load and a branch per site,
// which is why the hot paths can stay instrumented unconditionally — the
// acceptance bar is < 1% throughput change with the sink off.
//
// Nesting is tracked with a thread-local span stack, so spans opened inside
// util::parallel_for workers aggregate correctly per thread and self-time
// attribution never crosses threads.

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

#ifndef LSI_OBS_ENABLED
#define LSI_OBS_ENABLED 1
#endif

namespace lsi::obs {

/// Aggregated timings of one span name. total/self are in seconds; a span's
/// self time is its total minus time spent in directly nested spans (on the
/// same thread, recorded to the same sink).
struct SpanStats {
  Counter count;
  Histogram latency;        ///< per-invocation wall seconds
  std::atomic<double> total_seconds{0.0};
  std::atomic<double> self_seconds{0.0};

  void record(double total_s, double self_s) noexcept;
};

/// Read-only view of one span name for exporters.
struct SpanSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double total_seconds = 0.0;
  double self_seconds = 0.0;
  HistogramSnapshot latency;
};

/// Aggregation target for spans and metrics. Create one, install it with
/// ScopedSink (or Sink::set_active), run the pipeline, then export via
/// obs/export.hpp.
class Sink {
 public:
  Sink() = default;
  Sink(const Sink&) = delete;
  Sink& operator=(const Sink&) = delete;

  MetricsRegistry& metrics() noexcept { return metrics_; }
  const MetricsRegistry& metrics() const noexcept { return metrics_; }

  /// Aggregate for `name`, created on first use (stable address).
  SpanStats& span(const std::string& name);

  std::vector<SpanSnapshot> spans() const;

  /// The currently installed sink, or nullptr when observability is off at
  /// runtime. One relaxed load — safe and cheap on any hot path.
  static Sink* active() noexcept;
  /// Installs `sink` (nullptr disables); returns the previous sink.
  static Sink* set_active(Sink* sink) noexcept;

 private:
  MetricsRegistry metrics_;
  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<SpanStats>> spans_;
};

/// RAII: installs a sink for the current scope, restores the previous one on
/// exit. The toggle is process-global; scoping keeps bench/CLI usage tidy.
class ScopedSink {
 public:
  explicit ScopedSink(Sink* sink) noexcept
      : previous_(Sink::set_active(sink)) {}
  ~ScopedSink() { Sink::set_active(previous_); }
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  Sink* previous_;
};

/// RAII span. Captures the active sink at construction; records on
/// destruction (or stop()). `name` must outlive the span — pass a string
/// literal.
class TraceSpan {
 public:
#if LSI_OBS_ENABLED
  explicit TraceSpan(const char* name) noexcept;
  ~TraceSpan() { stop(); }

  /// Ends the span early (idempotent).
  void stop() noexcept;

  /// Whether this span is recording (a sink was active at construction).
  bool live() const noexcept { return sink_ != nullptr; }

 private:
  using clock = std::chrono::steady_clock;

  Sink* sink_ = nullptr;          ///< null = disabled, whole span is a no-op
  const char* name_ = nullptr;
  TraceSpan* parent_ = nullptr;   ///< enclosing live span on this thread
  double child_seconds_ = 0.0;    ///< accumulated by completing children
  clock::time_point start_;
#else
  explicit TraceSpan(const char*) noexcept {}
  void stop() noexcept {}
  bool live() const noexcept { return false; }
#endif

 public:
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

/// Declares a span variable; compiles to nothing when LSI_OBS_ENABLED=0.
#define LSI_OBS_SPAN(var, name) ::lsi::obs::TraceSpan var(name)

/// Bumps counter `name` on the active sink's registry, if any. For hot-path
/// counters outside a span (e.g. cache hit/miss).
inline void count(const char* name, std::uint64_t n = 1) {
#if LSI_OBS_ENABLED
  if (Sink* s = Sink::active()) s->metrics().counter(name).add(n);
#else
  (void)name;
  (void)n;
#endif
}

/// Sets gauge `name` on the active sink's registry, if any.
inline void gauge(const char* name, double v) {
#if LSI_OBS_ENABLED
  if (Sink* s = Sink::active()) s->metrics().gauge(name).set(v);
#else
  (void)name;
  (void)v;
#endif
}

}  // namespace lsi::obs
