#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/table.hpp"

namespace lsi::obs {

namespace {

/// Locale-independent shortest-roundtrip-ish double formatting; JSON has no
/// inf/nan, so those degrade to 0.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

StatsDoc StatsDoc::from_sink(std::string name, const Sink& sink) {
  StatsDoc doc;
  doc.name = std::move(name);
  doc.counters = sink.metrics().counters();
  doc.gauges = sink.metrics().gauges();
  doc.spans = sink.spans();
  return doc;
}

void write_json(std::ostream& os, const StatsDoc& doc) {
  os << "{\n";
  os << "  \"schema\": \"lsi.stats.v1\",\n";
  os << "  \"name\": \"" << json_escape(doc.name) << "\",\n";

  os << "  \"params\": {";
  for (std::size_t i = 0; i < doc.params.size(); ++i) {
    os << (i ? ", " : "") << '"' << json_escape(doc.params[i].first)
       << "\": " << json_number(doc.params[i].second);
  }
  os << "},\n";

  os << "  \"counters\": {";
  for (std::size_t i = 0; i < doc.counters.size(); ++i) {
    os << (i ? ", " : "") << '"' << json_escape(doc.counters[i].first)
       << "\": " << doc.counters[i].second;
  }
  os << "},\n";

  os << "  \"gauges\": {";
  for (std::size_t i = 0; i < doc.gauges.size(); ++i) {
    os << (i ? ", " : "") << '"' << json_escape(doc.gauges[i].first)
       << "\": " << json_number(doc.gauges[i].second);
  }
  os << "},\n";

  os << "  \"spans\": [";
  for (std::size_t i = 0; i < doc.spans.size(); ++i) {
    const SpanSnapshot& s = doc.spans[i];
    os << (i ? ",\n    " : "\n    ") << "{\"name\": \""
       << json_escape(s.name) << "\", \"count\": " << s.count
       << ", \"total_s\": " << json_number(s.total_seconds)
       << ", \"self_s\": " << json_number(s.self_seconds)
       << ", \"mean_s\": " << json_number(s.latency.mean())
       << ", \"p50_s\": " << json_number(s.latency.quantile(0.50))
       << ", \"p95_s\": " << json_number(s.latency.quantile(0.95))
       << ", \"p99_s\": " << json_number(s.latency.quantile(0.99))
       << ", \"min_s\": " << json_number(s.latency.min)
       << ", \"max_s\": " << json_number(s.latency.max) << "}";
  }
  os << (doc.spans.empty() ? "" : "\n  ") << "],\n";

  os << "  \"flops\": [";
  for (std::size_t i = 0; i < doc.flops.size(); ++i) {
    const FlopComparison& f = doc.flops[i];
    const double ratio =
        f.predicted > 0
            ? static_cast<double>(f.measured) / static_cast<double>(f.predicted)
            : 0.0;
    os << (i ? ",\n    " : "\n    ") << "{\"name\": \""
       << json_escape(f.name) << "\", \"predicted\": " << f.predicted
       << ", \"measured\": " << f.measured
       << ", \"measured_over_predicted\": " << json_number(ratio) << "}";
  }
  os << (doc.flops.empty() ? "" : "\n  ") << "]\n";
  os << "}\n";
}

std::string to_json(const StatsDoc& doc) {
  std::ostringstream os;
  write_json(os, doc);
  return os.str();
}

void write_csv(std::ostream& os, const StatsDoc& doc) {
  if (!doc.params.empty()) {
    util::TextTable t({"param", "value"});
    for (const auto& [k, v] : doc.params) t.add_row({k, util::fmt(v, 6)});
    t.print_csv(os);
    os << "\n";
  }
  if (!doc.counters.empty()) {
    util::TextTable t({"counter", "value"});
    for (const auto& [k, v] : doc.counters) {
      t.add_row({k, util::fmt_int(static_cast<long long>(v))});
    }
    t.print_csv(os);
    os << "\n";
  }
  if (!doc.gauges.empty()) {
    util::TextTable t({"gauge", "value"});
    for (const auto& [k, v] : doc.gauges) t.add_row({k, util::fmt(v, 6)});
    t.print_csv(os);
    os << "\n";
  }
  if (!doc.spans.empty()) {
    util::TextTable t({"span", "count", "total_s", "self_s", "mean_s",
                       "p50_s", "p95_s", "p99_s"});
    for (const SpanSnapshot& s : doc.spans) {
      t.add_row({s.name, util::fmt_int(static_cast<long long>(s.count)),
                 util::fmt(s.total_seconds, 6), util::fmt(s.self_seconds, 6),
                 util::fmt(s.latency.mean(), 6),
                 util::fmt(s.latency.quantile(0.50), 6),
                 util::fmt(s.latency.quantile(0.95), 6),
                 util::fmt(s.latency.quantile(0.99), 6)});
    }
    t.print_csv(os);
    os << "\n";
  }
  if (!doc.flops.empty()) {
    util::TextTable t({"flops", "predicted", "measured",
                       "measured_over_predicted"});
    for (const FlopComparison& f : doc.flops) {
      const double ratio = f.predicted > 0 ? static_cast<double>(f.measured) /
                                                 static_cast<double>(f.predicted)
                                           : 0.0;
      t.add_row({f.name, util::fmt_int(static_cast<long long>(f.predicted)),
                 util::fmt_int(static_cast<long long>(f.measured)),
                 util::fmt(ratio, 4)});
    }
    t.print_csv(os);
  }
}

}  // namespace lsi::obs
