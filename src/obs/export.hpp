#pragma once
// Exporters for the observability layer: one stats document per pipeline run
// (schema "lsi.stats.v1"), rendered as JSON (machine-readable, what CI
// archives as BENCH_<name>.json) or CSV (via util/table, for spreadsheets).
// obs/schema.hpp validates the JSON side; docs/OBSERVABILITY.md describes
// every field.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace lsi::obs {

/// One predicted-vs-measured flop comparison row (the Section 4.2 cost-model
/// check): `predicted` from the lsi::flops model, `measured` from the
/// instrumented kernels' own operation counts.
struct FlopComparison {
  std::string name;
  std::uint64_t predicted = 0;
  std::uint64_t measured = 0;
};

/// A complete stats document: identifying name, free-form numeric params
/// (problem shape, batch size, ...), the sink's counters/gauges/spans, and
/// predicted-vs-measured flops rows.
struct StatsDoc {
  std::string name;
  std::vector<std::pair<std::string, double>> params;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<SpanSnapshot> spans;
  std::vector<FlopComparison> flops;

  /// Convenience: document named `name` holding everything `sink` recorded.
  static StatsDoc from_sink(std::string name, const Sink& sink);
};

/// Renders the "lsi.stats.v1" JSON document (pretty-printed, stable key
/// order, locale-independent numbers).
void write_json(std::ostream& os, const StatsDoc& doc);

/// Same content as CSV sections (params, counters, gauges, spans, flops),
/// each a util::TextTable in RFC-4180 form separated by blank lines.
void write_csv(std::ostream& os, const StatsDoc& doc);

/// Serializes to a string (write_json into a stringstream).
std::string to_json(const StatsDoc& doc);

}  // namespace lsi::obs
