#pragma once
// Deterministic fault injection for the replication/failover tests
// (docs/REPLICATION.md has the site catalog).
//
// A failpoint is a named site in production code — "concurrent.fold",
// "replica.health_probe", ... — that a test can *arm* with an action:
//
//   kBlock  every matching hit parks the calling thread until the site is
//           disarmed (the deterministic "wedged writer": no sleeps, no
//           timing assumptions — the test observes the park via
//           wait_for_blocked, does its damage, then disarms to release);
//   kFail   every matching hit returns true to the call site, which
//           translates it into its local failure (a health probe reports
//           the replica unhealthy, etc.), optionally auto-disarming after
//           a hit budget.
//
// Sites carry an *instance tag* so one replica of one shard can be faulted
// while its siblings run clean: ConcurrentOptions::failpoint_tag threads a
// tag like "s0.r2" into every site an indexer hits, and arm()'s tag_filter
// selects it ("" matches every instance).
//
// Tests synchronize on facts, not time: wait_for_hits / wait_for_blocked
// block until the site has fired (or parked) n times. The timeout is a
// hang-safety net for a failing test, never a synchronization primitive.
//
// Cost discipline mirrors the observability layer (obs/trace.hpp): with no
// site armed, a compiled-in failpoint is one relaxed atomic load and a
// branch; configuring with -DLSI_FAILPOINTS_DISABLE=ON compiles every site
// out entirely (LSI_FAILPOINTS_ENABLED=0), the release-build posture.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#ifndef LSI_FAILPOINTS_ENABLED
#define LSI_FAILPOINTS_ENABLED 1
#endif

namespace lsi::util {

/// Process-global failpoint registry. All members are thread-safe; tests
/// arm/disarm, instrumented code hits. Reset between tests with disarm_all().
class Failpoints {
 public:
  enum class Action {
    kOff,    ///< site retained for its hit count only; hits pass through
    kBlock,  ///< matching hits park until the site is disarmed
    kFail,   ///< matching hits return true (the site's local failure)
  };

  static Failpoints& instance();

  /// Arms `site`. `tag_filter` selects which instance hits match (exact
  /// string match; "" matches all). For kFail, `budget` > 0 auto-disarms
  /// the site after that many matching hits (0 = until disarm()).
  /// Re-arming an armed site replaces its action and releases any threads
  /// parked under the previous one.
  void arm(std::string_view site, Action action,
           std::string_view tag_filter = {}, std::uint64_t budget = 0);

  /// Sets `site` to kOff, releasing parked threads. Hit counts survive so a
  /// test can disarm first and assert counts after.
  void disarm(std::string_view site);

  /// Removes every site (counts included) and releases all parked threads.
  /// Restores the zero-overhead fast path; call from test teardown.
  void disarm_all();

  /// The instrumented site's entry point — use the LSI_FAILPOINT macro, not
  /// this, so sites compile out. Returns true when the hit should fail.
  bool hit(const char* site, std::string_view tag);

  /// Matching hits of `site` so far (parked hits count on arrival).
  std::uint64_t hits(std::string_view site) const;

  /// Threads currently parked inside `site`.
  std::size_t blocked(std::string_view site) const;

  /// Blocks until hits(site) >= n. Returns false on timeout (test failure
  /// safety net; the wait itself is event-driven, not a poll).
  bool wait_for_hits(std::string_view site, std::uint64_t n,
                     std::chrono::milliseconds timeout);

  /// Blocks until blocked(site) >= n — the deterministic "the writer is
  /// wedged now" observation. Returns false on timeout.
  bool wait_for_blocked(std::string_view site, std::size_t n,
                        std::chrono::milliseconds timeout);

  /// True when any site is armed (relaxed; the macro's fast path).
  static bool any_armed() noexcept {
    return armed_sites_.load(std::memory_order_relaxed) != 0;
  }

 private:
  struct Site {
    Action action = Action::kOff;
    std::string tag_filter;
    std::uint64_t budget = 0;  ///< kFail hits remaining; 0 = unlimited
    std::uint64_t hits = 0;
    std::size_t parked = 0;
    std::uint64_t epoch = 0;  ///< bumped on arm/disarm; wakes parked threads
    /// disarm_all ran while threads were parked here: the last thread out
    /// erases the entry (disarm_all cannot, or the parked threads' Site
    /// reference would dangle).
    bool erase_on_release = false;
  };

  static std::atomic<int> armed_sites_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< hit-count, park and epoch changes
  std::map<std::string, Site, std::less<>> sites_;
};

inline bool failpoint_hit(const char* site, std::string_view tag) {
#if LSI_FAILPOINTS_ENABLED
  if (!Failpoints::any_armed()) return false;
  return Failpoints::instance().hit(site, tag);
#else
  (void)site;
  (void)tag;
  return false;
#endif
}

/// Named injection site: evaluates to true when an armed kFail matches.
/// One relaxed load + branch when nothing is armed; nothing at all under
/// LSI_FAILPOINTS_ENABLED=0.
#define LSI_FAILPOINT(site, tag) ::lsi::util::failpoint_hit(site, tag)

}  // namespace lsi::util
