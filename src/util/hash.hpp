#pragma once
// Stable, platform-independent string hashing. std::hash makes no cross-
// process or cross-platform guarantees, so anything that must route the same
// key to the same place on every run — the sharded index's hash-by-doc-id
// policy, persisted partition assignments — uses this FNV-1a implementation
// instead. The function is pure and fixed for all time: changing it would
// silently re-partition every hash-routed collection.

#include <cstdint>
#include <string_view>

namespace lsi::util {

/// 64-bit FNV-1a over the bytes of `s`. Deterministic on every platform.
constexpr std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

}  // namespace lsi::util
