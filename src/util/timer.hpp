#pragma once
// Minimal monotonic wall-clock timer used by benches and the Lanczos driver.

#include <chrono>

namespace lsi::util {

/// Starts on construction; `seconds()` / `millis()` read elapsed time without
/// stopping; `reset()` restarts the epoch.
class WallTimer {
 public:
  WallTimer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace lsi::util
