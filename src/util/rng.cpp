#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace lsi::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  assert(n > 0);
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

int Rng::poisson(double mean) noexcept {
  assert(mean >= 0.0);
  const double limit = std::exp(-mean);
  double product = uniform();
  int count = 0;
  while (product > limit) {
    ++count;
    product *= uniform();
  }
  return count;
}

std::size_t Rng::discrete(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::size_t Rng::zipf(std::size_t n, double s) noexcept {
  assert(n > 0);
  // Rejection sampling against the continuous bounding envelope
  // (Devroye, Non-Uniform Random Variate Generation, ch. X.6).
  if (n == 1) return 0;
  const double b = std::pow(2.0, s - 1.0);
  for (;;) {
    const double u = uniform();
    const double v = uniform();
    const double x = std::floor(std::pow(static_cast<double>(n) + 1.0, u));
    // x in [1, n+1); clamp to [1, n].
    if (x > static_cast<double>(n)) continue;
    const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<std::size_t>(x) - 1;
    }
  }
}

std::vector<std::size_t> Rng::sample_without_replacement(
    std::size_t n, std::size_t k) noexcept {
  assert(k <= n);
  // Floyd's algorithm: O(k) expected insertions.
  std::vector<std::size_t> picked;
  picked.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = uniform_index(j + 1);
    bool seen = false;
    for (std::size_t p : picked) {
      if (p == t) {
        seen = true;
        break;
      }
    }
    picked.push_back(seen ? j : t);
  }
  return picked;
}

}  // namespace lsi::util
