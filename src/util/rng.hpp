#pragma once
// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component of the library (Lanczos start vectors, synthetic
// corpus generation, noise injection) draws from util::Rng seeded explicitly,
// so a given seed reproduces a bit-identical experiment on any platform.

#include <cstdint>
#include <vector>

namespace lsi::util {

/// xoshiro256** by Blackman & Vigna, seeded through SplitMix64.
/// Small, fast, and statistically strong; all state is value-semantic so an
/// Rng can be copied to fork a reproducible stream.
class Rng {
 public:
  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit output.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal deviate (Box–Muller; caches the mate).
  double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p) noexcept;

  /// Poisson deviate (Knuth's method; adequate for the small means used by
  /// the corpus generator).
  int poisson(double mean) noexcept;

  /// Index sampled from the (unnormalized) weight vector. Requires a
  /// positive total weight.
  std::size_t discrete(const std::vector<double>& weights) noexcept;

  /// Rank sampled from a Zipf distribution over {0, .., n-1} with exponent s.
  /// Uses an inverse-CDF table-free rejection method.
  std::size_t zipf(std::size_t n, double s) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform_index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n) in selection order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k) noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace lsi::util
