#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace lsi::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  if (!title.empty()) os << title << '\n';
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "  " << std::left << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << quote(cells[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string fmt_int(long long v) { return std::to_string(v); }

std::string fmt_pct(double fraction, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return ss.str();
}

}  // namespace lsi::util
