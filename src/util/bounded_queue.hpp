#pragma once
// A bounded multi-producer FIFO with blocking backpressure and cooperative
// shutdown — the ingest side of the serve-while-updating pipeline
// (docs/CONCURRENCY.md). Producers that outrun the consumer either block
// (push) or are refused (try_push) once `capacity` items are waiting, so a
// burst of arrivals degrades into latency instead of unbounded memory.
//
// The queue is deliberately mutex-based rather than lock-free: items are
// whole documents, push/pop rates are thousands per second (not millions),
// and a mutex keeps the close()/blocked-producer interaction trivially
// correct under ThreadSanitizer.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace lsi::util {

/// Outcome of a push attempt.
enum class QueuePush {
  kOk,      ///< item enqueued
  kFull,    ///< try_push only: queue at capacity, item not enqueued
  kClosed,  ///< queue closed, item not enqueued
};

template <typename T>
class BoundedQueue {
 public:
  /// A queue admitting at most `capacity` waiting items (>= 1 enforced).
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is at capacity; returns kClosed if the queue is
  /// (or becomes, while waiting) closed, kOk otherwise.
  QueuePush push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_space_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return QueuePush::kClosed;
    items_.push_back(std::move(item));
    return QueuePush::kOk;
  }

  /// Non-blocking push: kFull when at capacity (the caller's backpressure
  /// signal), kClosed after close().
  QueuePush try_push(T item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return QueuePush::kClosed;
    if (items_.size() >= capacity_) return QueuePush::kFull;
    items_.push_back(std::move(item));
    return QueuePush::kOk;
  }

  /// Moves up to `max` items into `out` (appended) in FIFO order; returns
  /// the number taken. Never blocks — an empty queue takes nothing. Each
  /// taken item frees capacity for one blocked producer.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max) {
    std::size_t taken = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      while (taken < max && !items_.empty()) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
        ++taken;
      }
    }
    if (taken > 0) cv_space_.notify_all();
    return taken;
  }

  /// Closes the queue: subsequent pushes fail with kClosed and blocked
  /// producers wake immediately. Items already queued remain poppable.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_space_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_space_;  ///< signaled when space frees or close()
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace lsi::util
