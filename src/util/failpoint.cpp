#include "util/failpoint.hpp"

namespace lsi::util {

std::atomic<int> Failpoints::armed_sites_{0};

Failpoints& Failpoints::instance() {
  static Failpoints registry;
  return registry;
}

void Failpoints::arm(std::string_view site, Action action,
                     std::string_view tag_filter, std::uint64_t budget) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = sites_.try_emplace(std::string(site));
    Site& s = it->second;
    s.action = action;
    s.tag_filter = std::string(tag_filter);
    s.budget = budget;
    s.erase_on_release = false;  // re-armed: the entry is live again
    ++s.epoch;  // threads parked under the previous arming re-evaluate
    if (inserted) armed_sites_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_all();
}

void Failpoints::disarm(std::string_view site) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return;
    it->second.action = Action::kOff;
    ++it->second.epoch;
    // The entry stays (still counted in armed_sites_) so hits() keeps
    // accumulating for post-disarm assertions; disarm_all() clears it.
  }
  cv_.notify_all();
}

void Failpoints::disarm_all() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, s] : sites_) {
      s.action = Action::kOff;
      ++s.epoch;
    }
    // Entries with parked threads must survive until those threads leave
    // (they re-check via epoch and exit); the last one out erases the entry
    // — see hit(). Park-free entries erase right here.
    for (auto it = sites_.begin(); it != sites_.end();) {
      if (it->second.parked == 0) {
        armed_sites_.fetch_sub(1, std::memory_order_relaxed);
        it = sites_.erase(it);
      } else {
        it->second.erase_on_release = true;
        ++it;
      }
    }
  }
  cv_.notify_all();
}

bool Failpoints::hit(const char* site, std::string_view tag) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = sites_.find(std::string_view(site));
  if (it == sites_.end()) return false;
  Site& s = it->second;
  if (s.action == Action::kOff) return false;
  if (!s.tag_filter.empty() && s.tag_filter != tag) return false;
  ++s.hits;
  cv_.notify_all();  // wait_for_hits observers
  if (s.action == Action::kFail) {
    if (s.budget > 0 && --s.budget == 0) {
      s.action = Action::kOff;
      ++s.epoch;
    }
    return true;
  }
  // kBlock: park until this site is re-armed or disarmed.
  const std::uint64_t entry_epoch = s.epoch;
  ++s.parked;
  cv_.notify_all();  // wait_for_blocked observers
  cv_.wait(lock, [&] { return s.epoch != entry_epoch; });
  --s.parked;
  // Last thread out of an entry disarm_all left behind (it skips parked
  // entries): finish the erase so the zero-overhead fast path returns.
  if (s.erase_on_release && s.parked == 0) {
    armed_sites_.fetch_sub(1, std::memory_order_relaxed);
    sites_.erase(it);
  }
  cv_.notify_all();
  return false;
}

std::uint64_t Failpoints::hits(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

std::size_t Failpoints::blocked(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.parked;
}

bool Failpoints::wait_for_hits(std::string_view site, std::uint64_t n,
                               std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, timeout, [&] {
    auto it = sites_.find(site);
    return it != sites_.end() && it->second.hits >= n;
  });
}

bool Failpoints::wait_for_blocked(std::string_view site, std::size_t n,
                                  std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, timeout, [&] {
    auto it = sites_.find(site);
    return it != sites_.end() && it->second.parked >= n;
  });
}

}  // namespace lsi::util
