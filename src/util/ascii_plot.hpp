#pragma once
// ASCII scatter plots: the console stand-in for the paper's Figures 4, 6-9.
//
// Each labelled point is rendered onto a character grid with the axes drawn
// through the origin, so the 2-D cluster structure the paper discusses
// (hormone topics above the x-axis, fasting topics below, ...) is visible in
// the bench output itself.

#include <string>
#include <vector>

namespace lsi::util {

struct PlotPoint {
  double x = 0.0;
  double y = 0.0;
  std::string label;   ///< printed at the point (first chars used)
  char marker = '*';   ///< used when the label does not fit
};

class AsciiScatter {
 public:
  /// `cols` x `rows` character canvas.
  AsciiScatter(int cols = 92, int rows = 30);

  void add(double x, double y, std::string label, char marker = '*');
  void add(const PlotPoint& p);

  /// Renders the canvas: computes bounds (with 5% margin), draws the x/y
  /// axes through 0 when in range, and overlays point labels.
  std::string render() const;

 private:
  int cols_, rows_;
  std::vector<PlotPoint> points_;
};

}  // namespace lsi::util
