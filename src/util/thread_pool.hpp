#pragma once
// A small work-stealing-free thread pool plus a blocking parallel_for.
//
// All numerical kernels in src/la route data-parallel loops through
// parallel_for so they scale with cores while remaining deterministic: the
// loop body must only write to disjoint per-index state, which every caller
// in this library observes (row/column partitions).

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lsi::util {

/// Fixed-size pool of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Process-wide pool, created on first use with hardware concurrency.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs body(i) for i in [begin, end), partitioned into contiguous chunks
/// across the global pool. Falls back to a serial loop for small ranges or a
/// single-threaded pool. Blocks until all iterations complete.
///
/// `grain` is the minimum number of iterations worth shipping to a worker;
/// tune it so each chunk amortizes the dispatch cost.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1024);

/// Chunked variant: body(lo, hi) receives whole subranges, which lets the
/// caller hoist per-chunk state (accumulators, scratch) out of the inner loop.
void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         std::size_t grain = 1024);

}  // namespace lsi::util
