#pragma once
// 64-byte-aligned allocation for numeric storage (docs/KERNELS.md).
//
// The SIMD kernels issue unaligned loads (loadu) — free on modern cores WHEN
// the address is actually aligned, and merely slower when it straddles a
// cache line. Default std::vector<double> storage only guarantees 16-byte
// alignment, so a matrix base lands on a cache-line boundary by luck.
// AlignedAllocator pins every allocation to a 64-byte base (one cache line,
// one full AVX-512 vector, two AVX2 vectors) and rounds the allocation size
// up to a multiple of the alignment so vectorized tails can read the last
// partial line without touching an unmapped page.
//
// This aligns the allocation BASE, not every column: a column-major matrix
// with an odd row count still has unaligned column starts. True per-column
// alignment needs a padded leading dimension, which changes the (i, j) ->
// offset map everywhere; the base alignment is the cheap 90% that makes the
// common (row-count-multiple-of-8 and whole-matrix sweep) cases line up.

#include <cstddef>
#include <new>
#include <vector>

namespace lsi::util {

template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Alignment >= alignof(T),
                "Alignment must not be weaker than the type's natural one");
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    // Round up to an alignment multiple so a vector load starting inside the
    // last element cannot run off the allocation.
    std::size_t bytes = n * sizeof(T);
    bytes = (bytes + Alignment - 1) / Alignment * Alignment;
    return static_cast<T*>(
        ::operator new(bytes, std::align_val_t{Alignment}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// A std::vector whose data() is 64-byte aligned (and whose allocation is
/// padded to a 64-byte multiple). Drop-in for numeric buffers.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T, 64>>;

}  // namespace lsi::util
