#pragma once
// Console table / CSV formatting used by every bench binary so the
// reproduced tables read like the paper's.

#include <iosfwd>
#include <string>
#include <vector>

namespace lsi::util {

/// Column-aligned text table. Collects rows of strings, then renders with
/// padded columns, a header rule, and an optional title.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; it may have fewer cells than the header (padded).
  void add_row(std::vector<std::string> row);

  /// Number of data rows added so far.
  std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders the table to `os` with aligned columns.
  void print(std::ostream& os, const std::string& title = "") const;

  /// Renders in RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision formatting helpers for table cells.
std::string fmt(double v, int precision = 4);
std::string fmt_int(long long v);
std::string fmt_pct(double fraction, int precision = 1);

}  // namespace lsi::util
