#include "util/strings.hpp"

#include <cctype>

namespace lsi::util {

std::string to_lower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

std::vector<std::string> split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool is_alpha(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isalpha(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i) out += sep;
    out += pieces[i];
  }
  return out;
}

}  // namespace lsi::util
