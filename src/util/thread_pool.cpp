#include "util/thread_pool.hpp"

#include <algorithm>

namespace lsi::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (begin >= end) return;
  ThreadPool& pool = ThreadPool::global();
  const std::size_t n = end - begin;
  const std::size_t workers = pool.thread_count();
  if (workers <= 1 || n <= grain) {
    body(begin, end);
    return;
  }
  const std::size_t chunks = std::min(workers * 4, (n + grain - 1) / grain);
  const std::size_t step = (n + chunks - 1) / chunks;
  for (std::size_t lo = begin; lo < end; lo += step) {
    const std::size_t hi = std::min(end, lo + step);
    pool.submit([&body, lo, hi] { body(lo, hi); });
  }
  pool.wait_idle();
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  parallel_for_chunks(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      grain);
}

}  // namespace lsi::util
