#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>

namespace lsi::util {

AsciiScatter::AsciiScatter(int cols, int rows) : cols_(cols), rows_(rows) {}

void AsciiScatter::add(double x, double y, std::string label, char marker) {
  points_.push_back(PlotPoint{x, y, std::move(label), marker});
}

void AsciiScatter::add(const PlotPoint& p) { points_.push_back(p); }

std::string AsciiScatter::render() const {
  if (points_.empty()) return "(empty plot)\n";
  double xmin = points_[0].x, xmax = points_[0].x;
  double ymin = points_[0].y, ymax = points_[0].y;
  for (const auto& p : points_) {
    xmin = std::min(xmin, p.x);
    xmax = std::max(xmax, p.x);
    ymin = std::min(ymin, p.y);
    ymax = std::max(ymax, p.y);
  }
  // Include the origin so the axes anchor the picture like the paper's plots.
  xmin = std::min(xmin, 0.0);
  xmax = std::max(xmax, 0.0);
  ymin = std::min(ymin, 0.0);
  ymax = std::max(ymax, 0.0);
  const double xpad = (xmax - xmin) * 0.06 + 1e-12;
  const double ypad = (ymax - ymin) * 0.06 + 1e-12;
  xmin -= xpad;
  xmax += xpad;
  ymin -= ypad;
  ymax += ypad;

  std::vector<std::string> grid(static_cast<std::size_t>(rows_),
                                std::string(static_cast<std::size_t>(cols_), ' '));
  auto col_of = [&](double x) {
    return std::clamp(static_cast<int>(std::lround(
                          (x - xmin) / (xmax - xmin) * (cols_ - 1))),
                      0, cols_ - 1);
  };
  auto row_of = [&](double y) {
    return std::clamp(static_cast<int>(std::lround(
                          (ymax - y) / (ymax - ymin) * (rows_ - 1))),
                      0, rows_ - 1);
  };

  const int axis_row = row_of(0.0);
  const int axis_col = col_of(0.0);
  for (int c = 0; c < cols_; ++c) grid[axis_row][static_cast<std::size_t>(c)] = '-';
  for (int r = 0; r < rows_; ++r) grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(axis_col)] = '|';
  grid[static_cast<std::size_t>(axis_row)][static_cast<std::size_t>(axis_col)] = '+';

  for (const auto& p : points_) {
    const int r = row_of(p.y);
    const int c = col_of(p.x);
    if (p.label.empty()) {
      grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = p.marker;
      continue;
    }
    // Place as much of the label as fits starting at the point column.
    const std::size_t start = static_cast<std::size_t>(c);
    std::size_t len = std::min(p.label.size(),
                               static_cast<std::size_t>(cols_) - start);
    // Back off if we would stomp a previously placed label character.
    for (std::size_t i = 0; i < len; ++i) {
      char& cell = grid[static_cast<std::size_t>(r)][start + i];
      if (cell == ' ' || cell == '-' || cell == '|') {
        cell = p.label[i];
      } else {
        break;
      }
    }
  }

  std::string out;
  for (const auto& line : grid) {
    out += line;
    out += '\n';
  }
  out += "x: [" + std::to_string(xmin) + ", " + std::to_string(xmax) +
         "]  y: [" + std::to_string(ymin) + ", " + std::to_string(ymax) + "]\n";
  return out;
}

}  // namespace lsi::util
