#pragma once
// ASCII string helpers shared by the tokenizer and table writers.

#include <string>
#include <string_view>
#include <vector>

namespace lsi::util {

/// Lower-cases ASCII letters in place and returns the argument.
std::string to_lower(std::string s);

/// Splits on any of the delimiter characters; empty fields are dropped.
std::vector<std::string> split(std::string_view s, std::string_view delims);

/// Strips leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// True if every character is an ASCII letter.
bool is_alpha(std::string_view s);

/// Joins the pieces with `sep` between them.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

}  // namespace lsi::util
