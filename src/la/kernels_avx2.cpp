// AVX2/FMA kernel. Compiled with -mavx2 -mfma -ffp-contract=off (see
// src/la/CMakeLists.txt): contraction is disabled so the scalar tails below
// round exactly like the portable kernel — fused multiply-adds appear only
// where written explicitly, in the reduction kernels whose contract already
// allows reassociation.
//
//   * axpy / axpy4 / axpy_bf16 / axpy4_bf16 are elementwise (packed multiply
//     then packed add, one rounding each — the same two roundings the scalar
//     code performs per element), so they are bit-identical to portable.
//   * dot / at_b_tile4 / at_b_tile1 use 4-lane FMA accumulators with a fixed
//     lane-reduction order ((l0+l2) + (l1+l3)); results differ from portable
//     within the ULP bound stated in docs/KERNELS.md, but are deterministic
//     per length, and at_b_tile1 runs exactly one stream of at_b_tile4's
//     chain, so tile results never depend on panel width or batch size.

#include "la/kernels.hpp"

#include <immintrin.h>

namespace lsi::la::kern {

namespace {

inline double reduce4(__m256d acc) {
  const __m128d lo = _mm256_castpd256_pd128(acc);     // l0, l1
  const __m128d hi = _mm256_extractf128_pd(acc, 1);   // l2, l3
  const __m128d sum2 = _mm_add_pd(lo, hi);            // l0+l2, l1+l3
  return _mm_cvtsd_f64(sum2) +
         _mm_cvtsd_f64(_mm_unpackhi_pd(sum2, sum2));
}

double dot_avx2(const double* x, const double* y, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4),
                           _mm256_loadu_pd(y + i + 4), acc1);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i),
                           acc0);
  }
  double s = reduce4(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

void at_b_tile4_avx2(const double* ai, const double* b0, const double* b1,
                     const double* b2, const double* b3, std::size_t rlo,
                     std::size_t rhi, double out[4]) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  std::size_t r = rlo;
  for (; r + 4 <= rhi; r += 4) {
    const __m256d va = _mm256_loadu_pd(ai + r);
    acc0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b0 + r), acc0);
    acc1 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b1 + r), acc1);
    acc2 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b2 + r), acc2);
    acc3 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b3 + r), acc3);
  }
  double s0 = reduce4(acc0);
  double s1 = reduce4(acc1);
  double s2 = reduce4(acc2);
  double s3 = reduce4(acc3);
  for (; r < rhi; ++r) {
    const double a = ai[r];
    s0 += a * b0[r];
    s1 += a * b1[r];
    s2 += a * b2[r];
    s3 += a * b3[r];
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
}

double at_b_tile1_avx2(const double* ai, const double* bj, std::size_t rlo,
                       std::size_t rhi) {
  // Exactly one stream of at_b_tile4's chain, so remainder columns get the
  // same bits they would get inside a full 4-wide tile.
  __m256d acc = _mm256_setzero_pd();
  std::size_t r = rlo;
  for (; r + 4 <= rhi; r += 4) {
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(ai + r), _mm256_loadu_pd(bj + r),
                          acc);
  }
  double s = reduce4(acc);
  for (; r < rhi; ++r) s += ai[r] * bj[r];
  return s;
}

void axpy_avx2(double a, const double* x, double* y, std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void axpy4_avx2(const double* a4, const double* x, double* y0, double* y1,
                double* y2, double* y3, std::size_t n) {
  const __m256d va0 = _mm256_set1_pd(a4[0]);
  const __m256d va1 = _mm256_set1_pd(a4[1]);
  const __m256d va2 = _mm256_set1_pd(a4[2]);
  const __m256d va3 = _mm256_set1_pd(a4[3]);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    _mm256_storeu_pd(y0 + i, _mm256_add_pd(_mm256_loadu_pd(y0 + i),
                                           _mm256_mul_pd(va0, vx)));
    _mm256_storeu_pd(y1 + i, _mm256_add_pd(_mm256_loadu_pd(y1 + i),
                                           _mm256_mul_pd(va1, vx)));
    _mm256_storeu_pd(y2 + i, _mm256_add_pd(_mm256_loadu_pd(y2 + i),
                                           _mm256_mul_pd(va2, vx)));
    _mm256_storeu_pd(y3 + i, _mm256_add_pd(_mm256_loadu_pd(y3 + i),
                                           _mm256_mul_pd(va3, vx)));
  }
  for (; i < n; ++i) {
    const double xi = x[i];
    y0[i] += a4[0] * xi;
    y1[i] += a4[1] * xi;
    y2[i] += a4[2] * xi;
    y3[i] += a4[3] * xi;
  }
}

inline __m256 bf16_decode8(const std::uint16_t* x) {
  const __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(x));
  const __m256i wide = _mm256_slli_epi32(_mm256_cvtepu16_epi32(raw), 16);
  return _mm256_castsi256_ps(wide);
}

void axpy_bf16_avx2(float a, const std::uint16_t* x, float* y,
                    std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(va, bf16_decode8(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a * bf16_to_f32(x[i]);
}

void axpy4_bf16_avx2(const float* a4, const std::uint16_t* x, float* y0,
                     float* y1, float* y2, float* y3, std::size_t n) {
  const __m256 va0 = _mm256_set1_ps(a4[0]);
  const __m256 va1 = _mm256_set1_ps(a4[1]);
  const __m256 va2 = _mm256_set1_ps(a4[2]);
  const __m256 va3 = _mm256_set1_ps(a4[3]);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vx = bf16_decode8(x + i);
    _mm256_storeu_ps(y0 + i, _mm256_add_ps(_mm256_loadu_ps(y0 + i),
                                           _mm256_mul_ps(va0, vx)));
    _mm256_storeu_ps(y1 + i, _mm256_add_ps(_mm256_loadu_ps(y1 + i),
                                           _mm256_mul_ps(va1, vx)));
    _mm256_storeu_ps(y2 + i, _mm256_add_ps(_mm256_loadu_ps(y2 + i),
                                           _mm256_mul_ps(va2, vx)));
    _mm256_storeu_ps(y3 + i, _mm256_add_ps(_mm256_loadu_ps(y3 + i),
                                           _mm256_mul_ps(va3, vx)));
  }
  for (; i < n; ++i) {
    const float xi = bf16_to_f32(x[i]);
    y0[i] += a4[0] * xi;
    y1[i] += a4[1] * xi;
    y2[i] += a4[2] * xi;
    y3[i] += a4[3] * xi;
  }
}

void cos_norm_avx2(double qn, const double* dn, double* y, std::size_t n) {
  if (qn == 0.0) {
    for (std::size_t i = 0; i < n; ++i) y[i] = 0.0;
    return;
  }
  // Packed multiply and divide are correctly rounded, exactly like their
  // scalar forms, and the zero-norm guard is an exact compare-and-mask, so
  // this is bit-identical to the portable loop.
  const __m256d vq = _mm256_set1_pd(qn);
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_loadu_pd(dn + i);
    const __m256d q =
        _mm256_div_pd(_mm256_loadu_pd(y + i), _mm256_mul_pd(vq, d));
    const __m256d is0 = _mm256_cmp_pd(d, zero, _CMP_EQ_OQ);
    _mm256_storeu_pd(y + i, _mm256_andnot_pd(is0, q));
  }
  for (; i < n; ++i) y[i] = (dn[i] == 0.0) ? 0.0 : y[i] / (qn * dn[i]);
}

void cos_norm_f32_avx2(double qn, const float* acc, const double* dn,
                       double* out, std::size_t n) {
  if (qn == 0.0) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0.0;
    return;
  }
  const __m256d vq = _mm256_set1_pd(qn);
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d a =
        _mm256_cvtps_pd(_mm_loadu_ps(acc + i));  // exact widening
    const __m256d d = _mm256_loadu_pd(dn + i);
    const __m256d q = _mm256_div_pd(a, _mm256_mul_pd(vq, d));
    const __m256d is0 = _mm256_cmp_pd(d, zero, _CMP_EQ_OQ);
    _mm256_storeu_pd(out + i, _mm256_andnot_pd(is0, q));
  }
  for (; i < n; ++i) {
    out[i] = (dn[i] == 0.0)
                 ? 0.0
                 : static_cast<double>(acc[i]) / (qn * dn[i]);
  }
}

constexpr Ops kAvx2Ops = {
    "avx2",          dot_avx2,   at_b_tile4_avx2, at_b_tile1_avx2,
    axpy_avx2,       axpy4_avx2, axpy_bf16_avx2,  axpy4_bf16_avx2,
    cos_norm_avx2,   cos_norm_f32_avx2,
};

}  // namespace

const Ops* avx2() noexcept { return &kAvx2Ops; }

}  // namespace lsi::la::kern
