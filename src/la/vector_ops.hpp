#pragma once
// Level-1 vector kernels. Everything is written against contiguous
// double spans so the same kernels serve dense-matrix columns, Lanczos
// basis vectors, and LSI document coordinates.

#include <cstddef>
#include <span>
#include <vector>

namespace lsi::la {

using Vector = std::vector<double>;

/// Euclidean inner product. Sizes must match.
double dot(std::span<const double> x, std::span<const double> y) noexcept;

/// 2-norm.
double norm2(std::span<const double> x) noexcept;

/// y += a * x.
void axpy(double a, std::span<const double> x, std::span<double> y) noexcept;

/// x *= a.
void scale(std::span<double> x, double a) noexcept;

/// Normalizes x to unit 2-norm and returns the prior norm. If the norm is
/// below `tiny`, x is left untouched and 0 is returned.
double normalize(std::span<double> x, double tiny = 1e-300) noexcept;

/// Cosine similarity; 0 when either vector has zero norm.
double cosine(std::span<const double> x, std::span<const double> y) noexcept;

/// Sets every element to zero.
void set_zero(std::span<double> x) noexcept;

}  // namespace lsi::la
