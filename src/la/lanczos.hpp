#pragma once
// Truncated SVD of large sparse matrices by Golub–Kahan–Lanczos
// bidiagonalization with full reorthogonalization.
//
// This is the library's stand-in for SVDPACKC's Lanczos code the paper uses:
// the k-largest singular triplets of a sparse m x n matrix A are extracted
// from the bidiagonal projection built with one A*v and one A^T*u product
// per step. Cost follows the paper's Section 4.2 model
//     I * cost(G^T G x) + trp * cost(G x),
// and the driver reports I (steps) and matvec counts so benches can check
// measured time against the model.

#include <cstdint>

#include "la/sparse.hpp"
#include "la/svd_types.hpp"

namespace lsi::la {

struct LanczosOptions {
  index_t k = 100;          ///< singular triplets wanted
  /// Hard cap on Lanczos steps; 0 -> min(min(m,n), max(6k+48, 128)). The
  /// periodic convergence test stops the expansion as soon as the k Ritz
  /// residuals pass `tol`, so a generous cap only costs time on genuinely
  /// slow (clustered) spectra.
  index_t max_dim = 0;
  double tol = 1e-10;       ///< Ritz residual tolerance, relative to sigma_1
  std::uint64_t seed = 42;  ///< start-vector seed
  bool throw_if_not_converged = false;  ///< else returns best effort
};

struct LanczosStats {
  index_t steps = 0;            ///< Lanczos steps taken (the paper's I)
  index_t matvecs = 0;          ///< A*x products
  index_t matvecs_transpose = 0;  ///< A^T*x products
  index_t converged = 0;        ///< triplets meeting the residual tolerance
  double max_residual = 0.0;    ///< worst accepted Ritz residual / sigma_1
  /// Measured flops of the dominant kernels: matvecs (via
  /// LinearOperator::apply_flops), Gram-Schmidt reorthogonalization, and the
  /// final basis-rotation GEMMs. Ritz-check bidiagonal SVDs are excluded
  /// (O(steps^3), negligible at LSI shapes), so this slightly undercounts.
  /// Compare against the Section 4.2 model via lsi::flops to get the
  /// predicted-vs-actual rows the benches emit.
  std::uint64_t flops = 0;
};

/// Computes up to opts.k largest singular triplets of `op`. The result holds
/// min(opts.k, steps, min(m,n)) triplets, descending, sign-normalized.
/// Zero matrices yield zero singular values with arbitrary orthonormal
/// vectors. `stats`, when non-null, receives convergence counters.
SvdResult lanczos_svd(const LinearOperator& op, const LanczosOptions& opts,
                      LanczosStats* stats = nullptr);

/// Convenience overload for CSC matrices.
SvdResult lanczos_svd(const CscMatrix& a, const LanczosOptions& opts,
                      LanczosStats* stats = nullptr);

/// Truncated SVD of a small/medium *dense* matrix: dispatches to one-sided
/// Jacobi below `dense_cutoff` on the short side, otherwise runs Lanczos on
/// a dense operator. The single entry point the LSI layer uses when it does
/// not care about the backend.
SvdResult truncated_svd(const DenseMatrix& a, index_t k,
                        index_t dense_cutoff = 96);

}  // namespace lsi::la
