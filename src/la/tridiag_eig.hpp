#pragma once
// Symmetric tridiagonal eigensolver (implicit-shift QL), the classic kernel
// behind Lanczos eigenanalysis of A^T A. Exposed both for tests and as an
// alternative "normal equations" route to small truncated SVDs.

#include <vector>

#include "la/dense.hpp"

namespace lsi::la {

struct TridiagEig {
  std::vector<double> values;  ///< ascending eigenvalues
  DenseMatrix vectors;         ///< column i pairs with values[i]
};

/// Eigendecomposition of the symmetric tridiagonal matrix with diagonal
/// `diag` (size n) and off-diagonal `off` (size n-1, off[i] couples i,i+1).
/// Throws std::runtime_error if the QL iteration fails to converge.
TridiagEig tridiag_eigen(std::vector<double> diag, std::vector<double> off);

/// Full eigendecomposition of a dense symmetric matrix via Householder
/// tridiagonalization + QL. Values ascend. Intended for small matrices
/// (orthogonality measurement, tests).
TridiagEig symmetric_eigen(const DenseMatrix& a);

}  // namespace lsi::la
