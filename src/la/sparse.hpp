#pragma once
// Sparse matrices in the two formats LSI needs:
//   * CooBuilder   — incremental triplet assembly while parsing documents;
//   * CscMatrix    — compressed sparse column, the operational format.
//
// Term-document matrices store documents as columns, so CSC gives O(nnz_j)
// access to each document and a cache-friendly A*x; A^T*x traverses columns
// and is parallelized over columns since each output element is owned by
// exactly one column.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "la/dense.hpp"
#include "la/vector_ops.hpp"

namespace lsi::la {

/// Triplet accumulator. Duplicate (i, j) entries are summed on conversion.
class CooBuilder {
 public:
  CooBuilder(index_t rows, index_t cols) : rows_(rows), cols_(cols) {}

  void add(index_t i, index_t j, double v);

  index_t rows() const noexcept { return rows_; }
  index_t cols() const noexcept { return cols_; }
  std::size_t entries() const noexcept { return vals_.size(); }

  /// Sorts, merges duplicates, drops explicit zeros, and compresses.
  class CscMatrix to_csc() const;

 private:
  index_t rows_, cols_;
  std::vector<index_t> is_, js_;
  std::vector<double> vals_;
};

/// Immutable compressed-sparse-column matrix.
class CscMatrix {
 public:
  CscMatrix() = default;
  CscMatrix(index_t rows, index_t cols, std::vector<index_t> col_ptr,
            std::vector<index_t> row_idx, std::vector<double> values);

  static CscMatrix from_dense(const DenseMatrix& a, double drop_tol = 0.0);

  index_t rows() const noexcept { return rows_; }
  index_t cols() const noexcept { return cols_; }
  std::size_t nnz() const noexcept { return values_.size(); }

  /// Fraction of nonzero cells.
  double density() const noexcept;

  std::span<const index_t> col_ptr() const noexcept { return col_ptr_; }
  std::span<const index_t> row_idx() const noexcept { return row_idx_; }
  std::span<const double> values() const noexcept { return values_; }

  /// Row indices of column j.
  std::span<const index_t> col_rows(index_t j) const noexcept {
    return {row_idx_.data() + col_ptr_[j], col_ptr_[j + 1] - col_ptr_[j]};
  }
  /// Values of column j (parallel to col_rows(j)).
  std::span<const double> col_values(index_t j) const noexcept {
    return {values_.data() + col_ptr_[j], col_ptr_[j + 1] - col_ptr_[j]};
  }

  /// y = A * x (y sized rows()). Serial per call; callers batch columns.
  void apply(std::span<const double> x, std::span<double> y) const;

  /// y = A^T * x (y sized cols()). Parallel over columns.
  void apply_transpose(std::span<const double> x, std::span<double> y) const;

  /// Dense copy (small matrices / tests only).
  DenseMatrix to_dense() const;

  /// New matrix with the columns of `other` appended on the right.
  CscMatrix with_appended_cols(const CscMatrix& other) const;

  /// New matrix with the rows of `other` appended at the bottom.
  CscMatrix with_appended_rows(const CscMatrix& other) const;

  /// Entry lookup by binary search within the column: O(log nnz_j).
  double at(index_t i, index_t j) const;

  /// Returns a copy whose value array is transformed entrywise by
  /// new = f(i, j, old); zeros stay implicit (f never sees them).
  template <typename F>
  CscMatrix transform_values(F&& f) const {
    CscMatrix out = *this;
    for (index_t j = 0; j < cols_; ++j) {
      for (index_t p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p) {
        out.values_[p] = f(row_idx_[p], j, values_[p]);
      }
    }
    return out;
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> col_ptr_;  ///< size cols+1
  std::vector<index_t> row_idx_;  ///< size nnz
  std::vector<double> values_;    ///< size nnz
};

/// Compressed-sparse-row matrix: the row-major dual of CscMatrix, giving
/// O(nnz_i) access to each *term* row (CSC owns the document columns).
/// Built from a CscMatrix; used wherever row gathers would otherwise
/// densify (e.g. folding in new term rows).
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Transposes the compression of `a` (O(nnz)).
  static CsrMatrix from_csc(const CscMatrix& a);

  index_t rows() const noexcept { return rows_; }
  index_t cols() const noexcept { return cols_; }
  std::size_t nnz() const noexcept { return values_.size(); }

  /// Column indices of row i (ascending).
  std::span<const index_t> row_cols(index_t i) const noexcept {
    return {col_idx_.data() + row_ptr_[i], row_ptr_[i + 1] - row_ptr_[i]};
  }
  /// Values of row i (parallel to row_cols(i)).
  std::span<const double> row_values(index_t i) const noexcept {
    return {values_.data() + row_ptr_[i], row_ptr_[i + 1] - row_ptr_[i]};
  }

  /// y = A * x (parallel over rows; each y[i] is a gather).
  void apply(std::span<const double> x, std::span<double> y) const;

  /// y = A^T * x (serial scatter).
  void apply_transpose(std::span<const double> x, std::span<double> y) const;

  /// Dense copy (tests only).
  DenseMatrix to_dense() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> row_ptr_;  ///< size rows+1
  std::vector<index_t> col_idx_;  ///< size nnz
  std::vector<double> values_;    ///< size nnz
};

/// Abstract m x n linear operator: the interface the Lanczos driver works
/// against, so sparse, dense, and matrix-free operators all plug in.
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;
  virtual index_t rows() const noexcept = 0;
  virtual index_t cols() const noexcept = 0;
  /// y = A x; y is pre-sized to rows().
  virtual void apply(std::span<const double> x, std::span<double> y) const = 0;
  /// y = A^T x; y is pre-sized to cols().
  virtual void apply_transpose(std::span<const double> x,
                               std::span<double> y) const = 0;
  /// Flops one apply()/apply_transpose() costs (2 per stored nonzero), for
  /// the observability layer's measured-flop accounting. 0 = unknown.
  virtual std::uint64_t apply_flops() const noexcept { return 0; }
};

/// LinearOperator view over a CscMatrix (non-owning).
class CscOperator final : public LinearOperator {
 public:
  explicit CscOperator(const CscMatrix& a) noexcept : a_(&a) {}
  index_t rows() const noexcept override { return a_->rows(); }
  index_t cols() const noexcept override { return a_->cols(); }
  void apply(std::span<const double> x, std::span<double> y) const override {
    a_->apply(x, y);
  }
  void apply_transpose(std::span<const double> x,
                       std::span<double> y) const override {
    a_->apply_transpose(x, y);
  }
  std::uint64_t apply_flops() const noexcept override {
    return 2 * static_cast<std::uint64_t>(a_->nnz());
  }

 private:
  const CscMatrix* a_;
};

/// LinearOperator view over a DenseMatrix (non-owning).
class DenseOperator final : public LinearOperator {
 public:
  explicit DenseOperator(const DenseMatrix& a) noexcept : a_(&a) {}
  index_t rows() const noexcept override { return a_->rows(); }
  index_t cols() const noexcept override { return a_->cols(); }
  void apply(std::span<const double> x, std::span<double> y) const override;
  void apply_transpose(std::span<const double> x,
                       std::span<double> y) const override;
  std::uint64_t apply_flops() const noexcept override {
    return 2 * static_cast<std::uint64_t>(a_->rows()) *
           static_cast<std::uint64_t>(a_->cols());
  }

 private:
  const DenseMatrix* a_;
};

}  // namespace lsi::la
