#pragma once
// Runtime-dispatched SIMD microkernels for the Eq. 6 hot path
// (docs/KERNELS.md). One process-global Ops table is selected at first use —
// CPUID by default, overridable with the LSI_KERNEL environment variable or
// kern::force() (the CLI's --kernel flag) — and every hot loop that routes
// through it (the blocked GEMM register tile, the batched score sweep, the
// Lanczos reorthogonalization) calls through plain function pointers.
//
// Precision policy (enforced by tests/la/kernel_parity_test.cpp):
//
//   * elementwise kernels (axpy, axpy4, axpy_bf16, axpy4_bf16) perform one
//     multiply and one add per element in a fixed order, never fused, so
//     every kernel produces BIT-IDENTICAL results. The batched score sweep
//     is built only from these, which is why batched-vs-single,
//     exact-vs-full-probe, concurrent and replicated parity hold under any
//     kernel.
//   * reduction kernels (dot, at_b_tile1, at_b_tile4) may reassociate the
//     sum (wider accumulators, FMA), so results differ across kernels within
//     a small ULP bound — but each kernel is DETERMINISTIC: for a given
//     input length the accumulation tree is fixed, independent of panel
//     width, batch size, or thread count (at_b_tile1 computes exactly one
//     stream of at_b_tile4's chain).
//
// Scalar norms (la::norm2, the doc-norm caches) intentionally stay outside
// this table: cached norms must be identical no matter which kernel is
// active, so a snapshot prewarmed under one kernel serves any other.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace lsi::la::kern {

/// One registered kernel implementation. All pointers are non-null.
struct Ops {
  const char* name;

  // --- reduction kernels (reassociation allowed, ULP-bounded) ---
  /// sum_i x[i] * y[i].
  double (*dot)(const double* x, const double* y, std::size_t n);
  /// One inner register tile of C = A^T B: out[t] = sum_{r in [lo,hi)}
  /// a[r] * bt[r] for the four B columns b0..b3.
  void (*at_b_tile4)(const double* a, const double* b0, const double* b1,
                     const double* b2, const double* b3, std::size_t lo,
                     std::size_t hi, double out[4]);
  /// Single-column remainder tile; bit-identical to one at_b_tile4 stream.
  double (*at_b_tile1)(const double* a, const double* b, std::size_t lo,
                       std::size_t hi);

  // --- elementwise kernels (fixed order, bit-identical across kernels) ---
  /// y[i] += a * x[i].
  void (*axpy)(double a, const double* x, double* y, std::size_t n);
  /// Four independent accumulation streams sharing the x loads:
  /// yt[i] += a4[t] * x[i]. Bit-identical to four axpy calls.
  void (*axpy4)(const double* a4, const double* x, double* y0, double* y1,
                double* y2, double* y3, std::size_t n);
  /// fp32 accumulation over a bf16 vector: y[i] += a * decode(x[i]).
  void (*axpy_bf16)(float a, const std::uint16_t* x, float* y, std::size_t n);
  /// Four fp32 streams sharing the bf16 decode of x.
  void (*axpy4_bf16)(const float* a4, const std::uint16_t* x, float* y0,
                     float* y1, float* y2, float* y3, std::size_t n);

  // --- correctly-rounded kernels (bit-identical across kernels) ---
  // Multiplication and division are correctly rounded in both scalar and
  // packed form, so these vectorize without any precision contract caveat.
  /// In-place cosine normalization with la::cosine's zero-norm guard:
  /// y[i] = (qn == 0 || dn[i] == 0) ? 0 : y[i] / (qn * dn[i]).
  void (*cos_norm)(double qn, const double* dn, double* y, std::size_t n);
  /// fp32-accumulator variant (the bf16 sweep): widen then normalize,
  /// out[i] = (qn == 0 || dn[i] == 0) ? 0 : double(acc[i]) / (qn * dn[i]).
  void (*cos_norm_f32)(double qn, const float* acc, const double* dn,
                       double* out, std::size_t n);
};

/// The scalar fallback; bit-identical to the pre-dispatch code.
const Ops& portable() noexcept;

/// The AVX2/FMA kernel, or null when not compiled into this binary
/// (non-x86 targets). Callers must additionally check cpu_has_avx2().
const Ops* avx2() noexcept;

/// True when the running CPU supports AVX2 and FMA.
bool cpu_has_avx2() noexcept;

/// Outcome of resolving a kernel name: `ops` is null for an unknown name;
/// `fell_back` marks an explicit "avx2" request served by portable because
/// the ISA is absent (graceful fallback, not an error).
struct Selection {
  const Ops* ops = nullptr;
  bool fell_back = false;
};

/// Pure name resolution ("portable" | "avx2" | "auto") against an explicit
/// CPU capability — testable without mutating process state.
Selection select(std::string_view name, bool cpu_ok) noexcept;

/// The exact LSI_KERNEL startup semantics as a pure function of the
/// environment value (null/empty means unset -> "auto"; unknown names must
/// not brick the process, they also resolve as "auto"). active()'s first
/// resolution is resolve_env(getenv("LSI_KERNEL"), cpu_has_avx2()).
const Ops& resolve_env(const char* env_value, bool cpu_ok) noexcept;

/// The process-active kernel. Resolved once on first use: LSI_KERNEL when
/// set (unknown values fall back to "auto"), else AVX2 when the CPU has it,
/// else portable.
const Ops& active() noexcept;

/// Forces the active kernel ("portable" | "avx2" | "auto"); returns false
/// (and changes nothing) for an unknown name. "avx2" without CPU support
/// falls back to portable. Not meant to race queries: call at startup or
/// from single-threaded test setup.
bool force(std::string_view name) noexcept;

// --- bf16 encode/decode -----------------------------------------------------
// bf16 is the top 16 bits of an IEEE fp32: same exponent range, truncated
// mantissa. Encoding rounds to nearest-even; decoding is exact (shift).

inline std::uint16_t bf16_from_f32(float v) noexcept {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  if ((bits & 0x7F800000u) == 0x7F800000u) {
    // Inf stays Inf; NaN keeps a mantissa bit so it cannot round to Inf.
    std::uint16_t h = static_cast<std::uint16_t>(bits >> 16);
    if ((bits & 0x007FFFFFu) != 0) h |= 0x0040u;
    return h;
  }
  // Round to nearest, ties to even, on the 16 dropped bits.
  const std::uint32_t rounded = bits + 0x7FFFu + ((bits >> 16) & 1u);
  return static_cast<std::uint16_t>(rounded >> 16);
}

/// Canonical double -> bf16 path: round to fp32 first, then to bf16. Every
/// encoder in this library (store build, io, on-the-fly re-rank fallback)
/// uses this exact two-step rounding so encoded values always agree.
inline std::uint16_t bf16_from_f64(double v) noexcept {
  return bf16_from_f32(static_cast<float>(v));
}

inline float bf16_to_f32(std::uint16_t h) noexcept {
  const std::uint32_t bits = static_cast<std::uint32_t>(h) << 16;
  float v;
  std::memcpy(&v, &bits, sizeof bits);
  return v;
}

}  // namespace lsi::la::kern
