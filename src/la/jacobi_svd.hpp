#pragma once
// Dense SVD by one-sided Jacobi rotations.
//
// This is the workhorse for the *small dense* decompositions in the LSI
// pipeline: the bidiagonal matrix inside the Lanczos driver and the inner
// matrices F, H, Q of the SVD-updating phases (Section 4.2 of the paper).
// One-sided Jacobi is chosen because it is simple, unconditionally stable,
// and computes small singular values to high relative accuracy.

#include "la/dense.hpp"
#include "la/svd_types.hpp"

namespace lsi::la {

struct JacobiOptions {
  int max_sweeps = 60;      ///< hard cap on cyclic sweeps
  double tol = 1e-14;       ///< relative off-diagonal convergence threshold
};

/// Full thin SVD of a dense matrix (any shape; internally works on the
/// orientation with rows >= cols). Returns min(m, n) triplets with
/// descending singular values and the deterministic sign convention applied.
/// Throws std::runtime_error if sweeps are exhausted before convergence
/// (does not happen for the sizes this library produces).
SvdResult jacobi_svd(const DenseMatrix& a, const JacobiOptions& opts = {});

}  // namespace lsi::la
