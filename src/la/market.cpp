#include "la/market.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace lsi::la {

void write_matrix_market(std::ostream& os, const CscMatrix& a) {
  os << "%%MatrixMarket matrix coordinate real general\n";
  os << "% written by lsi::la (term-document matrix)\n";
  os << a.rows() << ' ' << a.cols() << ' ' << a.nnz() << '\n';
  os.precision(17);
  for (index_t j = 0; j < a.cols(); ++j) {
    auto rows = a.col_rows(j);
    auto vals = a.col_values(j);
    for (std::size_t p = 0; p < rows.size(); ++p) {
      os << rows[p] + 1 << ' ' << j + 1 << ' ' << vals[p] << '\n';
    }
  }
  if (!os) throw std::runtime_error("matrix market: write failed");
}

CscMatrix read_matrix_market(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("matrix market: empty stream");
  }
  const std::string header = util::to_lower(line);
  if (header.find("%%matrixmarket") != 0 ||
      header.find("coordinate") == std::string::npos ||
      header.find("real") == std::string::npos ||
      header.find("general") == std::string::npos) {
    throw std::runtime_error(
        "matrix market: unsupported header (need coordinate real general)");
  }
  // Skip comments.
  do {
    if (!std::getline(is, line)) {
      throw std::runtime_error("matrix market: missing size line");
    }
  } while (!line.empty() && line[0] == '%');

  std::istringstream size_line(line);
  long long rows = 0, cols = 0, nnz = 0;
  if (!(size_line >> rows >> cols >> nnz) || rows < 0 || cols < 0 ||
      nnz < 0) {
    throw std::runtime_error("matrix market: bad size line");
  }

  CooBuilder builder(static_cast<index_t>(rows), static_cast<index_t>(cols));
  for (long long e = 0; e < nnz; ++e) {
    long long i = 0, j = 0;
    double v = 0.0;
    if (!(is >> i >> j >> v)) {
      throw std::runtime_error("matrix market: truncated entries");
    }
    if (i < 1 || i > rows || j < 1 || j > cols) {
      throw std::runtime_error("matrix market: index out of range");
    }
    builder.add(static_cast<index_t>(i - 1), static_cast<index_t>(j - 1), v);
  }
  return builder.to_csc();
}

void write_matrix_market_file(const std::string& path, const CscMatrix& a) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("matrix market: cannot open " + path);
  write_matrix_market(os, a);
}

CscMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("matrix market: cannot open " + path);
  return read_matrix_market(is);
}

}  // namespace lsi::la
