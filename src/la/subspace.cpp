#include "la/subspace.hpp"

#include <algorithm>
#include <cmath>

#include "la/jacobi_svd.hpp"
#include "la/qr.hpp"
#include "util/rng.hpp"

namespace lsi::la {

namespace {

/// y_block[:, j] = op applied to x_block[:, j].
void apply_block(const LinearOperator& op, bool transpose,
                 const DenseMatrix& x, DenseMatrix& y) {
  for (index_t j = 0; j < x.cols(); ++j) {
    if (transpose) {
      op.apply_transpose(x.col(j), y.col(j));
    } else {
      op.apply(x.col(j), y.col(j));
    }
  }
}

}  // namespace

SvdResult subspace_svd(const LinearOperator& op, const SubspaceOptions& opts,
                       SubspaceStats* stats) {
  const index_t m = op.rows();
  const index_t n = op.cols();
  const index_t minmn = std::min(m, n);
  const index_t k = std::min(opts.k, minmn);
  SubspaceStats local;
  SubspaceStats& st = stats ? *stats : local;
  st = SubspaceStats{};

  SvdResult out;
  if (k == 0 || m == 0 || n == 0) return out;
  const index_t block = std::min<index_t>(minmn, k + opts.oversample);

  // Random orthonormal start block in document space.
  util::Rng rng(opts.seed);
  DenseMatrix v(n, block);
  for (index_t j = 0; j < block; ++j) {
    for (index_t i = 0; i < n; ++i) v(i, j) = rng.normal();
  }
  v = orthonormal_columns(v);

  DenseMatrix y(m, block);
  DenseMatrix z(n, block);
  std::vector<double> prev_sigma(k, 0.0);

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    ++st.iterations;
    // One round of orthogonal iteration on A^T A: V <- orth(A^T orth(A V)).
    apply_block(op, /*transpose=*/false, v, y);
    st.matvecs += block;
    y = orthonormal_columns(y);
    apply_block(op, /*transpose=*/true, y, z);
    st.matvecs += block;
    v = orthonormal_columns(z);

    // Rayleigh-Ritz every few rounds: SVD of the m x block matrix A V.
    if (iter % 4 == 3 || iter + 1 == opts.max_iterations) {
      apply_block(op, /*transpose=*/false, v, y);
      st.matvecs += block;
      SvdResult small = jacobi_svd(y);  // y = (A V) = U S W^T
      bool settled = true;
      for (index_t i = 0; i < k; ++i) {
        const double s = small.s[i];
        const double ref = std::max(small.s[0], 1e-300);
        if (std::fabs(s - prev_sigma[i]) > opts.tol * ref) settled = false;
        prev_sigma[i] = s;
      }
      if (settled || iter + 1 == opts.max_iterations) {
        out.u = small.u.first_cols(k);
        out.s.assign(small.s.begin(), small.s.begin() + k);
        out.v = multiply(v, small.v.first_cols(k));
        normalize_signs(out);
        st.converged = settled;
        return out;
      }
    }
  }
  return out;  // unreachable: the loop always returns at the final iteration
}

SvdResult subspace_svd(const CscMatrix& a, const SubspaceOptions& opts,
                       SubspaceStats* stats) {
  CscOperator op(a);
  return subspace_svd(op, opts, stats);
}

}  // namespace lsi::la
