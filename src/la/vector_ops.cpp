#include "la/vector_ops.hpp"

#include <cassert>
#include <cmath>

namespace lsi::la {

double dot(std::span<const double> x, std::span<const double> y) noexcept {
  assert(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

double norm2(std::span<const double> x) noexcept {
  // Scaled accumulation to dodge overflow/underflow on extreme inputs.
  double scale_v = 0.0;
  double ssq = 1.0;
  for (double v : x) {
    if (v == 0.0) continue;
    const double a = std::fabs(v);
    if (scale_v < a) {
      ssq = 1.0 + ssq * (scale_v / a) * (scale_v / a);
      scale_v = a;
    } else {
      ssq += (a / scale_v) * (a / scale_v);
    }
  }
  return scale_v * std::sqrt(ssq);
}

void axpy(double a, std::span<const double> x, std::span<double> y) noexcept {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

void scale(std::span<double> x, double a) noexcept {
  for (double& v : x) v *= a;
}

double normalize(std::span<double> x, double tiny) noexcept {
  const double n = norm2(x);
  if (n <= tiny) return 0.0;
  scale(x, 1.0 / n);
  return n;
}

double cosine(std::span<const double> x, std::span<const double> y) noexcept {
  const double nx = norm2(x);
  const double ny = norm2(y);
  if (nx == 0.0 || ny == 0.0) return 0.0;
  return dot(x, y) / (nx * ny);
}

void set_zero(std::span<double> x) noexcept {
  for (double& v : x) v = 0.0;
}

}  // namespace lsi::la
