#pragma once
// Householder QR factorization with thin-Q extraction.
//
// Used to (re)orthonormalize bases: folded-in document/term blocks, Lanczos
// restart vectors, and as a reference orthogonalizer in tests.

#include "la/dense.hpp"

namespace lsi::la {

struct QrResult {
  DenseMatrix q;  ///< m x min(m,n), orthonormal columns
  DenseMatrix r;  ///< min(m,n) x n, upper triangular
};

/// Thin QR of an m x n matrix via Householder reflections.
QrResult qr_decompose(const DenseMatrix& a);

/// Orthonormalizes the columns of `a` (thin Q). Columns that are linearly
/// dependent (R diagonal below `tol` relative to the largest) are replaced
/// with zero columns so callers can detect rank deficiency.
DenseMatrix orthonormal_columns(const DenseMatrix& a, double tol = 1e-12);

}  // namespace lsi::la
