#include "la/jacobi_svd.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace lsi::la {

namespace {

/// One-sided Jacobi on a matrix with rows >= cols. Returns triplets in
/// arbitrary order; caller sorts.
SvdResult jacobi_tall(const DenseMatrix& a, const JacobiOptions& opts) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  assert(m >= n);

  DenseMatrix w = a;                       // columns converge to U * diag(s)
  DenseMatrix v = DenseMatrix::identity(n);

  // Columns whose mass has collapsed below eps^2 * ||A||_F^2 are numerically
  // zero. They must be excluded from rotations: a tiny column that is a
  // rounding remnant of another column stays perfectly parallel to it, so
  // the relative off-diagonal test |apq| <= tol*sqrt(app*aqq) can never pass
  // and the sweep would cycle forever.
  const double fro = a.frobenius_norm();
  const double dead = (1e-15 * fro) * (1e-15 * fro);

  for (int sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    bool rotated = false;
    for (index_t p = 0; p + 1 < n; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        auto wp = w.col(p);
        auto wq = w.col(q);
        const double app = dot(wp, wp);
        const double aqq = dot(wq, wq);
        if (app <= dead || aqq <= dead) continue;
        const double apq = dot(wp, wq);
        if (std::fabs(apq) <= opts.tol * std::sqrt(app * aqq) ||
            apq == 0.0) {
          continue;
        }
        rotated = true;
        // Classic symmetric 2x2 rotation on the Gram matrix.
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t =
            (zeta >= 0.0 ? 1.0 : -1.0) /
            (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (index_t i = 0; i < m; ++i) {
          const double wpi = wp[i];
          const double wqi = wq[i];
          wp[i] = c * wpi - s * wqi;
          wq[i] = s * wpi + c * wqi;
        }
        auto vp = v.col(p);
        auto vq = v.col(q);
        for (index_t i = 0; i < n; ++i) {
          const double vpi = vp[i];
          const double vqi = vq[i];
          vp[i] = c * vpi - s * vqi;
          vq[i] = s * vpi + c * vqi;
        }
      }
    }
    if (!rotated) {
      SvdResult out;
      out.s.resize(n);
      out.u = DenseMatrix(m, n);
      out.v = std::move(v);
      for (index_t j = 0; j < n; ++j) {
        auto wj = w.col(j);
        const double sigma = norm2(wj);
        out.s[j] = sigma;
        auto uj = out.u.col(j);
        if (sigma > 0.0) {
          for (index_t i = 0; i < m; ++i) uj[i] = wj[i] / sigma;
        }
        // sigma == 0: leave a zero U column; rank deficiency is visible to
        // callers through s[j] == 0.
      }
      return out;
    }
  }
  throw std::runtime_error("jacobi_svd: sweep limit exceeded");
}

}  // namespace

void SvdResult::truncate(index_t k) {
  if (k >= rank()) return;
  u = u.first_cols(k);
  v = v.first_cols(k);
  s.resize(k);
}

DenseMatrix SvdResult::reconstruct() const {
  return multiply_a_bt(scale_cols(u, s), v);
}

void normalize_signs(SvdResult& svd) {
  for (index_t j = 0; j < svd.rank(); ++j) {
    auto uj = svd.u.col(j);
    index_t arg = 0;
    double best = 0.0;
    for (index_t i = 0; i < uj.size(); ++i) {
      if (std::fabs(uj[i]) > best) {
        best = std::fabs(uj[i]);
        arg = i;
      }
    }
    if (uj.empty() || uj[arg] >= 0.0) continue;
    scale(uj, -1.0);
    scale(svd.v.col(j), -1.0);
  }
}

void sort_descending(SvdResult& svd) {
  const index_t k = svd.rank();
  std::vector<index_t> order(k);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return svd.s[a] > svd.s[b];
  });
  SvdResult out;
  out.s.resize(k);
  out.u = DenseMatrix(svd.u.rows(), k);
  out.v = DenseMatrix(svd.v.rows(), k);
  for (index_t j = 0; j < k; ++j) {
    out.s[j] = svd.s[order[j]];
    auto us = svd.u.col(order[j]);
    auto ud = out.u.col(j);
    std::copy(us.begin(), us.end(), ud.begin());
    auto vs = svd.v.col(order[j]);
    auto vd = out.v.col(j);
    std::copy(vs.begin(), vs.end(), vd.begin());
  }
  svd = std::move(out);
}

SvdResult jacobi_svd(const DenseMatrix& a, const JacobiOptions& opts) {
  SvdResult out;
  if (a.rows() == 0 || a.cols() == 0) return out;
  if (a.rows() >= a.cols()) {
    out = jacobi_tall(a, opts);
  } else {
    out = jacobi_tall(a.transposed(), opts);
    std::swap(out.u, out.v);
  }
  sort_descending(out);
  normalize_signs(out);
  return out;
}

}  // namespace lsi::la
