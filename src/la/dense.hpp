#pragma once
// Column-major dense matrices and the handful of BLAS-3 style products the
// LSI pipeline needs. Column-major layout is chosen because LSI manipulates
// matrices column-wise throughout: singular vectors are columns, documents
// are columns, and folding-in appends columns.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "la/vector_ops.hpp"
#include "util/aligned.hpp"

namespace lsi::la {

using index_t = std::size_t;

/// Dense column-major matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// rows x cols matrix, zero-initialized.
  DenseMatrix(index_t rows, index_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Builds from row-major initializer data (convenient for tests/datasets).
  static DenseMatrix from_rows(
      const std::vector<std::vector<double>>& rows);

  /// n x n identity.
  static DenseMatrix identity(index_t n);

  index_t rows() const noexcept { return rows_; }
  index_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(index_t i, index_t j) noexcept {
    return data_[j * rows_ + i];
  }
  double operator()(index_t i, index_t j) const noexcept {
    return data_[j * rows_ + i];
  }

  /// Contiguous view of column j.
  std::span<double> col(index_t j) noexcept {
    return {data_.data() + j * rows_, rows_};
  }
  std::span<const double> col(index_t j) const noexcept {
    return {data_.data() + j * rows_, rows_};
  }

  /// Copy of row i (rows are strided in column-major storage).
  Vector row(index_t i) const;

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  /// First `k` columns as a new matrix.
  DenseMatrix first_cols(index_t k) const;

  /// Transposed copy.
  DenseMatrix transposed() const;

  /// Appends the columns of `other` (same row count) to the right.
  void append_cols(const DenseMatrix& other);

  /// Appends the rows of `other` (same column count) at the bottom.
  void append_rows(const DenseMatrix& other);

  /// Frobenius norm.
  double frobenius_norm() const noexcept;

  /// Largest absolute entry.
  double max_abs() const noexcept;

  /// this += alpha * other (same shape).
  void add_scaled(const DenseMatrix& other, double alpha);

  /// Scales every entry.
  void scale_all(double alpha) noexcept;

  bool same_shape(const DenseMatrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  /// 64-byte-aligned, 64-byte-padded storage (util/aligned.hpp): the SIMD
  /// sweeps' loadu instructions hit aligned addresses whenever the row count
  /// cooperates, at zero cost to any caller — data() still returns double*.
  util::aligned_vector<double> data_;
};

/// C = A * B. Parallelized over columns of C.
DenseMatrix multiply(const DenseMatrix& a, const DenseMatrix& b);

/// C = A^T * B without forming A^T.
DenseMatrix multiply_at_b(const DenseMatrix& a, const DenseMatrix& b);

/// C = A^T * B via the blocked kernel behind batched query projection:
/// columns of C are processed in `col_panel`-wide panels across the thread
/// pool, and within a panel the shared dimension is walked in cache-sized
/// blocks so each block of A is reused for every column of the panel. The
/// inner kernel register-tiles four columns of B per A column (each load of
/// A feeds four FMA streams) with a fixed two-way accumulator split per
/// stream, so results differ from multiply_at_b by rounding only — but are
/// bit-identical across every panel width, batch size, and thread count,
/// which is what batched-vs-single retrieval parity relies on.
DenseMatrix multiply_at_b_blocked(const DenseMatrix& a, const DenseMatrix& b,
                                  index_t col_panel = 16);

/// C = A * B^T without forming B^T.
DenseMatrix multiply_a_bt(const DenseMatrix& a, const DenseMatrix& b);

/// y = A * x.
Vector multiply(const DenseMatrix& a, std::span<const double> x);

/// y = A^T * x.
Vector multiply_transpose(const DenseMatrix& a, std::span<const double> x);

/// A * diag(d): scales column j by d[j]. Requires d.size() == a.cols().
DenseMatrix scale_cols(const DenseMatrix& a, std::span<const double> d);

/// diag(d) * A: scales row i by d[i]. Requires d.size() == a.rows().
DenseMatrix scale_rows(const DenseMatrix& a, std::span<const double> d);

/// max |A - B| over entries. Shapes must match.
double max_abs_diff(const DenseMatrix& a, const DenseMatrix& b);

/// ||Q^T Q - I||_max: cheap orthonormality check used in tests.
double orthonormality_error(const DenseMatrix& q);

/// Human-readable dump (rows x cols with fixed precision), for debugging and
/// the figure benches.
std::string to_string(const DenseMatrix& a, int precision = 4);

}  // namespace lsi::la
