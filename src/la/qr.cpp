#include "la/qr.hpp"

#include <cassert>
#include <cmath>

namespace lsi::la {

QrResult qr_decompose(const DenseMatrix& a) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t t = std::min(m, n);

  DenseMatrix work = a;                       // will hold R in its upper part
  std::vector<Vector> reflectors;             // Householder vectors
  reflectors.reserve(t);

  for (index_t k = 0; k < t; ++k) {
    // Build the reflector annihilating work(k+1.., k).
    Vector v(m - k);
    for (index_t i = k; i < m; ++i) v[i - k] = work(i, k);
    const double alpha = norm2(v);
    if (alpha == 0.0) {
      reflectors.emplace_back();  // identity step
      continue;
    }
    const double sign = v[0] >= 0.0 ? 1.0 : -1.0;
    v[0] += sign * alpha;
    const double vnorm = norm2(v);
    if (vnorm == 0.0) {
      reflectors.emplace_back();
      continue;
    }
    scale(v, 1.0 / vnorm);
    // Apply (I - 2 v v^T) to the trailing columns.
    for (index_t j = k; j < n; ++j) {
      double proj = 0.0;
      for (index_t i = k; i < m; ++i) proj += v[i - k] * work(i, j);
      proj *= 2.0;
      for (index_t i = k; i < m; ++i) work(i, j) -= proj * v[i - k];
    }
    reflectors.push_back(std::move(v));
  }

  QrResult out;
  out.r = DenseMatrix(t, n);
  for (index_t i = 0; i < t; ++i) {
    for (index_t j = i; j < n; ++j) out.r(i, j) = work(i, j);
  }

  // Thin Q: apply reflectors in reverse to the first t identity columns.
  out.q = DenseMatrix(m, t);
  for (index_t j = 0; j < t; ++j) out.q(j, j) = 1.0;
  for (index_t kk = t; kk-- > 0;) {
    const Vector& v = reflectors[kk];
    if (v.empty()) continue;
    for (index_t j = 0; j < t; ++j) {
      double proj = 0.0;
      for (index_t i = kk; i < m; ++i) proj += v[i - kk] * out.q(i, j);
      proj *= 2.0;
      for (index_t i = kk; i < m; ++i) out.q(i, j) -= proj * v[i - kk];
    }
  }
  return out;
}

DenseMatrix orthonormal_columns(const DenseMatrix& a, double tol) {
  QrResult f = qr_decompose(a);
  double rmax = 0.0;
  const index_t t = std::min(a.rows(), a.cols());
  for (index_t i = 0; i < t; ++i) rmax = std::max(rmax, std::fabs(f.r(i, i)));
  DenseMatrix q = std::move(f.q);
  for (index_t i = 0; i < t; ++i) {
    if (std::fabs(f.r(i, i)) <= tol * rmax) {
      set_zero(q.col(i));
    }
  }
  return q;
}

}  // namespace lsi::la
