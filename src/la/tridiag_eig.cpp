#include "la/tridiag_eig.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace lsi::la {

namespace {

double hypot2(double a, double b) { return std::hypot(a, b); }

}  // namespace

TridiagEig tridiag_eigen(std::vector<double> diag, std::vector<double> off) {
  const std::size_t n = diag.size();
  assert(off.size() + 1 == n || (n == 0 && off.empty()));
  TridiagEig out;
  if (n == 0) return out;

  // e[i] couples rows i-1 and i, shifted one slot as in the classic QL code.
  std::vector<double> d = std::move(diag);
  std::vector<double> e(n, 0.0);
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = off[i - 1];
  e[n - 1] = 0.0;

  DenseMatrix z = DenseMatrix::identity(n);

  for (std::size_t l = 0; l < n; ++l) {
    int iterations = 0;
    for (;;) {
      // Find a small off-diagonal element to split at.
      std::size_t m = l;
      for (; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 1e-300 + 2.3e-16 * dd) break;
      }
      if (m == l) break;
      if (++iterations > 50) {
        throw std::runtime_error("tridiag_eigen: QL failed to converge");
      }
      // Implicit shift from the 2x2 trailing block.
      double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
      double r = hypot2(g, 1.0);
      g = d[m] - d[l] + e[l] / (g + (g >= 0.0 ? std::fabs(r) : -std::fabs(r)));
      double s = 1.0;
      double c = 1.0;
      double p = 0.0;
      bool underflow = false;
      for (std::size_t i = m; i-- > l;) {
        double f = s * e[i];
        const double b = c * e[i];
        r = hypot2(f, g);
        e[i + 1] = r;
        if (r == 0.0) {
          // Rotation underflowed: deflate here and restart the sweep.
          d[i + 1] -= p;
          e[m] = 0.0;
          underflow = true;
          break;
        }
        s = f / r;
        c = g / r;
        g = d[i + 1] - p;
        r = (d[i] - g) * s + 2.0 * c * b;
        p = s * r;
        d[i + 1] = g + p;
        g = c * r - b;
        // Accumulate the rotation into the eigenvector matrix.
        for (std::size_t k = 0; k < n; ++k) {
          f = z(k, i + 1);
          z(k, i + 1) = s * z(k, i) + c * f;
          z(k, i) = c * z(k, i) - s * f;
        }
      }
      if (underflow) continue;
      d[l] -= p;
      e[l] = g;
      e[m] = 0.0;
    }
  }

  // Sort ascending, permuting eigenvectors alongside.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return d[a] < d[b]; });
  out.values.resize(n);
  out.vectors = DenseMatrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = d[order[j]];
    auto dst = out.vectors.col(j);
    auto src = z.col(order[j]);
    for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
  }
  return out;
}

TridiagEig symmetric_eigen(const DenseMatrix& a) {
  assert(a.rows() == a.cols());
  const index_t n = a.rows();
  if (n == 0) return {};

  // Householder tridiagonalization, accumulating the transform in q.
  DenseMatrix work = a;
  DenseMatrix q = DenseMatrix::identity(n);
  std::vector<double> d(n), e(n > 1 ? n - 1 : 0);

  for (index_t k = 0; k + 2 < n + 1 && n >= 2 && k < n - 2 + 1; ++k) {
    if (k >= n - 1) break;
    // Annihilate work(k+2.., k).
    Vector v(n - k - 1);
    for (index_t i = k + 1; i < n; ++i) v[i - k - 1] = work(i, k);
    const double alpha = norm2(v);
    if (alpha != 0.0 && n - k - 1 > 1) {
      const double sign = v[0] >= 0.0 ? 1.0 : -1.0;
      v[0] += sign * alpha;
      const double vn = norm2(v);
      if (vn > 0.0) {
        scale(v, 1.0 / vn);
        // work <- H work H with H = I - 2 v v^T acting on rows/cols k+1..
        // p = 2 * work * v restricted to the trailing block
        Vector p(n - k - 1, 0.0);
        for (index_t i = k + 1; i < n; ++i) {
          double acc = 0.0;
          for (index_t j = k + 1; j < n; ++j) {
            acc += work(i, j) * v[j - k - 1];
          }
          p[i - k - 1] = 2.0 * acc;
        }
        const double vp = dot(std::span<const double>(v),
                              std::span<const double>(p));
        // w = p - (v^T p) v
        for (index_t i = 0; i < p.size(); ++i) p[i] -= vp * v[i];
        for (index_t i = k + 1; i < n; ++i) {
          for (index_t j = k + 1; j < n; ++j) {
            work(i, j) -= v[i - k - 1] * p[j - k - 1] +
                          p[i - k - 1] * v[j - k - 1];
          }
        }
        // Update the k-th column/row border.
        Vector border(n - k - 1);
        for (index_t i = k + 1; i < n; ++i) border[i - k - 1] = work(i, k);
        const double bp = 2.0 * dot(std::span<const double>(v),
                                    std::span<const double>(border));
        for (index_t i = k + 1; i < n; ++i) {
          work(i, k) -= bp * v[i - k - 1];
          work(k, i) = work(i, k);
        }
        // Accumulate into q: q <- q H.
        for (index_t r = 0; r < n; ++r) {
          double acc = 0.0;
          for (index_t i = k + 1; i < n; ++i) acc += q(r, i) * v[i - k - 1];
          acc *= 2.0;
          for (index_t i = k + 1; i < n; ++i) q(r, i) -= acc * v[i - k - 1];
        }
      }
    }
  }
  for (index_t i = 0; i < n; ++i) d[i] = work(i, i);
  for (index_t i = 0; i + 1 < n; ++i) e[i] = work(i + 1, i);

  TridiagEig tri = tridiag_eigen(std::move(d), std::move(e));
  tri.vectors = multiply(q, tri.vectors);
  return tri;
}

}  // namespace lsi::la
