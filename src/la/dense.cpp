#include "la/dense.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "la/kernels.hpp"
#include "util/thread_pool.hpp"

namespace lsi::la {

DenseMatrix DenseMatrix::from_rows(
    const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  DenseMatrix m(rows.size(), rows[0].size());
  for (index_t i = 0; i < m.rows(); ++i) {
    assert(rows[i].size() == m.cols());
    for (index_t j = 0; j < m.cols(); ++j) m(i, j) = rows[i][j];
  }
  return m;
}

DenseMatrix DenseMatrix::identity(index_t n) {
  DenseMatrix m(n, n);
  for (index_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector DenseMatrix::row(index_t i) const {
  Vector r(cols_);
  for (index_t j = 0; j < cols_; ++j) r[j] = (*this)(i, j);
  return r;
}

DenseMatrix DenseMatrix::first_cols(index_t k) const {
  assert(k <= cols_);
  DenseMatrix out(rows_, k);
  for (index_t j = 0; j < k; ++j) {
    auto src = col(j);
    auto dst = out.col(j);
    for (index_t i = 0; i < rows_; ++i) dst[i] = src[i];
  }
  return out;
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix out(cols_, rows_);
  for (index_t j = 0; j < cols_; ++j) {
    for (index_t i = 0; i < rows_; ++i) out(j, i) = (*this)(i, j);
  }
  return out;
}

void DenseMatrix::append_cols(const DenseMatrix& other) {
  if (empty()) {
    *this = other;
    return;
  }
  assert(rows_ == other.rows_);
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  cols_ += other.cols_;
}

void DenseMatrix::append_rows(const DenseMatrix& other) {
  if (empty()) {
    *this = other;
    return;
  }
  assert(cols_ == other.cols_);
  DenseMatrix out(rows_ + other.rows_, cols_);
  for (index_t j = 0; j < cols_; ++j) {
    for (index_t i = 0; i < rows_; ++i) out(i, j) = (*this)(i, j);
    for (index_t i = 0; i < other.rows_; ++i) {
      out(rows_ + i, j) = other(i, j);
    }
  }
  *this = std::move(out);
}

double DenseMatrix::frobenius_norm() const noexcept {
  return la::norm2(std::span<const double>{data_.data(), data_.size()});
}

double DenseMatrix::max_abs() const noexcept {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

void DenseMatrix::add_scaled(const DenseMatrix& other, double alpha) {
  assert(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

void DenseMatrix::scale_all(double alpha) noexcept {
  for (double& v : data_) v *= alpha;
}

DenseMatrix multiply(const DenseMatrix& a, const DenseMatrix& b) {
  assert(a.cols() == b.rows());
  DenseMatrix c(a.rows(), b.cols());
  // Column-of-C parallelism; each column of C is A * (column of B), computed
  // as a sum of scaled A-columns to keep the inner loop stride-1.
  util::parallel_for(
      0, b.cols(),
      [&](std::size_t j) {
        auto cj = c.col(j);
        auto bj = b.col(j);
        for (index_t l = 0; l < a.cols(); ++l) {
          const double blj = bj[l];
          if (blj == 0.0) continue;
          axpy(blj, a.col(l), cj);
        }
      },
      /*grain=*/8);
  return c;
}

DenseMatrix multiply_at_b(const DenseMatrix& a, const DenseMatrix& b) {
  assert(a.rows() == b.rows());
  DenseMatrix c(a.cols(), b.cols());
  util::parallel_for(
      0, b.cols(),
      [&](std::size_t j) {
        auto cj = c.col(j);
        auto bj = b.col(j);
        for (index_t i = 0; i < a.cols(); ++i) cj[i] = dot(a.col(i), bj);
      },
      /*grain=*/8);
  return c;
}

DenseMatrix multiply_at_b_blocked(const DenseMatrix& a, const DenseMatrix& b,
                                  index_t col_panel) {
  assert(a.rows() == b.rows());
  const index_t m = a.rows();
  const index_t p = a.cols();
  DenseMatrix c(p, b.cols());
  if (m == 0 || p == 0 || b.cols() == 0) return c;
  if (col_panel == 0) col_panel = 1;
  // Rows of the shared dimension per block: a.col(i)'s active block (a few
  // KB) stays in L1 while the inner loop sweeps the panel's B columns, and
  // the panel's B column blocks stay in L2 across all p columns of A.
  constexpr index_t kRowBlock = 512;
  // Register tile of 4 output columns (kern::Ops::at_b_tile4): every ai load
  // feeds four accumulation streams. Within one kernel the tile's
  // accumulation chain is fixed and at_b_tile1 computes exactly one
  // at_b_tile4 stream, so results are bit-identical for every panel width,
  // batch size, and thread count — the invariant batched-vs-single parity
  // relies on (tests/la/kernel_dispatch_test.cpp).
  const kern::Ops& kern_ops = kern::active();
  util::parallel_for_chunks(
      0, b.cols(),
      [&](std::size_t jlo, std::size_t jhi) {
        for (index_t rlo = 0; rlo < m; rlo += kRowBlock) {
          const index_t rhi = std::min(m, rlo + kRowBlock);
          for (index_t i = 0; i < p; ++i) {
            const double* ai = a.col(i).data();
            index_t j = jlo;
            for (; j + 4 <= jhi; j += 4) {
              double tile[4];
              kern_ops.at_b_tile4(ai, b.col(j).data(), b.col(j + 1).data(),
                                  b.col(j + 2).data(), b.col(j + 3).data(),
                                  rlo, rhi, tile);
              c(i, j) += tile[0];
              c(i, j + 1) += tile[1];
              c(i, j + 2) += tile[2];
              c(i, j + 3) += tile[3];
            }
            for (; j < jhi; ++j) {
              c(i, j) += kern_ops.at_b_tile1(ai, b.col(j).data(), rlo, rhi);
            }
          }
        }
      },
      /*grain=*/col_panel);
  return c;
}

DenseMatrix multiply_a_bt(const DenseMatrix& a, const DenseMatrix& b) {
  assert(a.cols() == b.cols());
  DenseMatrix c(a.rows(), b.rows());
  util::parallel_for(
      0, b.rows(),
      [&](std::size_t j) {
        auto cj = c.col(j);
        for (index_t l = 0; l < a.cols(); ++l) {
          const double w = b(j, l);
          if (w == 0.0) continue;
          axpy(w, a.col(l), cj);
        }
      },
      /*grain=*/8);
  return c;
}

Vector multiply(const DenseMatrix& a, std::span<const double> x) {
  assert(a.cols() == x.size());
  Vector y(a.rows(), 0.0);
  for (index_t j = 0; j < a.cols(); ++j) {
    if (x[j] == 0.0) continue;
    axpy(x[j], a.col(j), y);
  }
  return y;
}

Vector multiply_transpose(const DenseMatrix& a, std::span<const double> x) {
  assert(a.rows() == x.size());
  Vector y(a.cols());
  for (index_t j = 0; j < a.cols(); ++j) y[j] = dot(a.col(j), x);
  return y;
}

DenseMatrix scale_cols(const DenseMatrix& a, std::span<const double> d) {
  assert(d.size() == a.cols());
  DenseMatrix out = a;
  for (index_t j = 0; j < out.cols(); ++j) scale(out.col(j), d[j]);
  return out;
}

DenseMatrix scale_rows(const DenseMatrix& a, std::span<const double> d) {
  assert(d.size() == a.rows());
  DenseMatrix out = a;
  for (index_t j = 0; j < out.cols(); ++j) {
    auto cj = out.col(j);
    for (index_t i = 0; i < out.rows(); ++i) cj[i] *= d[i];
  }
  return out;
}

double max_abs_diff(const DenseMatrix& a, const DenseMatrix& b) {
  assert(a.same_shape(b));
  double best = 0.0;
  for (index_t j = 0; j < a.cols(); ++j) {
    auto aj = a.col(j);
    auto bj = b.col(j);
    for (index_t i = 0; i < a.rows(); ++i) {
      best = std::max(best, std::fabs(aj[i] - bj[i]));
    }
  }
  return best;
}

double orthonormality_error(const DenseMatrix& q) {
  const DenseMatrix g = multiply_at_b(q, q);
  double best = 0.0;
  for (index_t j = 0; j < g.cols(); ++j) {
    for (index_t i = 0; i < g.rows(); ++i) {
      const double target = (i == j) ? 1.0 : 0.0;
      best = std::max(best, std::fabs(g(i, j) - target));
    }
  }
  return best;
}

std::string to_string(const DenseMatrix& a, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision);
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      ss << std::setw(precision + 8) << a(i, j);
    }
    ss << '\n';
  }
  return ss.str();
}

}  // namespace lsi::la
