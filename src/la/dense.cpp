#include "la/dense.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/thread_pool.hpp"

#if defined(__SSE2__) || defined(_M_X64)
#define LSI_DENSE_SSE2 1
#include <emmintrin.h>
#endif

namespace lsi::la {

DenseMatrix DenseMatrix::from_rows(
    const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  DenseMatrix m(rows.size(), rows[0].size());
  for (index_t i = 0; i < m.rows(); ++i) {
    assert(rows[i].size() == m.cols());
    for (index_t j = 0; j < m.cols(); ++j) m(i, j) = rows[i][j];
  }
  return m;
}

DenseMatrix DenseMatrix::identity(index_t n) {
  DenseMatrix m(n, n);
  for (index_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector DenseMatrix::row(index_t i) const {
  Vector r(cols_);
  for (index_t j = 0; j < cols_; ++j) r[j] = (*this)(i, j);
  return r;
}

DenseMatrix DenseMatrix::first_cols(index_t k) const {
  assert(k <= cols_);
  DenseMatrix out(rows_, k);
  for (index_t j = 0; j < k; ++j) {
    auto src = col(j);
    auto dst = out.col(j);
    for (index_t i = 0; i < rows_; ++i) dst[i] = src[i];
  }
  return out;
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix out(cols_, rows_);
  for (index_t j = 0; j < cols_; ++j) {
    for (index_t i = 0; i < rows_; ++i) out(j, i) = (*this)(i, j);
  }
  return out;
}

void DenseMatrix::append_cols(const DenseMatrix& other) {
  if (empty()) {
    *this = other;
    return;
  }
  assert(rows_ == other.rows_);
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  cols_ += other.cols_;
}

void DenseMatrix::append_rows(const DenseMatrix& other) {
  if (empty()) {
    *this = other;
    return;
  }
  assert(cols_ == other.cols_);
  DenseMatrix out(rows_ + other.rows_, cols_);
  for (index_t j = 0; j < cols_; ++j) {
    for (index_t i = 0; i < rows_; ++i) out(i, j) = (*this)(i, j);
    for (index_t i = 0; i < other.rows_; ++i) {
      out(rows_ + i, j) = other(i, j);
    }
  }
  *this = std::move(out);
}

double DenseMatrix::frobenius_norm() const noexcept {
  return la::norm2(std::span<const double>{data_.data(), data_.size()});
}

double DenseMatrix::max_abs() const noexcept {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

void DenseMatrix::add_scaled(const DenseMatrix& other, double alpha) {
  assert(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

void DenseMatrix::scale_all(double alpha) noexcept {
  for (double& v : data_) v *= alpha;
}

DenseMatrix multiply(const DenseMatrix& a, const DenseMatrix& b) {
  assert(a.cols() == b.rows());
  DenseMatrix c(a.rows(), b.cols());
  // Column-of-C parallelism; each column of C is A * (column of B), computed
  // as a sum of scaled A-columns to keep the inner loop stride-1.
  util::parallel_for(
      0, b.cols(),
      [&](std::size_t j) {
        auto cj = c.col(j);
        auto bj = b.col(j);
        for (index_t l = 0; l < a.cols(); ++l) {
          const double blj = bj[l];
          if (blj == 0.0) continue;
          axpy(blj, a.col(l), cj);
        }
      },
      /*grain=*/8);
  return c;
}

DenseMatrix multiply_at_b(const DenseMatrix& a, const DenseMatrix& b) {
  assert(a.rows() == b.rows());
  DenseMatrix c(a.cols(), b.cols());
  util::parallel_for(
      0, b.cols(),
      [&](std::size_t j) {
        auto cj = c.col(j);
        auto bj = b.col(j);
        for (index_t i = 0; i < a.cols(); ++i) cj[i] = dot(a.col(i), bj);
      },
      /*grain=*/8);
  return c;
}

DenseMatrix multiply_at_b_blocked(const DenseMatrix& a, const DenseMatrix& b,
                                  index_t col_panel) {
  assert(a.rows() == b.rows());
  const index_t m = a.rows();
  const index_t p = a.cols();
  DenseMatrix c(p, b.cols());
  if (m == 0 || p == 0 || b.cols() == 0) return c;
  if (col_panel == 0) col_panel = 1;
  // Rows of the shared dimension per block: a.col(i)'s active block (a few
  // KB) stays in L1 while the inner loop sweeps the panel's B columns, and
  // the panel's B column blocks stay in L2 across all p columns of A.
  constexpr index_t kRowBlock = 512;
  util::parallel_for_chunks(
      0, b.cols(),
      [&](std::size_t jlo, std::size_t jhi) {
        for (index_t rlo = 0; rlo < m; rlo += kRowBlock) {
          const index_t rhi = std::min(m, rlo + kRowBlock);
          for (index_t i = 0; i < p; ++i) {
            const double* ai = a.col(i).data();
            // Register tile of 4 output columns: every ai load feeds four
            // FMA streams, and each stream keeps two partial sums (even/odd
            // shared-dim positions) to break the FMA latency chain. The
            // per-element accumulation order — even partials, odd partials,
            // combined once per block — is the same in the 4-wide body and
            // the remainder loop, so results are bit-identical for every
            // panel width, batch size, and thread count.
            index_t j = jlo;
            for (; j + 4 <= jhi; j += 4) {
              const double* b0 = b.col(j).data();
              const double* b1 = b.col(j + 1).data();
              const double* b2 = b.col(j + 2).data();
              const double* b3 = b.col(j + 3).data();
              double s00, s01, s10, s11, s20, s21, s30, s31;
              index_t r = rlo;
#if defined(LSI_DENSE_SSE2)
              // Packed lanes hold the even/odd partial sums; elementwise
              // packed mul/add rounds exactly like the scalar code below, so
              // both bodies produce the same bits.
              __m128d acc0 = _mm_setzero_pd();
              __m128d acc1 = _mm_setzero_pd();
              __m128d acc2 = _mm_setzero_pd();
              __m128d acc3 = _mm_setzero_pd();
              for (; r + 2 <= rhi; r += 2) {
                const __m128d va = _mm_loadu_pd(ai + r);
                acc0 = _mm_add_pd(acc0, _mm_mul_pd(va, _mm_loadu_pd(b0 + r)));
                acc1 = _mm_add_pd(acc1, _mm_mul_pd(va, _mm_loadu_pd(b1 + r)));
                acc2 = _mm_add_pd(acc2, _mm_mul_pd(va, _mm_loadu_pd(b2 + r)));
                acc3 = _mm_add_pd(acc3, _mm_mul_pd(va, _mm_loadu_pd(b3 + r)));
              }
              s00 = _mm_cvtsd_f64(acc0);
              s01 = _mm_cvtsd_f64(_mm_unpackhi_pd(acc0, acc0));
              s10 = _mm_cvtsd_f64(acc1);
              s11 = _mm_cvtsd_f64(_mm_unpackhi_pd(acc1, acc1));
              s20 = _mm_cvtsd_f64(acc2);
              s21 = _mm_cvtsd_f64(_mm_unpackhi_pd(acc2, acc2));
              s30 = _mm_cvtsd_f64(acc3);
              s31 = _mm_cvtsd_f64(_mm_unpackhi_pd(acc3, acc3));
#else
              s00 = s01 = s10 = s11 = s20 = s21 = s30 = s31 = 0.0;
              for (; r + 2 <= rhi; r += 2) {
                const double a0 = ai[r], a1 = ai[r + 1];
                s00 += a0 * b0[r];
                s01 += a1 * b0[r + 1];
                s10 += a0 * b1[r];
                s11 += a1 * b1[r + 1];
                s20 += a0 * b2[r];
                s21 += a1 * b2[r + 1];
                s30 += a0 * b3[r];
                s31 += a1 * b3[r + 1];
              }
#endif
              for (; r < rhi; ++r) {
                s00 += ai[r] * b0[r];
                s10 += ai[r] * b1[r];
                s20 += ai[r] * b2[r];
                s30 += ai[r] * b3[r];
              }
              c(i, j) += s00 + s01;
              c(i, j + 1) += s10 + s11;
              c(i, j + 2) += s20 + s21;
              c(i, j + 3) += s30 + s31;
            }
            for (; j < jhi; ++j) {
              const double* bj = b.col(j).data();
              double s0 = 0.0, s1 = 0.0;
              index_t r = rlo;
              for (; r + 2 <= rhi; r += 2) {
                s0 += ai[r] * bj[r];
                s1 += ai[r + 1] * bj[r + 1];
              }
              for (; r < rhi; ++r) s0 += ai[r] * bj[r];
              c(i, j) += s0 + s1;
            }
          }
        }
      },
      /*grain=*/col_panel);
  return c;
}

DenseMatrix multiply_a_bt(const DenseMatrix& a, const DenseMatrix& b) {
  assert(a.cols() == b.cols());
  DenseMatrix c(a.rows(), b.rows());
  util::parallel_for(
      0, b.rows(),
      [&](std::size_t j) {
        auto cj = c.col(j);
        for (index_t l = 0; l < a.cols(); ++l) {
          const double w = b(j, l);
          if (w == 0.0) continue;
          axpy(w, a.col(l), cj);
        }
      },
      /*grain=*/8);
  return c;
}

Vector multiply(const DenseMatrix& a, std::span<const double> x) {
  assert(a.cols() == x.size());
  Vector y(a.rows(), 0.0);
  for (index_t j = 0; j < a.cols(); ++j) {
    if (x[j] == 0.0) continue;
    axpy(x[j], a.col(j), y);
  }
  return y;
}

Vector multiply_transpose(const DenseMatrix& a, std::span<const double> x) {
  assert(a.rows() == x.size());
  Vector y(a.cols());
  for (index_t j = 0; j < a.cols(); ++j) y[j] = dot(a.col(j), x);
  return y;
}

DenseMatrix scale_cols(const DenseMatrix& a, std::span<const double> d) {
  assert(d.size() == a.cols());
  DenseMatrix out = a;
  for (index_t j = 0; j < out.cols(); ++j) scale(out.col(j), d[j]);
  return out;
}

DenseMatrix scale_rows(const DenseMatrix& a, std::span<const double> d) {
  assert(d.size() == a.rows());
  DenseMatrix out = a;
  for (index_t j = 0; j < out.cols(); ++j) {
    auto cj = out.col(j);
    for (index_t i = 0; i < out.rows(); ++i) cj[i] *= d[i];
  }
  return out;
}

double max_abs_diff(const DenseMatrix& a, const DenseMatrix& b) {
  assert(a.same_shape(b));
  double best = 0.0;
  for (index_t j = 0; j < a.cols(); ++j) {
    auto aj = a.col(j);
    auto bj = b.col(j);
    for (index_t i = 0; i < a.rows(); ++i) {
      best = std::max(best, std::fabs(aj[i] - bj[i]));
    }
  }
  return best;
}

double orthonormality_error(const DenseMatrix& q) {
  const DenseMatrix g = multiply_at_b(q, q);
  double best = 0.0;
  for (index_t j = 0; j < g.cols(); ++j) {
    for (index_t i = 0; i < g.rows(); ++i) {
      const double target = (i == j) ? 1.0 : 0.0;
      best = std::max(best, std::fabs(g(i, j) - target));
    }
  }
  return best;
}

std::string to_string(const DenseMatrix& a, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision);
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      ss << std::setw(precision + 8) << a(i, j);
    }
    ss << '\n';
  }
  return ss.str();
}

}  // namespace lsi::la
