// Portable kernel: the scalar code every hot path ran before dispatch
// existed, moved here verbatim so its results stay bit-identical to the
// pre-kernel library. The SSE2 block below is part of "portable" — it is
// baseline x86-64, documented bit-identical to the scalar remainder, and was
// already inside multiply_at_b_blocked before the kernel layer split it out.

#include "la/kernels.hpp"

#if defined(__SSE2__) || defined(_M_X64)
#define LSI_KERN_SSE2 1
#include <emmintrin.h>
#endif

namespace lsi::la::kern {

namespace {

double dot_portable(const double* x, const double* y, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

void at_b_tile4_portable(const double* ai, const double* b0, const double* b1,
                         const double* b2, const double* b3, std::size_t rlo,
                         std::size_t rhi, double out[4]) {
  // Register tile of 4 output columns: every ai load feeds four streams, and
  // each stream keeps two partial sums (even/odd shared-dim positions) to
  // break the dependency chain. The per-element accumulation order — even
  // partials, odd partials, combined once per call — is the same in the
  // 4-wide body and the single-column tile, so results are bit-identical
  // for every panel width, batch size, and thread count.
  double s00, s01, s10, s11, s20, s21, s30, s31;
  std::size_t r = rlo;
#if defined(LSI_KERN_SSE2)
  // Packed lanes hold the even/odd partial sums; elementwise packed mul/add
  // rounds exactly like the scalar code below, so both bodies produce the
  // same bits.
  __m128d acc0 = _mm_setzero_pd();
  __m128d acc1 = _mm_setzero_pd();
  __m128d acc2 = _mm_setzero_pd();
  __m128d acc3 = _mm_setzero_pd();
  for (; r + 2 <= rhi; r += 2) {
    const __m128d va = _mm_loadu_pd(ai + r);
    acc0 = _mm_add_pd(acc0, _mm_mul_pd(va, _mm_loadu_pd(b0 + r)));
    acc1 = _mm_add_pd(acc1, _mm_mul_pd(va, _mm_loadu_pd(b1 + r)));
    acc2 = _mm_add_pd(acc2, _mm_mul_pd(va, _mm_loadu_pd(b2 + r)));
    acc3 = _mm_add_pd(acc3, _mm_mul_pd(va, _mm_loadu_pd(b3 + r)));
  }
  s00 = _mm_cvtsd_f64(acc0);
  s01 = _mm_cvtsd_f64(_mm_unpackhi_pd(acc0, acc0));
  s10 = _mm_cvtsd_f64(acc1);
  s11 = _mm_cvtsd_f64(_mm_unpackhi_pd(acc1, acc1));
  s20 = _mm_cvtsd_f64(acc2);
  s21 = _mm_cvtsd_f64(_mm_unpackhi_pd(acc2, acc2));
  s30 = _mm_cvtsd_f64(acc3);
  s31 = _mm_cvtsd_f64(_mm_unpackhi_pd(acc3, acc3));
#else
  s00 = s01 = s10 = s11 = s20 = s21 = s30 = s31 = 0.0;
  for (; r + 2 <= rhi; r += 2) {
    const double a0 = ai[r], a1 = ai[r + 1];
    s00 += a0 * b0[r];
    s01 += a1 * b0[r + 1];
    s10 += a0 * b1[r];
    s11 += a1 * b1[r + 1];
    s20 += a0 * b2[r];
    s21 += a1 * b2[r + 1];
    s30 += a0 * b3[r];
    s31 += a1 * b3[r + 1];
  }
#endif
  for (; r < rhi; ++r) {
    s00 += ai[r] * b0[r];
    s10 += ai[r] * b1[r];
    s20 += ai[r] * b2[r];
    s30 += ai[r] * b3[r];
  }
  out[0] = s00 + s01;
  out[1] = s10 + s11;
  out[2] = s20 + s21;
  out[3] = s30 + s31;
}

double at_b_tile1_portable(const double* ai, const double* bj, std::size_t rlo,
                           std::size_t rhi) {
  double s0 = 0.0, s1 = 0.0;
  std::size_t r = rlo;
  for (; r + 2 <= rhi; r += 2) {
    s0 += ai[r] * bj[r];
    s1 += ai[r + 1] * bj[r + 1];
  }
  for (; r < rhi; ++r) s0 += ai[r] * bj[r];
  return s0 + s1;
}

void axpy_portable(double a, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void axpy4_portable(const double* a4, const double* x, double* y0, double* y1,
                    double* y2, double* y3, std::size_t n) {
  const double a0 = a4[0], a1 = a4[1], a2 = a4[2], a3 = a4[3];
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = x[i];
    y0[i] += a0 * xi;
    y1[i] += a1 * xi;
    y2[i] += a2 * xi;
    y3[i] += a3 * xi;
  }
}

void axpy_bf16_portable(float a, const std::uint16_t* x, float* y,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * bf16_to_f32(x[i]);
}

void axpy4_bf16_portable(const float* a4, const std::uint16_t* x, float* y0,
                         float* y1, float* y2, float* y3, std::size_t n) {
  const float a0 = a4[0], a1 = a4[1], a2 = a4[2], a3 = a4[3];
  for (std::size_t i = 0; i < n; ++i) {
    const float xi = bf16_to_f32(x[i]);
    y0[i] += a0 * xi;
    y1[i] += a1 * xi;
    y2[i] += a2 * xi;
    y3[i] += a3 * xi;
  }
}

void cos_norm_portable(double qn, const double* dn, double* y,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = (qn == 0.0 || dn[i] == 0.0) ? 0.0 : y[i] / (qn * dn[i]);
  }
}

void cos_norm_f32_portable(double qn, const float* acc, const double* dn,
                           double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = (qn == 0.0 || dn[i] == 0.0)
                 ? 0.0
                 : static_cast<double>(acc[i]) / (qn * dn[i]);
  }
}

constexpr Ops kPortableOps = {
    "portable",        dot_portable,       at_b_tile4_portable,
    at_b_tile1_portable, axpy_portable,    axpy4_portable,
    axpy_bf16_portable, axpy4_bf16_portable,
    cos_norm_portable, cos_norm_f32_portable,
};

}  // namespace

const Ops& portable() noexcept { return kPortableOps; }

}  // namespace lsi::la::kern
