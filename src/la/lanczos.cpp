#include "la/lanczos.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "la/jacobi_svd.hpp"
#include "la/kernels.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace lsi::la {

namespace {

/// Two passes of classical Gram-Schmidt of `w` against the first `count`
/// columns of `basis`. Full (not selective) reorthogonalization: at LSI
/// problem sizes the O(j * n) cost per step is cheap insurance against the
/// ghost-singular-value problem of plain Lanczos.
void reorthogonalize(std::span<double> w, const DenseMatrix& basis,
                     index_t count) {
  // The projection dot and the correction axpy are the solver's O(j * n)
  // hot loops; they run through the dispatched kernels (la/kernels.hpp).
  // The dot is a reduction, so different kernels converge along slightly
  // different (equally valid) paths; within one kernel the solve stays
  // deterministic.
  const kern::Ops& kern_ops = kern::active();
  for (int pass = 0; pass < 2; ++pass) {
    for (index_t j = 0; j < count; ++j) {
      auto bj = basis.col(j);
      const double proj = kern_ops.dot(w.data(), bj.data(), w.size());
      if (proj != 0.0) kern_ops.axpy(-proj, bj.data(), w.data(), w.size());
    }
  }
}

/// Fills `w` with unit-norm random data orthogonal to the current basis;
/// returns false if no such direction can be found (space exhausted).
bool random_orthogonal(std::span<double> w, const DenseMatrix& basis,
                       index_t count, util::Rng& rng) {
  for (int attempt = 0; attempt < 5; ++attempt) {
    for (double& x : w) x = rng.normal();
    normalize(w);
    reorthogonalize(w, basis, count);
    if (normalize(w) > 1e-8) return true;
  }
  return false;
}

/// Builds the dim x dim upper-bidiagonal projection B:
///   B(i, i) = alpha_i,  B(i, i+1) = beta_i.
/// (From the recurrences A v_j = beta_{j-1} u_{j-1} + alpha_j u_j and
///  A^T u_j = alpha_j v_j + beta_j v_{j+1}, so A V = U B exactly.)
DenseMatrix build_bidiagonal(const std::vector<double>& alphas,
                             const std::vector<double>& betas,
                             index_t dim) {
  DenseMatrix b(dim, dim);
  for (index_t i = 0; i < dim; ++i) {
    b(i, i) = alphas[i];
    if (i + 1 < dim) b(i, i + 1) = betas[i];
  }
  return b;
}

}  // namespace

SvdResult lanczos_svd(const LinearOperator& op, const LanczosOptions& opts,
                      LanczosStats* stats) {
  LSI_OBS_SPAN(span_total, "lanczos");
  const index_t m = op.rows();
  const index_t n = op.cols();
  const index_t minmn = std::min(m, n);
  const index_t k = std::min(opts.k, minmn);
  LanczosStats local_stats;
  LanczosStats& st = stats ? *stats : local_stats;
  st = LanczosStats{};

  SvdResult out;
  if (k == 0 || m == 0 || n == 0) return out;

  index_t max_dim = opts.max_dim;
  if (max_dim == 0) {
    max_dim = std::min<index_t>(minmn, std::max<index_t>(6 * k + 48, 128));
  }
  max_dim = std::clamp<index_t>(max_dim, k, minmn);

  util::Rng rng(opts.seed);
  DenseMatrix vbasis(n, max_dim);     // right Lanczos vectors v_1..v_dim
  DenseMatrix ubasis(m, max_dim);     // left Lanczos vectors u_1..u_dim
  std::vector<double> alphas, betas;  // bidiagonal entries; sizes stay equal
  alphas.reserve(max_dim);
  betas.reserve(max_dim);

  {
    auto v0 = vbasis.col(0);
    for (double& x : v0) x = rng.normal();
    normalize(v0);
  }

  Vector scratch_m(m), scratch_n(n);
  bool exhausted = false;
  SvdResult small;  // SVD of the bidiagonal projection

  // Checks are periodic once the basis could possibly contain k triplets.
  const index_t check_margin = std::max<index_t>(8, k / 8);
  index_t next_check = std::min<index_t>(max_dim, k + check_margin);

  auto converged_count = [&](const SvdResult& s, index_t dim) -> index_t {
    if (exhausted || dim == minmn) return k;  // spectrum fully captured
    const double sigma1 = s.s.empty() ? 0.0 : s.s[0];
    if (sigma1 == 0.0) return k;
    const double beta_tail = betas[dim - 1];
    index_t good = 0;
    const index_t keep = std::min<index_t>(k, dim);
    for (index_t i = 0; i < keep; ++i) {
      const double resid = std::fabs(beta_tail * s.u(dim - 1, i)) / sigma1;
      if (resid <= opts.tol) ++good;
    }
    return good;
  };

  // Measured flops of the dominant kernels; recorded into st.flops and the
  // active obs sink at exit. One reorthogonalize(w, basis, count) costs two
  // passes x count x (dot + axpy) = 8 * |w| * count flops.
  const std::uint64_t matvec_flops = op.apply_flops();
  std::uint64_t measured_flops = 0;

  index_t j = 0;
  for (; j < max_dim;) {
    {
      // u_j = A v_j - beta_{j-1} u_{j-1}
      LSI_OBS_SPAN(span_mv, "lanczos.matvec");
      op.apply(vbasis.col(j), scratch_m);
    }
    ++st.matvecs;
    measured_flops += matvec_flops;
    if (j > 0) axpy(-betas[j - 1], ubasis.col(j - 1), scratch_m);
    {
      LSI_OBS_SPAN(span_reorth, "lanczos.reorth");
      reorthogonalize(scratch_m, ubasis, j);
    }
    measured_flops += 8ull * m * j;
    double alpha = norm2(scratch_m);
    if (alpha <= 1e-13) {
      // A v_j already lies in span(U_{j-1}); restart an orthogonal block.
      if (!random_orthogonal(scratch_m, ubasis, j, rng)) {
        exhausted = true;
        break;
      }
      alpha = 0.0;
    } else {
      scale(scratch_m, 1.0 / alpha);
    }
    std::copy(scratch_m.begin(), scratch_m.end(), ubasis.col(j).begin());
    alphas.push_back(alpha);

    {
      // beta_j and (if room) v_{j+1}:  w = A^T u_j - alpha_j v_j.
      LSI_OBS_SPAN(span_mv, "lanczos.matvec");
      op.apply_transpose(ubasis.col(j), scratch_n);
    }
    ++st.matvecs_transpose;
    measured_flops += matvec_flops;
    axpy(-alphas[j], vbasis.col(j), scratch_n);
    {
      LSI_OBS_SPAN(span_reorth, "lanczos.reorth");
      reorthogonalize(scratch_n, vbasis, j + 1);
    }
    measured_flops += 8ull * n * (j + 1);
    double beta = norm2(scratch_n);
    if (beta <= 1e-13) {
      beta = 0.0;
      if (j + 1 < max_dim &&
          !random_orthogonal(scratch_n, vbasis, j + 1, rng)) {
        betas.push_back(0.0);
        ++j;
        exhausted = true;
        break;
      }
    } else {
      scale(scratch_n, 1.0 / beta);
    }
    betas.push_back(beta);
    ++j;
    if (j < max_dim) {
      std::copy(scratch_n.begin(), scratch_n.end(), vbasis.col(j).begin());
    }

    if (j >= next_check && j < max_dim) {
      LSI_OBS_SPAN(span_check, "lanczos.ritz_check");
      small = jacobi_svd(build_bidiagonal(alphas, betas, j));
      if (converged_count(small, j) >= std::min<index_t>(k, j)) break;
      next_check = std::min<index_t>(max_dim, j + std::max<index_t>(8, k / 4));
    }
  }

  const index_t dim = alphas.size();
  st.steps = dim;
  if (dim == 0) return out;

  {
    LSI_OBS_SPAN(span_check, "lanczos.ritz_check");
    small = jacobi_svd(build_bidiagonal(alphas, betas, dim));
  }
  const index_t keep = std::min<index_t>(k, dim);
  const double sigma1 = small.s.empty() ? 0.0 : small.s[0];
  const double beta_tail = betas[dim - 1];
  for (index_t i = 0; i < keep; ++i) {
    const double resid =
        sigma1 > 0.0 ? std::fabs(beta_tail * small.u(dim - 1, i)) / sigma1
                     : 0.0;
    st.max_residual = std::max(st.max_residual, resid);
    if (resid <= opts.tol || exhausted || dim == minmn) ++st.converged;
  }
  // The two assembly GEMMs: (m x dim)(dim x keep) and (n x dim)(dim x keep).
  measured_flops += 2ull * (m + n) * dim * keep;
  st.flops = measured_flops;
  if (obs::Sink* sink = obs::Sink::active()) {
    obs::MetricsRegistry& reg = sink->metrics();
    reg.counter("lanczos.steps").add(st.steps);
    reg.counter("lanczos.matvecs").add(st.matvecs);
    reg.counter("lanczos.matvecs_transpose").add(st.matvecs_transpose);
    reg.counter("lanczos.converged").add(st.converged);
    reg.counter("lanczos.flops_measured").add(st.flops);
    reg.gauge("lanczos.max_residual").set(st.max_residual);
  }
  if (opts.throw_if_not_converged && st.converged < keep) {
    throw std::runtime_error("lanczos_svd: not converged; raise max_dim");
  }

  // Assemble: U = U_dim * P, V = V_dim * Q, truncated to `keep`.
  LSI_OBS_SPAN(span_assemble, "lanczos.assemble");
  small.truncate(keep);
  out.u = multiply(ubasis.first_cols(dim), small.u);
  out.v = multiply(vbasis.first_cols(dim), small.v);
  out.s = std::move(small.s);
  normalize_signs(out);
  return out;
}

SvdResult lanczos_svd(const CscMatrix& a, const LanczosOptions& opts,
                      LanczosStats* stats) {
  CscOperator op(a);
  return lanczos_svd(op, opts, stats);
}

SvdResult truncated_svd(const DenseMatrix& a, index_t k,
                        index_t dense_cutoff) {
  const index_t minmn = std::min(a.rows(), a.cols());
  if (minmn <= dense_cutoff) {
    SvdResult full = jacobi_svd(a);
    full.truncate(std::min<index_t>(k, full.rank()));
    return full;
  }
  DenseOperator op(a);
  LanczosOptions opts;
  opts.k = k;
  return lanczos_svd(op, opts);
}

}  // namespace lsi::la
