#include "la/sparse.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "util/thread_pool.hpp"

namespace lsi::la {

void CooBuilder::add(index_t i, index_t j, double v) {
  assert(i < rows_ && j < cols_);
  is_.push_back(i);
  js_.push_back(j);
  vals_.push_back(v);
}

CscMatrix CooBuilder::to_csc() const {
  // Sort triplets by (col, row) via an index permutation.
  std::vector<std::size_t> order(vals_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (js_[a] != js_[b]) return js_[a] < js_[b];
    return is_[a] < is_[b];
  });

  std::vector<index_t> col_ptr(cols_ + 1, 0);
  std::vector<index_t> row_idx;
  std::vector<double> values;
  row_idx.reserve(vals_.size());
  values.reserve(vals_.size());

  for (std::size_t p = 0; p < order.size();) {
    const std::size_t a = order[p];
    double sum = vals_[a];
    std::size_t q = p + 1;
    while (q < order.size() && js_[order[q]] == js_[a] &&
           is_[order[q]] == is_[a]) {
      sum += vals_[order[q]];
      ++q;
    }
    if (sum != 0.0) {
      row_idx.push_back(is_[a]);
      values.push_back(sum);
      ++col_ptr[js_[a] + 1];
    }
    p = q;
  }
  for (index_t j = 0; j < cols_; ++j) col_ptr[j + 1] += col_ptr[j];
  return CscMatrix(rows_, cols_, std::move(col_ptr), std::move(row_idx),
                   std::move(values));
}

CscMatrix::CscMatrix(index_t rows, index_t cols, std::vector<index_t> col_ptr,
                     std::vector<index_t> row_idx, std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      col_ptr_(std::move(col_ptr)),
      row_idx_(std::move(row_idx)),
      values_(std::move(values)) {
  assert(col_ptr_.size() == cols_ + 1);
  assert(row_idx_.size() == values_.size());
  assert(col_ptr_.back() == values_.size());
}

CscMatrix CscMatrix::from_dense(const DenseMatrix& a, double drop_tol) {
  CooBuilder b(a.rows(), a.cols());
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t i = 0; i < a.rows(); ++i) {
      const double v = a(i, j);
      if (std::abs(v) > drop_tol) b.add(i, j, v);
    }
  }
  return b.to_csc();
}

double CscMatrix::density() const noexcept {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<double>(nnz()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

void CscMatrix::apply(std::span<const double> x, std::span<double> y) const {
  assert(x.size() == cols_ && y.size() == rows_);
  set_zero(y);
  for (index_t j = 0; j < cols_; ++j) {
    const double xj = x[j];
    if (xj == 0.0) continue;
    for (index_t p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p) {
      y[row_idx_[p]] += values_[p] * xj;
    }
  }
}

void CscMatrix::apply_transpose(std::span<const double> x,
                                std::span<double> y) const {
  assert(x.size() == rows_ && y.size() == cols_);
  // Each y[j] is a gather over column j: embarrassingly parallel.
  util::parallel_for_chunks(
      0, cols_,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t j = lo; j < hi; ++j) {
          double acc = 0.0;
          for (index_t p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p) {
            acc += values_[p] * x[row_idx_[p]];
          }
          y[j] = acc;
        }
      },
      /*grain=*/256);
}

DenseMatrix CscMatrix::to_dense() const {
  DenseMatrix out(rows_, cols_);
  for (index_t j = 0; j < cols_; ++j) {
    for (index_t p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p) {
      out(row_idx_[p], j) = values_[p];
    }
  }
  return out;
}

CscMatrix CscMatrix::with_appended_cols(const CscMatrix& other) const {
  assert(rows_ == other.rows_);
  std::vector<index_t> col_ptr = col_ptr_;
  col_ptr.reserve(cols_ + other.cols_ + 1);
  const index_t base = col_ptr_.back();
  for (index_t j = 1; j <= other.cols_; ++j) {
    col_ptr.push_back(base + other.col_ptr_[j]);
  }
  std::vector<index_t> row_idx = row_idx_;
  row_idx.insert(row_idx.end(), other.row_idx_.begin(), other.row_idx_.end());
  std::vector<double> values = values_;
  values.insert(values.end(), other.values_.begin(), other.values_.end());
  return CscMatrix(rows_, cols_ + other.cols_, std::move(col_ptr),
                   std::move(row_idx), std::move(values));
}

CscMatrix CscMatrix::with_appended_rows(const CscMatrix& other) const {
  assert(cols_ == other.cols_);
  std::vector<index_t> col_ptr(cols_ + 1, 0);
  std::vector<index_t> row_idx;
  std::vector<double> values;
  row_idx.reserve(nnz() + other.nnz());
  values.reserve(nnz() + other.nnz());
  for (index_t j = 0; j < cols_; ++j) {
    for (index_t p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p) {
      row_idx.push_back(row_idx_[p]);
      values.push_back(values_[p]);
    }
    for (index_t p = other.col_ptr_[j]; p < other.col_ptr_[j + 1]; ++p) {
      row_idx.push_back(rows_ + other.row_idx_[p]);
      values.push_back(other.values_[p]);
    }
    col_ptr[j + 1] = static_cast<index_t>(row_idx.size());
  }
  return CscMatrix(rows_ + other.rows_, cols_, std::move(col_ptr),
                   std::move(row_idx), std::move(values));
}

double CscMatrix::at(index_t i, index_t j) const {
  assert(i < rows_ && j < cols_);
  const auto rows_span = col_rows(j);
  const auto it = std::lower_bound(rows_span.begin(), rows_span.end(), i);
  if (it == rows_span.end() || *it != i) return 0.0;
  return values_[col_ptr_[j] +
                 static_cast<index_t>(it - rows_span.begin())];
}

CsrMatrix CsrMatrix::from_csc(const CscMatrix& a) {
  CsrMatrix out;
  out.rows_ = a.rows();
  out.cols_ = a.cols();
  out.row_ptr_.assign(out.rows_ + 1, 0);
  out.col_idx_.resize(a.nnz());
  out.values_.resize(a.nnz());

  // Count entries per row, prefix-sum, then scatter. Scanning columns in
  // ascending order yields ascending column indices within each row.
  for (index_t r : a.row_idx()) ++out.row_ptr_[r + 1];
  for (index_t i = 0; i < out.rows_; ++i) {
    out.row_ptr_[i + 1] += out.row_ptr_[i];
  }
  std::vector<index_t> cursor(out.row_ptr_.begin(), out.row_ptr_.end() - 1);
  for (index_t j = 0; j < a.cols(); ++j) {
    auto rows = a.col_rows(j);
    auto vals = a.col_values(j);
    for (std::size_t p = 0; p < rows.size(); ++p) {
      const index_t slot = cursor[rows[p]]++;
      out.col_idx_[slot] = j;
      out.values_[slot] = vals[p];
    }
  }
  return out;
}

void CsrMatrix::apply(std::span<const double> x, std::span<double> y) const {
  assert(x.size() == cols_ && y.size() == rows_);
  util::parallel_for_chunks(
      0, rows_,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          double acc = 0.0;
          for (index_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
            acc += values_[p] * x[col_idx_[p]];
          }
          y[i] = acc;
        }
      },
      /*grain=*/256);
}

void CsrMatrix::apply_transpose(std::span<const double> x,
                                std::span<double> y) const {
  assert(x.size() == rows_ && y.size() == cols_);
  set_zero(y);
  for (index_t i = 0; i < rows_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (index_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      y[col_idx_[p]] += values_[p] * xi;
    }
  }
}

DenseMatrix CsrMatrix::to_dense() const {
  DenseMatrix out(rows_, cols_);
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      out(i, col_idx_[p]) = values_[p];
    }
  }
  return out;
}

void DenseOperator::apply(std::span<const double> x,
                          std::span<double> y) const {
  assert(x.size() == a_->cols() && y.size() == a_->rows());
  set_zero(y);
  for (index_t j = 0; j < a_->cols(); ++j) {
    if (x[j] == 0.0) continue;
    axpy(x[j], a_->col(j), y);
  }
}

void DenseOperator::apply_transpose(std::span<const double> x,
                                    std::span<double> y) const {
  assert(x.size() == a_->rows() && y.size() == a_->cols());
  for (index_t j = 0; j < a_->cols(); ++j) y[j] = dot(a_->col(j), x);
}

}  // namespace lsi::la
