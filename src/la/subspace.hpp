#pragma once
// Subspace (block power) iteration with Rayleigh-Ritz extraction — the
// second truncated-SVD backend, mirroring SVDPACK's multi-method design
// (Berry's "Large scale singular value computations" survey describes both
// Lanczos- and subspace-iteration-based solvers). Slower to converge than
// Lanczos when the spectrum decays gently, but simpler, restartable, and a
// useful independent cross-check on the primary solver.

#include <cstdint>

#include "la/sparse.hpp"
#include "la/svd_types.hpp"

namespace lsi::la {

struct SubspaceOptions {
  index_t k = 100;           ///< singular triplets wanted
  index_t oversample = 8;    ///< extra block vectors beyond k
  int max_iterations = 300;  ///< block power iterations cap
  double tol = 1e-9;         ///< relative sigma-change convergence test
  std::uint64_t seed = 42;
};

struct SubspaceStats {
  int iterations = 0;
  index_t matvecs = 0;  ///< counts both A*x and A^T*x block applications
  bool converged = false;
};

/// Computes up to opts.k largest singular triplets of `op` by orthogonal
/// iteration on A^T A with a final Rayleigh-Ritz SVD extraction. Results are
/// descending and sign-normalized, matching lanczos_svd's conventions.
SvdResult subspace_svd(const LinearOperator& op, const SubspaceOptions& opts,
                       SubspaceStats* stats = nullptr);

/// Convenience overload for CSC matrices.
SvdResult subspace_svd(const CscMatrix& a, const SubspaceOptions& opts,
                       SubspaceStats* stats = nullptr);

}  // namespace lsi::la
