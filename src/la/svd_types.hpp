#pragma once
// Shared truncated-SVD result type and post-processing helpers.

#include <vector>

#include "la/dense.hpp"

namespace lsi::la {

/// A (possibly truncated) singular value decomposition A ~ U diag(s) V^T.
/// Columns of U are left singular vectors (m x k), columns of V right
/// singular vectors (n x k), s descending and nonnegative.
struct SvdResult {
  DenseMatrix u;
  std::vector<double> s;
  DenseMatrix v;

  index_t rank() const noexcept { return s.size(); }

  /// Keeps the k largest triplets (no-op if k >= rank()).
  void truncate(index_t k);

  /// Reconstructs U diag(s) V^T as a dense matrix (tests / small examples).
  DenseMatrix reconstruct() const;
};

/// Deterministic sign convention: orient each left singular vector so its
/// largest-magnitude entry (first on ties) is positive; negate the paired
/// right vector too. Makes decompositions comparable across algorithms, runs
/// and the paper's printed Figure 5 matrix.
void normalize_signs(SvdResult& svd);

/// Sorts triplets by descending singular value (stable).
void sort_descending(SvdResult& svd);

}  // namespace lsi::la
