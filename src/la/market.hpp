#pragma once
// MatrixMarket coordinate I/O for sparse matrices — the interchange format
// of the sparse-matrix community (and of SVDPACK's distribution era), so
// term-document matrices can move between this library and external tools.

#include <iosfwd>
#include <string>

#include "la/sparse.hpp"

namespace lsi::la {

/// Writes `a` as "%%MatrixMarket matrix coordinate real general" with
/// 1-based indices. Throws std::runtime_error on stream failure.
void write_matrix_market(std::ostream& os, const CscMatrix& a);

/// Parses a coordinate-format real general MatrixMarket stream. Duplicate
/// entries are summed. Throws std::runtime_error on malformed input or an
/// unsupported header.
CscMatrix read_matrix_market(std::istream& is);

/// File conveniences.
void write_matrix_market_file(const std::string& path, const CscMatrix& a);
CscMatrix read_matrix_market_file(const std::string& path);

}  // namespace lsi::la
