#include "la/kernels.hpp"

#include <atomic>
#include <cstdlib>

namespace lsi::la::kern {

bool cpu_has_avx2() noexcept {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

#if !defined(LSI_KERNELS_AVX2)
// The AVX2 translation unit is only compiled on x86 targets (see
// src/la/CMakeLists.txt); elsewhere the registry entry is simply absent and
// select() falls back to portable.
const Ops* avx2() noexcept { return nullptr; }
#endif

Selection select(std::string_view name, bool cpu_ok) noexcept {
  if (name == "portable") return {&portable(), false};
  if (name == "avx2") {
    const Ops* ops = cpu_ok ? avx2() : nullptr;
    if (ops != nullptr) return {ops, false};
    return {&portable(), true};  // graceful fallback, flagged
  }
  if (name == "auto") {
    const Ops* ops = cpu_ok ? avx2() : nullptr;
    return {ops != nullptr ? ops : &portable(), false};
  }
  return {nullptr, false};
}

const Ops& resolve_env(const char* env_value, bool cpu_ok) noexcept {
  std::string_view name =
      (env_value != nullptr && *env_value != '\0') ? env_value : "auto";
  Selection sel = select(name, cpu_ok);
  // An unknown LSI_KERNEL value must not brick the process: run "auto".
  if (sel.ops == nullptr) sel = select("auto", cpu_ok);
  return *sel.ops;
}

namespace {

std::atomic<const Ops*> g_active{nullptr};

}  // namespace

const Ops& active() noexcept {
  const Ops* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    // Benign race: concurrent first uses resolve to the same table.
    ops = &resolve_env(std::getenv("LSI_KERNEL"), cpu_has_avx2());
    g_active.store(ops, std::memory_order_release);
  }
  return *ops;
}

bool force(std::string_view name) noexcept {
  const Selection sel = select(name, cpu_has_avx2());
  if (sel.ops == nullptr) return false;
  g_active.store(sel.ops, std::memory_order_release);
  return true;
}

}  // namespace lsi::la::kern
