#include "weighting/weighting.hpp"

#include <cassert>
#include <cmath>

#include "text/parser.hpp"

namespace lsi::weighting {

namespace {

double local_weight(LocalWeight w, double tf, double max_tf_in_doc) {
  switch (w) {
    case LocalWeight::kRawTf:
      return tf;
    case LocalWeight::kBinary:
      return tf > 0.0 ? 1.0 : 0.0;
    case LocalWeight::kLog:
      return std::log2(1.0 + tf);
    case LocalWeight::kAugmented:
      return max_tf_in_doc > 0.0 ? 0.5 + 0.5 * tf / max_tf_in_doc : 0.0;
  }
  return tf;
}

std::vector<double> per_document_max_tf(const lsi::la::CscMatrix& counts) {
  std::vector<double> out(counts.cols(), 0.0);
  for (lsi::la::index_t j = 0; j < counts.cols(); ++j) {
    for (double v : counts.col_values(j)) out[j] = std::max(out[j], v);
  }
  return out;
}

}  // namespace

std::string name(LocalWeight w) {
  switch (w) {
    case LocalWeight::kRawTf:
      return "tf";
    case LocalWeight::kBinary:
      return "binary";
    case LocalWeight::kLog:
      return "log";
    case LocalWeight::kAugmented:
      return "augmented";
  }
  return "?";
}

std::string name(GlobalWeight w) {
  switch (w) {
    case GlobalWeight::kNone:
      return "none";
    case GlobalWeight::kIdf:
      return "idf";
    case GlobalWeight::kEntropy:
      return "entropy";
    case GlobalWeight::kGfIdf:
      return "gfidf";
    case GlobalWeight::kNormal:
      return "normal";
  }
  return "?";
}

std::string name(const Scheme& s) {
  return name(s.local) + "x" + name(s.global);
}

std::vector<double> global_weights(const lsi::la::CscMatrix& counts,
                                   GlobalWeight g) {
  const lsi::la::index_t m = counts.rows();
  const auto n = static_cast<double>(counts.cols());
  std::vector<double> out(m, 1.0);
  if (g == GlobalWeight::kNone || m == 0 || counts.cols() == 0) return out;

  const auto df = lsi::text::document_frequencies(counts);
  const auto gf = lsi::text::global_frequencies(counts);

  switch (g) {
    case GlobalWeight::kIdf:
      for (lsi::la::index_t i = 0; i < m; ++i) {
        out[i] = df[i] > 0 ? std::log2(n / static_cast<double>(df[i])) + 1.0
                           : 0.0;
      }
      break;
    case GlobalWeight::kGfIdf:
      for (lsi::la::index_t i = 0; i < m; ++i) {
        out[i] = df[i] > 0 ? gf[i] / static_cast<double>(df[i]) : 0.0;
      }
      break;
    case GlobalWeight::kEntropy: {
      // G(i) = 1 + sum_j (p_ij log2 p_ij) / log2 n. Terms spread evenly over
      // documents score ~0 (uninformative), concentrated terms score ~1.
      std::vector<double> entropy(m, 0.0);
      for (lsi::la::index_t j = 0; j < counts.cols(); ++j) {
        auto rows = counts.col_rows(j);
        auto vals = counts.col_values(j);
        for (std::size_t p = 0; p < rows.size(); ++p) {
          const lsi::la::index_t i = rows[p];
          if (gf[i] <= 0.0) continue;
          const double pij = vals[p] / gf[i];
          if (pij > 0.0) entropy[i] += pij * std::log2(pij);
        }
      }
      const double logn = n > 1.0 ? std::log2(n) : 1.0;
      for (lsi::la::index_t i = 0; i < m; ++i) {
        out[i] = 1.0 + entropy[i] / logn;
      }
      break;
    }
    case GlobalWeight::kNormal: {
      std::vector<double> ss(m, 0.0);
      for (lsi::la::index_t j = 0; j < counts.cols(); ++j) {
        auto rows = counts.col_rows(j);
        auto vals = counts.col_values(j);
        for (std::size_t p = 0; p < rows.size(); ++p) {
          ss[rows[p]] += vals[p] * vals[p];
        }
      }
      for (lsi::la::index_t i = 0; i < m; ++i) {
        out[i] = ss[i] > 0.0 ? 1.0 / std::sqrt(ss[i]) : 0.0;
      }
      break;
    }
    case GlobalWeight::kNone:
      break;
  }
  return out;
}

lsi::la::CscMatrix apply(const lsi::la::CscMatrix& counts, const Scheme& s) {
  const auto g = global_weights(counts, s.global);
  const auto max_tf = per_document_max_tf(counts);
  return counts.transform_values(
      [&](lsi::la::index_t i, lsi::la::index_t j, double tf) {
        return local_weight(s.local, tf, max_tf[j]) * g[i];
      });
}

lsi::la::CscMatrix apply_with_global(const lsi::la::CscMatrix& counts,
                                     LocalWeight local,
                                     const std::vector<double>& g) {
  assert(g.size() == static_cast<std::size_t>(counts.rows()));
  const auto max_tf = per_document_max_tf(counts);
  return counts.transform_values(
      [&](lsi::la::index_t i, lsi::la::index_t j, double tf) {
        return local_weight(local, tf, max_tf[j]) * g[i];
      });
}

lsi::la::Vector apply_to_vector(const lsi::la::Vector& tf,
                                const std::vector<double>& g, LocalWeight l) {
  assert(tf.size() == g.size());
  double max_tf = 0.0;
  for (double v : tf) max_tf = std::max(max_tf, v);
  lsi::la::Vector out(tf.size(), 0.0);
  for (std::size_t i = 0; i < tf.size(); ++i) {
    if (tf[i] > 0.0) out[i] = local_weight(l, tf[i], max_tf) * g[i];
  }
  return out;
}

std::vector<Scheme> all_schemes() {
  std::vector<Scheme> out;
  for (LocalWeight l : {LocalWeight::kRawTf, LocalWeight::kBinary,
                        LocalWeight::kLog, LocalWeight::kAugmented}) {
    for (GlobalWeight g :
         {GlobalWeight::kNone, GlobalWeight::kIdf, GlobalWeight::kEntropy,
          GlobalWeight::kGfIdf, GlobalWeight::kNormal}) {
      out.push_back(Scheme{l, g});
    }
  }
  return out;
}

WeightCorrection weight_correction(const lsi::la::CscMatrix& counts,
                                   LocalWeight local,
                                   const std::vector<double>& old_g,
                                   const std::vector<double>& new_g,
                                   double tol) {
  assert(old_g.size() == counts.rows() && new_g.size() == counts.rows());
  const auto max_tf = per_document_max_tf(counts);

  WeightCorrection out;
  for (lsi::la::index_t i = 0; i < counts.rows(); ++i) {
    const double scale = std::max(std::fabs(old_g[i]), std::fabs(new_g[i]));
    if (scale == 0.0 || std::fabs(new_g[i] - old_g[i]) <= tol * scale) {
      continue;
    }
    out.terms.push_back(i);
  }
  const lsi::la::index_t j = out.terms.size();
  out.y = lsi::la::DenseMatrix(counts.rows(), j);
  out.z = lsi::la::DenseMatrix(counts.cols(), j);
  for (lsi::la::index_t c = 0; c < j; ++c) {
    const lsi::la::index_t term = out.terms[c];
    out.y(term, c) = 1.0;
  }
  // Z columns: delta of the weighted row = (g_new - g_old) * L(tf row).
  for (lsi::la::index_t col = 0; col < counts.cols(); ++col) {
    auto rows = counts.col_rows(col);
    auto vals = counts.col_values(col);
    for (std::size_t p = 0; p < rows.size(); ++p) {
      const lsi::la::index_t i = rows[p];
      for (lsi::la::index_t c = 0; c < j; ++c) {
        if (out.terms[c] != i) continue;
        const double lw = local_weight(local, vals[p], max_tf[col]);
        out.z(col, c) = lw * (new_g[i] - old_g[i]);
      }
    }
  }
  return out;
}

}  // namespace lsi::weighting
