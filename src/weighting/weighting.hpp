#pragma once
// Term weighting (Section 2.1, Equation 5):  a_ij = L(i, j) x G(i).
//
// L is the local weight of term i in document j (a function of tf_ij) and
// G the global weight of term i across the collection. The paper reports
// (Section 5.1) that log local x entropy global was the most effective
// scheme, ~40% better than raw term frequency; bench_weighting reproduces
// that comparison on synthetic collections.

#include <string>
#include <vector>

#include "la/sparse.hpp"
#include "la/vector_ops.hpp"

namespace lsi::weighting {

enum class LocalWeight {
  kRawTf,      ///< L = tf
  kBinary,     ///< L = 1 if tf > 0
  kLog,        ///< L = log2(1 + tf)
  kAugmented,  ///< L = 0.5 + 0.5 * tf / max_tf_in_document
};

enum class GlobalWeight {
  kNone,     ///< G = 1
  kIdf,      ///< G = log2(n / df)
  kEntropy,  ///< G = 1 + sum_j p_ij log2 p_ij / log2 n,  p_ij = tf_ij / gf_i
  kGfIdf,    ///< G = gf / df
  kNormal,   ///< G = 1 / sqrt(sum_j tf_ij^2)
};

struct Scheme {
  LocalWeight local = LocalWeight::kRawTf;
  GlobalWeight global = GlobalWeight::kNone;
};

/// The paper's best performer: log x entropy.
inline constexpr Scheme kLogEntropy{LocalWeight::kLog, GlobalWeight::kEntropy};
/// Raw counts (the Section 3 example uses this: "term weighting is not
/// used").
inline constexpr Scheme kRaw{LocalWeight::kRawTf, GlobalWeight::kNone};

std::string name(LocalWeight w);
std::string name(GlobalWeight w);
std::string name(const Scheme& s);

/// Global weight vector G(i) for every term, from raw counts.
std::vector<double> global_weights(const lsi::la::CscMatrix& counts,
                                   GlobalWeight g);

/// Applies Equation 5 to raw counts: returns [L(i,j) * G(i)].
lsi::la::CscMatrix apply(const lsi::la::CscMatrix& counts, const Scheme& s);

/// Applies Equation 5 with an externally-supplied global weight vector
/// (one G(i) per row of `counts`) instead of deriving G from the local
/// counts. This is the hook the cross-shard term-statistics exchange uses:
/// each shard's local weights stay local, but G comes from the COLLECTION-
/// wide statistics so all shards weight a term identically.
lsi::la::CscMatrix apply_with_global(const lsi::la::CscMatrix& counts,
                                     LocalWeight local,
                                     const std::vector<double>& g);

/// Weights a raw query/document term-frequency vector consistently with the
/// collection weighting: element i becomes L(tf_i) * G(i) using the
/// *collection's* global weights (queries carry no global statistics).
lsi::la::Vector apply_to_vector(const lsi::la::Vector& tf,
                                const std::vector<double>& g, LocalWeight l);

/// All local x global combinations, for sweeps.
std::vector<Scheme> all_schemes();

/// Section 4.1/4.2 correction-step inputs: when the global weights of some
/// terms change (because documents were added), the rank-j update
/// W = A_k + Y_j Z_j^T adjusts the affected rows. Y_j selects the changed
/// term rows (m x j, columns of the identity); Z_j holds the row deltas
/// (n x j): Z_j(:, c) = (g_new/g_old - 1) * (row of the weighted matrix).
struct WeightCorrection {
  lsi::la::DenseMatrix y;          ///< m x j selector
  lsi::la::DenseMatrix z;          ///< n x j deltas
  std::vector<lsi::la::index_t> terms;  ///< changed term rows
};

/// Builds (Y_j, Z_j) taking the weighted matrix from `old_g` to `new_g`,
/// given raw counts and the local weight in force. Terms whose global weight
/// changes by less than `tol` (relative) are skipped.
WeightCorrection weight_correction(const lsi::la::CscMatrix& counts,
                                   LocalWeight local,
                                   const std::vector<double>& old_g,
                                   const std::vector<double>& new_g,
                                   double tol = 1e-12);

}  // namespace lsi::weighting
