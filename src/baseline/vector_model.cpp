#include "baseline/vector_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lsi::baseline {

VectorSpaceModel::VectorSpaceModel(lsi::la::CscMatrix weighted)
    : weighted_(std::move(weighted)) {
  doc_norms_.resize(weighted_.cols(), 0.0);
  for (lsi::la::index_t j = 0; j < weighted_.cols(); ++j) {
    double ss = 0.0;
    for (double v : weighted_.col_values(j)) ss += v * v;
    doc_norms_[j] = std::sqrt(ss);
  }
}

std::vector<VsmScored> VectorSpaceModel::rank(
    const lsi::la::Vector& weighted_query) const {
  assert(weighted_query.size() == weighted_.rows());
  const double qnorm = lsi::la::norm2(weighted_query);
  std::vector<VsmScored> out;
  if (qnorm == 0.0) return out;
  for (lsi::la::index_t j = 0; j < weighted_.cols(); ++j) {
    if (doc_norms_[j] == 0.0) continue;
    auto rows = weighted_.col_rows(j);
    auto vals = weighted_.col_values(j);
    double dot = 0.0;
    for (std::size_t p = 0; p < rows.size(); ++p) {
      dot += vals[p] * weighted_query[rows[p]];
    }
    if (dot != 0.0) out.push_back({j, dot / (qnorm * doc_norms_[j])});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const VsmScored& a, const VsmScored& b) {
                     if (a.cosine != b.cosine) return a.cosine > b.cosine;
                     return a.doc < b.doc;
                   });
  return out;
}

}  // namespace lsi::baseline
