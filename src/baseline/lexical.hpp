#pragma once
// Lexical (boolean keyword) matching — the retrieval method the paper's
// introduction argues against: a document is returned iff it literally
// shares an indexed term with the query (Section 3.2's comparison).

#include <vector>

#include "la/sparse.hpp"

namespace lsi::baseline {

struct LexicalHit {
  lsi::la::index_t doc = 0;
  std::size_t shared_terms = 0;  ///< distinct query terms present
};

/// Documents sharing at least `min_shared` distinct terms with the query
/// term-frequency vector, ordered by descending overlap then index.
std::vector<LexicalHit> lexical_match(const lsi::la::CscMatrix& counts,
                                      const lsi::la::Vector& query_tf,
                                      std::size_t min_shared = 1);

}  // namespace lsi::baseline
