#include "baseline/lexical.hpp"

#include <algorithm>
#include <cassert>

namespace lsi::baseline {

std::vector<LexicalHit> lexical_match(const lsi::la::CscMatrix& counts,
                                      const lsi::la::Vector& query_tf,
                                      std::size_t min_shared) {
  assert(query_tf.size() == counts.rows());
  std::vector<LexicalHit> out;
  for (lsi::la::index_t j = 0; j < counts.cols(); ++j) {
    auto rows = counts.col_rows(j);
    std::size_t shared = 0;
    for (lsi::la::index_t r : rows) {
      if (query_tf[r] > 0.0) ++shared;
    }
    if (shared >= min_shared) out.push_back({j, shared});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const LexicalHit& a, const LexicalHit& b) {
                     if (a.shared_terms != b.shared_terms) {
                       return a.shared_terms > b.shared_terms;
                     }
                     return a.doc < b.doc;
                   });
  return out;
}

}  // namespace lsi::baseline
