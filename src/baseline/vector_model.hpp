#pragma once
// The "standard keyword vector method in SMART" (Salton) the paper compares
// LSI against throughout Section 5: documents and queries are weighted
// vectors in the full m-dimensional term space, ranked by cosine. No
// dimension reduction — precisely LSI with k = n, minus the SVD.

#include <vector>

#include "la/sparse.hpp"
#include "weighting/weighting.hpp"

namespace lsi::baseline {

struct VsmScored {
  lsi::la::index_t doc = 0;
  double cosine = 0.0;
};

/// Full-term-space cosine retrieval model over a weighted matrix.
class VectorSpaceModel {
 public:
  /// `weighted` is the Equation-5 weighted term-document matrix; document
  /// norms are precomputed.
  explicit VectorSpaceModel(lsi::la::CscMatrix weighted);

  /// Ranks every document with nonzero cosine against the weighted query
  /// vector, descending; ties by index.
  std::vector<VsmScored> rank(const lsi::la::Vector& weighted_query) const;

  const lsi::la::CscMatrix& matrix() const noexcept { return weighted_; }

 private:
  lsi::la::CscMatrix weighted_;
  std::vector<double> doc_norms_;
};

}  // namespace lsi::baseline
