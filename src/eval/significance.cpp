#include "eval/significance.hpp"

#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace lsi::eval {

namespace {

/// Exact two-sided binomial sign-test p-value for w successes out of n
/// fair-coin trials.
double sign_test_pvalue(int wins, int losses) {
  const int n = wins + losses;
  if (n == 0) return 1.0;
  const int extreme = std::max(wins, losses);
  // P(X >= extreme) + P(X <= n - extreme) under Binomial(n, 1/2); computed
  // in log space to survive large n.
  auto log_choose = [](int nn, int kk) {
    return std::lgamma(nn + 1.0) - std::lgamma(kk + 1.0) -
           std::lgamma(nn - kk + 1.0);
  };
  double tail = 0.0;
  for (int x = extreme; x <= n; ++x) {
    tail += std::exp(log_choose(n, x) - n * std::log(2.0));
  }
  double p = 2.0 * tail;
  if (extreme * 2 == n) p -= std::exp(log_choose(n, extreme) -
                                      n * std::log(2.0));  // counted twice
  return std::min(1.0, p);
}

}  // namespace

PairedComparison compare_systems(const std::vector<double>& a,
                                 const std::vector<double>& b,
                                 int permutations, std::uint64_t seed) {
  assert(a.size() == b.size());
  PairedComparison out;
  const std::size_t n = a.size();
  if (n == 0) return out;

  std::vector<double> diff(n);
  double sum_a = 0.0, sum_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum_a += a[i];
    sum_b += b[i];
    diff[i] = a[i] - b[i];
    if (diff[i] > 0) {
      ++out.wins_a;
    } else if (diff[i] < 0) {
      ++out.wins_b;
    } else {
      ++out.ties;
    }
  }
  out.mean_a = sum_a / n;
  out.mean_b = sum_b / n;
  out.mean_difference = out.mean_a - out.mean_b;
  out.sign_test_p = sign_test_pvalue(out.wins_a, out.wins_b);

  // Paired randomization test: under H0 each per-query difference is
  // symmetric around 0, so its sign is a fair coin.
  util::Rng rng(seed);
  const double observed = std::fabs(out.mean_difference);
  int at_least_as_extreme = 0;
  for (int p = 0; p < permutations; ++p) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += rng.bernoulli(0.5) ? diff[i] : -diff[i];
    }
    if (std::fabs(total / n) >= observed - 1e-15) ++at_least_as_extreme;
  }
  // +1 correction: the observed labelling is itself a permutation.
  out.randomization_p =
      (at_least_as_extreme + 1.0) / (permutations + 1.0);
  return out;
}

}  // namespace lsi::eval
