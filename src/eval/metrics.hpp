#pragma once
// Retrieval-effectiveness measures (Section 5.1): recall is the proportion
// of all relevant documents retrieved; precision the proportion of retrieved
// documents that are relevant; "average precision across several levels of
// recall" summarizes a ranking. The paper's own summary statistic (its
// footnote 2) is precision averaged over recall levels 0.25, 0.50, 0.75.

#include <unordered_set>
#include <vector>

#include "la/dense.hpp"

namespace lsi::eval {

using DocSet = std::unordered_set<lsi::la::index_t>;

/// Precision within the top `cutoff` of `ranked` (cutoff 0 = whole list).
double precision_at(const std::vector<lsi::la::index_t>& ranked,
                    const DocSet& relevant, std::size_t cutoff);

/// Recall within the top `cutoff` of `ranked` (cutoff 0 = whole list).
double recall_at(const std::vector<lsi::la::index_t>& ranked,
                 const DocSet& relevant, std::size_t cutoff);

/// Interpolated precision at a recall level: the maximum precision at any
/// cutoff whose recall is >= `recall_level` (the standard IR interpolation).
double interpolated_precision(const std::vector<lsi::la::index_t>& ranked,
                              const DocSet& relevant, double recall_level);

/// The paper's summary: mean interpolated precision over recall 0.25, 0.50
/// and 0.75. Returns 0 if there are no relevant documents.
double three_point_average_precision(
    const std::vector<lsi::la::index_t>& ranked, const DocSet& relevant);

/// Mean interpolated precision over the 11 standard recall points 0.0..1.0.
double eleven_point_average_precision(
    const std::vector<lsi::la::index_t>& ranked, const DocSet& relevant);

/// Non-interpolated average precision (mean precision at each relevant
/// document's rank) — the modern "AP".
double average_precision(const std::vector<lsi::la::index_t>& ranked,
                         const DocSet& relevant);

/// Mean of a metric over queries; empty input yields 0.
double mean(const std::vector<double>& values);

/// Interpolated precision at the 11 standard recall points 0.0, 0.1 .. 1.0
/// — the precision-recall curve the paper's evaluations summarize.
std::vector<double> precision_recall_curve(
    const std::vector<lsi::la::index_t>& ranked, const DocSet& relevant);

/// Pointwise mean of several PR curves (each length 11).
std::vector<double> mean_curve(const std::vector<std::vector<double>>& curves);

}  // namespace lsi::eval
