#pragma once
// Paired significance tests for comparing two retrieval systems over the
// same query set — the methodology behind claims like the paper's "LSI
// ranged from comparable to 30% better": a difference in mean average
// precision means little without knowing whether it would survive a
// re-draw of queries.

#include <cstdint>
#include <vector>

namespace lsi::eval {

struct PairedComparison {
  double mean_a = 0.0;
  double mean_b = 0.0;
  double mean_difference = 0.0;  ///< mean(a_i - b_i)
  /// Two-sided p-value from a paired randomization (permutation) test:
  /// probability of a |mean difference| at least this large under random
  /// sign flips of the per-query differences.
  double randomization_p = 1.0;
  /// Two-sided p-value of the sign test (binomial on #wins vs #losses).
  double sign_test_p = 1.0;
  int wins_a = 0;   ///< queries where a > b
  int wins_b = 0;   ///< queries where b > a
  int ties = 0;
};

/// Compares per-query scores of systems A and B (same length, same query
/// order). `permutations` controls the randomization-test resolution.
PairedComparison compare_systems(const std::vector<double>& a,
                                 const std::vector<double>& b,
                                 int permutations = 10000,
                                 std::uint64_t seed = 1);

}  // namespace lsi::eval
