#include "eval/metrics.hpp"

#include <algorithm>

namespace lsi::eval {

namespace {

std::size_t effective_cutoff(const std::vector<lsi::la::index_t>& ranked,
                             std::size_t cutoff) {
  return cutoff == 0 ? ranked.size() : std::min(cutoff, ranked.size());
}

}  // namespace

double precision_at(const std::vector<lsi::la::index_t>& ranked,
                    const DocSet& relevant, std::size_t cutoff) {
  const std::size_t n = effective_cutoff(ranked, cutoff);
  if (n == 0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) hits += relevant.count(ranked[i]);
  return static_cast<double>(hits) / static_cast<double>(n);
}

double recall_at(const std::vector<lsi::la::index_t>& ranked,
                 const DocSet& relevant, std::size_t cutoff) {
  if (relevant.empty()) return 0.0;
  const std::size_t n = effective_cutoff(ranked, cutoff);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) hits += relevant.count(ranked[i]);
  return static_cast<double>(hits) / static_cast<double>(relevant.size());
}

double interpolated_precision(const std::vector<lsi::la::index_t>& ranked,
                              const DocSet& relevant, double recall_level) {
  if (relevant.empty()) return 0.0;
  double best = 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    hits += relevant.count(ranked[i]);
    const double recall =
        static_cast<double>(hits) / static_cast<double>(relevant.size());
    if (recall + 1e-12 >= recall_level) {
      const double precision =
          static_cast<double>(hits) / static_cast<double>(i + 1);
      best = std::max(best, precision);
    }
  }
  return best;
}

double three_point_average_precision(
    const std::vector<lsi::la::index_t>& ranked, const DocSet& relevant) {
  return (interpolated_precision(ranked, relevant, 0.25) +
          interpolated_precision(ranked, relevant, 0.50) +
          interpolated_precision(ranked, relevant, 0.75)) /
         3.0;
}

double eleven_point_average_precision(
    const std::vector<lsi::la::index_t>& ranked, const DocSet& relevant) {
  double total = 0.0;
  for (int level = 0; level <= 10; ++level) {
    total += interpolated_precision(ranked, relevant, level / 10.0);
  }
  return total / 11.0;
}

double average_precision(const std::vector<lsi::la::index_t>& ranked,
                         const DocSet& relevant) {
  if (relevant.empty()) return 0.0;
  double total = 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (relevant.count(ranked[i])) {
      ++hits;
      total += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  return total / static_cast<double>(relevant.size());
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

std::vector<double> precision_recall_curve(
    const std::vector<lsi::la::index_t>& ranked, const DocSet& relevant) {
  std::vector<double> curve(11, 0.0);
  for (int level = 0; level <= 10; ++level) {
    curve[level] = interpolated_precision(ranked, relevant, level / 10.0);
  }
  return curve;
}

std::vector<double> mean_curve(
    const std::vector<std::vector<double>>& curves) {
  if (curves.empty()) return std::vector<double>(11, 0.0);
  std::vector<double> out(curves[0].size(), 0.0);
  for (const auto& c : curves) {
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += c[i];
  }
  for (double& v : out) v /= static_cast<double>(curves.size());
  return out;
}

}  // namespace lsi::eval
