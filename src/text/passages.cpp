#include "text/passages.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace lsi::text {

namespace {

/// Splits a body on blank lines into raw chunks (whole body if none).
std::vector<std::string> blank_line_chunks(const std::string& body) {
  std::vector<std::string> chunks;
  std::string current;
  std::size_t i = 0;
  while (i < body.size()) {
    // A blank line = newline followed by optional spaces and a newline.
    if (body[i] == '\n') {
      std::size_t j = i + 1;
      while (j < body.size() && (body[j] == ' ' || body[j] == '\t')) ++j;
      if (j < body.size() && body[j] == '\n') {
        if (!lsi::util::trim(current).empty()) {
          chunks.emplace_back(lsi::util::trim(current));
        }
        current.clear();
        i = j + 1;
        continue;
      }
    }
    current += body[i];
    ++i;
  }
  if (!lsi::util::trim(current).empty()) {
    chunks.emplace_back(lsi::util::trim(current));
  }
  if (chunks.empty()) chunks.emplace_back("");
  return chunks;
}

/// Slices a word sequence into overlapping windows of at most max_words.
std::vector<std::string> window_words(const std::vector<std::string>& words,
                                      const PassageOptions& opts) {
  std::vector<std::string> out;
  if (words.size() <= opts.max_words) {
    out.push_back(lsi::util::join(words, " "));
    return out;
  }
  const std::size_t step =
      opts.max_words > opts.overlap_words
          ? opts.max_words - opts.overlap_words
          : std::max<std::size_t>(1, opts.max_words / 2);
  for (std::size_t start = 0; start < words.size(); start += step) {
    const std::size_t end = std::min(words.size(), start + opts.max_words);
    std::vector<std::string> window(words.begin() + start,
                                    words.begin() + end);
    out.push_back(lsi::util::join(window, " "));
    if (end == words.size()) break;
  }
  return out;
}

}  // namespace

PassageCollection split_into_passages(const Collection& docs,
                                      const PassageOptions& opts) {
  PassageCollection out;
  out.num_documents = docs.size();
  for (std::size_t d = 0; d < docs.size(); ++d) {
    std::size_t count = 0;
    for (const auto& chunk : blank_line_chunks(docs[d].body)) {
      const auto words = lsi::util::split(chunk, " \t\n");
      for (auto& piece : window_words(words, opts)) {
        out.passages.push_back(
            {docs[d].label + "#" + std::to_string(count), std::move(piece)});
        out.parent.push_back(d);
        ++count;
      }
    }
    if (count == 0) {  // keep indices dense even for empty documents
      out.passages.push_back({docs[d].label + "#0", ""});
      out.parent.push_back(d);
    }
  }
  return out;
}

std::vector<ParentScore> aggregate_to_parents(
    const PassageCollection& pc,
    const std::vector<std::pair<std::size_t, double>>& passage_scores) {
  std::vector<ParentScore> best(pc.num_documents);
  std::vector<bool> seen(pc.num_documents, false);
  for (std::size_t d = 0; d < pc.num_documents; ++d) best[d].document = d;
  for (const auto& [passage, score] : passage_scores) {
    const std::size_t d = pc.parent[passage];
    if (!seen[d] || score > best[d].score) {
      best[d].score = score;
      best[d].best_passage = passage;
      seen[d] = true;
    }
  }
  std::vector<ParentScore> out;
  for (std::size_t d = 0; d < pc.num_documents; ++d) {
    if (seen[d]) out.push_back(best[d]);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ParentScore& a, const ParentScore& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.document < b.document;
                   });
  return out;
}

}  // namespace lsi::text
