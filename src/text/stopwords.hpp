#pragma once
// SMART-style English stop-word list. The paper's example treats common
// function words ("of", "children", "with" ... actually only function words)
// as non-indexable; content words are filtered by document frequency instead.

#include <string>
#include <string_view>
#include <unordered_set>

namespace lsi::text {

/// Shared default stop list (lower-case). Covers standard English function
/// words; content words are never stop words.
const std::unordered_set<std::string>& default_stopwords();

/// Convenience membership test against the default list.
bool is_stopword(std::string_view token);

}  // namespace lsi::text
