#pragma once
// Term-document matrix construction (Section 2.1, Equation 4): element
// a_ij is the raw frequency of term i in document j. Weighting (Equation 5)
// is applied separately by src/weighting.

#include <map>
#include <string>
#include <vector>

#include "la/sparse.hpp"
#include "text/document.hpp"
#include "text/tokenizer.hpp"
#include "text/vocabulary.hpp"

namespace lsi::text {

struct ParserOptions {
  TokenizerOptions tokenizer;
  bool remove_stopwords = true;
  /// Minimum number of distinct documents a term must occur in to be
  /// indexed. The paper's example uses 2 ("keywords appear in more than one
  /// topic"); general collections usually use 1 or 2.
  std::size_t min_document_frequency = 1;
  /// Fold simple plurals: a token ending in 's' is mapped to its stem when
  /// the stem itself occurs as a token somewhere in the collection
  /// ("cultures" -> "culture" in the paper's Table 3, while "patients" and
  /// "rats" stay whole because "patient"/"rat" never occur).
  bool fold_plurals = false;
  /// Apply the Porter stemmer to every content token. The paper runs LSI
  /// *without* stemming (Section 5.4) — the stemming ablation bench
  /// measures what the rule-based conflation buys on top of the latent
  /// structure. Mutually independent of fold_plurals (stemming wins if both
  /// are set, since it subsumes plural folding).
  bool stem = false;
  /// Additionally index adjacent-content-word bigrams as terms of the form
  /// "left_right" (Section 5.4: "phrases or n-grams could also be included
  /// as rows in the matrix"). Bigrams obey min_document_frequency like any
  /// other term.
  bool add_bigrams = false;
};

/// A parsed collection: raw counts plus the mappings back to terms/labels.
struct TermDocumentMatrix {
  lsi::la::CscMatrix counts;            ///< m terms x n documents, raw tf
  Vocabulary vocabulary;                ///< row index -> term
  std::vector<std::string> doc_labels;  ///< column index -> label
};

/// Parses a collection into a term-document matrix. Term rows are ordered
/// alphabetically (the paper's Table 3 ordering) for reproducibility.
TermDocumentMatrix build_term_document_matrix(const Collection& docs,
                                              const ParserOptions& opts = {});

/// Tokenizes a query/document against an existing vocabulary and returns the
/// m x 1 raw term-frequency vector (Section 2.2: q is "the vector of words
/// in the user's query"). Unknown terms are ignored, mirroring the paper's
/// treatment of non-indexed query words.
lsi::la::Vector text_to_term_vector(const TermDocumentMatrix& tdm,
                                    std::string_view body,
                                    const ParserOptions& opts = {});

/// Tokenizes ONE document in isolation and returns its term -> raw tf map
/// (ordered, so downstream accumulation is deterministic). Used by the
/// gather term-statistics exchange to fold streamed documents into the
/// cross-shard counts without rebuilding a matrix. Plural folding sees only
/// this document's tokens as the stem universe — a per-document
/// approximation of build_term_document_matrix's collection-wide rule, so a
/// lone "cultures" stays whole here even if "culture" appears elsewhere in
/// the collection. The divergence only affects fold_plurals collections and
/// only the exchange's streamed counts, never the index itself.
std::map<std::string, double> document_term_counts(
    std::string_view body, const ParserOptions& opts = {});

/// Document frequency of every term (number of columns with a nonzero).
std::vector<std::size_t> document_frequencies(const lsi::la::CscMatrix& counts);

/// Global frequency of every term (sum of each row).
std::vector<double> global_frequencies(const lsi::la::CscMatrix& counts);

}  // namespace lsi::text
