#pragma once
// Porter's suffix-stripping stemmer (1980), offered as an *optional* parser
// stage. The paper deliberately runs LSI without stemming ("no stemming is
// used to collapse words with the same morphology... doctor is quite near
// doctors but not as similar to doctoral") — the stemming ablation bench
// tests exactly that claim: LSI recovers most of stemming's benefit on its
// own, so conflating 'doctor'/'doctors' by rule buys little and can hurt
// ('doctoral' would be conflated too).

#include <string>
#include <string_view>

namespace lsi::text {

/// Returns the Porter stem of a lower-case ASCII word. Words shorter than
/// 3 characters are returned unchanged, as in the original algorithm.
std::string porter_stem(std::string_view word);

}  // namespace lsi::text
