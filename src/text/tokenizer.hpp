#pragma once
// Tokenization exactly as the paper describes (Section 5.4): "words are
// identified by looking for white space and punctuation in ASCII text", no
// stemming, case-folded. Tokens shorter than `min_length` are dropped (this
// removes the possessive 's' fragments in the paper's topic texts).

#include <string>
#include <string_view>
#include <vector>

namespace lsi::text {

struct TokenizerOptions {
  std::size_t min_length = 2;  ///< minimum surviving token length
};

/// Splits on every non-alphanumeric byte and lower-cases. Numbers survive as
/// tokens (TREC-style collections contain meaningful numerals).
std::vector<std::string> tokenize(std::string_view body,
                                  const TokenizerOptions& opts = {});

}  // namespace lsi::text
