#pragma once
// Plain document model: a label plus raw text. Collections are ordered; the
// position of a document is its column index in the term-document matrix.

#include <string>
#include <vector>

namespace lsi::text {

struct Document {
  std::string label;  ///< e.g. "M1" for the paper's medical topics
  std::string body;   ///< raw text; tokenization happens at parse time
};

using Collection = std::vector<Document>;

}  // namespace lsi::text
