#include "text/stopwords.hpp"

namespace lsi::text {

const std::unordered_set<std::string>& default_stopwords() {
  static const std::unordered_set<std::string> words = {
      // articles / determiners
      "a", "an", "the", "this", "that", "these", "those", "each", "every",
      "either", "neither", "some", "any", "all", "both", "such", "no",
      // pronouns
      "i", "me", "my", "mine", "myself", "we", "us", "our", "ours",
      "ourselves", "you", "your", "yours", "yourself", "he", "him", "his",
      "himself", "she", "her", "hers", "herself", "it", "its", "itself",
      "they", "them", "their", "theirs", "themselves", "who", "whom",
      "whose", "which", "what", "whatever", "whoever",
      // copulas / auxiliaries
      "am", "is", "are", "was", "were", "be", "been", "being", "do", "does",
      "did", "doing", "have", "has", "had", "having", "can", "could",
      "will", "would", "shall", "should", "may", "might", "must", "ought",
      // prepositions
      "of", "in", "on", "at", "by", "for", "with", "about", "against",
      "between", "into", "through", "during", "before", "after", "above",
      "below", "to", "from", "up", "down", "out", "off", "over", "under",
      "within", "without", "upon", "toward", "towards", "among", "amongst",
      "along", "across", "behind", "beyond", "near", "since", "until",
      "unto", "via", "per",
      // conjunctions / particles
      "and", "but", "or", "nor", "so", "yet", "if", "then", "else", "when",
      "whenever", "where", "wherever", "while", "because", "as", "than",
      "though", "although", "whether", "unless", "once", "also", "too",
      "very", "just", "only", "not", "own", "same", "other", "another",
      "again", "further", "here", "there", "how", "why", "now", "ever",
      "never", "always",
      // frequent light verbs / adverbs that carry no topical content
      "become", "becomes", "became", "get", "gets", "got", "like", "well",
      "even", "still", "however", "therefore", "thus", "hence", "etc",
      "respectively", "more", "most", "less", "least", "many", "much",
      "few", "several",
  };
  return words;
}

bool is_stopword(std::string_view token) {
  return default_stopwords().count(std::string(token)) > 0;
}

}  // namespace lsi::text
