#include "text/tokenizer.hpp"

#include <cctype>

namespace lsi::text {

std::vector<std::string> tokenize(std::string_view body,
                                  const TokenizerOptions& opts) {
  std::vector<std::string> out;
  std::string current;
  for (char ch : body) {
    const auto uc = static_cast<unsigned char>(ch);
    if (std::isalnum(uc)) {
      current += static_cast<char>(std::tolower(uc));
    } else if (!current.empty()) {
      if (current.size() >= opts.min_length) out.push_back(current);
      current.clear();
    }
  }
  if (current.size() >= opts.min_length) out.push_back(std::move(current));
  return out;
}

}  // namespace lsi::text
