#include "text/vocabulary.hpp"

namespace lsi::text {

Vocabulary::Vocabulary(std::vector<std::string> terms)
    : terms_(std::move(terms)) {
  index_.reserve(terms_.size());
  for (lsi::la::index_t i = 0; i < terms_.size(); ++i) index_[terms_[i]] = i;
}

lsi::la::index_t Vocabulary::add(std::string term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  const lsi::la::index_t id = terms_.size();
  index_.emplace(term, id);
  terms_.push_back(std::move(term));
  return id;
}

std::optional<lsi::la::index_t> Vocabulary::find(std::string_view term) const {
  auto it = index_.find(std::string(term));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace lsi::text
