#pragma once
// Bidirectional term <-> row-index mapping for a term-document matrix.

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "la/dense.hpp"

namespace lsi::text {

class Vocabulary {
 public:
  Vocabulary() = default;

  /// Builds from an ordered term list (index = position).
  explicit Vocabulary(std::vector<std::string> terms);

  /// Adds a term if absent; returns its index either way.
  lsi::la::index_t add(std::string term);

  /// Index of a term, if present.
  std::optional<lsi::la::index_t> find(std::string_view term) const;

  const std::string& term(lsi::la::index_t i) const { return terms_[i]; }
  const std::vector<std::string>& terms() const noexcept { return terms_; }
  lsi::la::index_t size() const noexcept { return terms_.size(); }

 private:
  std::vector<std::string> terms_;
  std::unordered_map<std::string, lsi::la::index_t> index_;
};

}  // namespace lsi::text
