#include "text/parser.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "obs/trace.hpp"
#include "text/stemmer.hpp"
#include "text/stopwords.hpp"

namespace lsi::text {

namespace {

/// Tokenize + stop-filter (+ stem, + bigram expansion) one document body.
/// Bigrams are appended after the unigrams so unigram positions stay
/// contiguous for the adjacency pairing.
std::vector<std::string> content_tokens(std::string_view body,
                                        const ParserOptions& opts) {
  std::vector<std::string> tokens = tokenize(body, opts.tokenizer);
  if (opts.remove_stopwords) {
    std::erase_if(tokens,
                  [](const std::string& t) { return is_stopword(t); });
  }
  if (opts.stem) {
    for (auto& t : tokens) t = porter_stem(t);
  }
  if (opts.add_bigrams && tokens.size() >= 2) {
    const std::size_t unigrams = tokens.size();
    tokens.reserve(2 * unigrams - 1);
    for (std::size_t i = 0; i + 1 < unigrams; ++i) {
      tokens.push_back(tokens[i] + "_" + tokens[i + 1]);
    }
  }
  return tokens;
}

/// Applies the plural-folding rule given the set of all tokens seen in the
/// collection: "xs" -> "x" iff "x" itself occurs somewhere.
std::string fold_token(const std::string& token,
                       const std::unordered_set<std::string>& all_tokens,
                       const ParserOptions& opts) {
  if (!opts.fold_plurals) return token;
  if (token.size() < 4 || token.back() != 's') return token;
  std::string stem = token.substr(0, token.size() - 1);
  if (all_tokens.count(stem)) return stem;
  return token;
}

}  // namespace

TermDocumentMatrix build_term_document_matrix(const Collection& docs,
                                              const ParserOptions& opts) {
  LSI_OBS_SPAN(span, "build.parse");
  // Pass 1: tokenize everything and record the token universe (needed by the
  // plural-folding rule before counting).
  std::vector<std::vector<std::string>> doc_tokens(docs.size());
  std::unordered_set<std::string> universe;
  for (std::size_t d = 0; d < docs.size(); ++d) {
    doc_tokens[d] = content_tokens(docs[d].body, opts);
    universe.insert(doc_tokens[d].begin(), doc_tokens[d].end());
  }

  // Pass 2: fold plurals, count per-document frequencies and document
  // frequencies of the folded terms.
  std::vector<std::map<std::string, double>> tf(docs.size());
  std::map<std::string, std::size_t> df;  // ordered -> alphabetical rows
  for (std::size_t d = 0; d < docs.size(); ++d) {
    for (const auto& raw : doc_tokens[d]) {
      tf[d][fold_token(raw, universe, opts)] += 1.0;
    }
    for (const auto& [term, count] : tf[d]) {
      (void)count;
      ++df[term];
    }
  }

  // Vocabulary: alphabetical, df-filtered.
  std::vector<std::string> terms;
  for (const auto& [term, count] : df) {
    if (count >= opts.min_document_frequency) terms.push_back(term);
  }

  TermDocumentMatrix out;
  out.vocabulary = Vocabulary(std::move(terms));
  out.doc_labels.reserve(docs.size());
  for (const auto& d : docs) out.doc_labels.push_back(d.label);

  lsi::la::CooBuilder builder(out.vocabulary.size(), docs.size());
  for (std::size_t d = 0; d < docs.size(); ++d) {
    for (const auto& [term, count] : tf[d]) {
      if (auto row = out.vocabulary.find(term)) {
        builder.add(*row, d, count);
      }
    }
  }
  out.counts = builder.to_csc();
  obs::gauge("build.terms", static_cast<double>(out.counts.rows()));
  obs::gauge("build.docs", static_cast<double>(out.counts.cols()));
  obs::gauge("build.nnz", static_cast<double>(out.counts.nnz()));
  return out;
}

lsi::la::Vector text_to_term_vector(const TermDocumentMatrix& tdm,
                                    std::string_view body,
                                    const ParserOptions& opts) {
  lsi::la::Vector q(tdm.vocabulary.size(), 0.0);
  for (const auto& token : content_tokens(body, opts)) {
    auto row = tdm.vocabulary.find(token);
    if (!row && opts.fold_plurals && token.size() >= 4 &&
        token.back() == 's') {
      row = tdm.vocabulary.find(token.substr(0, token.size() - 1));
    }
    if (row) q[*row] += 1.0;
  }
  return q;
}

std::map<std::string, double> document_term_counts(std::string_view body,
                                                   const ParserOptions& opts) {
  const std::vector<std::string> tokens = content_tokens(body, opts);
  std::unordered_set<std::string> universe(tokens.begin(), tokens.end());
  std::map<std::string, double> tf;
  for (const auto& raw : tokens) tf[fold_token(raw, universe, opts)] += 1.0;
  return tf;
}

std::vector<std::size_t> document_frequencies(
    const lsi::la::CscMatrix& counts) {
  std::vector<std::size_t> df(counts.rows(), 0);
  for (lsi::la::index_t j = 0; j < counts.cols(); ++j) {
    for (lsi::la::index_t r : counts.col_rows(j)) ++df[r];
  }
  return df;
}

std::vector<double> global_frequencies(const lsi::la::CscMatrix& counts) {
  std::vector<double> gf(counts.rows(), 0.0);
  for (lsi::la::index_t j = 0; j < counts.cols(); ++j) {
    auto rows = counts.col_rows(j);
    auto vals = counts.col_values(j);
    for (std::size_t p = 0; p < rows.size(); ++p) gf[rows[p]] += vals[p];
  }
  return gf;
}

}  // namespace lsi::text
