#include "text/stemmer.hpp"

// A faithful implementation of the algorithm in M. F. Porter, "An algorithm
// for suffix stripping", Program 14(3), 1980. The word is processed in five
// steps; the "measure" m counts vowel-consonant sequences in the candidate
// stem, and rules fire only when their measure condition holds.

namespace lsi::text {

namespace {

class Stemmer {
 public:
  explicit Stemmer(std::string word) : w_(std::move(word)) {}

  std::string run() {
    if (w_.size() < 3) return w_;
    step1a();
    step1b();
    step1c();
    step2();
    step3();
    step4();
    step5a();
    step5b();
    return w_;
  }

 private:
  std::string w_;

  static bool is_vowel_char(char c) {
    return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
  }

  /// True if w_[i] is a consonant under Porter's definition ('y' is a
  /// consonant when it follows a vowel position check).
  bool consonant(std::size_t i) const {
    const char c = w_[i];
    if (is_vowel_char(c)) return false;
    if (c == 'y') return i == 0 ? true : !consonant(i - 1);
    return true;
  }

  /// Porter measure of w_[0, len): the number of VC sequences.
  int measure(std::size_t len) const {
    int m = 0;
    std::size_t i = 0;
    while (i < len && consonant(i)) ++i;  // skip initial C*
    while (i < len) {
      while (i < len && !consonant(i)) ++i;  // V+
      if (i >= len) break;
      ++m;
      while (i < len && consonant(i)) ++i;  // C+
    }
    return m;
  }

  bool has_vowel(std::size_t len) const {
    for (std::size_t i = 0; i < len; ++i) {
      if (!consonant(i)) return true;
    }
    return false;
  }

  bool double_consonant(std::size_t len) const {
    if (len < 2) return false;
    return w_[len - 1] == w_[len - 2] && consonant(len - 1);
  }

  /// cvc ending where the final c is not w, x or y (rule *o).
  bool cvc(std::size_t len) const {
    if (len < 3) return false;
    if (!consonant(len - 3) || consonant(len - 2) || !consonant(len - 1)) {
      return false;
    }
    const char c = w_[len - 1];
    return c != 'w' && c != 'x' && c != 'y';
  }

  bool ends_with(std::string_view suffix) const {
    if (suffix.size() > w_.size()) return false;
    return w_.compare(w_.size() - suffix.size(), suffix.size(), suffix) == 0;
  }

  std::size_t stem_len(std::string_view suffix) const {
    return w_.size() - suffix.size();
  }

  /// If w_ ends with `suffix` and measure(stem) > m_min, replace the suffix.
  bool replace(std::string_view suffix, std::string_view repl, int m_min) {
    if (!ends_with(suffix)) return false;
    const std::size_t len = stem_len(suffix);
    if (measure(len) <= m_min) return true;  // matched but condition failed
    w_.replace(len, suffix.size(), repl);
    return true;
  }

  void step1a() {
    if (ends_with("sses")) {
      w_.erase(w_.size() - 2);  // sses -> ss
    } else if (ends_with("ies")) {
      w_.erase(w_.size() - 2);  // ies -> i
    } else if (ends_with("ss")) {
      // keep
    } else if (ends_with("s")) {
      w_.pop_back();
    }
  }

  void step1b() {
    bool cleanup = false;
    if (ends_with("eed")) {
      if (measure(stem_len("eed")) > 0) w_.pop_back();  // eed -> ee
    } else if (ends_with("ed") && has_vowel(stem_len("ed"))) {
      w_.erase(w_.size() - 2);
      cleanup = true;
    } else if (ends_with("ing") && has_vowel(stem_len("ing"))) {
      w_.erase(w_.size() - 3);
      cleanup = true;
    }
    if (!cleanup) return;
    if (ends_with("at") || ends_with("bl") || ends_with("iz")) {
      w_ += 'e';
    } else if (double_consonant(w_.size()) && !ends_with("l") &&
               !ends_with("s") && !ends_with("z")) {
      w_.pop_back();
    } else if (measure(w_.size()) == 1 && cvc(w_.size())) {
      w_ += 'e';
    }
  }

  void step1c() {
    if (ends_with("y") && has_vowel(stem_len("y"))) {
      w_.back() = 'i';
    }
  }

  void step2() {
    static constexpr std::pair<std::string_view, std::string_view> rules[] = {
        {"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
        {"anci", "ance"},   {"izer", "ize"},    {"abli", "able"},
        {"alli", "al"},     {"entli", "ent"},   {"eli", "e"},
        {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
        {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"},
        {"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
        {"iviti", "ive"},   {"biliti", "ble"}};
    for (const auto& [suffix, repl] : rules) {
      if (replace(suffix, repl, 0)) return;
    }
  }

  void step3() {
    static constexpr std::pair<std::string_view, std::string_view> rules[] = {
        {"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
        {"ical", "ic"},  {"ful", ""},   {"ness", ""}};
    for (const auto& [suffix, repl] : rules) {
      if (replace(suffix, repl, 0)) return;
    }
  }

  void step4() {
    static constexpr std::string_view suffixes[] = {
        "al",   "ance", "ence", "er",  "ic",  "able", "ible",
        "ant",  "ement", "ment", "ent", "ou",  "ism",  "ate",
        "iti",  "ous",  "ive",  "ize"};
    for (std::string_view suffix : suffixes) {
      if (!ends_with(suffix)) continue;
      const std::size_t len = stem_len(suffix);
      if (measure(len) > 1) w_.erase(len);
      return;
    }
    // (m>1 and (*S or *T)) ION ->
    if (ends_with("ion")) {
      const std::size_t len = stem_len("ion");
      if (measure(len) > 1 && len > 0 &&
          (w_[len - 1] == 's' || w_[len - 1] == 't')) {
        w_.erase(len);
      }
    }
  }

  void step5a() {
    if (!ends_with("e")) return;
    const std::size_t len = w_.size() - 1;
    const int m = measure(len);
    if (m > 1 || (m == 1 && !cvc(len))) w_.pop_back();
  }

  void step5b() {
    if (measure(w_.size()) > 1 && double_consonant(w_.size()) &&
        ends_with("l")) {
      w_.pop_back();
    }
  }
};

}  // namespace

std::string porter_stem(std::string_view word) {
  return Stemmer(std::string(word)).run();
}

}  // namespace lsi::text
