#pragma once
// Passage-level indexing (Section 5.4): "an entire document is usually the
// text object of interest, but smaller, more topically coherent units of
// text (e.g., paragraphs, sections) could be represented as well."
//
// split_into_passages() turns a collection of documents into a collection
// of passages plus the passage -> parent-document map; aggregate_to_parents
// folds a passage-level ranking back to documents (each document scored by
// its best passage), so long mixed-topic documents are retrieved by their
// relevant part instead of their average.

#include <cstddef>
#include <string>
#include <vector>

#include "text/document.hpp"

namespace lsi::text {

struct PassageOptions {
  /// Passages are split on blank lines first; any resulting chunk longer
  /// than this many whitespace-separated words is further sliced into
  /// windows of this size.
  std::size_t max_words = 60;
  /// Overlap (in words) between consecutive windows of a long chunk, so
  /// concepts straddling a cut are not lost.
  std::size_t overlap_words = 10;
};

struct PassageCollection {
  Collection passages;              ///< labels are "<parent>#<i>"
  std::vector<std::size_t> parent;  ///< passage index -> document index
  std::size_t num_documents = 0;
};

/// Splits every document into passages. Empty documents yield one empty
/// passage so document indices stay dense.
PassageCollection split_into_passages(const Collection& docs,
                                      const PassageOptions& opts = {});

/// One (document, score) pair of an aggregated ranking.
struct ParentScore {
  std::size_t document = 0;
  double score = 0.0;
  std::size_t best_passage = 0;  ///< passage index that produced the score
};

/// Max-aggregates passage scores to parent documents, descending. Input is
/// (passage index, score) pairs in any order; passages absent from the
/// input simply do not contribute.
std::vector<ParentScore> aggregate_to_parents(
    const PassageCollection& pc,
    const std::vector<std::pair<std::size_t, double>>& passage_scores);

}  // namespace lsi::text
