// Serving-layer concurrency stress (run under TSan in CI): many client
// threads hammer the daemon with mixed traffic — searches, session paging,
// ingest bursts, consolidations — so the epoll loop thread, the per-shard
// ConcurrentIndexer writer threads, the scatter pool, and a direct
// out-of-band consolidator all interleave. The invariants are freedom from
// races (TSan), conservation of the response ledger, and a clean drain that
// releases every snapshot pin.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "lsi/lsi.hpp"
#include "serve/server.hpp"
#include "synth/corpus.hpp"
#include "../serve/test_client.hpp"

namespace {

using namespace lsi;
using lsi::serve::testing::ClientResponse;
using lsi::serve::testing::TestClient;

constexpr std::size_t kClients = 4;
constexpr std::size_t kRequestsPerClient = 60;

std::string encode_query(const std::string& text) {
  std::string out;
  for (char c : text) out += (c == ' ') ? '+' : c;
  return out;
}

std::string json_string_field(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t pos = body.find(needle);
  if (pos == std::string::npos) return {};
  const std::size_t begin = pos + needle.size();
  return body.substr(begin, body.find('"', begin) - begin);
}

TEST(ServeStress, MixedTrafficRacesWriterThreadsAndConsolidation) {
  synth::CorpusSpec spec;
  spec.topics = 3;
  spec.concepts_per_topic = 5;
  spec.docs_per_topic = 20;
  spec.queries_per_topic = 3;
  spec.seed = 555;
  auto corpus = synth::generate_corpus(spec);

  core::ShardingOptions sopts;
  sopts.num_shards = 2;
  sopts.index.k = 8;
  sopts.concurrent.queue_capacity = 8;  // small: 429s WILL happen
  sopts.concurrent.consolidate_every = 32;
  auto built = core::ShardedIndex::try_build(corpus.docs, sopts);
  ASSERT_TRUE(built.ok()) << built.status().to_string();
  core::ShardedIndex& index = *built;

  serve::ServerOptions opts;
  opts.default_page_size = 4;
  serve::HttpServer server(index, opts);
  ASSERT_TRUE(server.start().ok());

  std::atomic<std::size_t> ok_responses{0};
  std::atomic<std::size_t> throttled{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TestClient client(server.port());
      if (!client.connected()) {
        failed.store(true);
        return;
      }
      // Each client owns one session and pages within it between ingests.
      const ClientResponse created = client.request("POST", "/session");
      if (created.status != 201) {
        failed.store(true);
        return;
      }
      const std::string token = json_string_field(created.body, "session");
      const std::string q =
          encode_query(corpus.queries[c % corpus.queries.size()].text);

      for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
        ClientResponse resp;
        switch (i % 6) {
          case 0:
            resp = client.request(
                "GET", "/search?session=" + token + "&q=" + q + "&cursor=0");
            break;
          case 1:
          case 2:
            resp = client.request("GET", "/search?session=" + token);
            break;
          case 3: {
            std::string tsv;
            for (int d = 0; d < 3; ++d) {
              tsv += "c" + std::to_string(c) + "i" + std::to_string(i) + "d" +
                     std::to_string(d) + "\t" +
                     corpus.docs[(c + i + d) % corpus.docs.size()].body + "\n";
            }
            resp = client.request("POST", "/ingest", tsv);
            break;
          }
          case 4:
            resp = client.request("GET", "/search?q=" + q + "&top=6");
            break;
          case 5:
            resp = client.request("GET", "/stats");
            break;
        }
        if (resp.status == 429) {
          throttled.fetch_add(1);
        } else if (resp.status >= 200 && resp.status < 300) {
          ok_responses.fetch_add(1);
        } else {
          failed.store(true);  // any other status under this load is a bug
          return;
        }
      }
    });
  }

  // Out-of-band consolidator: retires shard snapshots under live sessions.
  std::thread consolidator([&] {
    for (int i = 0; i < 5; ++i) {
      const Status s = index.consolidate();
      if (!s.ok()) failed.store(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  for (auto& t : clients) t.join();
  consolidator.join();
  EXPECT_FALSE(failed.load());
  EXPECT_GT(ok_responses.load(), 0u);

  // The ledger balances: every request got exactly one classified response.
  const serve::HttpServer::Stats stats = server.stats();
  EXPECT_EQ(stats.requests,
            stats.responses_2xx + stats.responses_4xx + stats.responses_5xx);
  EXPECT_EQ(stats.responses_4xx, throttled.load());
  EXPECT_EQ(stats.backpressure_429, throttled.load());

  server.drain();
  EXPECT_TRUE(server.stopped());
  EXPECT_EQ(index.pinned(), 0u);  // every session pin released by the drain
  index.shutdown();
}

TEST(ServeStress, DrainRacesInFlightTraffic) {
  synth::CorpusSpec spec;
  spec.topics = 2;
  spec.concepts_per_topic = 4;
  spec.docs_per_topic = 12;
  spec.seed = 556;
  auto corpus = synth::generate_corpus(spec);
  core::ShardingOptions sopts;
  sopts.num_shards = 2;
  sopts.index.k = 6;
  auto built = core::ShardedIndex::try_build(corpus.docs, sopts);
  ASSERT_TRUE(built.ok());
  core::ShardedIndex& index = *built;

  serve::HttpServer server(index);
  ASSERT_TRUE(server.start().ok());
  const std::string q = encode_query(corpus.queries.front().text);

  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      while (!stop.load()) {
        // Drain may land mid-exchange: closed connections and 503s are the
        // expected outcomes; anything else (crash, hang, garbage) is not.
        TestClient client(server.port());
        if (!client.connected()) return;
        const ClientResponse resp =
            client.request("GET", "/search?q=" + q + "&top=3");
        if (resp.closed && resp.status == 0) return;  // drained under us
        if (resp.status != 200 && resp.status != 503) return;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.drain();  // concurrent with live clients
  stop.store(true);
  for (auto& t : clients) t.join();

  EXPECT_TRUE(server.stopped());
  EXPECT_EQ(server.stats().connections_open, 0u);
  EXPECT_EQ(index.pinned(), 0u);
  index.shutdown();
}

}  // namespace
