#pragma once
// A deliberately primitive blocking HTTP/1.1 client for exercising the
// daemon over real loopback sockets in tests: one fd, raw send, and a
// response reader that understands exactly what the server emits
// (Content-Length or chunked). Not a general client — a test harness.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace lsi::serve::testing {

struct ClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool closed = false;  ///< the server half-closed after this response

  std::string header(const std::string& name) const {
    for (const auto& [n, v] : headers) {
      if (n.size() == name.size()) {
        bool eq = true;
        for (std::size_t i = 0; i < n.size(); ++i) {
          if (std::tolower(static_cast<unsigned char>(n[i])) !=
              std::tolower(static_cast<unsigned char>(name[i]))) {
            eq = false;
            break;
          }
        }
        if (eq) return v;
      }
    }
    return {};
  }
};

class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
  }

  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  TestClient(const TestClient&) = delete;
  TestClient& operator=(const TestClient&) = delete;

  bool connected() const { return connected_; }

  /// Sends raw bytes verbatim (for torture cases and pipelining).
  bool send_raw(const std::string& wire) {
    std::size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n =
          ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// One request/response exchange on the persistent connection.
  ClientResponse request(const std::string& method, const std::string& target,
                         const std::string& body = {},
                         const std::string& extra_headers = {}) {
    std::string wire = method + " " + target + " HTTP/1.1\r\n";
    wire += "Host: 127.0.0.1\r\n";
    wire += extra_headers;
    if (!body.empty()) {
      wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    }
    wire += "\r\n";
    wire += body;
    if (!send_raw(wire)) {
      ClientResponse resp;
      resp.closed = true;
      return resp;
    }
    return read_response();
  }

  /// Reads one full response (status line + headers + decoded body).
  ClientResponse read_response() {
    ClientResponse resp;
    std::size_t head_end;
    while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!fill()) {
        resp.closed = true;
        return resp;
      }
    }
    const std::string head = buffer_.substr(0, head_end);
    buffer_.erase(0, head_end + 4);

    // Status line: "HTTP/1.1 NNN Reason".
    const std::size_t sp = head.find(' ');
    if (sp != std::string::npos) resp.status = std::atoi(head.c_str() + sp + 1);
    std::size_t pos = head.find("\r\n");
    while (pos != std::string::npos) {
      const std::size_t eol = head.find("\r\n", pos + 2);
      const std::string line =
          head.substr(pos + 2, (eol == std::string::npos ? head.size() : eol) -
                                   pos - 2);
      pos = eol;
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string value = line.substr(colon + 1);
      while (!value.empty() && value.front() == ' ') value.erase(0, 1);
      resp.headers.emplace_back(line.substr(0, colon), std::move(value));
    }

    if (resp.header("Transfer-Encoding") == "chunked") {
      for (;;) {
        std::size_t eol;
        while ((eol = buffer_.find("\r\n")) == std::string::npos) {
          if (!fill()) {
            resp.closed = true;
            return resp;
          }
        }
        const std::size_t n =
            std::strtoul(buffer_.substr(0, eol).c_str(), nullptr, 16);
        buffer_.erase(0, eol + 2);
        while (buffer_.size() < n + 2) {
          if (!fill()) {
            resp.closed = true;
            return resp;
          }
        }
        if (n == 0) break;
        resp.body += buffer_.substr(0, n);
        buffer_.erase(0, n + 2);
      }
    } else {
      const std::size_t want =
          std::strtoul(resp.header("Content-Length").c_str(), nullptr, 10);
      while (buffer_.size() < want) {
        if (!fill()) {
          resp.closed = true;
          return resp;
        }
      }
      resp.body = buffer_.substr(0, want);
      buffer_.erase(0, want);
    }
    resp.closed = resp.header("Connection") == "close";
    return resp;
  }

  /// True when the peer has closed (a read returns EOF with nothing left).
  bool wait_peer_close() {
    while (fill()) {
    }
    return true;
  }

 private:
  bool fill() {
    char buf[8192];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n <= 0) return false;
    buffer_.append(buf, static_cast<std::size_t>(n));
    return true;
  }

  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

}  // namespace lsi::serve::testing
