// HTTP/1.1 parser torture tests (docs/SERVING.md): table-driven malformed
// inputs, limit violations mapped to their status codes, pipelining, and the
// byte-split property — a request fed in fragments split at EVERY byte
// boundary must parse identically to the request delivered whole.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/http.hpp"

namespace {

using namespace lsi::serve;

HttpParser::Limits tiny_limits() {
  HttpParser::Limits limits;
  limits.max_request_line = 64;
  limits.max_header_bytes = 128;
  limits.max_body_bytes = 32;
  return limits;
}

// ---------------------------------------------------------------------------
// Happy path
// ---------------------------------------------------------------------------

TEST(HttpParser, ParsesSimpleGet) {
  HttpParser parser;
  parser.feed("GET /search?q=latent%20semantic&top=5 HTTP/1.1\r\n"
              "Host: localhost\r\n\r\n");
  ASSERT_TRUE(parser.complete());
  const HttpRequest req = parser.take();
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/search");
  EXPECT_EQ(req.param("q"), "latent semantic");
  EXPECT_EQ(req.param("top"), "5");
  EXPECT_EQ(req.param("absent", "fallback"), "fallback");
  EXPECT_TRUE(req.has_param("q"));
  EXPECT_FALSE(req.has_param("absent"));
  EXPECT_EQ(req.header("host"), "localhost");
  EXPECT_EQ(req.header("HOST"), "localhost");  // case-insensitive
  EXPECT_EQ(req.version_minor, 1);
  EXPECT_TRUE(req.keep_alive);
  EXPECT_TRUE(req.body.empty());
}

TEST(HttpParser, ParsesPostWithBody) {
  HttpParser parser;
  parser.feed("POST /ingest HTTP/1.1\r\nContent-Length: 8\r\n\r\nM1\thello");
  ASSERT_TRUE(parser.complete());
  const HttpRequest req = parser.take();
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.body, "M1\thello");
}

TEST(HttpParser, BareLfLineEndingsAccepted) {
  HttpParser parser;
  parser.feed("GET /healthz HTTP/1.1\nHost: x\n\n");
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.take().path, "/healthz");
}

TEST(HttpParser, SkipsLeadingBlankLines) {
  HttpParser parser;
  parser.feed("\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.take().path, "/healthz");
}

TEST(HttpParser, HeaderValueWhitespaceTrimmed) {
  HttpParser parser;
  parser.feed("GET / HTTP/1.1\r\nX-Pad:   spaced value  \t\r\n\r\n");
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.take().header("x-pad"), "spaced value");
}

// ---------------------------------------------------------------------------
// Keep-alive semantics
// ---------------------------------------------------------------------------

TEST(HttpParser, KeepAliveDefaultsByVersionAndConnectionOverrides) {
  struct Case {
    const char* request;
    bool keep_alive;
  };
  const Case cases[] = {
      {"GET / HTTP/1.1\r\n\r\n", true},
      {"GET / HTTP/1.0\r\n\r\n", false},
      {"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false},
      {"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true},
      {"GET / HTTP/1.1\r\nConnection: CLOSE\r\n\r\n", false},
  };
  for (const Case& c : cases) {
    HttpParser parser;
    parser.feed(c.request);
    ASSERT_TRUE(parser.complete()) << c.request;
    EXPECT_EQ(parser.take().keep_alive, c.keep_alive) << c.request;
  }
}

// ---------------------------------------------------------------------------
// Malformed inputs (table-driven)
// ---------------------------------------------------------------------------

TEST(HttpParser, MalformedInputsMapToStatusCodes) {
  struct Case {
    const char* name;
    std::string input;
    int status;
  };
  const std::string big(200, 'a');
  const Case cases[] = {
      {"missing version", "GET /\r\n\r\n", 400},
      {"one token", "GET\r\n\r\n", 400},
      {"empty target", "GET  HTTP/1.1\r\n\r\n", 400},
      {"method not a token", "G@T / HTTP/1.1\r\n\r\n", 400},
      {"garbage version", "GET / FTP/1.1\r\n\r\n", 400},
      {"http2 version", "GET / HTTP/2.0\r\n\r\n", 505},
      {"http09 version", "GET / HTTP/0.9\r\n\r\n", 505},
      {"unknown method PUT", "PUT / HTTP/1.1\r\n\r\n", 405},
      {"unknown method BREW", "BREW /pot HTTP/1.1\r\n\r\n", 405},
      {"header missing colon", "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n", 400},
      {"header empty name", "GET / HTTP/1.1\r\n: value\r\n\r\n", 400},
      {"header name with space", "GET / HTTP/1.1\r\nBad Name: v\r\n\r\n", 400},
      {"content length not a number",
       "POST / HTTP/1.1\r\nContent-Length: 12x\r\n\r\n", 400},
      {"content length negative",
       "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n", 400},
      {"transfer encoding refused",
       "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501},
      {"request line too long", "GET /" + big + " HTTP/1.1\r\n\r\n", 414},
      {"oversized body declared",
       "POST / HTTP/1.1\r\nContent-Length: 4096\r\n\r\n", 413},
  };
  for (const Case& c : cases) {
    HttpParser parser(tiny_limits());
    parser.feed(c.input);
    EXPECT_FALSE(parser.complete()) << c.name;
    ASSERT_TRUE(parser.failed()) << c.name;
    EXPECT_EQ(parser.error_status(), c.status)
        << c.name << ": " << parser.error_reason();
  }
}

TEST(HttpParser, OversizedHeaderBlockIs431) {
  HttpParser parser(tiny_limits());
  parser.feed("GET / HTTP/1.1\r\n");
  for (int i = 0; i < 16; ++i) {
    parser.feed("X-Padding-" + std::to_string(i) + ": aaaaaaaaaaaa\r\n");
    if (parser.failed()) break;
  }
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParser, OversizedRequestLineWithoutNewlineIs414) {
  // The limit must trip even when no line terminator ever arrives —
  // otherwise a client dribbling an endless request line pins the buffer.
  HttpParser parser(tiny_limits());
  parser.feed("GET /" + std::string(200, 'a'));
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 414);
}

TEST(HttpParser, OversizedHeaderBlockWithoutNewlineIs431) {
  HttpParser parser(tiny_limits());
  parser.feed("GET / HTTP/1.1\r\nX-Pad: ");
  parser.feed(std::string(300, 'b'));
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParser, FeedAfterFailureIsInert) {
  HttpParser parser(tiny_limits());
  parser.feed("BREW / HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  parser.feed("GET / HTTP/1.1\r\n\r\n");  // doomed connection: ignored
  EXPECT_TRUE(parser.failed());
  EXPECT_FALSE(parser.complete());
  EXPECT_EQ(parser.error_status(), 405);
}

// ---------------------------------------------------------------------------
// Incremental delivery: the byte-split property
// ---------------------------------------------------------------------------

TEST(HttpParser, SplitAtEveryByteBoundaryParsesIdentically) {
  const std::string wire =
      "POST /ingest?session=s1&wait=1 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Length: 11\r\n"
      "\r\n"
      "M1\thello lsi";
  // Reference parse: the whole request in one feed.
  HttpParser whole;
  whole.feed(wire);
  ASSERT_TRUE(whole.complete());
  const HttpRequest want = whole.take();

  for (std::size_t split = 0; split <= wire.size(); ++split) {
    HttpParser parser;
    parser.feed(std::string_view(wire).substr(0, split));
    EXPECT_FALSE(parser.failed()) << "split at " << split;
    parser.feed(std::string_view(wire).substr(split));
    ASSERT_TRUE(parser.complete()) << "split at " << split;
    const HttpRequest got = parser.take();
    EXPECT_EQ(got.method, want.method) << split;
    EXPECT_EQ(got.target, want.target) << split;
    EXPECT_EQ(got.path, want.path) << split;
    EXPECT_EQ(got.query, want.query) << split;
    EXPECT_EQ(got.headers, want.headers) << split;
    EXPECT_EQ(got.body, want.body) << split;
    EXPECT_EQ(got.keep_alive, want.keep_alive) << split;
  }
}

TEST(HttpParser, ByteAtATimeDelivery) {
  const std::string wire =
      "GET /search?q=svd HTTP/1.1\r\nHost: h\r\n\r\n";
  HttpParser parser;
  for (char c : wire) {
    ASSERT_FALSE(parser.failed());
    parser.feed(std::string_view(&c, 1));
  }
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.take().param("q"), "svd");
}

// ---------------------------------------------------------------------------
// Pipelining
// ---------------------------------------------------------------------------

TEST(HttpParser, PipelinedRequestsComeOutOneTakeAtATime) {
  HttpParser parser;
  parser.feed(
      "GET /a HTTP/1.1\r\n\r\n"
      "POST /b HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyz"
      "GET /c HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.take().path, "/a");
  ASSERT_TRUE(parser.complete());  // take() re-armed onto the leftovers
  const HttpRequest second = parser.take();
  EXPECT_EQ(second.path, "/b");
  EXPECT_EQ(second.body, "xyz");
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.take().path, "/c");
  EXPECT_FALSE(parser.complete());
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(HttpParser, PipelinedSuccessorCompletesAfterMoreBytes) {
  HttpParser parser;
  parser.feed("GET /a HTTP/1.1\r\n\r\nGET /b HTT");
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.take().path, "/a");
  EXPECT_FALSE(parser.complete());  // /b is still partial
  parser.feed("P/1.1\r\n\r\n");
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.take().path, "/b");
}

// ---------------------------------------------------------------------------
// Helpers: decoding, escaping, serialization
// ---------------------------------------------------------------------------

TEST(HttpWire, UrlDecode) {
  EXPECT_EQ(url_decode("a%20b+c"), "a b c");
  EXPECT_EQ(url_decode("%2Fpath%3f"), "/path?");
  EXPECT_EQ(url_decode("100%"), "100%");    // trailing % passes through
  EXPECT_EQ(url_decode("%zz"), "%zz");      // malformed escape verbatim
  EXPECT_EQ(url_decode(""), "");
}

TEST(HttpWire, ParseQueryString) {
  const auto params = parse_query_string("q=a+b&flag&x=1%262&=v");
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[0], (std::pair<std::string, std::string>{"q", "a b"}));
  EXPECT_EQ(params[1], (std::pair<std::string, std::string>{"flag", ""}));
  EXPECT_EQ(params[2], (std::pair<std::string, std::string>{"x", "1&2"}));
  EXPECT_EQ(params[3], (std::pair<std::string, std::string>{"", "v"}));
}

TEST(HttpWire, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(HttpWire, SerializeIdentity) {
  HttpResponse resp;
  resp.status = 200;
  resp.body = "{\"ok\":true}";
  const std::string wire = serialize(resp);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 11\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Type: application/json\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - resp.body.size()), resp.body);
}

TEST(HttpWire, SerializeChunkedRoundTrips) {
  HttpResponse resp;
  resp.chunked = true;
  resp.keep_alive = false;
  resp.body.assign(10000, 'x');  // spans multiple 4 KiB chunks
  const std::string wire = serialize(resp);
  EXPECT_NE(wire.find("Transfer-Encoding: chunked\r\n"), std::string::npos);
  EXPECT_EQ(wire.find("Content-Length"), std::string::npos);

  // Decode the chunk stream back into a body.
  const std::size_t head_end = wire.find("\r\n\r\n");
  ASSERT_NE(head_end, std::string::npos);
  std::size_t pos = head_end + 4;
  std::string body;
  for (;;) {
    const std::size_t eol = wire.find("\r\n", pos);
    ASSERT_NE(eol, std::string::npos);
    const std::size_t n = std::stoul(wire.substr(pos, eol - pos), nullptr, 16);
    pos = eol + 2;
    if (n == 0) break;
    body += wire.substr(pos, n);
    ASSERT_EQ(wire.substr(pos + n, 2), "\r\n");
    pos += n + 2;
  }
  EXPECT_EQ(body, resp.body);
}

TEST(HttpWire, StatusReasonCoversDaemonCodes) {
  for (int status : {200, 201, 202, 400, 404, 405, 413, 414, 429, 431, 500,
                     501, 503, 505}) {
    EXPECT_NE(status_reason(status), "Unknown") << status;
  }
  EXPECT_EQ(status_reason(418), "Unknown");
}

}  // namespace
