// Serve-layer failover integration tests (label "integration-serve-
// replication"): the daemon in front of a 2-shard x 3-replica index, driven
// over real loopback sockets. Covers /healthz's ok -> degraded ->
// unavailable ladder, fold-in acks while a replica of every shard is
// ejected (and read-your-writes after replay), the per-replica /stats rows,
// quorum loss mapping to 503, and the /replica admin endpoints.

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "lsi/lsi.hpp"
#include "serve/server.hpp"
#include "synth/corpus.hpp"
#include "test_client.hpp"

namespace {

using namespace lsi;
using lsi::serve::testing::ClientResponse;
using lsi::serve::testing::TestClient;

std::string encode_query(const std::string& text) {
  std::string out;
  for (char c : text) out += (c == ' ') ? '+' : c;
  return out;
}

/// Collects every value of a numeric `"key":value` field, in body order.
std::vector<std::string> json_all_scalars(const std::string& body,
                                          const std::string& key) {
  std::vector<std::string> out;
  const std::string needle = "\"" + key + "\":";
  std::size_t pos = 0;
  while ((pos = body.find(needle, pos)) != std::string::npos) {
    const std::size_t begin = pos + needle.size();
    out.push_back(
        body.substr(begin, body.find_first_of(",}]", begin) - begin));
    pos = begin;
  }
  return out;
}

std::size_t count_occurrences(const std::string& body,
                              const std::string& needle) {
  std::size_t n = 0, pos = 0;
  while ((pos = body.find(needle, pos)) != std::string::npos) {
    ++n;
    pos += needle.size();
  }
  return n;
}

class ServerReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    synth::CorpusSpec spec;
    spec.topics = 3;
    spec.concepts_per_topic = 5;
    spec.docs_per_topic = 20;  // 60 docs
    spec.queries_per_topic = 2;
    spec.seed = 9191;
    corpus_ = synth::generate_corpus(spec);

    core::ShardingOptions sopts;
    sopts.num_shards = 2;
    sopts.replicas = 3;  // majority quorum: 2
    sopts.index.k = 8;
    sopts.concurrent.queue_capacity = 64;
    auto built = core::ShardedIndex::try_build(corpus_.docs, sopts);
    ASSERT_TRUE(built.ok()) << built.status().to_string();
    index_ = std::make_unique<core::ShardedIndex>(std::move(*built));

    server_ = std::make_unique<serve::HttpServer>(*index_);
    ASSERT_TRUE(server_->start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  void TearDown() override {
    if (server_) server_->drain();
    if (index_) index_->shutdown();
  }

  std::string query_text() const { return corpus_.queries.front().text; }

  synth::SyntheticCorpus corpus_;
  std::unique_ptr<core::ShardedIndex> index_;
  std::unique_ptr<serve::HttpServer> server_;
};

TEST_F(ServerReplicationTest, HealthzWalksOkDegradedUnavailable) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());

  ClientResponse resp = client.request("GET", "/healthz");
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"replicas_per_shard\":3"), std::string::npos);
  EXPECT_NE(resp.body.find("\"healthy_replicas\":[3,3]"), std::string::npos);

  // One replica down: degraded, but still 200 — the node keeps serving.
  EXPECT_EQ(client.request("POST", "/replica/eject?shard=0&replica=1").status,
            200);
  resp = client.request("GET", "/healthz");
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"status\":\"degraded\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"healthy_replicas\":[2,3]"), std::string::npos);

  // Shard 0 loses everything: unavailable, 503, Retry-After set.
  EXPECT_EQ(client.request("POST", "/replica/eject?shard=0&replica=0").status,
            200);
  EXPECT_EQ(client.request("POST", "/replica/eject?shard=0&replica=2").status,
            200);
  resp = client.request("GET", "/healthz");
  EXPECT_EQ(resp.status, 503);
  EXPECT_NE(resp.body.find("\"status\":\"unavailable\""), std::string::npos);
  EXPECT_FALSE(resp.header("Retry-After").empty());

  // Reads still answer from stale snapshots even with shard 0 dead.
  const ClientResponse search = client.request(
      "GET", "/search?q=" + encode_query(query_text()) + "&top=5");
  EXPECT_EQ(search.status, 200) << search.body;

  // Recovery walks back up the ladder.
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(client
                  .request("POST", "/replica/readmit?shard=0&replica=" +
                                       std::to_string(r))
                  .status,
              200);
  }
  resp = client.request("GET", "/healthz");
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"status\":\"ok\""), std::string::npos);
}

TEST_F(ServerReplicationTest, IngestAcksDuringEjectionAndReplayCatchesUp) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());

  // One replica of EVERY shard is down (wherever the router sends a
  // document, its shard is degraded) — quorum 2 of 3 still holds.
  EXPECT_EQ(client.request("POST", "/replica/eject?shard=0&replica=2").status,
            200);
  EXPECT_EQ(client.request("POST", "/replica/eject?shard=1&replica=2").status,
            200);

  // Re-ingest an existing document body under fresh labels: vocabularies
  // are frozen at build (fold-in semantics), so only in-vocabulary text is
  // findable — a verbatim copy must rank at the very top of its own query.
  const std::string body0 = corpus_.docs[0].body;
  const ClientResponse ingest = client.request(
      "POST", "/ingest?wait=1",
      "fresh-a\t" + body0 + "\nfresh-b\t" + corpus_.docs[1].body + "\n");
  EXPECT_EQ(ingest.status, 202) << ingest.body;
  EXPECT_NE(ingest.body.find("\"accepted\":2"), std::string::npos);

  // Read-your-writes against the degraded set: the search view pins healthy
  // replicas, which hold the new documents.
  const ClientResponse found = client.request(
      "GET", "/search?q=" + encode_query(body0) + "&labels=1&top=5");
  EXPECT_EQ(found.status, 200);
  EXPECT_NE(found.body.find("\"label\":\"fresh-"), std::string::npos)
      << found.body;

  // Readmit: the 200 means the replay already caught each replica up.
  EXPECT_EQ(
      client.request("POST", "/replica/readmit?shard=0&replica=2").status,
      200);
  EXPECT_EQ(
      client.request("POST", "/replica/readmit?shard=1&replica=2").status,
      200);
  // Quiesce (flush via wait=1), then every replica of a shard must have
  // been fed the same log prefix.
  EXPECT_EQ(client
                .request("POST", "/ingest?wait=1",
                         "fresh-c\tsignal phrase delta\n")
                .status,
            202);
  const ClientResponse stats = client.request("GET", "/stats");
  ASSERT_EQ(stats.status, 200);
  EXPECT_EQ(count_occurrences(stats.body, "\"state\":\"healthy\""), 6u);
  const auto fed = json_all_scalars(stats.body, "fed");
  ASSERT_EQ(fed.size(), 6u);  // 2 shards x 3 replica rows
  EXPECT_EQ(fed[0], fed[1]);
  EXPECT_EQ(fed[1], fed[2]);
  EXPECT_EQ(fed[3], fed[4]);
  EXPECT_EQ(fed[4], fed[5]);
}

TEST_F(ServerReplicationTest, QuorumLossMapsIngestTo503) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());

  // Both shards down to one healthy replica: below the majority quorum.
  for (const char* target :
       {"/replica/eject?shard=0&replica=1", "/replica/eject?shard=0&replica=2",
        "/replica/eject?shard=1&replica=1",
        "/replica/eject?shard=1&replica=2"}) {
    EXPECT_EQ(client.request("POST", target).status, 200);
  }

  const ClientResponse refused =
      client.request("POST", "/ingest", "doomed\tno quorum for this one\n");
  EXPECT_EQ(refused.status, 503) << refused.body;
  EXPECT_NE(refused.body.find("quorum"), std::string::npos);
  EXPECT_NE(refused.body.find("\"accepted\":0"), std::string::npos);
  EXPECT_FALSE(refused.header("Retry-After").empty());

  // Reads are unaffected; the refusal is visible on the quorum counter.
  EXPECT_EQ(client
                .request("GET",
                         "/search?q=" + encode_query(query_text()) + "&top=3")
                .status,
            200);
  const ClientResponse stats = client.request("GET", "/stats");
  const auto quorum = json_all_scalars(stats.body, "quorum_503");
  ASSERT_EQ(quorum.size(), 1u);
  EXPECT_EQ(quorum[0], "1");

  // Readmitting one replica per shard restores quorum and the ack.
  EXPECT_EQ(
      client.request("POST", "/replica/readmit?shard=0&replica=1").status,
      200);
  EXPECT_EQ(
      client.request("POST", "/replica/readmit?shard=1&replica=1").status,
      200);
  EXPECT_EQ(client
                .request("POST", "/ingest?wait=1",
                         "revived\tquorum is back now\n")
                .status,
            202);
}

TEST_F(ServerReplicationTest, StatsReportsPerReplicaRowsConsistentWithPins) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());

  ClientResponse stats = client.request("GET", "/stats");
  ASSERT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"pinned_replica\":"), std::string::npos);
  EXPECT_EQ(count_occurrences(stats.body, "\"replicas\":["), 2u);
  EXPECT_EQ(count_occurrences(stats.body, "\"state\":\"healthy\""), 6u);
  // Per shard the body carries 5 "generation" fields in order: the pinned
  // view's, the nested ann object's, then one per replica row. Quiesced at
  // the base generation, view and replica rows all read 1 (the ann entry is
  // 0 — no structure was built for this small corpus).
  auto gens = json_all_scalars(stats.body, "generation");
  ASSERT_EQ(gens.size(), 10u);
  for (std::size_t i = 0; i < gens.size(); ++i) {
    if (i % 5 == 1) continue;  // the ann sub-object's generation
    EXPECT_EQ(gens[i], "1") << "field " << i;
  }

  // Ejection shows up as a state flip on exactly one row.
  EXPECT_EQ(client.request("POST", "/replica/eject?shard=1&replica=0").status,
            200);
  stats = client.request("GET", "/stats");
  EXPECT_EQ(count_occurrences(stats.body, "\"state\":\"ejected\""), 1u);
  EXPECT_EQ(count_occurrences(stats.body, "\"state\":\"healthy\""), 5u);

  // Quiesce after more ingest: generations still agree within every shard.
  EXPECT_EQ(client.request("POST", "/replica/readmit?shard=1&replica=0")
                .status,
            200);
  EXPECT_EQ(client
                .request("POST", "/ingest?wait=1",
                         "gen-a\tmore words here\ngen-b\tand here too\n")
                .status,
            202);
  stats = client.request("GET", "/stats");
  gens = json_all_scalars(stats.body, "generation");
  ASSERT_EQ(gens.size(), 10u);
  for (std::size_t shard = 0; shard < 2; ++shard) {
    const std::size_t view = shard * 5;  // then ann, then 3 replica rows
    for (std::size_t r = 0; r < 3; ++r) {
      EXPECT_EQ(gens[view], gens[view + 2 + r]) << "shard " << shard;
    }
  }
}

TEST_F(ServerReplicationTest, AdminEndpointsValidateAndConflict) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());

  // Parameters are mandatory and range-checked.
  EXPECT_EQ(client.request("POST", "/replica/eject").status, 400);
  EXPECT_EQ(client.request("POST", "/replica/eject?shard=0").status, 400);
  EXPECT_EQ(client.request("POST", "/replica/eject?shard=9&replica=0").status,
            400);
  EXPECT_EQ(client.request("POST", "/replica/eject?shard=0&replica=9").status,
            400);
  // GET is not allowed on an admin verb.
  EXPECT_EQ(client.request("GET", "/replica/eject?shard=0&replica=0").status,
            405);

  const ClientResponse ejected =
      client.request("POST", "/replica/eject?shard=0&replica=1");
  EXPECT_EQ(ejected.status, 200);
  EXPECT_NE(ejected.body.find("\"state\":\"ejected\""), std::string::npos);
  EXPECT_NE(ejected.body.find("\"healthy\":2"), std::string::npos);

  // State conflicts are 409: eject twice, readmit a healthy sibling.
  EXPECT_EQ(client.request("POST", "/replica/eject?shard=0&replica=1").status,
            409);
  EXPECT_EQ(
      client.request("POST", "/replica/readmit?shard=0&replica=0").status,
      409);

  const ClientResponse readmitted =
      client.request("POST", "/replica/readmit?shard=0&replica=1");
  EXPECT_EQ(readmitted.status, 200);
  EXPECT_NE(readmitted.body.find("\"state\":\"healthy\""), std::string::npos);
  EXPECT_NE(readmitted.body.find("\"healthy\":3"), std::string::npos);
}

}  // namespace
