// HttpServer integration tests over real loopback sockets: the command
// surface, session pinning and paging across consolidation (the
// read-stability regression of docs/SERVING.md), admission control, and
// graceful drain. Each fixture builds a small sharded index, starts the
// daemon on an ephemeral port, and speaks HTTP/1.1 through TestClient.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lsi/lsi.hpp"
#include "serve/server.hpp"
#include "synth/corpus.hpp"
#include "test_client.hpp"

namespace {

using namespace lsi;
using lsi::serve::testing::ClientResponse;
using lsi::serve::testing::TestClient;

std::string encode_query(const std::string& text) {
  std::string out;
  for (char c : text) out += (c == ' ') ? '+' : c;
  return out;
}

/// Extracts the value of a top-level "key":"value" string field.
std::string json_string_field(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t pos = body.find(needle);
  if (pos == std::string::npos) return {};
  const std::size_t begin = pos + needle.size();
  return body.substr(begin, body.find('"', begin) - begin);
}

/// Extracts the value of a numeric/bool field (up to the next , } ]).
std::string json_scalar_field(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = body.find(needle);
  if (pos == std::string::npos) return {};
  const std::size_t begin = pos + needle.size();
  return body.substr(begin, body.find_first_of(",}]", begin) - begin);
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    synth::CorpusSpec spec;
    spec.topics = 3;
    spec.concepts_per_topic = 5;
    spec.docs_per_topic = 20;  // 60 docs
    spec.queries_per_topic = 2;
    spec.seed = 4242;
    corpus_ = synth::generate_corpus(spec);

    core::ShardingOptions sopts;
    sopts.num_shards = 2;
    sopts.index.k = 8;
    sopts.concurrent.queue_capacity = 64;
    auto built = core::ShardedIndex::try_build(corpus_.docs, sopts);
    ASSERT_TRUE(built.ok()) << built.status().to_string();
    index_ = std::make_unique<core::ShardedIndex>(std::move(*built));

    serve::ServerOptions opts;
    opts.default_page_size = 5;
    server_ = std::make_unique<serve::HttpServer>(*index_, opts);
    ASSERT_TRUE(server_->start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  void TearDown() override {
    if (server_) server_->drain();
    if (index_) index_->shutdown();
  }

  std::string query_text() const { return corpus_.queries.front().text; }

  synth::SyntheticCorpus corpus_;
  std::unique_ptr<core::ShardedIndex> index_;
  std::unique_ptr<serve::HttpServer> server_;
};

// ---------------------------------------------------------------------------
// Command surface
// ---------------------------------------------------------------------------

TEST_F(ServerTest, HealthzAnswersOk) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  const ClientResponse resp = client.request("GET", "/healthz");
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"status\":\"ok\""), std::string::npos);
  // R=1: every shard reports its single replica healthy.
  EXPECT_NE(resp.body.find("\"replicas_per_shard\":1"), std::string::npos);
}

TEST_F(ServerTest, SessionlessSearchRanksDocs) {
  TestClient client(server_->port());
  const ClientResponse resp = client.request(
      "GET", "/search?q=" + encode_query(query_text()) + "&top=7");
  ASSERT_EQ(resp.status, 200) << resp.body;
  EXPECT_NE(resp.body.find("\"results\":[{\"doc\":"), std::string::npos);
  EXPECT_NE(resp.body.find("\"generations\":["), std::string::npos);
  // top=7 caps the ranking.
  std::size_t hits = 0, pos = 0;
  while ((pos = resp.body.find("\"doc\":", pos)) != std::string::npos) {
    ++hits;
    pos += 6;
  }
  EXPECT_LE(hits, 7u);
  EXPECT_GT(hits, 0u);
}

TEST_F(ServerTest, SearchWithLabelsResolvesThem) {
  TestClient client(server_->port());
  const ClientResponse resp = client.request(
      "GET", "/search?q=" + encode_query(query_text()) + "&labels=1&top=3");
  ASSERT_EQ(resp.status, 200) << resp.body;
  EXPECT_NE(resp.body.find("\"label\":\""), std::string::npos);
}

TEST_F(ServerTest, SearchWithoutQueryIs400) {
  TestClient client(server_->port());
  EXPECT_EQ(client.request("GET", "/search").status, 400);
}

TEST_F(ServerTest, UnknownPathIs404AndWrongMethodIs405) {
  TestClient client(server_->port());
  EXPECT_EQ(client.request("GET", "/no-such").status, 404);
  const ClientResponse resp = client.request("POST", "/search?q=x");
  EXPECT_EQ(resp.status, 405);
  EXPECT_EQ(resp.header("Allow"), "GET");
}

TEST_F(ServerTest, MalformedRequestGets400AndClose) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.send_raw("NONSENSE\r\n\r\n"));
  const ClientResponse resp = client.read_response();
  EXPECT_EQ(resp.status, 400);
  EXPECT_TRUE(resp.closed);
}

TEST_F(ServerTest, UnsupportedMethodTokenGets405AtParserLevel) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.send_raw("BREW /search?q=x HTTP/1.1\r\n\r\n"));
  const ClientResponse resp = client.read_response();
  EXPECT_EQ(resp.status, 405);
  EXPECT_TRUE(resp.closed);
}

TEST_F(ServerTest, PipelinedRequestsAnswerInOrder) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.send_raw(
      "GET /healthz HTTP/1.1\r\nHost: h\r\n\r\n"
      "GET /no-such HTTP/1.1\r\nHost: h\r\n\r\n"
      "GET /healthz HTTP/1.1\r\nHost: h\r\n\r\n"));
  EXPECT_EQ(client.read_response().status, 200);
  EXPECT_EQ(client.read_response().status, 404);
  EXPECT_EQ(client.read_response().status, 200);
}

TEST_F(ServerTest, StatsStreamsChunkedJson) {
  TestClient client(server_->port());
  (void)client.request("GET", "/healthz");
  const ClientResponse resp = client.request("GET", "/stats");
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.header("Transfer-Encoding"), "chunked");
  EXPECT_EQ(json_string_field(resp.body, "state"), "running");
  EXPECT_NE(resp.body.find("\"shards\":[{"), std::string::npos);
  EXPECT_NE(resp.body.find("\"requests\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Sessions: paging, read-your-writes, pin stability across consolidation
// ---------------------------------------------------------------------------

TEST_F(ServerTest, SessionPagesThroughOneRanking) {
  TestClient client(server_->port());
  const ClientResponse created = client.request("POST", "/session");
  ASSERT_EQ(created.status, 201) << created.body;
  const std::string token = json_string_field(created.body, "session");
  ASSERT_FALSE(token.empty());

  const std::string q = encode_query(query_text());
  const ClientResponse page1 = client.request(
      "GET", "/search?q=" + q + "&session=" + token + "&top=4");
  ASSERT_EQ(page1.status, 200) << page1.body;
  EXPECT_EQ(json_scalar_field(page1.body, "cursor"), "4");
  EXPECT_EQ(json_scalar_field(page1.body, "more"), "true");

  // No q: continue the cached ranking from the cursor.
  const ClientResponse page2 =
      client.request("GET", "/search?session=" + token + "&top=4");
  ASSERT_EQ(page2.status, 200) << page2.body;
  EXPECT_EQ(json_scalar_field(page2.body, "cursor"), "8");

  // Pages must not overlap.
  EXPECT_NE(page1.body.substr(0, page1.body.find("cursor")),
            page2.body.substr(0, page2.body.find("cursor")));

  // Explicit cursor rewind replays page 1's slice.
  const ClientResponse rewound = client.request(
      "GET", "/search?session=" + token + "&cursor=0&top=4");
  ASSERT_EQ(rewound.status, 200);
  EXPECT_EQ(json_scalar_field(rewound.body, "cursor"), "4");
  // Same pinned view, same query, same slice: byte-identical replay.
  EXPECT_EQ(rewound.body, page1.body);

  EXPECT_EQ(client.request("DELETE", "/session?session=" + token).status, 200);
  EXPECT_EQ(client
                .request("GET", "/search?session=" + token + "&q=" + q)
                .status,
            404);
}

TEST_F(ServerTest, UnknownSessionIs404) {
  TestClient client(server_->port());
  EXPECT_EQ(client.request("GET", "/search?session=bogus&q=x").status, 404);
  EXPECT_EQ(client.request("DELETE", "/session?session=bogus").status, 404);
}

TEST_F(ServerTest, SessionSurvivesConsolidationWhilePaging) {
  // THE pin regression: a session pages a ranking while a consolidation
  // retires and republishes every shard snapshot underneath it. The
  // session's pages must keep coming from the pinned (pre-consolidation)
  // generation vector — stable cursors, no mixed generations — while new
  // sessionless queries see the post-consolidation generations.
  TestClient client(server_->port());
  const ClientResponse created = client.request("POST", "/session");
  ASSERT_EQ(created.status, 201);
  const std::string token = json_string_field(created.body, "session");

  // Ingest extra documents so the consolidation has pending folds to chew.
  std::string tsv;
  for (int i = 0; i < 24; ++i) {
    tsv += "extra" + std::to_string(i) + "\t" + corpus_.docs[i % 8].body +
           "\n";
  }
  ASSERT_EQ(client.request("POST", "/ingest?wait=1", tsv).status, 202);

  const std::string q = encode_query(query_text());
  const ClientResponse page1 = client.request(
      "GET", "/search?q=" + q + "&session=" + token + "&top=3");
  ASSERT_EQ(page1.status, 200);
  const std::string pinned_gens = json_scalar_field(page1.body, "generations");

  const ClientResponse consolidated =
      client.request("POST", "/consolidate");
  ASSERT_EQ(consolidated.status, 200) << consolidated.body;

  // Page 2 after consolidation: same pinned generations, cursor advanced.
  const ClientResponse page2 =
      client.request("GET", "/search?session=" + token + "&top=3");
  ASSERT_EQ(page2.status, 200) << page2.body;
  EXPECT_EQ(json_scalar_field(page2.body, "generations"), pinned_gens);
  EXPECT_EQ(json_scalar_field(page2.body, "cursor"), "6");

  // A sessionless query answers from the NEW generations.
  const ClientResponse fresh = client.request("GET", "/search?q=" + q);
  ASSERT_EQ(fresh.status, 200);
  EXPECT_NE(json_scalar_field(fresh.body, "generations"), pinned_gens);
}

TEST_F(ServerTest, IngestWithWaitGivesReadYourWrites) {
  TestClient client(server_->port());
  const ClientResponse created = client.request("POST", "/session");
  ASSERT_EQ(created.status, 201);
  const std::string token = json_string_field(created.body, "session");

  const std::string marker_body = corpus_.docs[0].body;
  const ClientResponse ingested = client.request(
      "POST", "/ingest?session=" + token + "&wait=1",
      "rywdoc\t" + marker_body + "\n");
  ASSERT_EQ(ingested.status, 202) << ingested.body;
  EXPECT_EQ(json_scalar_field(ingested.body, "accepted"), "1");
  EXPECT_EQ(json_scalar_field(ingested.body, "pin_refreshed"), "true");

  // The refreshed pin sees the new document: its global id is the corpus
  // size (ids are assigned in arrival order).
  const ClientResponse found = client.request(
      "GET", "/search?session=" + token + "&q=" +
                 encode_query(marker_body.substr(0, 40)) + "&top=" +
                 std::to_string(corpus_.docs.size() + 1));
  ASSERT_EQ(found.status, 200);
  EXPECT_NE(
      found.body.find("\"doc\":" + std::to_string(corpus_.docs.size())),
      std::string::npos)
      << found.body;
}

TEST_F(ServerTest, IngestRejectsGarbage) {
  TestClient client(server_->port());
  EXPECT_EQ(client.request("POST", "/ingest").status, 400);  // empty body
  const ClientResponse resp =
      client.request("POST", "/ingest", "no tab separator here\n");
  EXPECT_EQ(resp.status, 400);
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(ServerAdmission, IngestBackpressureBecomes429WithRetryAfter) {
  synth::CorpusSpec spec;
  spec.topics = 2;
  spec.concepts_per_topic = 4;
  spec.docs_per_topic = 12;
  spec.seed = 99;
  auto corpus = synth::generate_corpus(spec);

  core::ShardingOptions sopts;
  sopts.num_shards = 2;
  sopts.index.k = 6;
  sopts.concurrent.queue_capacity = 2;  // tiny: one bulk POST must overflow
  auto built = core::ShardedIndex::try_build(corpus.docs, sopts);
  ASSERT_TRUE(built.ok()) << built.status().to_string();

  serve::HttpServer server(*built);
  ASSERT_TRUE(server.start().ok());

  std::string tsv;
  for (int i = 0; i < 300; ++i) {
    tsv += "bulk" + std::to_string(i) + "\t" + corpus.docs[i % 8].body + "\n";
  }
  TestClient client(server.port());
  const ClientResponse resp = client.request("POST", "/ingest", tsv);
  EXPECT_EQ(resp.status, 429) << resp.body;
  EXPECT_FALSE(resp.header("Retry-After").empty());
  // Partial progress is reported, not lost.
  EXPECT_FALSE(json_scalar_field(resp.body, "accepted").empty());
  EXPECT_FALSE(json_scalar_field(resp.body, "rejected_line").empty());
  EXPECT_GE(server.stats().backpressure_429, 1u);

  server.drain();
  built->shutdown();
}

TEST(ServerAdmission, ConnectionTableOverflowGets503) {
  synth::CorpusSpec spec;
  spec.topics = 2;
  spec.concepts_per_topic = 4;
  spec.docs_per_topic = 10;
  spec.seed = 7;
  auto corpus = synth::generate_corpus(spec);
  core::ShardingOptions sopts;
  sopts.num_shards = 2;
  sopts.index.k = 6;
  auto built = core::ShardedIndex::try_build(corpus.docs, sopts);
  ASSERT_TRUE(built.ok());

  serve::ServerOptions opts;
  opts.max_connections = 1;
  serve::HttpServer server(*built, opts);
  ASSERT_TRUE(server.start().ok());

  TestClient first(server.port());
  ASSERT_TRUE(first.connected());
  ASSERT_EQ(first.request("GET", "/healthz").status, 200);  // conn registered

  TestClient second(server.port());
  ASSERT_TRUE(second.connected());
  const ClientResponse resp = second.read_response();  // refused at the door
  EXPECT_EQ(resp.status, 503);
  EXPECT_FALSE(resp.header("Retry-After").empty());

  server.drain();
  built->shutdown();
}

// ---------------------------------------------------------------------------
// Drain
// ---------------------------------------------------------------------------

TEST_F(ServerTest, ShutdownEndpointDrainsAndReleasesPins) {
  TestClient client(server_->port());
  const ClientResponse created = client.request("POST", "/session");
  ASSERT_EQ(created.status, 201);
  EXPECT_GE(index_->pinned(), 1u);

  const ClientResponse resp = client.request("POST", "/shutdown");
  EXPECT_EQ(resp.status, 200);
  EXPECT_TRUE(resp.closed);
  client.wait_peer_close();

  server_->join();
  EXPECT_TRUE(server_->stopped());
  // Every session died with the drain; its pins went with it.
  EXPECT_EQ(index_->pinned(), 0u);

  // New connections are refused once stopped.
  TestClient late(server_->port());
  ClientResponse nothing = late.read_response();
  EXPECT_TRUE(nothing.closed);
}

TEST_F(ServerTest, RequestDrainFromOwnerThreadCompletes) {
  TestClient client(server_->port());
  ASSERT_EQ(client.request("GET", "/healthz").status, 200);
  server_->drain();
  EXPECT_TRUE(server_->stopped());
  const serve::HttpServer::Stats stats = server_->stats();
  EXPECT_EQ(stats.connections_open, 0u);
  EXPECT_EQ(stats.sessions_open, 0u);
}

// ---------------------------------------------------------------------------
// Search knobs: nprobe / recall / exact / deadline_ms validation
// ---------------------------------------------------------------------------

TEST_F(ServerTest, InvalidKnobCombinationsAnswer400WithPreciseMessages) {
  TestClient client(server_->port());
  const std::string q = "/search?q=" + encode_query(query_text());
  const struct {
    const char* params;
    const char* message;
  } cases[] = {
      {"&exact=2", "exact must be 0 or 1"},
      {"&exact=1&nprobe=3", "nprobe cannot be combined with exact=1"},
      {"&exact=1&recall=0.9", "recall cannot be combined with exact=1"},
      {"&nprobe=3&recall=0.9", "nprobe and recall are mutually exclusive"},
      {"&nprobe=0", "nprobe must be a positive integer"},
      {"&nprobe=abc", "nprobe must be a positive integer"},
      {"&recall=0", "recall must be a number in (0, 1]"},
      {"&recall=1.5", "recall must be a number in (0, 1]"},
      {"&recall=x", "recall must be a number in (0, 1]"},
      {"&deadline_ms=0", "deadline_ms must be a positive integer"},
  };
  for (const auto& c : cases) {
    const ClientResponse resp = client.request("GET", q + c.params);
    EXPECT_EQ(resp.status, 400) << c.params;
    EXPECT_NE(json_string_field(resp.body, "error").find(c.message),
              std::string::npos)
        << c.params << " -> " << resp.body;
  }
  // The valid spellings all answer 200 (no structure on this small corpus:
  // kAuto/kPruned fall back to the exact scan, never an error).
  for (const char* params :
       {"&exact=0", "&exact=1", "&nprobe=4", "&recall=0.9", "&recall=1",
        "&deadline_ms=60000"}) {
    EXPECT_EQ(client.request("GET", q + params).status, 200) << params;
  }
}

TEST_F(ServerTest, StatsReportsExactFallbackBelowCutoff) {
  // The fixture corpus (60 docs) is far below the default ann.exact_cutoff:
  // every shard row must say so instead of pretending a structure exists.
  TestClient client(server_->port());
  const ClientResponse resp = client.request("GET", "/stats");
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"ann\":{\"centroids\":0,\"generation\":0,"
                           "\"exact_fallback\":true}"),
            std::string::npos)
      << resp.body;
}

/// Same daemon, but the index builds a cluster-pruned structure per shard
/// (ann.exact_cutoff = 0 admits the tiny test corpus).
class AnnServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    synth::CorpusSpec spec;
    spec.topics = 4;
    spec.concepts_per_topic = 6;
    spec.docs_per_topic = 30;  // 120 docs
    spec.queries_per_topic = 2;
    spec.seed = 777;
    corpus_ = synth::generate_corpus(spec);

    core::ShardingOptions sopts;
    sopts.num_shards = 2;
    sopts.index.k = 10;
    sopts.concurrent.ann.exact_cutoff = 0;
    auto built = core::ShardedIndex::try_build(corpus_.docs, sopts);
    ASSERT_TRUE(built.ok()) << built.status().to_string();
    index_ = std::make_unique<core::ShardedIndex>(std::move(*built));

    server_ = std::make_unique<serve::HttpServer>(*index_);
    ASSERT_TRUE(server_->start().ok());
  }

  void TearDown() override {
    if (server_) server_->drain();
    if (index_) index_->shutdown();
  }

  synth::SyntheticCorpus corpus_;
  std::unique_ptr<core::ShardedIndex> index_;
  std::unique_ptr<serve::HttpServer> server_;
};

TEST_F(AnnServerTest, StatsReportsPerShardAnnState) {
  TestClient client(server_->port());
  const ClientResponse resp = client.request("GET", "/stats");
  ASSERT_EQ(resp.status, 200);
  // Both shard rows carry a live structure: no fallback, centroids > 0.
  EXPECT_EQ(resp.body.find("\"exact_fallback\":true"), std::string::npos)
      << resp.body;
  std::size_t rows = 0, pos = 0;
  while ((pos = resp.body.find("\"ann\":{\"centroids\":", pos)) !=
         std::string::npos) {
    pos += 20;
    EXPECT_NE(resp.body[pos], '0');  // at least one centroid
    ++rows;
  }
  EXPECT_EQ(rows, 2u);
}

TEST_F(AnnServerTest, StatsGenerationsAgreeWithSearchView) {
  // Satellite consistency contract: the generations a /search answers from
  // and the per-shard generations /stats prints both come from a pinned
  // ShardedSnapshot — with no writes in between they must be equal.
  TestClient client(server_->port());
  const ClientResponse search = client.request(
      "GET", "/search?q=" + encode_query(corpus_.queries[0].text) + "&top=3");
  ASSERT_EQ(search.status, 200);
  const std::string gens = json_scalar_field(search.body, "generations");
  ASSERT_FALSE(gens.empty());

  const ClientResponse stats = client.request("GET", "/stats");
  ASSERT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"generations\":" + gens), std::string::npos)
      << "search saw " << gens << " but /stats says: " << stats.body;
}

TEST_F(AnnServerTest, FullProbeSearchBitIdenticalToExactOverHttp) {
  // The acceptance contract end-to-end: nprobe far above every shard's
  // centroid count must reproduce the exact=1 ranking bit for bit in the
  // serialized response body (same docs, same printed cosines, same order).
  TestClient client(server_->port());
  for (const auto& q : corpus_.queries) {
    const std::string base =
        "/search?q=" + encode_query(q.text) + "&top=10&labels=1";
    const ClientResponse exact = client.request("GET", base + "&exact=1");
    const ClientResponse pruned =
        client.request("GET", base + "&nprobe=1048576");
    ASSERT_EQ(exact.status, 200);
    ASSERT_EQ(pruned.status, 200);
    EXPECT_EQ(exact.body, pruned.body) << q.text;
  }
}

TEST_F(AnnServerTest, SessionReRanksWhenKnobsChange) {
  // A pinned session caches its ranking keyed on (query, knobs): switching
  // from a 1-probe ranking to exact=1 must re-rank, not page the stale
  // candidate list.
  TestClient client(server_->port());
  const ClientResponse created = client.request("POST", "/session");
  ASSERT_EQ(created.status, 201);
  const std::string token = json_string_field(created.body, "session");
  const std::string q = encode_query(corpus_.queries[0].text);

  const ClientResponse narrow = client.request(
      "GET", "/search?q=" + q + "&session=" + token + "&top=5&nprobe=1");
  ASSERT_EQ(narrow.status, 200);

  // Same query, exact knobs: the cursor restarts because the ranking is
  // regenerated (page starts at 0 again rather than continuing).
  const ClientResponse exact = client.request(
      "GET", "/search?q=" + q + "&session=" + token + "&top=5&exact=1");
  ASSERT_EQ(exact.status, 200);
  EXPECT_EQ(json_scalar_field(exact.body, "cursor"),
            json_scalar_field(narrow.body, "cursor"))
      << "knob change did not restart the ranking: " << exact.body;
}

TEST_F(AnnServerTest, GenerousDeadlineAnswers200) {
  // Deadline expiry itself is timing-dependent over loopback, so the 504
  // mapping is covered at the library level (ann_pruning_test); here the
  // happy path: a generous per-request deadline is accepted and answered.
  TestClient client(server_->port());
  const ClientResponse ok = client.request(
      "GET", "/search?q=" + encode_query(corpus_.queries[0].text) +
                 "&deadline_ms=60000");
  EXPECT_EQ(ok.status, 200);
}

}  // namespace
