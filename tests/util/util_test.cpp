// Unit tests for the utility substrate: RNG determinism and distributions,
// thread-pool correctness, string helpers, and table formatting.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <sstream>

#include "util/ascii_plot.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using lsi::util::Rng;

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, NormalMomentsReasonable) {
  Rng r(13);
  double sum = 0.0, sumsq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(Rng, PoissonMeanMatches) {
  Rng r(17);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += r.poisson(3.5);
  EXPECT_NEAR(total / n, 3.5, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng r(23);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[r.discrete(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(Rng, ZipfInRangeAndSkewed) {
  Rng r(29);
  const std::size_t n = 50;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 50000; ++i) {
    const std::size_t z = r.zipf(n, 1.2);
    ASSERT_LT(z, n);
    ++counts[z];
  }
  // Rank 0 must dominate the tail ranks under a Zipf law.
  EXPECT_GT(counts[0], counts[10] * 3);
  EXPECT_GT(counts[0], counts[n - 1] * 10);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng r(31);
  for (int trial = 0; trial < 100; ++trial) {
    auto picks = r.sample_without_replacement(20, 8);
    std::set<std::size_t> s(picks.begin(), picks.end());
    EXPECT_EQ(s.size(), 8u);
    for (auto p : picks) EXPECT_LT(p, 20u);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(37);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto sorted = v;
  r.shuffle(v);
  EXPECT_NE(v, sorted);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(10000);
  lsi::util::parallel_for(
      0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); },
      /*grain=*/16);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForChunksPartitionExactly) {
  std::atomic<long long> total{0};
  lsi::util::parallel_for_chunks(
      5, 100005,
      [&](std::size_t lo, std::size_t hi) {
        long long local = 0;
        for (std::size_t i = lo; i < hi; ++i) local += static_cast<long long>(i);
        total.fetch_add(local);
      },
      /*grain=*/64);
  long long expect = 0;
  for (std::size_t i = 5; i < 100005; ++i) expect += static_cast<long long>(i);
  EXPECT_EQ(total.load(), expect);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  bool called = false;
  lsi::util::parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Strings, ToLower) {
  EXPECT_EQ(lsi::util::to_lower("MiXeD Case-42"), "mixed case-42");
}

TEST(Strings, SplitDropsEmptyFields) {
  auto parts = lsi::util::split("a,,b;;c", ",;");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, Trim) {
  EXPECT_EQ(lsi::util::trim("  hi \t"), "hi");
  EXPECT_EQ(lsi::util::trim("   "), "");
}

TEST(Strings, IsAlpha) {
  EXPECT_TRUE(lsi::util::is_alpha("hello"));
  EXPECT_FALSE(lsi::util::is_alpha("hel1o"));
  EXPECT_FALSE(lsi::util::is_alpha(""));
}

TEST(Strings, Join) {
  EXPECT_EQ(lsi::util::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(lsi::util::join({}, ","), "");
}

TEST(Table, AlignsAndCounts) {
  lsi::util::TextTable t({"doc", "cosine"});
  t.add_row({"M9", "1.00"});
  t.add_row({"M12", "0.88"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream ss;
  t.print(ss, "Table");
  const std::string s = ss.str();
  EXPECT_NE(s.find("M12"), std::string::npos);
  EXPECT_NE(s.find("cosine"), std::string::npos);
}

TEST(Table, CsvQuotesSpecials) {
  lsi::util::TextTable t({"a"});
  t.add_row({"x,y"});
  std::ostringstream ss;
  t.print_csv(ss);
  EXPECT_NE(ss.str().find("\"x,y\""), std::string::npos);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(lsi::util::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(lsi::util::fmt_int(-42), "-42");
  EXPECT_EQ(lsi::util::fmt_pct(0.305, 1), "30.5%");
}

TEST(AsciiScatter, RendersLabelsAndAxes) {
  lsi::util::AsciiScatter plot(60, 20);
  plot.add(0.5, 0.25, "M1");
  plot.add(-0.2, -0.4, "M2");
  const std::string s = plot.render();
  EXPECT_NE(s.find("M1"), std::string::npos);
  EXPECT_NE(s.find("M2"), std::string::npos);
  EXPECT_NE(s.find('+'), std::string::npos);  // origin marker
}

}  // namespace
