// Failpoint registry unit tests: arm/disarm lifecycle, tag filtering, kFail
// budgets, kBlock park/release, and the wait_for_* synchronization the
// replication chaos tests build on. Everything here synchronizes on facts
// (hit counts, parked counts) — the timeouts are hang-safety only.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "util/failpoint.hpp"

namespace {

using lsi::util::Failpoints;
using Action = lsi::util::Failpoints::Action;
using namespace std::chrono_literals;

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::instance().disarm_all(); }
  void TearDown() override { Failpoints::instance().disarm_all(); }
};

TEST_F(FailpointTest, UnarmedSiteIsFalseAndUncounted) {
  EXPECT_FALSE(Failpoints::any_armed());
  EXPECT_FALSE(LSI_FAILPOINT("test.site", "r0"));
  EXPECT_EQ(Failpoints::instance().hits("test.site"), 0u);
}

TEST_F(FailpointTest, FailActionReturnsTrueAndCounts) {
  auto& fp = Failpoints::instance();
  fp.arm("test.site", Action::kFail);
  EXPECT_TRUE(Failpoints::any_armed());
  EXPECT_TRUE(LSI_FAILPOINT("test.site", "r0"));
  EXPECT_TRUE(LSI_FAILPOINT("test.site", "r1"));  // "" filter matches all
  EXPECT_EQ(fp.hits("test.site"), 2u);
  // Other sites stay clean.
  EXPECT_FALSE(LSI_FAILPOINT("test.other", "r0"));
}

TEST_F(FailpointTest, TagFilterSelectsOneInstance) {
  auto& fp = Failpoints::instance();
  fp.arm("test.site", Action::kFail, "s0.r2");
  EXPECT_FALSE(LSI_FAILPOINT("test.site", "s0.r0"));
  EXPECT_FALSE(LSI_FAILPOINT("test.site", "s1.r2"));
  EXPECT_TRUE(LSI_FAILPOINT("test.site", "s0.r2"));
  // Non-matching hits are not counted: the count is of *faulted* hits.
  EXPECT_EQ(fp.hits("test.site"), 1u);
}

TEST_F(FailpointTest, FailBudgetAutoDisarms) {
  auto& fp = Failpoints::instance();
  fp.arm("test.site", Action::kFail, {}, 2);
  EXPECT_TRUE(LSI_FAILPOINT("test.site", ""));
  EXPECT_TRUE(LSI_FAILPOINT("test.site", ""));
  EXPECT_FALSE(LSI_FAILPOINT("test.site", ""));  // budget exhausted
  EXPECT_EQ(fp.hits("test.site"), 2u);
}

TEST_F(FailpointTest, DisarmKeepsCountsForPostmortem) {
  auto& fp = Failpoints::instance();
  fp.arm("test.site", Action::kFail);
  EXPECT_TRUE(LSI_FAILPOINT("test.site", ""));
  fp.disarm("test.site");
  EXPECT_FALSE(LSI_FAILPOINT("test.site", ""));
  EXPECT_EQ(fp.hits("test.site"), 1u);
  fp.disarm_all();
  EXPECT_EQ(fp.hits("test.site"), 0u);
  EXPECT_FALSE(Failpoints::any_armed());
}

TEST_F(FailpointTest, BlockParksUntilDisarm) {
  auto& fp = Failpoints::instance();
  fp.arm("test.site", Action::kBlock);

  std::thread t([] {
    // The hit parks; after release it reports "no fault" to the call site.
    EXPECT_FALSE(LSI_FAILPOINT("test.site", "r0"));
  });
  // Deterministic observation of the wedge: the thread IS parked now.
  ASSERT_TRUE(fp.wait_for_blocked("test.site", 1, 10s));
  EXPECT_EQ(fp.blocked("test.site"), 1u);
  EXPECT_EQ(fp.hits("test.site"), 1u);

  fp.disarm("test.site");
  t.join();
  EXPECT_EQ(fp.blocked("test.site"), 0u);
}

TEST_F(FailpointTest, RearmReleasesParkedThreads) {
  auto& fp = Failpoints::instance();
  fp.arm("test.site", Action::kBlock);
  std::thread t([] { (void)LSI_FAILPOINT("test.site", "r0"); });
  ASSERT_TRUE(fp.wait_for_blocked("test.site", 1, 10s));
  // Re-arming (here: flipping to kFail) bumps the epoch and frees the
  // parked thread; the NEXT hit sees the new action.
  fp.arm("test.site", Action::kFail);
  t.join();
  EXPECT_TRUE(LSI_FAILPOINT("test.site", "r0"));
}

TEST_F(FailpointTest, DisarmAllReleasesParkedThreadsAndResets) {
  auto& fp = Failpoints::instance();
  fp.arm("test.site", Action::kBlock);
  std::thread t1([] { (void)LSI_FAILPOINT("test.site", "a"); });
  std::thread t2([] { (void)LSI_FAILPOINT("test.site", "b"); });
  ASSERT_TRUE(fp.wait_for_blocked("test.site", 2, 10s));
  fp.disarm_all();
  t1.join();
  t2.join();
  // The last thread out erased the entry: fast path fully restored.
  EXPECT_FALSE(Failpoints::any_armed());
  EXPECT_EQ(fp.hits("test.site"), 0u);
}

TEST_F(FailpointTest, WaitForHitsObservesProgress) {
  auto& fp = Failpoints::instance();
  fp.arm("test.site", Action::kFail);
  EXPECT_FALSE(fp.wait_for_hits("test.site", 1, 50ms));  // nothing yet
  std::thread t([] {
    for (int i = 0; i < 3; ++i) (void)LSI_FAILPOINT("test.site", "");
  });
  EXPECT_TRUE(fp.wait_for_hits("test.site", 3, 10s));
  t.join();
}

}  // namespace
