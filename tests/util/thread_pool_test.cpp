// Edge-case coverage for the parallel loop helpers the batched retrieval
// engine leans on: empty ranges, grains larger than the range, ragged
// partitions, and exactly-once visitation.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <vector>

#include "util/thread_pool.hpp"

namespace {

using lsi::util::parallel_for;
using lsi::util::parallel_for_chunks;

TEST(ParallelForChunks, EmptyRangeNeverCallsBody) {
  bool called = false;
  parallel_for_chunks(7, 7, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
  parallel_for_chunks(0, 0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForChunks, GrainLargerThanRangeIsOneChunk) {
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for_chunks(
      0, 5,
      [&](std::size_t lo, std::size_t hi) {
        std::lock_guard<std::mutex> lock(mu);
        chunks.emplace_back(lo, hi);
      },
      /*grain=*/100);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].first, 0u);
  EXPECT_EQ(chunks[0].second, 5u);
}

TEST(ParallelForChunks, RaggedRangeCoversEveryIndexExactlyOnce) {
  // 1031 is prime, so no grain divides it evenly: the last chunk is ragged
  // and must still be delivered.
  const std::size_t n = 1031;
  std::vector<std::atomic<int>> visits(n);
  parallel_for_chunks(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        ASSERT_LT(lo, hi);
        ASSERT_LE(hi, n);
        for (std::size_t i = lo; i < hi; ++i) visits[i]++;
      },
      /*grain=*/64);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ParallelForChunks, NonZeroBeginRespected) {
  std::vector<std::atomic<int>> visits(20);
  parallel_for_chunks(
      13, 20,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) visits[i]++;
      },
      /*grain=*/2);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(visits[i].load(), i >= 13 ? 1 : 0) << i;
  }
}

TEST(ParallelFor, GrainLargerThanRangeStillVisitsAll) {
  std::vector<std::atomic<int>> visits(5);
  parallel_for(
      0, 5, [&](std::size_t i) { visits[i]++; }, /*grain=*/1000);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelFor, SingleElementRange) {
  int count = 0;
  parallel_for(41, 42, [&](std::size_t i) {
    EXPECT_EQ(i, 41u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

}  // namespace
