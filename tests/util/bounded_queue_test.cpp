// BoundedQueue: FIFO order, capacity backpressure, close semantics.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/bounded_queue.hpp"

namespace {

using lsi::util::BoundedQueue;
using lsi::util::QueuePush;

TEST(BoundedQueue, FifoOrderAndBatchPop) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.try_push(i), QueuePush::kOk);
  EXPECT_EQ(q.size(), 5u);

  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.pop_batch(out, 10), 2u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pop_batch(out, 1), 0u);  // empty pop never blocks
}

TEST(BoundedQueue, TryPushReportsFull) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.try_push(1), QueuePush::kOk);
  EXPECT_EQ(q.try_push(2), QueuePush::kOk);
  EXPECT_EQ(q.try_push(3), QueuePush::kFull);
  std::vector<int> out;
  q.pop_batch(out, 1);
  EXPECT_EQ(q.try_push(3), QueuePush::kOk);  // space freed
}

TEST(BoundedQueue, ZeroCapacityClampedToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_EQ(q.try_push(1), QueuePush::kOk);
  EXPECT_EQ(q.try_push(2), QueuePush::kFull);
}

TEST(BoundedQueue, PushBlocksUntilSpaceFrees) {
  BoundedQueue<int> q(1);
  ASSERT_EQ(q.push(1), QueuePush::kOk);

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_EQ(q.push(2), QueuePush::kOk);  // blocks: queue is full
    pushed.store(true);
  });

  // The producer cannot finish until we free capacity.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());

  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 1), 1u);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop_batch(out, 1), 1u);
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

TEST(BoundedQueue, CloseWakesBlockedProducersAndKeepsItems) {
  BoundedQueue<int> q(1);
  ASSERT_EQ(q.push(7), QueuePush::kOk);

  std::thread producer([&] { EXPECT_EQ(q.push(8), QueuePush::kClosed); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();

  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.try_push(9), QueuePush::kClosed);
  // Already-accepted items survive the close.
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 4), 1u);
  EXPECT_EQ(out, (std::vector<int>{7}));
}

TEST(BoundedQueue, ManyProducersAllItemsArrive) {
  BoundedQueue<int> q(4);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50;
  std::vector<std::thread> producers;
  std::vector<int> seen;
  std::thread consumer([&] {
    while (seen.size() < kProducers * kPerProducer) {
      if (q.pop_batch(seen, 8) == 0) std::this_thread::yield();
    }
  });
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_EQ(q.push(p * kPerProducer + i), QueuePush::kOk);
      }
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();

  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  std::vector<bool> got(kProducers * kPerProducer, false);
  for (int v : seen) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, kProducers * kPerProducer);
    EXPECT_FALSE(got[v]) << "duplicate item " << v;
    got[v] = true;
  }
}

}  // namespace
