// Regenerates tests/data/golden_k5.lsidb and prints the constants that
// tests/lsi/io_golden_test.cpp hardcodes. Build on demand (not part of ALL):
//
//   cmake --build build --target make_golden_fixture
//   ./build/tests/make_golden_fixture tests/data/golden_k5.lsidb
//
// Only rerun this when the database format version is bumped intentionally;
// commit the regenerated fixture and the updated test constants together.

#include <cstdio>

#include "lsi/concurrent.hpp"
#include "lsi/io.hpp"
#include "lsi/lsi_index.hpp"
#include "lsi/retrieval.hpp"
#include "synth/corpus.hpp"

using namespace lsi;

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <out.lsidb>\n", argv[0]);
    return 2;
  }

  synth::CorpusSpec spec;
  spec.topics = 3;
  spec.concepts_per_topic = 7;
  spec.docs_per_topic = 12;  // 36 documents
  spec.queries_per_topic = 1;
  spec.seed = 20240806;
  const auto corpus = synth::generate_corpus(spec);

  core::IndexOptions opts;
  opts.k = 5;
  const auto index = core::LsiIndex::try_build(corpus.docs, opts).value();

  core::LsiDatabase db;
  db.space = index.space();
  db.vocabulary = index.vocabulary();
  db.doc_labels = index.doc_labels();
  db.scheme = index.options().scheme;
  db.global_weights = index.global_weights();
  const Status saved = core::try_save_database_file(argv[1], db);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.to_string().c_str());
    return 1;
  }

  std::printf("fixture      : %s\n", argv[1]);
  std::printf("k            : %zu\n", db.space.k());
  std::printf("num_terms    : %zu\n", db.space.num_terms());
  std::printf("num_docs     : %zu\n", db.space.num_docs());
  std::printf("vocab size   : %zu\n", db.vocabulary.size());
  std::printf("labels       : %s .. %s\n", db.doc_labels.front().c_str(),
              db.doc_labels.back().c_str());
  std::printf("query        : %s\n", corpus.queries[0].text.c_str());

  const core::SnapshotQueryContext ctx(db.vocabulary, opts.parser, db.scheme,
                                       db.global_weights);
  core::QueryOptions qopts;
  qopts.top_z = 10;
  const auto hits =
      core::retrieve(db.space, ctx.weighted_term_vector(corpus.queries[0].text),
                     qopts);
  for (const auto& hit : hits) {
    std::printf("  {\"%s\", %.16f},\n", db.doc_labels[hit.doc].c_str(),
                hit.cosine);
  }
  return 0;
}
