// Tokenizer, stop words, and vocabulary tests.

#include <gtest/gtest.h>

#include "text/stopwords.hpp"
#include "text/tokenizer.hpp"
#include "text/vocabulary.hpp"

namespace {

using namespace lsi::text;

TEST(Tokenizer, SplitsOnPunctuationAndWhitespace) {
  auto toks = tokenize("Hello, world! foo-bar");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0], "hello");
  EXPECT_EQ(toks[1], "world");
  EXPECT_EQ(toks[2], "foo");
  EXPECT_EQ(toks[3], "bar");
}

TEST(Tokenizer, LowercasesEverything) {
  auto toks = tokenize("LSI Svd MATRIX");
  EXPECT_EQ(toks[0], "lsi");
  EXPECT_EQ(toks[1], "svd");
  EXPECT_EQ(toks[2], "matrix");
}

TEST(Tokenizer, DropsShortTokens) {
  // Default min length 2 removes the possessive fragment in "children s".
  auto toks = tokenize("children s behavior");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "children");
  EXPECT_EQ(toks[1], "behavior");
}

TEST(Tokenizer, KeepsNumbers) {
  auto toks = tokenize("patent 4521 filed 1995");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[1], "4521");
}

TEST(Tokenizer, MinLengthConfigurable) {
  TokenizerOptions opts;
  opts.min_length = 1;
  auto toks = tokenize("a b cd", opts);
  EXPECT_EQ(toks.size(), 3u);
}

TEST(Tokenizer, EmptyInput) {
  EXPECT_TRUE(tokenize("").empty());
  EXPECT_TRUE(tokenize("  ,.;  ").empty());
}

TEST(Stopwords, CoversFunctionWords) {
  for (const char* w :
       {"of", "the", "with", "to", "and", "in", "by", "a", "after", "who",
        "while", "between", "during", "not", "for", "from", "is", "out"}) {
    EXPECT_TRUE(is_stopword(w)) << w;
  }
}

TEST(Stopwords, KeepsContentWords) {
  for (const char* w :
       {"blood", "culture", "depressed", "fast", "oestrogen", "study"}) {
    EXPECT_FALSE(is_stopword(w)) << w;
  }
}

TEST(Vocabulary, AddAndFind) {
  Vocabulary v;
  EXPECT_EQ(v.add("alpha"), 0u);
  EXPECT_EQ(v.add("beta"), 1u);
  EXPECT_EQ(v.add("alpha"), 0u);  // idempotent
  EXPECT_EQ(v.size(), 2u);
  ASSERT_TRUE(v.find("beta").has_value());
  EXPECT_EQ(*v.find("beta"), 1u);
  EXPECT_FALSE(v.find("gamma").has_value());
}

TEST(Vocabulary, ConstructFromList) {
  Vocabulary v({"x", "y", "z"});
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(*v.find("z"), 2u);
  EXPECT_EQ(v.term(0), "x");
}

}  // namespace
