// Porter stemmer tests against the canonical examples from Porter (1980).

#include <gtest/gtest.h>

#include "text/parser.hpp"
#include "text/stemmer.hpp"

namespace {

using lsi::text::porter_stem;

struct Pair {
  const char* in;
  const char* out;
};

TEST(Porter, Step1aPlurals) {
  const Pair cases[] = {{"caresses", "caress"}, {"ponies", "poni"},
                        {"ties", "ti"},         {"caress", "caress"},
                        {"cats", "cat"}};
  for (const auto& c : cases) EXPECT_EQ(porter_stem(c.in), c.out) << c.in;
}

TEST(Porter, Step1bPastAndGerund) {
  const Pair cases[] = {
      {"feed", "feed"},       {"agreed", "agre"},   {"plastered", "plaster"},
      {"bled", "bled"},       {"motoring", "motor"}, {"sing", "sing"},
      {"conflated", "conflat"}, {"troubled", "troubl"}, {"sized", "size"},
      {"hopping", "hop"},     {"tanned", "tan"},    {"falling", "fall"},
      {"hissing", "hiss"},    {"fizzed", "fizz"},   {"failing", "fail"},
      {"filing", "file"}};
  for (const auto& c : cases) EXPECT_EQ(porter_stem(c.in), c.out) << c.in;
}

TEST(Porter, Step1cYToI) {
  EXPECT_EQ(porter_stem("happy"), "happi");
  EXPECT_EQ(porter_stem("sky"), "sky");
}

TEST(Porter, Step2DoubleSuffixes) {
  const Pair cases[] = {{"relational", "relat"},
                        {"conditional", "condit"},
                        {"rational", "ration"},
                        {"valenci", "valenc"},
                        {"digitizer", "digit"},
                        {"operator", "oper"},
                        {"feudalism", "feudal"},
                        {"decisiveness", "decis"},
                        {"hopefulness", "hope"},
                        {"formaliti", "formal"},
                        {"sensitiviti", "sensit"}};
  for (const auto& c : cases) EXPECT_EQ(porter_stem(c.in), c.out) << c.in;
}

TEST(Porter, Step3And4) {
  const Pair cases[] = {{"triplicate", "triplic"}, {"formative", "form"},
                        {"formalize", "formal"},   {"electriciti", "electr"},
                        {"electrical", "electr"},  {"hopeful", "hope"},
                        {"goodness", "good"},      {"revival", "reviv"},
                        {"allowance", "allow"},    {"inference", "infer"},
                        {"adjustable", "adjust"},  {"defensible", "defens"},
                        {"replacement", "replac"}, {"adoption", "adopt"},
                        {"communism", "commun"},   {"activate", "activ"},
                        {"effective", "effect"}};
  for (const auto& c : cases) EXPECT_EQ(porter_stem(c.in), c.out) << c.in;
}

TEST(Porter, Step5FinalE) {
  EXPECT_EQ(porter_stem("probate"), "probat");
  EXPECT_EQ(porter_stem("rate"), "rate");
  EXPECT_EQ(porter_stem("controll"), "control");
  EXPECT_EQ(porter_stem("roll"), "roll");
}

TEST(Porter, ShortWordsUnchanged) {
  EXPECT_EQ(porter_stem("at"), "at");
  EXPECT_EQ(porter_stem("by"), "by");
  EXPECT_EQ(porter_stem(""), "");
}

TEST(Porter, PaperDoctorExample) {
  // Section 5.4: stemming would conflate "doctor"/"doctors" but also pull
  // in "doctoral" territory; verify the stemmer behaves as stated.
  EXPECT_EQ(porter_stem("doctors"), porter_stem("doctor"));
  EXPECT_EQ(porter_stem("doctor"), "doctor");
}

TEST(Porter, MedicalVocabularyConflation) {
  EXPECT_EQ(porter_stem("cultures"), porter_stem("culture"));
  EXPECT_EQ(porter_stem("patients"), porter_stem("patient"));
  EXPECT_EQ(porter_stem("abnormalities"), porter_stem("abnormality"));
}

TEST(Porter, Idempotent) {
  for (const char* w : {"relational", "hopefulness", "motoring", "studies",
                        "generation", "discharge"}) {
    const std::string once = porter_stem(w);
    EXPECT_EQ(porter_stem(once), once) << w;
  }
}

TEST(ParserStemming, ConflatesAcrossDocuments) {
  lsi::text::Collection docs = {{"A", "the doctor studies cultures"},
                                {"B", "doctors study culture daily"}};
  lsi::text::ParserOptions opts;
  opts.stem = true;
  auto tdm = lsi::text::build_term_document_matrix(docs, opts);
  // "doctor"/"doctors" -> one row; "studies"/"study" -> one row;
  // "cultures"/"culture" -> one row.
  ASSERT_TRUE(tdm.vocabulary.find("doctor").has_value());
  EXPECT_FALSE(tdm.vocabulary.find("doctors").has_value());
  const auto doctor = *tdm.vocabulary.find("doctor");
  EXPECT_EQ(tdm.counts.at(doctor, 0), 1.0);
  EXPECT_EQ(tdm.counts.at(doctor, 1), 1.0);
}

TEST(ParserBigrams, AdjacentContentWordsIndexed) {
  lsi::text::Collection docs = {{"A", "blood pressure rises"},
                                {"B", "the blood pressure of rats"}};
  lsi::text::ParserOptions opts;
  opts.add_bigrams = true;
  auto tdm = lsi::text::build_term_document_matrix(docs, opts);
  ASSERT_TRUE(tdm.vocabulary.find("blood_pressure").has_value());
  const auto bp = *tdm.vocabulary.find("blood_pressure");
  EXPECT_EQ(tdm.counts.at(bp, 0), 1.0);
  EXPECT_EQ(tdm.counts.at(bp, 1), 1.0);
  // Stop words never participate in bigrams ("the_blood" must not exist).
  EXPECT_FALSE(tdm.vocabulary.find("the_blood").has_value());
}

TEST(ParserBigrams, QueryVectorSeesBigrams) {
  lsi::text::Collection docs = {{"A", "blood pressure rises"},
                                {"B", "blood pressure of rats"}};
  lsi::text::ParserOptions opts;
  opts.add_bigrams = true;
  auto tdm = lsi::text::build_term_document_matrix(docs, opts);
  auto q = lsi::text::text_to_term_vector(tdm, "blood pressure", opts);
  EXPECT_EQ(q[*tdm.vocabulary.find("blood_pressure")], 1.0);
  EXPECT_EQ(q[*tdm.vocabulary.find("blood")], 1.0);
}

}  // namespace
