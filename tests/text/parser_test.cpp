// Parser tests, including the headline reproduction of the paper's Table 3
// from the raw Table 2 topic texts.

#include <gtest/gtest.h>

#include "data/med_topics.hpp"
#include "text/parser.hpp"

namespace {

using namespace lsi::text;
using lsi::la::index_t;

ParserOptions paper_options() {
  ParserOptions opts;
  opts.min_document_frequency = 2;  // "keywords appear in more than one topic"
  opts.fold_plurals = true;         // "cultures" (M8) indexes under "culture"
  return opts;
}

TEST(Parser, ReproducesTable3Vocabulary) {
  auto tdm = build_term_document_matrix(lsi::data::med_topics(),
                                        paper_options());
  ASSERT_EQ(tdm.vocabulary.size(), 18u);
  const auto& expect = lsi::data::table3_terms();
  for (index_t i = 0; i < 18; ++i) {
    EXPECT_EQ(tdm.vocabulary.term(i), expect[i]) << "row " << i;
  }
}

TEST(Parser, ReproducesTable3CountsUpToKnownTypo) {
  // The parsed matrix must equal the printed Table 3 everywhere except the
  // documented "respect" row: the topic *text* places it in M9 while the
  // printed table marks M8.
  auto tdm = build_term_document_matrix(lsi::data::med_topics(),
                                        paper_options());
  const auto& printed = lsi::data::table3_counts();
  ASSERT_EQ(tdm.counts.rows(), printed.rows());
  ASSERT_EQ(tdm.counts.cols(), printed.cols());
  const index_t respect_row = 15;
  int diffs = 0;
  for (index_t i = 0; i < printed.rows(); ++i) {
    for (index_t j = 0; j < printed.cols(); ++j) {
      if (tdm.counts.at(i, j) != printed.at(i, j)) {
        ++diffs;
        EXPECT_EQ(i, respect_row) << "unexpected diff at row " << i;
      }
    }
  }
  EXPECT_EQ(diffs, 2);  // respect@M8 (printed only) and respect@M9 (text only)
  EXPECT_EQ(tdm.counts.at(respect_row, 8), 1.0);   // M9 per the text
  EXPECT_EQ(tdm.counts.at(respect_row, 11), 1.0);  // M12 in both
  EXPECT_EQ(tdm.counts.at(respect_row, 7), 0.0);   // not M8 per the text
}

TEST(Parser, PluralFoldingOnlyWhenStemExists) {
  Collection docs = {{"A", "culture tests"}, {"B", "cultures of patients"},
                     {"C", "patients again"}};
  ParserOptions opts;
  opts.fold_plurals = true;
  auto tdm = build_term_document_matrix(docs, opts);
  // "cultures" folds onto "culture" (stem occurs in A); "patients" does not
  // fold ("patient" never occurs).
  EXPECT_TRUE(tdm.vocabulary.find("culture").has_value());
  EXPECT_FALSE(tdm.vocabulary.find("cultures").has_value());
  EXPECT_TRUE(tdm.vocabulary.find("patients").has_value());
  EXPECT_FALSE(tdm.vocabulary.find("patient").has_value());
  EXPECT_EQ(tdm.counts.at(*tdm.vocabulary.find("culture"), 1), 1.0);
}

TEST(Parser, MinDocumentFrequencyFilters) {
  Collection docs = {{"A", "apple banana"}, {"B", "apple cherry"}};
  ParserOptions opts;
  opts.min_document_frequency = 2;
  auto tdm = build_term_document_matrix(docs, opts);
  EXPECT_EQ(tdm.vocabulary.size(), 1u);
  EXPECT_TRUE(tdm.vocabulary.find("apple").has_value());
}

TEST(Parser, StopwordsRemoved) {
  Collection docs = {{"A", "the cat of the house"},
                     {"B", "the dog of the cat"}};
  auto tdm = build_term_document_matrix(docs, {});
  EXPECT_FALSE(tdm.vocabulary.find("the").has_value());
  EXPECT_FALSE(tdm.vocabulary.find("of").has_value());
  EXPECT_TRUE(tdm.vocabulary.find("cat").has_value());
}

TEST(Parser, StopwordRemovalCanBeDisabled) {
  Collection docs = {{"A", "the the cat"}};
  ParserOptions opts;
  opts.remove_stopwords = false;
  auto tdm = build_term_document_matrix(docs, opts);
  ASSERT_TRUE(tdm.vocabulary.find("the").has_value());
  EXPECT_EQ(tdm.counts.at(*tdm.vocabulary.find("the"), 0), 2.0);
}

TEST(Parser, CountsTermFrequencies) {
  Collection docs = {{"A", "fast fast fast cell"}};
  auto tdm = build_term_document_matrix(docs, {});
  EXPECT_EQ(tdm.counts.at(*tdm.vocabulary.find("fast"), 0), 3.0);
  EXPECT_EQ(tdm.counts.at(*tdm.vocabulary.find("cell"), 0), 1.0);
}

TEST(Parser, AlphabeticalRowOrder) {
  Collection docs = {{"A", "zebra apple mango"}};
  auto tdm = build_term_document_matrix(docs, {});
  EXPECT_EQ(tdm.vocabulary.term(0), "apple");
  EXPECT_EQ(tdm.vocabulary.term(1), "mango");
  EXPECT_EQ(tdm.vocabulary.term(2), "zebra");
}

TEST(Parser, DocLabelsPreserved) {
  auto tdm = build_term_document_matrix(lsi::data::med_topics(),
                                        paper_options());
  ASSERT_EQ(tdm.doc_labels.size(), 14u);
  EXPECT_EQ(tdm.doc_labels.front(), "M1");
  EXPECT_EQ(tdm.doc_labels.back(), "M14");
}

TEST(Parser, EmptyCollection) {
  auto tdm = build_term_document_matrix({}, {});
  EXPECT_EQ(tdm.vocabulary.size(), 0u);
  EXPECT_EQ(tdm.counts.cols(), 0u);
}

TEST(TextToTermVector, MapsQueryWords) {
  auto tdm = build_term_document_matrix(lsi::data::med_topics(),
                                        paper_options());
  // "of children with" are not indexed terms and must vanish, exactly as in
  // the paper's Section 3.1 example.
  auto q = text_to_term_vector(tdm, lsi::data::kQueryText, paper_options());
  double total = 0.0;
  for (double v : q) total += v;
  EXPECT_DOUBLE_EQ(total, 3.0);
  EXPECT_EQ(q[*tdm.vocabulary.find("age")], 1.0);
  EXPECT_EQ(q[*tdm.vocabulary.find("blood")], 1.0);
  EXPECT_EQ(q[*tdm.vocabulary.find("abnormalities")], 1.0);
}

TEST(TextToTermVector, UnknownWordsIgnored) {
  auto tdm = build_term_document_matrix(lsi::data::med_topics(),
                                        paper_options());
  auto q = text_to_term_vector(tdm, "elephant automobile", paper_options());
  for (double v : q) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Frequencies, DocumentAndGlobal) {
  Collection docs = {{"A", "cat cat dog"}, {"B", "cat fish"}};
  auto tdm = build_term_document_matrix(docs, {});
  auto df = document_frequencies(tdm.counts);
  auto gf = global_frequencies(tdm.counts);
  const auto cat = *tdm.vocabulary.find("cat");
  const auto dog = *tdm.vocabulary.find("dog");
  EXPECT_EQ(df[cat], 2u);
  EXPECT_EQ(df[dog], 1u);
  EXPECT_DOUBLE_EQ(gf[cat], 3.0);
  EXPECT_DOUBLE_EQ(gf[dog], 1.0);
}

}  // namespace
